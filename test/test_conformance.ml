(* Differential conformance of the backend registry (the §4.1 criterion
   made executable): every state-mutating backend must agree with the
   sequential oracle on every app, plus the registry/CLI plumbing that
   exposes the matrix. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
module Backend = Agp_backend.Backend
module Conformance = Agp_backend.Conformance
module Workloads = Agp_exp.Workloads
module App_instance = Agp_apps.App_instance
module Runtime = Agp_core.Runtime

(* Result-deterministic apps: the committed state is a function of the
   input alone (unique BFS levels; SSSP distances on distinct random
   weights), so conformance can demand bit-identical state, not just a
   passing check.  MST's union-find shape, DMR's mesh and LU's float
   accumulation order are schedule-dependent, so for those the check
   verdict is the equivalence criterion. *)
let state_deterministic (app : App_instance.t) =
  List.mem app.App_instance.app_name [ "SPEC-BFS"; "COOR-BFS"; "SPEC-SSSP" ]

(* Satellite: the domains runtime is exercised at 1, 2 and 4 domains,
   not just the default, inside the same differential harness. *)
let backends_under_test =
  Conformance.mutating Backend.all
  @ [ Backend.parallel ~domains:1 (); Backend.parallel ~domains:2 ();
      Backend.parallel ~domains:4 () ]

let test_matrix () =
  let apps = Workloads.all Workloads.Small ~seed:7 in
  let rows =
    Conformance.matrix ~state_equiv:state_deterministic ~backends:backends_under_test apps
  in
  check Alcotest.int "full matrix ran"
    (List.length apps * List.length backends_under_test)
    (List.length rows);
  (match Conformance.failing rows with
  | [] -> ()
  | bad -> Alcotest.failf "non-conforming cells:\n%s" (Conformance.render bad));
  (* the matrix must not silently skip a mutating backend *)
  List.iter
    (fun r ->
      match r.Conformance.outcome with
      | Error (Conformance.Unsupported _) ->
          Alcotest.failf "mutating backend %s skipped %s" r.Conformance.row_backend
            r.Conformance.row_app
      | _ -> ())
    rows

let test_matrix_random_seeds =
  QCheck.Test.make ~name:"registry conforms to the oracle on random workloads" ~count:6
    QCheck.(int_range 0 1000)
    (fun seed ->
      let apps = Workloads.all Workloads.Small ~seed in
      let rows =
        Conformance.matrix ~state_equiv:state_deterministic ~backends:backends_under_test apps
      in
      match Conformance.failing rows with
      | [] -> true
      | bad -> QCheck.Test.fail_reportf "seed %d:\n%s" seed (Conformance.render bad))

(* --- timing models run through the same entry point (acceptance: every
   backend in Backend.all runs every supported app via Backend.run) --- *)

let test_timing_models_run () =
  let apps = Workloads.all Workloads.Small ~seed:7 in
  List.iter
    (fun (b : Backend.t) ->
      if not b.Backend.capabilities.Backend.validates then
        List.iter
          (fun (app : App_instance.t) ->
            match Backend.run b app with
            | exception Backend.Unsupported _ ->
                check Alcotest.bool
                  (Printf.sprintf "%s honestly declines %s" b.Backend.name
                     app.App_instance.app_name)
                  true
                  (Result.is_error (b.Backend.supports app))
            | res ->
                check Alcotest.bool
                  (Printf.sprintf "%s times %s" b.Backend.name app.App_instance.app_name)
                  true
                  (match res.Backend.seconds with
                  | Some s -> s > 0.0
                  | None -> false))
          apps)
    Backend.all

let test_obs_report_capability () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let sim = Backend.simulator () in
  let res = Backend.run ~obs:true sim app in
  (match res.Backend.obs with
  | None -> Alcotest.fail "obs-capable simulator returned no report under ~obs:true"
  | Some doc ->
      check Alcotest.string "report app" app.App_instance.app_name doc.Agp_obs.Report.app;
      (match Agp_obs.Report.of_string (Agp_obs.Report.to_string doc) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "backend obs report does not reparse: %s" e));
  let res' = Backend.run sim app in
  check Alcotest.bool "no report unless asked" true (res'.Backend.obs = None);
  let seq = Backend.run ~obs:true Backend.sequential app in
  check Alcotest.bool "non-obs backend ignores ~obs" true (seq.Backend.obs = None)

(* --- registry lookup --- *)

let test_registry_find () =
  check
    Alcotest.(list string)
    "registry order"
    [
      "sequential";
      "runtime";
      "parallel";
      "simulator";
      "simulator:classic";
      "cpu-1core";
      "cpu-10core";
      "opencl";
    ]
    Backend.names;
  let name s =
    match Backend.find s with
    | Ok b -> b.Backend.name
    | Error e -> "error: " ^ e
  in
  check Alcotest.string "plain name" "runtime" (name "runtime");
  check Alcotest.string "fpga aliases simulator" "simulator" (name "fpga");
  check Alcotest.string "compiled engine is the default simulator" "simulator"
    (name "simulator:compiled");
  check Alcotest.string "legacy engine stays addressable" "simulator:classic"
    (name "simulator:classic");
  check Alcotest.string "parameterized workers" "runtime:3" (name "runtime:3");
  check Alcotest.string "parameterized domains" "parallel:2" (name "parallel:2");
  List.iter
    (fun bad ->
      check Alcotest.bool (Printf.sprintf "%S rejected" bad) true
        (Result.is_error (Backend.find bad)))
    [ "nosuch"; "runtime:0"; "runtime:-1"; "runtime:x"; "parallel:"; "simulator:4"; "" ]

(* --- cycle equivalence: the compiled op-array engine must be
   indistinguishable from the legacy tree-walking engine — same final
   state, same cycle count, same engine statistics, same stall
   attribution, same event stream --- *)

module Accelerator = Agp_hw.Accelerator

let run_cycle_engine engine (app : App_instance.t) =
  let r = app.App_instance.fresh () in
  let config = Backend.derive_config app Agp_hw.Config.default in
  let sink = Agp_obs.Sink.collect () in
  let report =
    Accelerator.run ~engine ~config ~sink ~spec:app.App_instance.spec
      ~bindings:r.App_instance.bindings ~state:r.App_instance.state
      ~initial:r.App_instance.initial ()
  in
  (report, Agp_obs.Sink.events sink, r.App_instance.state)

let engines_agree (app : App_instance.t) =
  let lr, lev, lst = run_cycle_engine Accelerator.Legacy app in
  let cr, cev, cst = run_cycle_engine Accelerator.Compiled app in
  let faults = ref [] in
  let fault fmt = Printf.ksprintf (fun s -> faults := s :: !faults) fmt in
  if lr.Accelerator.cycles <> cr.Accelerator.cycles then
    fault "cycles: legacy %d vs compiled %d" lr.Accelerator.cycles cr.Accelerator.cycles;
  if lr.Accelerator.engine_stats <> cr.Accelerator.engine_stats then
    fault "engine stats differ";
  if lr.Accelerator.peak_in_flight <> cr.Accelerator.peak_in_flight then
    fault "peak_in_flight: %d vs %d" lr.Accelerator.peak_in_flight cr.Accelerator.peak_in_flight;
  if lr.Accelerator.mem_reads <> cr.Accelerator.mem_reads then
    fault "mem_reads: %d vs %d" lr.Accelerator.mem_reads cr.Accelerator.mem_reads;
  if lr.Accelerator.mem_writes <> cr.Accelerator.mem_writes then
    fault "mem_writes: %d vs %d" lr.Accelerator.mem_writes cr.Accelerator.mem_writes;
  if lr.Accelerator.bytes_over_link <> cr.Accelerator.bytes_over_link then
    fault "bytes_over_link: %d vs %d" lr.Accelerator.bytes_over_link
      cr.Accelerator.bytes_over_link;
  if not (Agp_obs.Attribution.equal lr.Accelerator.attribution cr.Accelerator.attribution) then
    fault "attribution differs:\nlegacy:\n%s\ncompiled:\n%s"
      (Agp_obs.Attribution.render lr.Accelerator.attribution)
      (Agp_obs.Attribution.render cr.Accelerator.attribution);
  (match Agp_core.State.diff lst cst with
  | [] -> ()
  | ds -> fault "final state differs: %s" (String.concat "; " (List.filteri (fun i _ -> i < 5) ds)));
  if lev <> cev then begin
    let n = List.length lev and m = List.length cev in
    if n <> m then fault "event count: %d vs %d" n m
    else begin
      List.iteri
        (fun i ((lt, le), (ct, ce)) ->
          if !faults = [] && (lt <> ct || le <> ce) then
            fault "event %d: (%d, %s) vs (%d, %s)" i lt (Agp_obs.Event.kind le) ct
              (Agp_obs.Event.kind ce))
        (List.combine lev cev)
    end
  end;
  match !faults with
  | [] -> Ok ()
  | fs -> Error (String.concat "\n" (List.rev fs))

let test_engine_equivalence () =
  List.iter
    (fun (app : App_instance.t) ->
      match engines_agree app with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "compiled engine diverges from legacy on %s:\n%s"
            app.App_instance.app_name msg)
    (Workloads.all Workloads.Small ~seed:7)

let test_engine_equivalence_random =
  QCheck.Test.make ~name:"compiled engine cycle-equivalent on random seeds" ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      List.for_all
        (fun (app : App_instance.t) ->
          match engines_agree app with
          | Ok () -> true
          | Error msg ->
              QCheck.Test.fail_reportf "seed %d, %s:\n%s" seed app.App_instance.app_name msg)
        (Workloads.all Workloads.Small ~seed))

(* --- typed liveness exceptions (satellite: no more stringly Failure) --- *)

let test_step_limit_typed () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let r = app.App_instance.fresh () in
  match
    Runtime.run ~initial:r.App_instance.initial ~max_steps:1 app.App_instance.spec
      r.App_instance.bindings r.App_instance.state
  with
  | exception Runtime.Step_limit_exceeded n ->
      check Alcotest.int "exception carries the exhausted budget" 1 n
  | exception e -> Alcotest.failf "expected Step_limit_exceeded, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "a 1-step budget cannot complete SPEC-BFS"

let test_conformance_classifies_liveness () =
  (* a backend that diverges must be classified Liveness, not Crash *)
  let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let starved =
    {
      (Backend.runtime ()) with
      Backend.name = "starved";
      Backend.exec =
        (fun ~obs:_ (app : App_instance.t) ->
          let r = app.App_instance.fresh () in
          ignore
            (Runtime.run ~initial:r.App_instance.initial ~max_steps:1 app.App_instance.spec
               r.App_instance.bindings r.App_instance.state);
          assert false);
    }
  in
  match Conformance.check starved app with
  | Error (Conformance.Liveness _) -> ()
  | Error f -> Alcotest.failf "expected Liveness, got %s" (Conformance.failure_to_string f)
  | Ok () -> Alcotest.fail "starved backend cannot conform"

(* --- check_both double fault (satellite: no first-failure short-circuit) --- *)

let test_check_both_reports_both_modes () =
  let base = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let sabotaged which =
    {
      base with
      App_instance.fresh =
        (fun () ->
          let r = base.App_instance.fresh () in
          { r with App_instance.check = (fun () -> Error which) });
    }
  in
  (match App_instance.check_both (sabotaged "forced failure") with
  | Ok () -> Alcotest.fail "sabotaged check cannot pass"
  | Error msg ->
      let has affix = Astring.String.is_infix ~affix msg in
      check Alcotest.bool "reports the sequential mode" true (has "sequential: forced failure");
      check Alcotest.bool "reports the runtime mode" true (has "runtime: forced failure");
      check Alcotest.bool "joins both faults" true (has "; "));
  check Alcotest.bool "healthy app still passes" true (App_instance.check_both base = Ok ())

(* --- CLI integration: the run/backends subcommands and the golden gate --- *)

let cli_exe = Filename.concat (Filename.concat Filename.parent_dir_name "bin") "agp_cli.exe"

let test_cli_run_backend_and_golden_diff () =
  if not (Sys.file_exists cli_exe) then ()
  else begin
    let tmp = Filename.temp_file "agp_run" ".json" in
    let sh fmt = Printf.ksprintf (fun s -> Sys.command (s ^ " >/dev/null 2>&1")) fmt in
    check Alcotest.int "agp backends exits 0" 0 (sh "%s backends" cli_exe);
    check Alcotest.int "agp run --backend simulator --report exits 0" 0
      (sh "%s run spec-bfs --scale small --backend simulator --report %s" cli_exe tmp);
    (* cwd is _build/default/test under dune runtest; test/golden/ when
       launched from the repo root by hand *)
    let golden =
      List.find_opt Sys.file_exists
        [
          Filename.concat "golden" "spec-bfs-small.report.json";
          Filename.concat (Filename.concat "test" "golden") "spec-bfs-small.report.json";
        ]
    in
    (match golden with
    | Some golden ->
        check Alcotest.int "report accepted by the golden diff gate" 0
          (sh "%s diff %s %s --threshold 0.25" cli_exe golden tmp)
    | None -> Alcotest.fail "golden report not found (dep on golden/*.json missing?)");
    check Alcotest.int "runtime backend via CLI exits 0" 0
      (sh "%s run spec-bfs --scale small --backend runtime:2" cli_exe);
    check Alcotest.int "unknown backend exits 1" 1
      (sh "%s run spec-bfs --scale small --backend nosuch" cli_exe);
    check Alcotest.int "report on non-obs backend exits 1" 1
      (sh "%s run spec-bfs --scale small --backend sequential --report %s" cli_exe tmp);
    check Alcotest.int "unsupported app/backend pair exits 1" 1
      (sh "%s run spec-dmr --scale small --backend opencl" cli_exe);
    Sys.remove tmp
  end

let () =
  Alcotest.run "agp_backend"
    [
      ( "conformance",
        [
          Alcotest.test_case "matrix: apps x mutating backends" `Quick test_matrix;
          qtest test_matrix_random_seeds;
          Alcotest.test_case "liveness classified, not crashed" `Quick
            test_conformance_classifies_liveness;
          Alcotest.test_case "compiled engine == legacy engine (cycles, state, events)" `Quick
            test_engine_equivalence;
          qtest test_engine_equivalence_random;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find and parameterized names" `Quick test_registry_find;
          Alcotest.test_case "timing models run uniformly" `Quick test_timing_models_run;
          Alcotest.test_case "obs report on request" `Quick test_obs_report_capability;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "step limit is typed" `Quick test_step_limit_typed;
          Alcotest.test_case "check_both reports both modes" `Quick
            test_check_both_reports_both_modes;
        ] );
      ( "cli",
        [
          Alcotest.test_case "run --backend / backends / golden gate" `Quick
            test_cli_run_backend_and_golden_diff;
        ] );
    ]
