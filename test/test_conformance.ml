(* Differential conformance of the backend registry (the §4.1 criterion
   made executable): every state-mutating backend must agree with the
   sequential oracle on every app, plus the registry/CLI plumbing that
   exposes the matrix. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
module Backend = Agp_backend.Backend
module Conformance = Agp_backend.Conformance
module Workloads = Agp_exp.Workloads
module App_instance = Agp_apps.App_instance
module Runtime = Agp_core.Runtime
module Semantics = Agp_core.Semantics
module Spec = Agp_core.Spec
module Value = Agp_core.Value
module State = Agp_core.State

(* Result-deterministic apps: the committed state is a function of the
   input alone (unique BFS levels; SSSP distances on distinct random
   weights), so conformance can demand bit-identical state, not just a
   passing check.  MST's union-find shape, DMR's mesh and LU's float
   accumulation order are schedule-dependent, so for those the check
   verdict is the equivalence criterion. *)
let state_deterministic (app : App_instance.t) =
  List.mem app.App_instance.app_name [ "SPEC-BFS"; "COOR-BFS"; "SPEC-SSSP" ]

(* The backends-under-test set is derived from the registry itself
   (every validating backend plus pinned parallel:1/2/4 instances) —
   registering a backend opts it into conformance automatically. *)
let backends_under_test = Conformance.matrix_backends ()

let test_matrix () =
  let apps = Workloads.all Workloads.Small ~seed:7 in
  let rows =
    Conformance.matrix ~state_equiv:state_deterministic ~backends:backends_under_test apps
  in
  check Alcotest.int "full matrix ran"
    (List.length apps * List.length backends_under_test)
    (List.length rows);
  (match Conformance.failing rows with
  | [] -> ()
  | bad -> Alcotest.failf "non-conforming cells:\n%s" (Conformance.render bad));
  (* no registered validating backend may silently opt out of the matrix *)
  (match Conformance.missing_from rows with
  | [] -> ()
  | missing ->
      Alcotest.failf "validating backends missing from the matrix: %s"
        (String.concat ", " (List.map (fun (b : Backend.t) -> b.Backend.name) missing)));
  (* the matrix must not silently skip a mutating backend *)
  List.iter
    (fun r ->
      match r.Conformance.outcome with
      | Error (Conformance.Unsupported _) ->
          Alcotest.failf "mutating backend %s skipped %s" r.Conformance.row_backend
            r.Conformance.row_app
      | _ -> ())
    rows

let test_matrix_random_seeds =
  QCheck.Test.make ~name:"registry conforms to the oracle on random workloads" ~count:6
    QCheck.(int_range 0 1000)
    (fun seed ->
      let apps = Workloads.all Workloads.Small ~seed in
      let rows =
        Conformance.matrix ~state_equiv:state_deterministic ~backends:backends_under_test apps
      in
      match Conformance.failing rows with
      | [] -> true
      | bad -> QCheck.Test.fail_reportf "seed %d:\n%s" seed (Conformance.render bad))

(* --- timing models run through the same entry point (acceptance: every
   backend in Backend.all runs every supported app via Backend.run) --- *)

let test_timing_models_run () =
  let apps = Workloads.all Workloads.Small ~seed:7 in
  List.iter
    (fun (b : Backend.t) ->
      if not b.Backend.capabilities.Backend.validates then
        List.iter
          (fun (app : App_instance.t) ->
            match Backend.run b app with
            | exception Backend.Unsupported _ ->
                check Alcotest.bool
                  (Printf.sprintf "%s honestly declines %s" b.Backend.name
                     app.App_instance.app_name)
                  true
                  (Result.is_error (b.Backend.supports app))
            | res ->
                check Alcotest.bool
                  (Printf.sprintf "%s times %s" b.Backend.name app.App_instance.app_name)
                  true
                  (match res.Backend.seconds with
                  | Some s -> s > 0.0
                  | None -> false))
          apps)
    Backend.all

let test_obs_report_capability () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let sim = Backend.simulator () in
  let res = Backend.run ~obs:true sim app in
  (match res.Backend.obs with
  | None -> Alcotest.fail "obs-capable simulator returned no report under ~obs:true"
  | Some doc ->
      check Alcotest.string "report app" app.App_instance.app_name doc.Agp_obs.Report.app;
      (match Agp_obs.Report.of_string (Agp_obs.Report.to_string doc) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "backend obs report does not reparse: %s" e));
  let res' = Backend.run sim app in
  check Alcotest.bool "no report unless asked" true (res'.Backend.obs = None);
  let seq = Backend.run ~obs:true Backend.sequential app in
  check Alcotest.bool "non-obs backend ignores ~obs" true (seq.Backend.obs = None)

(* --- registry lookup --- *)

let test_registry_find () =
  check
    Alcotest.(list string)
    "registry order"
    ([ "sequential"; "runtime"; "parallel"; "simulator" ]
    @ (if Backend.classic_enabled then [ "simulator:classic" ] else [])
    @ [ "cpu-1core"; "cpu-10core"; "opencl" ])
    Backend.names;
  let name s =
    match Backend.find s with
    | Ok b -> b.Backend.name
    | Error e -> "error: " ^ e
  in
  check Alcotest.string "plain name" "runtime" (name "runtime");
  check Alcotest.string "fpga aliases simulator" "simulator" (name "fpga");
  check Alcotest.string "compiled engine is the default simulator" "simulator"
    (name "simulator:compiled");
  (* satellite: simulator:classic is retired from the default registry;
     AGP_CLASSIC=1 is the one-release escape hatch *)
  (if Backend.classic_enabled then
     check Alcotest.string "escape hatch re-registers the legacy engine" "simulator:classic"
       (name "simulator:classic")
   else
     match Backend.find "simulator:classic" with
     | Ok _ -> Alcotest.fail "simulator:classic resolved without AGP_CLASSIC=1"
     | Error e ->
         check Alcotest.bool "retirement message names the escape hatch" true
           (Astring.String.is_infix ~affix:"AGP_CLASSIC=1" e));
  check Alcotest.string "parameterized workers" "runtime:3" (name "runtime:3");
  check Alcotest.string "parameterized domains" "parallel:2" (name "parallel:2");
  List.iter
    (fun bad ->
      check Alcotest.bool (Printf.sprintf "%S rejected" bad) true
        (Result.is_error (Backend.find bad)))
    [ "nosuch"; "runtime:0"; "runtime:-1"; "runtime:x"; "parallel:"; "simulator:4"; "" ]

(* --- cycle equivalence: the compiled op-array engine must be
   indistinguishable from the legacy tree-walking engine — same final
   state, same cycle count, same engine statistics, same stall
   attribution, same event stream --- *)

module Accelerator = Agp_hw.Accelerator

let run_cycle_engine engine (app : App_instance.t) =
  let r = app.App_instance.fresh () in
  let config = Backend.derive_config app Agp_hw.Config.default in
  let sink = Agp_obs.Sink.collect () in
  let report =
    Accelerator.run ~engine ~config ~sink ~spec:app.App_instance.spec
      ~bindings:r.App_instance.bindings ~state:r.App_instance.state
      ~initial:r.App_instance.initial ()
  in
  (report, Agp_obs.Sink.events sink, r.App_instance.state)

let engines_agree (app : App_instance.t) =
  let lr, lev, lst = run_cycle_engine Accelerator.Legacy app in
  let cr, cev, cst = run_cycle_engine Accelerator.Compiled app in
  let faults = ref [] in
  let fault fmt = Printf.ksprintf (fun s -> faults := s :: !faults) fmt in
  if lr.Accelerator.cycles <> cr.Accelerator.cycles then
    fault "cycles: legacy %d vs compiled %d" lr.Accelerator.cycles cr.Accelerator.cycles;
  if lr.Accelerator.engine_stats <> cr.Accelerator.engine_stats then
    fault "engine stats differ";
  if lr.Accelerator.peak_in_flight <> cr.Accelerator.peak_in_flight then
    fault "peak_in_flight: %d vs %d" lr.Accelerator.peak_in_flight cr.Accelerator.peak_in_flight;
  if lr.Accelerator.mem_reads <> cr.Accelerator.mem_reads then
    fault "mem_reads: %d vs %d" lr.Accelerator.mem_reads cr.Accelerator.mem_reads;
  if lr.Accelerator.mem_writes <> cr.Accelerator.mem_writes then
    fault "mem_writes: %d vs %d" lr.Accelerator.mem_writes cr.Accelerator.mem_writes;
  if lr.Accelerator.bytes_over_link <> cr.Accelerator.bytes_over_link then
    fault "bytes_over_link: %d vs %d" lr.Accelerator.bytes_over_link
      cr.Accelerator.bytes_over_link;
  if not (Agp_obs.Attribution.equal lr.Accelerator.attribution cr.Accelerator.attribution) then
    fault "attribution differs:\nlegacy:\n%s\ncompiled:\n%s"
      (Agp_obs.Attribution.render lr.Accelerator.attribution)
      (Agp_obs.Attribution.render cr.Accelerator.attribution);
  (match Agp_core.State.diff lst cst with
  | [] -> ()
  | ds -> fault "final state differs: %s" (String.concat "; " (List.filteri (fun i _ -> i < 5) ds)));
  if lev <> cev then begin
    let n = List.length lev and m = List.length cev in
    if n <> m then fault "event count: %d vs %d" n m
    else begin
      List.iteri
        (fun i ((lt, le), (ct, ce)) ->
          if !faults = [] && (lt <> ct || le <> ce) then
            fault "event %d: (%d, %s) vs (%d, %s)" i lt (Agp_obs.Event.kind le) ct
              (Agp_obs.Event.kind ce))
        (List.combine lev cev)
    end
  end;
  match !faults with
  | [] -> Ok ()
  | fs -> Error (String.concat "\n" (List.rev fs))

let test_engine_equivalence () =
  List.iter
    (fun (app : App_instance.t) ->
      match engines_agree app with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "compiled engine diverges from legacy on %s:\n%s"
            app.App_instance.app_name msg)
    (Workloads.all Workloads.Small ~seed:7)

let test_engine_equivalence_random =
  QCheck.Test.make ~name:"compiled engine cycle-equivalent on random seeds" ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      List.for_all
        (fun (app : App_instance.t) ->
          match engines_agree app with
          | Ok () -> true
          | Error msg ->
              QCheck.Test.fail_reportf "seed %d, %s:\n%s" seed app.App_instance.app_name msg)
        (Workloads.all Workloads.Small ~seed))

(* --- one binop table (satellite): random expressions must evaluate
   bit-for-bit identically under the tree-walking interpreter and the
   compiled op-array engine — including the error cases, whose
   messages now come from the single Agp_core.Binop table --- *)

let binop_str (op : Spec.binop) =
  match op with
  | Spec.Add -> "+"
  | Spec.Sub -> "-"
  | Spec.Mul -> "*"
  | Spec.Div -> "/"
  | Spec.Rem -> "%"
  | Spec.Min -> "min"
  | Spec.Max -> "max"
  | Spec.Eq -> "=="
  | Spec.Ne -> "!="
  | Spec.Lt -> "<"
  | Spec.Le -> "<="
  | Spec.Gt -> ">"
  | Spec.Ge -> ">="
  | Spec.And -> "&&"
  | Spec.Or -> "||"

let rec expr_str (e : Spec.expr) =
  match e with
  | Spec.Const v -> Value.to_string v
  | Spec.Param i -> Printf.sprintf "p%d" i
  | Spec.Var v -> v
  | Spec.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Spec.Not e -> "!" ^ expr_str e
  | Spec.Neg e -> "-" ^ expr_str e

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (int_range (-4) 4);
        map (fun f -> Value.Float f) (oneofl [ -2.5; -1.0; 0.0; 0.5; 1.0; 3.25 ]);
        map (fun b -> Value.Bool b) bool;
      ])

let binop_gen =
  QCheck.Gen.oneofl
    Spec.[ Add; Sub; Mul; Div; Rem; Min; Max; Eq; Ne; Lt; Le; Gt; Ge; And; Or ]

let expr_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [
                 map (fun v -> Spec.Const v) value_gen;
                 map (fun i -> Spec.Param i) (int_range 0 3);
               ]
           else
             frequency
               [
                 (1, map (fun v -> Spec.Const v) value_gen);
                 (1, map (fun i -> Spec.Param i) (int_range 0 3));
                 ( 4,
                   map3
                     (fun op a b -> Spec.Binop (op, a, b))
                     binop_gen
                     (self (n / 2))
                     (self (n / 2)) );
                 (1, map (fun e -> Spec.Not e) (self (n - 1)));
                 (1, map (fun e -> Spec.Neg e) (self (n - 1)));
               ]))

let expr_case =
  QCheck.make
    ~print:(fun (e, payload) ->
      Printf.sprintf "%s on [%s]" (expr_str e)
        (String.concat "; " (List.map Value.to_string payload)))
    QCheck.Gen.(pair expr_gen (list_size (return 4) value_gen))

let expr_spec e : Spec.t =
  {
    Spec.spec_name = "binop-eq";
    task_sets =
      [
        {
          Spec.ts_name = "t";
          ts_order = Spec.For_each;
          arity = 4;
          body = [ Spec.Store ("out", Spec.int 0, e) ];
        };
      ];
    rules = [];
  }

(* The out cell is a float array: Int stores widen (identically in both
   engines), Bool stores raise State's type mismatch, and float results
   land with their exact bits. *)
let eval_tree sp payload =
  let st = State.create () in
  State.add_float_array st "out" [| 0.0 |];
  match Agp_core.Sequential.run ~initial:[ ("t", payload) ] sp Spec.no_bindings st with
  | _ -> Ok (Int64.bits_of_float (State.float_array st "out").(0))
  | exception e -> Error (Printexc.to_string e)

let eval_compiled sp payload =
  let st = State.create () in
  State.add_float_array st "out" [| 0.0 |];
  match
    Accelerator.run ~engine:Accelerator.Compiled ~spec:sp ~bindings:Spec.no_bindings
      ~state:st ~initial:[ ("t", payload) ] ()
  with
  | _ -> Ok (Int64.bits_of_float (State.float_array st "out").(0))
  | exception e -> Error (Printexc.to_string e)

let outcome_str = function
  | Ok bits -> Printf.sprintf "Ok %.17g (bits %Lx)" (Int64.float_of_bits bits) bits
  | Error e -> "Error: " ^ e

let test_binop_engines_agree =
  QCheck.Test.make ~name:"tree-walk and compiled binop semantics agree bit-for-bit"
    ~count:150 expr_case
    (fun (e, payload) ->
      let sp = expr_spec e in
      let t = eval_tree sp payload in
      let c = eval_compiled sp payload in
      if t = c then true
      else
        QCheck.Test.fail_reportf "tree-walk %s\nvs compiled %s" (outcome_str t)
          (outcome_str c))

let test_binop_error_cases () =
  let module Interp = Agp_core.Interp in
  Alcotest.check_raises "division by zero" (Invalid_argument "Interp: division by zero")
    (fun () -> ignore (Interp.eval_binop Spec.Div (Value.Int 1) (Value.Int 0)));
  Alcotest.check_raises "modulo by zero" (Invalid_argument "Interp: modulo by zero")
    (fun () -> ignore (Interp.eval_binop Spec.Rem (Value.Int 1) (Value.Int 0)));
  Alcotest.check_raises "bool arithmetic operand"
    (Invalid_argument "Interp: bad operands for arithmetic") (fun () ->
      ignore (Interp.eval_binop Spec.Add (Value.Bool true) (Value.Int 1)));
  Alcotest.check_raises "bool comparison operand"
    (Invalid_argument "Interp: bad operands for comparison") (fun () ->
      ignore (Interp.eval_binop Spec.Lt (Value.Bool true) (Value.Int 1)));
  Alcotest.check_raises "non-bool connective operand"
    (Invalid_argument "Value.to_bool: 1") (fun () ->
      ignore (Interp.eval_binop Spec.And (Value.Int 1) (Value.Bool true)));
  (* the compiled engine must surface the very same messages end-to-end *)
  List.iter
    (fun e ->
      let sp = expr_spec e in
      let payload = [ Value.Int 0; Value.Int 0; Value.Int 0; Value.Int 0 ] in
      let t = eval_tree sp payload and c = eval_compiled sp payload in
      check Alcotest.bool (Printf.sprintf "engines agree on %s" (expr_str e)) true
        (t = c && Result.is_error t))
    Spec.
      [
        Binop (Div, int 1, int 0);
        Binop (Rem, int 1, int 0);
        Binop (Add, Const (Value.Bool true), int 1);
        Binop (And, int 1, Const (Value.Bool true));
      ]

(* --- the stepper is the substrate (tentpole acceptance): a new
   software backend is an interpretation record, nothing more.  A
   throwaway counting interpretation must pass full conformance
   including bit-identical state --- *)

let test_counting_interpretation () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let events = ref 0 in
  let finished = ref 0 in
  let hooks =
    {
      Semantics.on_event =
        (fun ~tick:_ ~worker:_ _ ev ->
          incr events;
          match ev with
          | Semantics.Finished _ -> incr finished
          | _ -> ());
    }
  in
  let counting =
    Backend.of_interpretation ~name:"counting"
      ~summary:"test-only counting interpretation (hooks over the pipelined policy)"
      (Semantics.with_hooks (Semantics.pipelined ~workers:3 ()) hooks)
  in
  (match Conformance.check ~state_equiv:true counting app with
  | Ok () -> ()
  | Error f ->
      Alcotest.failf "counting interpretation does not conform: %s"
        (Conformance.failure_to_string f));
  check Alcotest.bool "hooks observed the run" true (!events > 0);
  check Alcotest.bool "hooks saw task completions" true (!finished > 0)

(* --- typed liveness exceptions (satellite: no more stringly Failure) --- *)

(* Two rendezvous whose resolution orders point at each other.  Both
   waiters live in one for-each set so their stamps (and hence indices)
   are distinct — separate sets would give every first push the same
   all-zero index, making each waiter "minimal" and firing otherwise.
   Task 0 broadcasts before awaiting a [Min_uncommitted] rendezvous, so
   it retires from the uncommitted order and the minimum becomes task 1;
   task 1 awaits a [Min_waiting] rendezvous but task 0 parks ahead of it
   in the waiting order.  Neither is ever its scope's minimum, so
   neither otherwise clause can fire: a genuine rule-resolution cycle. *)
let deadlock_spec : Spec.t =
  let rendezvous name scope =
    {
      Spec.rule_name = name;
      n_params = 0;
      clauses = [];
      otherwise = false;
      scope;
      counted = false;
    }
  in
  let eq_role n = Spec.Binop (Spec.Eq, Spec.Param 0, Spec.int n) in
  {
    Spec.spec_name = "rendezvous-cycle";
    task_sets =
      [
        {
          Spec.ts_name = "t";
          ts_order = Spec.For_each;
          arity = 1;
          body =
            [
              Spec.If
                ( eq_role 0,
                  [
                    Spec.Emit ("done", []);
                    Spec.Alloc ("h", "r_unc", []);
                    Spec.Await ("v", "h");
                  ],
                  [
                    Spec.If
                      ( eq_role 1,
                        [ Spec.Alloc ("h", "r_wait", []); Spec.Await ("v", "h") ],
                        [] (* fillers: commit immediately *) );
                  ] );
            ];
        };
      ];
    rules = [ rendezvous "r_unc" Spec.Min_uncommitted; rendezvous "r_wait" Spec.Min_waiting ];
  }

let deadlock_initial fillers =
  [ ("t", [ Value.Int 0 ]); ("t", [ Value.Int 1 ]) ]
  @ List.init fillers (fun _ -> ("t", [ Value.Int 2 ]))

let test_deadlock_typed =
  QCheck.Test.make
    ~name:"rendezvous cycles raise typed Deadlock at any worker count" ~count:12
    QCheck.(pair (int_range 1 8) (int_range 0 5))
    (fun (workers, fillers) ->
      let workers = max 1 workers and fillers = max 0 fillers in
      match
        Runtime.run ~initial:(deadlock_initial fillers) ~workers deadlock_spec
          Spec.no_bindings (State.create ())
      with
      | exception Runtime.Deadlock _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "workers %d: expected Deadlock, got %s" workers
            (Printexc.to_string e)
      | _ -> QCheck.Test.fail_reportf "workers %d: a rendezvous cycle cannot quiesce" workers)

let test_step_limit_random_budgets =
  QCheck.Test.make ~name:"tiny step budgets raise typed Step_limit_exceeded" ~count:8
    QCheck.(int_range 1 5)
    (fun budget ->
      let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
      let r = app.App_instance.fresh () in
      match
        Runtime.run ~initial:r.App_instance.initial ~max_steps:budget app.App_instance.spec
          r.App_instance.bindings r.App_instance.state
      with
      | exception Runtime.Step_limit_exceeded n -> n = budget
      | exception e ->
          QCheck.Test.fail_reportf "budget %d: expected Step_limit_exceeded, got %s" budget
            (Printexc.to_string e)
      | _ -> QCheck.Test.fail_reportf "budget %d cannot complete SPEC-BFS" budget)

let test_exceptions_shared_with_semantics () =
  (* Runtime re-exports the Semantics constructors: one exception, two
     names, every existing handler keeps matching. *)
  check Alcotest.bool "Deadlock rebound" true
    (Runtime.Deadlock "x" = Semantics.Deadlock "x");
  check Alcotest.bool "Step_limit_exceeded rebound" true
    (Runtime.Step_limit_exceeded 7 = Semantics.Step_limit_exceeded 7);
  match Semantics.run (Semantics.pipelined ~workers:2 ())
          ~initial:(deadlock_initial 0) deadlock_spec Spec.no_bindings (State.create ())
  with
  | exception Runtime.Deadlock _ -> ()
  | exception e -> Alcotest.failf "expected Deadlock, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "rendezvous cycle cannot quiesce"

let test_step_limit_typed () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let r = app.App_instance.fresh () in
  match
    Runtime.run ~initial:r.App_instance.initial ~max_steps:1 app.App_instance.spec
      r.App_instance.bindings r.App_instance.state
  with
  | exception Runtime.Step_limit_exceeded n ->
      check Alcotest.int "exception carries the exhausted budget" 1 n
  | exception e -> Alcotest.failf "expected Step_limit_exceeded, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "a 1-step budget cannot complete SPEC-BFS"

let test_conformance_classifies_liveness () =
  (* a backend that diverges must be classified Liveness, not Crash *)
  let app = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let starved =
    {
      (Backend.runtime ()) with
      Backend.name = "starved";
      Backend.exec =
        (fun ~obs:_ (app : App_instance.t) ->
          let r = app.App_instance.fresh () in
          ignore
            (Runtime.run ~initial:r.App_instance.initial ~max_steps:1 app.App_instance.spec
               r.App_instance.bindings r.App_instance.state);
          assert false);
    }
  in
  match Conformance.check starved app with
  | Error (Conformance.Liveness _) -> ()
  | Error f -> Alcotest.failf "expected Liveness, got %s" (Conformance.failure_to_string f)
  | Ok () -> Alcotest.fail "starved backend cannot conform"

(* --- check_both double fault (satellite: no first-failure short-circuit) --- *)

let test_check_both_reports_both_modes () =
  let base = Workloads.spec_bfs Workloads.Small ~seed:7 in
  let sabotaged which =
    {
      base with
      App_instance.fresh =
        (fun () ->
          let r = base.App_instance.fresh () in
          { r with App_instance.check = (fun () -> Error which) });
    }
  in
  (match App_instance.check_both (sabotaged "forced failure") with
  | Ok () -> Alcotest.fail "sabotaged check cannot pass"
  | Error msg ->
      let has affix = Astring.String.is_infix ~affix msg in
      check Alcotest.bool "reports the sequential mode" true (has "sequential: forced failure");
      check Alcotest.bool "reports the runtime mode" true (has "runtime: forced failure");
      check Alcotest.bool "joins both faults" true (has "; "));
  check Alcotest.bool "healthy app still passes" true (App_instance.check_both base = Ok ())

(* --- CLI integration: the run/backends subcommands and the golden gate --- *)

let cli_exe = Filename.concat (Filename.concat Filename.parent_dir_name "bin") "agp_cli.exe"

let test_cli_run_backend_and_golden_diff () =
  if not (Sys.file_exists cli_exe) then ()
  else begin
    let tmp = Filename.temp_file "agp_run" ".json" in
    let sh fmt = Printf.ksprintf (fun s -> Sys.command (s ^ " >/dev/null 2>&1")) fmt in
    check Alcotest.int "agp backends exits 0" 0 (sh "%s backends" cli_exe);
    check Alcotest.int "agp run --backend simulator --report exits 0" 0
      (sh "%s run spec-bfs --scale small --backend simulator --report %s" cli_exe tmp);
    (* cwd is _build/default/test under dune runtest; test/golden/ when
       launched from the repo root by hand *)
    let golden =
      List.find_opt Sys.file_exists
        [
          Filename.concat "golden" "spec-bfs-small.report.json";
          Filename.concat (Filename.concat "test" "golden") "spec-bfs-small.report.json";
        ]
    in
    (match golden with
    | Some golden ->
        check Alcotest.int "report accepted by the golden diff gate" 0
          (sh "%s diff %s %s --threshold 0.25" cli_exe golden tmp)
    | None -> Alcotest.fail "golden report not found (dep on golden/*.json missing?)");
    check Alcotest.int "runtime backend via CLI exits 0" 0
      (sh "%s run spec-bfs --scale small --backend runtime:2" cli_exe);
    check Alcotest.int "unknown backend exits 1" 1
      (sh "%s run spec-bfs --scale small --backend nosuch" cli_exe);
    (* liveness failures map to the dedicated exit code, not a crash *)
    check Alcotest.int "exhausted step budget exits 3" 3
      (sh "%s run spec-bfs --scale small --backend runtime --max-steps 1" cli_exe);
    check Alcotest.int "--max-steps on a budgetless backend exits 1" 1
      (sh "%s run spec-bfs --scale small --backend sequential --max-steps 1" cli_exe);
    (* simulator:classic is retired by default; AGP_CLASSIC=1 re-enables it *)
    check Alcotest.int "retired simulator:classic exits 1" 1
      (sh "%s run spec-bfs --scale small --backend simulator:classic" cli_exe);
    check Alcotest.int "AGP_CLASSIC=1 escape hatch exits 0" 0
      (sh "AGP_CLASSIC=1 %s run spec-bfs --scale small --backend simulator:classic" cli_exe);
    check Alcotest.int "report on non-obs backend exits 1" 1
      (sh "%s run spec-bfs --scale small --backend sequential --report %s" cli_exe tmp);
    check Alcotest.int "unsupported app/backend pair exits 1" 1
      (sh "%s run spec-dmr --scale small --backend opencl" cli_exe);
    Sys.remove tmp
  end

let () =
  Alcotest.run "agp_backend"
    [
      ( "conformance",
        [
          Alcotest.test_case "matrix: apps x mutating backends" `Quick test_matrix;
          qtest test_matrix_random_seeds;
          Alcotest.test_case "liveness classified, not crashed" `Quick
            test_conformance_classifies_liveness;
          Alcotest.test_case "compiled engine == legacy engine (cycles, state, events)" `Quick
            test_engine_equivalence;
          qtest test_engine_equivalence_random;
        ] );
      ( "semantics",
        [
          qtest test_binop_engines_agree;
          Alcotest.test_case "shared binop error messages" `Quick test_binop_error_cases;
          Alcotest.test_case "a substrate is an interpretation record" `Quick
            test_counting_interpretation;
          qtest test_deadlock_typed;
          qtest test_step_limit_random_budgets;
          Alcotest.test_case "Runtime exceptions are the Semantics exceptions" `Quick
            test_exceptions_shared_with_semantics;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find and parameterized names" `Quick test_registry_find;
          Alcotest.test_case "timing models run uniformly" `Quick test_timing_models_run;
          Alcotest.test_case "obs report on request" `Quick test_obs_report_capability;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "step limit is typed" `Quick test_step_limit_typed;
          Alcotest.test_case "check_both reports both modes" `Quick
            test_check_both_reports_both_modes;
        ] );
      ( "cli",
        [
          Alcotest.test_case "run --backend / backends / golden gate" `Quick
            test_cli_run_backend_and_golden_diff;
        ] );
    ]
