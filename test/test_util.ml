(* Unit and property tests for the utility substrate. *)

open Agp_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  check Alcotest.bool "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int_in stays inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, extent) ->
      let hi = lo + extent in
      let rng = Rng.create seed in
      let x = Rng.int_in rng lo hi in
      x >= lo && x <= hi)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_chance_extremes () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=0 never" false (Rng.chance rng 0.0)
  done;
  for _ = 1 to 50 do
    check Alcotest.bool "p=1 always" true (Rng.chance rng 1.0)
  done

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let x = Rng.float rng 3.0 in
    check Alcotest.bool "in [0,3)" true (x >= 0.0 && x < 3.0)
  done

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 7" 49 (Vec.get v 7);
  check Alcotest.int "last" (99 * 99) (Vec.last v)

let test_vec_pop () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  check Alcotest.int "pop" 3 (Vec.pop v);
  check Alcotest.int "len after pop" 2 (Vec.length v);
  check Alcotest.int "pop" 2 (Vec.pop v);
  check Alcotest.int "pop" 1 (Vec.pop v);
  check Alcotest.bool "empty" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_array [| 1 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_vec_clear_reuse () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.clear v;
  check Alcotest.bool "empty after clear" true (Vec.is_empty v);
  Vec.push v 2;
  check Alcotest.int "reusable" 2 (Vec.get v 0)

let test_vec_sort () =
  let v = Vec.of_array [| 3; 1; 2 |] in
  Vec.sort compare v;
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_array/to_array roundtrip" ~count:200
    QCheck.(array small_int)
    (fun a -> Vec.to_array (Vec.of_array a) = a)

let prop_vec_fold_sum =
  QCheck.Test.make ~name:"vec fold equals array fold" ~count:200
    QCheck.(array small_int)
    (fun a -> Vec.fold ( + ) 0 (Vec.of_array a) = Array.fold_left ( + ) 0 a)

(* --- Fifo --- *)

let test_fifo_order () =
  let q = Fifo.create () in
  for i = 1 to 20 do
    ignore (Fifo.push q i)
  done;
  let out = ref [] in
  let rec drain () =
    match Fifo.pop q with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "fifo order" (List.init 20 (fun i -> i + 1)) (List.rev !out)

let test_fifo_bound () =
  let q = Fifo.create ~bound:2 () in
  check Alcotest.bool "push 1" true (Fifo.push q 1);
  check Alcotest.bool "push 2" true (Fifo.push q 2);
  check Alcotest.bool "push 3 rejected" false (Fifo.push q 3);
  check Alcotest.bool "full" true (Fifo.is_full q);
  ignore (Fifo.pop q);
  check Alcotest.bool "push after pop" true (Fifo.push q 3);
  check (Alcotest.list Alcotest.int) "contents" [ 2; 3 ] (Fifo.to_list q)

let test_fifo_wraparound () =
  let q = Fifo.create () in
  (* force head to travel around the ring across growth *)
  for round = 0 to 5 do
    for i = 0 to 9 do
      ignore (Fifo.push q ((round * 10) + i))
    done;
    for _ = 0 to 7 do
      ignore (Fifo.pop q)
    done
  done;
  (* 60 pushes and 48 pops leave 12 elements, oldest being value 48. *)
  check Alcotest.int "length" 12 (Fifo.length q);
  check Alcotest.bool "peek is oldest" true (Fifo.peek q = Some 48)

let test_fifo_peek_empty () =
  let q : int Fifo.t = Fifo.create () in
  check Alcotest.bool "peek empty" true (Fifo.peek q = None);
  check Alcotest.bool "pop empty" true (Fifo.pop q = None)

let test_fifo_push_front () =
  let q = Fifo.create () in
  ignore (Fifo.push q 2);
  ignore (Fifo.push q 3);
  check Alcotest.bool "front push" true (Fifo.push_front q 1);
  check (Alcotest.list Alcotest.int) "front first" [ 1; 2; 3 ] (Fifo.to_list q);
  check Alcotest.bool "pop returns front" true (Fifo.pop q = Some 1)

let test_fifo_push_front_bounded () =
  let q = Fifo.create ~bound:1 () in
  ignore (Fifo.push q 9);
  check Alcotest.bool "full rejects front push" false (Fifo.push_front q 1)

let test_fifo_push_front_wraparound () =
  let q = Fifo.create () in
  for i = 0 to 9 do
    ignore (Fifo.push q i)
  done;
  for _ = 0 to 4 do
    ignore (Fifo.pop q)
  done;
  ignore (Fifo.push_front q 99);
  check (Alcotest.list Alcotest.int) "front after wrap" [ 99; 5; 6; 7; 8; 9 ] (Fifo.to_list q)

let prop_fifo_preserves_sequence =
  QCheck.Test.make ~name:"fifo preserves push sequence" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Fifo.create () in
      List.iter (fun x -> ignore (Fifo.push q x)) xs;
      Fifo.to_list q = xs)

(* --- Heap --- *)

let test_heap_sorts () =
  let h = Heap.of_array compare [| 5; 1; 4; 2; 3 |] in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 2; 3; 4; 5 ] (Heap.to_sorted_list h)

let test_heap_push_pop_interleaved () =
  let h = Heap.create compare in
  Heap.push h 3;
  Heap.push h 1;
  check Alcotest.bool "min" true (Heap.pop h = Some 1);
  Heap.push h 0;
  Heap.push h 2;
  check Alcotest.bool "min" true (Heap.pop h = Some 0);
  check Alcotest.bool "min" true (Heap.pop h = Some 2);
  check Alcotest.bool "min" true (Heap.pop h = Some 3);
  check Alcotest.bool "empty" true (Heap.pop h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

(* --- Union_find --- *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  check Alcotest.int "initial sets" 5 (Union_find.count_sets uf);
  check Alcotest.bool "union" true (Union_find.union uf 0 1);
  check Alcotest.bool "redundant union" false (Union_find.union uf 1 0);
  check Alcotest.bool "same" true (Union_find.same uf 0 1);
  check Alcotest.bool "not same" false (Union_find.same uf 0 2);
  check Alcotest.int "sets after union" 4 (Union_find.count_sets uf)

let test_uf_find_trace () =
  let uf = Union_find.create 4 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  let root, trace = Union_find.find_trace uf 2 in
  check Alcotest.int "root" (Union_find.find uf 0) root;
  check Alcotest.bool "trace nonempty" true (List.length trace >= 1)

let prop_uf_transitive =
  QCheck.Test.make ~name:"union-find is transitive" ~count:200
    QCheck.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* Reference: naive component labelling by fixpoint. *)
      let label = Array.init 20 (fun i -> i) in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (a, b) ->
            let m = min label.(a) label.(b) in
            if label.(a) <> m || label.(b) <> m then begin
              label.(a) <- m;
              label.(b) <- m;
              changed := true
            end)
          pairs
      done;
      (* Labels must refine to the same partition as union-find. *)
      let ok = ref true in
      for i = 0 to 19 do
        for j = 0 to 19 do
          let uf_same = Union_find.same uf i j in
          (* naive labels only merge along listed pairs transitively, via
             repeated sweeps; equality of partitions: *)
          let naive_same = label.(i) = label.(j) in
          if uf_same <> naive_same then ok := false
        done
      done;
      !ok)

(* --- Bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  check Alcotest.int "cardinal" 4 (Bitset.cardinal b);
  check Alcotest.bool "mem 63" true (Bitset.mem b 63);
  check Alcotest.bool "mem 62" false (Bitset.mem b 62);
  Bitset.remove b 63;
  check Alcotest.bool "removed" false (Bitset.mem b 63);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal b)

let test_bitset_intersects () =
  let a = Bitset.create 70 and b = Bitset.create 70 in
  Bitset.add a 65;
  Bitset.add b 64;
  check Alcotest.bool "disjoint" false (Bitset.intersects a b);
  Bitset.add b 65;
  check Alcotest.bool "intersecting" true (Bitset.intersects a b)

let test_bitset_iter_sorted () =
  let b = Bitset.create 50 in
  List.iter (Bitset.add b) [ 40; 3; 17 ];
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  check (Alcotest.list Alcotest.int) "ascending" [ 3; 17; 40 ] (List.rev !seen)

(* --- Stats --- *)

let feq = Alcotest.float 1e-9

let test_stats_mean () =
  check feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check feq "mean empty" 0.0 (Stats.mean [||])

let test_stats_geomean () = check feq "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check feq "p0" 1.0 (Stats.percentile xs 0.0);
  check feq "p50" 3.0 (Stats.percentile xs 50.0);
  check feq "p100" 5.0 (Stats.percentile xs 100.0);
  check feq "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_percentile_nearest () =
  (* total at any n: 0 for empty, the sample for n=1, max for high p *)
  check feq "empty is 0" 0.0 (Stats.percentile_nearest [||] 50.0);
  check feq "empty p99 is 0" 0.0 (Stats.percentile_nearest [||] 99.0);
  check feq "n=1 p50" 7.0 (Stats.percentile_nearest [| 7.0 |] 50.0);
  check feq "n=1 p99" 7.0 (Stats.percentile_nearest [| 7.0 |] 99.0);
  check feq "n=1 p0" 7.0 (Stats.percentile_nearest [| 7.0 |] 0.0);
  check feq "n=2 p50 is first" 1.0 (Stats.percentile_nearest [| 2.0; 1.0 |] 50.0);
  check feq "n=2 p99 is max" 2.0 (Stats.percentile_nearest [| 2.0; 1.0 |] 99.0);
  check feq "n=2 p0 clamps to min" 1.0 (Stats.percentile_nearest [| 2.0; 1.0 |] 0.0);
  let xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  check feq "unsorted input p50" 3.0 (Stats.percentile_nearest xs 50.0);
  check feq "p90 of 5" 5.0 (Stats.percentile_nearest xs 90.0);
  check feq "p100" 5.0 (Stats.percentile_nearest xs 100.0);
  (* the input array is not mutated (sorts a copy) *)
  check Alcotest.bool "input untouched" true (xs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |]);
  (match Stats.percentile_nearest xs 101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p > 100 accepted");
  match Stats.percentile_nearest xs (-0.5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p < 0 accepted"

let test_stats_running () =
  let r = Stats.running () in
  List.iter (Stats.observe r) [ 2.0; 4.0; 6.0 ];
  check Alcotest.int "count" 3 (Stats.running_count r);
  check feq "mean" 4.0 (Stats.running_mean r);
  check (Alcotest.float 1e-6) "stddev" (Stats.stddev [| 2.0; 4.0; 6.0 |]) (Stats.running_stddev r)

(* --- Chart --- *)

let test_sparkline_shape () =
  let s = Chart.sparkline [| 1.0; 2.0; 3.0; 4.0 |] in
  (* four glyphs, three bytes each *)
  check Alcotest.int "four cells" 12 (String.length s);
  check Alcotest.bool "monotone ends" true
    (String.sub s 0 3 = "\xe2\x96\x81" && String.sub s 9 3 = "\xe2\x96\x88")

let test_sparkline_constant_and_empty () =
  check Alcotest.string "empty" "" (Chart.sparkline [||]);
  let s = Chart.sparkline [| 5.0; 5.0 |] in
  check Alcotest.int "two mid cells" 6 (String.length s);
  check Alcotest.string "identical cells" (String.sub s 0 3) (String.sub s 3 3)

let test_chart_series_labels () =
  let out = Chart.series [ ("alpha", [| 1.0; 2.0 |]); ("b", [| 3.0; 1.0 |]) ] in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "two rows" 2 (List.length lines);
  check Alcotest.bool "labels aligned" true
    (String.length (List.nth lines 0) > 0
    && String.sub (List.nth lines 1) 0 5 = "b    ")

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ "app"; "speedup" ] in
  Table.add_row t [ "bfs"; "1.90x" ];
  Table.add_row t [ "lu" ];
  let s = Table.render t in
  check Alcotest.bool "has header" true (String.length s > 0);
  check Alcotest.bool "contains bfs" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && String.index_opt l 'b' <> None))

let test_table_too_many_cells () =
  let t = Table.create [ "one" ] in
  Alcotest.check_raises "reject" (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "a"; "b" ])

let test_table_cells () =
  check Alcotest.string "float cell" "3.14" (Table.cell_float ~decimals:2 3.14159);
  check Alcotest.string "ratio cell" "1.90x" (Table.cell_ratio 1.9)

let () =
  Alcotest.run "agp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          qtest prop_rng_int_bounds;
          qtest prop_rng_int_in_bounds;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "bounds checks" `Quick test_vec_bounds;
          Alcotest.test_case "clear and reuse" `Quick test_vec_clear_reuse;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          qtest prop_vec_roundtrip;
          qtest prop_vec_fold_sum;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "bound" `Quick test_fifo_bound;
          Alcotest.test_case "wraparound" `Quick test_fifo_wraparound;
          Alcotest.test_case "peek/pop empty" `Quick test_fifo_peek_empty;
          Alcotest.test_case "push_front" `Quick test_fifo_push_front;
          Alcotest.test_case "push_front bounded" `Quick test_fifo_push_front_bounded;
          Alcotest.test_case "push_front wraparound" `Quick test_fifo_push_front_wraparound;
          qtest prop_fifo_preserves_sequence;
        ] );
      ( "heap",
        [
          Alcotest.test_case "heapify sorts" `Quick test_heap_sorts;
          Alcotest.test_case "interleaved" `Quick test_heap_push_pop_interleaved;
          qtest prop_heap_sorts;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "find_trace" `Quick test_uf_find_trace;
          qtest prop_uf_transitive;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "intersects" `Quick test_bitset_intersects;
          Alcotest.test_case "iter sorted" `Quick test_bitset_iter_sorted;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile nearest-rank" `Quick test_stats_percentile_nearest;
          Alcotest.test_case "running" `Quick test_stats_running;
        ] );
      ( "chart",
        [
          Alcotest.test_case "sparkline shape" `Quick test_sparkline_shape;
          Alcotest.test_case "constant and empty" `Quick test_sparkline_constant_and_empty;
          Alcotest.test_case "series labels" `Quick test_chart_series_labels;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
    ]
