(* Tests for the dataflow IR and the cycle-level accelerator model. *)

module Bdfg = Agp_dataflow.Bdfg
module Config = Agp_hw.Config
module Memory = Agp_hw.Memory
module Resource = Agp_hw.Resource
module Accelerator = Agp_hw.Accelerator
module App_instance = Agp_apps.App_instance
module Bfs_app = Agp_apps.Bfs_app
module Sssp_app = Agp_apps.Sssp_app
module Mst_app = Agp_apps.Mst_app
module Dmr_app = Agp_apps.Dmr_app
module Lu_app = Agp_apps.Lu_app

let check = Alcotest.check
let ok_result = Alcotest.result Alcotest.unit Alcotest.string

(* --- BDFG --- *)

let all_specs =
  [
    Bfs_app.spec_speculative;
    Bfs_app.spec_coordinative;
    Sssp_app.spec_speculative;
    Mst_app.spec_speculative;
    Dmr_app.spec_speculative;
    Lu_app.spec_coordinative;
  ]

let test_bdfg_compiles_all () =
  List.iter
    (fun sp ->
      let g = Bdfg.of_spec sp in
      match Bdfg.validate g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" sp.Agp_core.Spec.spec_name e)
    all_specs

let test_bdfg_structure_bfs () =
  let g = Bdfg.of_spec Bfs_app.spec_speculative in
  let update = Bdfg.actors_of_set g "update" in
  let has kind = List.exists (fun a -> a.Bdfg.kind = kind) update in
  check Alcotest.bool "has entry" true (has Bdfg.Entry);
  check Alcotest.bool "has rendezvous" true (has Bdfg.Rendezvous);
  check Alcotest.bool "has rule alloc" true (has (Bdfg.Rule_alloc "level_guard"));
  check Alcotest.bool "has event port" true (has (Bdfg.Event "commit_level"));
  check Alcotest.bool "has squash" true (has Bdfg.Squash);
  check Alcotest.bool "has visit spawner" true (has (Bdfg.Spawn "visit"));
  check Alcotest.bool "stage count positive" true (Bdfg.stage_count g "update" > 5)

let test_bdfg_switch_branches () =
  let g = Bdfg.of_spec Bfs_app.spec_speculative in
  let switches =
    List.filter (fun a -> a.Bdfg.kind = Bdfg.Switch) (Bdfg.actors_of_set g "update")
  in
  check Alcotest.bool "switches exist" true (switches <> []);
  List.iter
    (fun sw ->
      let succ = Bdfg.successors g sw.Bdfg.id in
      check Alcotest.bool "true branch" true (List.exists (fun (_, b) -> b = Some true) succ);
      check Alcotest.bool "false branch" true (List.exists (fun (_, b) -> b = Some false) succ))
    switches

let test_bdfg_dot () =
  let g = Bdfg.of_spec Lu_app.spec_coordinative in
  let dot = Bdfg.to_dot g in
  check Alcotest.bool "digraph" true (String.length dot > 50);
  check Alcotest.bool "has cluster" true
    (String.length dot > 0 && String.index_opt dot '{' <> None)

(* --- memory model --- *)

let test_memory_hit_miss () =
  let mem = Memory.create Config.default in
  let t1 = Memory.access mem ~now:0 ~addr:0 ~is_write:false in
  check Alcotest.bool "miss slower than hit latency" true (t1 > Config.default.Config.hit_latency);
  let t2 = Memory.access mem ~now:t1 ~addr:8 ~is_write:false in
  check Alcotest.int "same line hits" (t1 + Config.default.Config.hit_latency) t2;
  let s = Memory.stats mem in
  check Alcotest.int "one miss" 1 s.Memory.misses;
  check Alcotest.int "one hit" 1 s.Memory.hits

let test_memory_bandwidth_throttles () =
  (* Many concurrent misses must serialize on the link: with scaled-up
     bandwidth the same burst completes sooner. *)
  let burst cfg =
    let mem = Memory.create cfg in
    let addrs = List.init 64 (fun i -> (i * 4096, false)) in
    Memory.access_burst mem ~now:0 ~addrs ~dependent:false
  in
  let slow = burst Config.default in
  let fast = burst (Config.scale_bandwidth Config.default 8.0) in
  check Alcotest.bool "8x bandwidth is faster" true (fast < slow)

let test_memory_conflict_eviction () =
  let mem = Memory.create Config.default in
  let cache_span = Config.default.Config.cache_bytes in
  ignore (Memory.access mem ~now:0 ~addr:0 ~is_write:false);
  ignore (Memory.access mem ~now:100 ~addr:cache_span ~is_write:false);
  (* same set, different tag: evicted *)
  ignore (Memory.access mem ~now:200 ~addr:0 ~is_write:false);
  check Alcotest.int "three misses" 3 (Memory.stats mem).Memory.misses

let test_memory_dependent_chain_slower () =
  let run dependent =
    let mem = Memory.create Config.default in
    let addrs = List.init 16 (fun i -> (i * 4096, false)) in
    Memory.access_burst mem ~now:0 ~addrs ~dependent
  in
  check Alcotest.bool "chain slower than burst" true (run true > run false)

(* --- resource model --- *)

let test_resource_breakdown () =
  let b = Resource.breakdown Bfs_app.spec_speculative Config.default in
  check Alcotest.bool "fits device" true (Resource.fits b);
  check Alcotest.bool "rule regs share in paper band" true
    (b.Resource.register_share_rules > 0.01 && b.Resource.register_share_rules < 0.25)

let test_resource_heuristic_replicates () =
  let pipes = Resource.heuristic_pipelines Bfs_app.spec_speculative ~max_per_set:8 in
  List.iter (fun (_, n) -> check Alcotest.bool "replicated" true (n >= 2)) pipes;
  let cfg = Config.with_pipelines Config.default pipes in
  check Alcotest.bool "still fits" true (Resource.fits (Resource.breakdown Bfs_app.spec_speculative cfg))

let test_resource_scale_monotone () =
  let one = Resource.breakdown Bfs_app.spec_speculative Config.default in
  let four =
    Resource.breakdown Bfs_app.spec_speculative
      (Config.with_pipelines Config.default [ ("visit", 4); ("update", 4) ])
  in
  check Alcotest.bool "more pipelines, more ALMs" true
    (four.Resource.total.Resource.alms > one.Resource.total.Resource.alms)

(* --- wavefront allocator --- *)

module Wavefront = Agp_hw.Wavefront

let test_wavefront_conflict_free () =
  let w = Wavefront.create ~banks:4 ~ports:4 () in
  let grants = Wavefront.allocate_uniform w ~requesting:[| true; true; true; true |] in
  check Alcotest.int "full matching" 4 (List.length grants);
  let banks = List.map fst grants and ports = List.map snd grants in
  check Alcotest.int "banks distinct" 4 (List.length (List.sort_uniq compare banks));
  check Alcotest.int "ports distinct" 4 (List.length (List.sort_uniq compare ports))

let test_wavefront_partial_requests () =
  let w = Wavefront.create ~banks:3 ~ports:2 () in
  let grants = Wavefront.allocate_uniform w ~requesting:[| true; false; true |] in
  check Alcotest.int "two grants" 2 (List.length grants);
  check Alcotest.bool "bank 1 silent" true (not (List.mem_assoc 1 grants))

let test_wavefront_fairness () =
  (* three banks contending for ONE port: the rotating diagonal must
     spread grants evenly over many cycles *)
  let w = Wavefront.create ~banks:3 ~ports:1 () in
  for _ = 1 to 300 do
    ignore (Wavefront.allocate_uniform w ~requesting:[| true; true; true |])
  done;
  let counts = Wavefront.grant_counts w in
  Array.iter
    (fun c -> check Alcotest.bool "fair share" true (c >= 80 && c <= 120))
    counts

let test_wavefront_respects_request_matrix () =
  let w = Wavefront.create ~banks:2 ~ports:2 () in
  (* bank 0 only wants port 1; bank 1 only wants port 0 *)
  let grants =
    Wavefront.allocate w ~requests:[| [| false; true |]; [| true; false |] |]
  in
  check Alcotest.bool "crossed grants" true
    (List.mem (0, 1) grants && List.mem (1, 0) grants)

let test_wavefront_shape_check () =
  let w = Wavefront.create ~banks:2 ~ports:2 () in
  Alcotest.check_raises "bank mismatch"
    (Invalid_argument "Wavefront.allocate_uniform: bank mismatch") (fun () ->
      ignore (Wavefront.allocate_uniform w ~requesting:[| true |]))

(* --- accelerator end to end --- *)

let accel_check app =
  let run = app.App_instance.fresh () in
  let report =
    Accelerator.run ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
      ~state:run.App_instance.state ~initial:run.App_instance.initial ()
  in
  (report, run.App_instance.check ())

let test_accel_bfs () =
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph (Agp_graph.Generator.road ~seed:3 ~width:12 ~height:8) 0) in
  let report, result = accel_check app in
  check ok_result "levels valid" (Ok ()) result;
  check Alcotest.bool "took cycles" true (report.Accelerator.cycles > 100);
  check Alcotest.bool "utilization sane" true
    (report.Accelerator.utilization > 0.0 && report.Accelerator.utilization <= 1.0)

let test_accel_coor_bfs () =
  let app = Bfs_app.coordinative (Bfs_app.workload_of_graph (Agp_graph.Generator.road ~seed:3 ~width:12 ~height:8) 0) in
  let _, result = accel_check app in
  check ok_result "levels valid" (Ok ()) result

let test_accel_sssp () =
  let app = Sssp_app.speculative (Sssp_app.workload_of_graph (Agp_graph.Generator.random ~seed:7 ~n:60 ~m:150) 0) in
  let _, result = accel_check app in
  check ok_result "distances valid" (Ok ()) result

let test_accel_mst () =
  let app = Mst_app.speculative (Mst_app.workload_of_graph (Agp_graph.Generator.random ~seed:9 ~n:50 ~m:120)) in
  let _, result = accel_check app in
  check ok_result "tree optimal" (Ok ()) result

let test_accel_dmr () =
  let app = Dmr_app.speculative (Dmr_app.workload_of_points (Agp_graph.Generator.points ~seed:13 ~n:60 ~span:100.0)) in
  let _, result = accel_check app in
  check ok_result "mesh refined" (Ok ()) result

let test_accel_lu () =
  let app = Lu_app.coordinative (Lu_app.sized_workload ~seed:15 ~nb:4 ~bs:4 ~density:0.35) in
  let _, result = accel_check app in
  check ok_result "residual small" (Ok ()) result

let test_accel_bandwidth_helps () =
  (* the working set must exceed the 64 KB cache or QPI never matters *)
  let g = Agp_graph.Generator.road ~seed:4 ~width:60 ~height:60 in
  let time factor =
    let app = Bfs_app.speculative (Bfs_app.workload_of_graph g 0) in
    let run = app.App_instance.fresh () in
    let config = Config.scale_bandwidth Config.default factor in
    let report =
      Accelerator.run ~config ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
        ~state:run.App_instance.state ~initial:run.App_instance.initial ()
    in
    report.Accelerator.cycles
  in
  let base = time 1.0 and fast = time 8.0 in
  check Alcotest.bool "8x qpi speeds up bfs" true (fast < base)

let test_accel_more_pipelines_not_slower () =
  let g = Agp_graph.Generator.road ~seed:5 ~width:16 ~height:10 in
  let time pipes =
    let app = Bfs_app.speculative (Bfs_app.workload_of_graph g 0) in
    let run = app.App_instance.fresh () in
    let config = Config.with_pipelines Config.default pipes in
    (Accelerator.run ~config ~auto_size:false ~spec:app.App_instance.spec
       ~bindings:run.App_instance.bindings ~state:run.App_instance.state
       ~initial:run.App_instance.initial ())
      .Accelerator.cycles
  in
  let one = time [ ("visit", 1); ("update", 1) ] in
  let four = time [ ("visit", 4); ("update", 4) ] in
  check Alcotest.bool "4 pipelines not slower" true (four <= one)

let prop_accel_matches_runtime_all_apps =
  QCheck.Test.make ~name:"accelerator equals software runtime (sssp/mst)" ~count:6
    QCheck.(int_range 0 500)
    (fun seed ->
      let apps =
        [
          Sssp_app.speculative
            (Sssp_app.workload_of_graph (Agp_graph.Generator.random ~seed ~n:40 ~m:100) 0);
          Mst_app.speculative
            (Mst_app.workload_of_graph (Agp_graph.Generator.random ~seed ~n:30 ~m:80));
        ]
      in
      List.for_all
        (fun (app : App_instance.t) ->
          let run = app.App_instance.fresh () in
          ignore
            (Accelerator.run ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
               ~state:run.App_instance.state ~initial:run.App_instance.initial ());
          run.App_instance.check () = Ok ())
        apps)

let test_accel_lane_starvation_still_correct () =
  (* tiny lane budget: heavy stalling but never wrong answers or
     deadlock, thanks to the priority lane *)
  let g = Agp_graph.Generator.road ~seed:8 ~width:14 ~height:9 in
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph g 0) in
  let run = app.App_instance.fresh () in
  let config = { Config.default with Config.rule_lanes = 2 } in
  ignore
    (Accelerator.run ~config ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
       ~state:run.App_instance.state ~initial:run.App_instance.initial ());
  check ok_result "correct under 2 lanes" (Ok ()) (run.App_instance.check ())

let test_accel_deeper_window_still_correct () =
  let g = Agp_graph.Generator.road ~seed:9 ~width:14 ~height:9 in
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph g 0) in
  let run = app.App_instance.fresh () in
  let config = { Config.default with Config.window_factor = 8 } in
  ignore
    (Accelerator.run ~config ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
       ~state:run.App_instance.state ~initial:run.App_instance.initial ());
  check ok_result "correct with deep windows" (Ok ()) (run.App_instance.check ())

let test_memory_reset_stats () =
  let mem = Memory.create Config.default in
  ignore (Memory.access mem ~now:0 ~addr:0 ~is_write:false);
  Memory.reset_stats mem;
  let s = Memory.stats mem in
  check Alcotest.int "reads cleared" 0 s.Memory.reads;
  check Alcotest.int "misses cleared" 0 s.Memory.misses

let test_resource_rule_cost_monotone_lanes () =
  let c64 = Resource.rule_engine_cost Bfs_app.spec_speculative ~lanes_per_rule:64 in
  let c256 = Resource.rule_engine_cost Bfs_app.spec_speculative ~lanes_per_rule:256 in
  check Alcotest.bool "more lanes more registers" true
    (c256.Resource.registers > c64.Resource.registers)

let test_config_bandwidth_scaling () =
  let c = Config.scale_bandwidth Config.default 4.0 in
  check (Alcotest.float 1e-9) "4x bytes per cycle"
    (4.0 *. Config.bytes_per_cycle Config.default)
    (Config.bytes_per_cycle c);
  check (Alcotest.float 1e-12) "seconds conversion" 5e-9 (Config.cycles_to_seconds c 1)

let test_accel_matches_sequential_state () =
  (* The accelerator's committed memory must equal the sequential
     oracle's — the §4.1 correctness criterion, on the machine model. *)
  let g = Agp_graph.Generator.road ~seed:6 ~width:10 ~height:10 in
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph g 0) in
  let _, seq = App_instance.run_sequential app in
  let run = app.App_instance.fresh () in
  ignore
    (Accelerator.run ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
       ~state:run.App_instance.state ~initial:run.App_instance.initial ());
  check (Alcotest.list Alcotest.string) "same final memory" []
    (Agp_core.State.diff seq.App_instance.state run.App_instance.state)

let () =
  Alcotest.run "agp_hw"
    [
      ( "bdfg",
        [
          Alcotest.test_case "compiles all specs" `Quick test_bdfg_compiles_all;
          Alcotest.test_case "bfs structure" `Quick test_bdfg_structure_bfs;
          Alcotest.test_case "switch branches" `Quick test_bdfg_switch_branches;
          Alcotest.test_case "dot export" `Quick test_bdfg_dot;
        ] );
      ( "memory",
        [
          Alcotest.test_case "hit/miss" `Quick test_memory_hit_miss;
          Alcotest.test_case "bandwidth throttles" `Quick test_memory_bandwidth_throttles;
          Alcotest.test_case "conflict eviction" `Quick test_memory_conflict_eviction;
          Alcotest.test_case "dependent chain" `Quick test_memory_dependent_chain_slower;
        ] );
      ( "resource",
        [
          Alcotest.test_case "breakdown" `Quick test_resource_breakdown;
          Alcotest.test_case "heuristic replicates" `Quick test_resource_heuristic_replicates;
          Alcotest.test_case "scaling monotone" `Quick test_resource_scale_monotone;
        ] );
      ( "accelerator",
        [
          Alcotest.test_case "bfs" `Quick test_accel_bfs;
          Alcotest.test_case "coor-bfs" `Quick test_accel_coor_bfs;
          Alcotest.test_case "sssp" `Quick test_accel_sssp;
          Alcotest.test_case "mst" `Quick test_accel_mst;
          Alcotest.test_case "dmr" `Quick test_accel_dmr;
          Alcotest.test_case "lu" `Quick test_accel_lu;
          Alcotest.test_case "bandwidth helps" `Quick test_accel_bandwidth_helps;
          Alcotest.test_case "pipelines help" `Quick test_accel_more_pipelines_not_slower;
          Alcotest.test_case "matches sequential" `Quick test_accel_matches_sequential_state;
          Alcotest.test_case "lane starvation correct" `Quick test_accel_lane_starvation_still_correct;
          Alcotest.test_case "deep windows correct" `Quick test_accel_deeper_window_still_correct;
          QCheck_alcotest.to_alcotest prop_accel_matches_runtime_all_apps;
        ] );
      ( "wavefront",
        [
          Alcotest.test_case "conflict-free matching" `Quick test_wavefront_conflict_free;
          Alcotest.test_case "partial requests" `Quick test_wavefront_partial_requests;
          Alcotest.test_case "fairness" `Quick test_wavefront_fairness;
          Alcotest.test_case "request matrix" `Quick test_wavefront_respects_request_matrix;
          Alcotest.test_case "shape check" `Quick test_wavefront_shape_check;
        ] );
      ( "config_memory_extra",
        [
          Alcotest.test_case "memory reset" `Quick test_memory_reset_stats;
          Alcotest.test_case "rule cost monotone" `Quick test_resource_rule_cost_monotone_lanes;
          Alcotest.test_case "bandwidth scaling" `Quick test_config_bandwidth_scaling;
        ] );
    ]
