(* Tests for the experiment harness (at Small scale so the suite stays
   fast; the shapes asserted here are the ones the paper reports). *)

module Experiments = Agp_exp.Experiments
module Workloads = Agp_exp.Workloads

let check = Alcotest.check

let test_fig9_small_shape () =
  let rows = Experiments.fig9 ~scale:Workloads.Small ~seed:42 () in
  check Alcotest.int "six apps" 6 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool (r.Experiments.app ^ " fpga time positive") true
        (r.Experiments.fpga_s > 0.0);
      check Alcotest.bool (r.Experiments.app ^ " beats nothing for free") true
        (r.Experiments.speedup_vs_1 > 0.0);
      (* the paper's headline structure: 10 cores beat the accelerator
         or are at least comparable; the accelerator beats 1 core on
         most apps.  At Small scale everything is cache-resident so we
         only assert ordering sanity. *)
      check Alcotest.bool (r.Experiments.app ^ " 10-core beats 1-core") true
        (r.Experiments.cpu10_s < r.Experiments.cpu1_s))
    rows

let test_fig10_small_shape () =
  let rows =
    Experiments.fig10 ~scale:Workloads.Small ~seed:42 ~factors:[ 1.0; 4.0 ] ()
  in
  check Alcotest.int "six apps x two factors" 12 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool "baseline normalized" true
        (r.Experiments.factor > 1.0 || r.Experiments.speedup_over_1x = 1.0);
      check Alcotest.bool "bandwidth never hurts much" true (r.Experiments.speedup_over_1x > 0.7))
    rows

let test_table1_small () =
  let t = Experiments.table1 ~scale:Workloads.Small ~seed:42 () in
  check Alcotest.bool "opencl dramatically slower" true
    (t.Experiments.opencl_s /. t.Experiments.spec_bfs_s > 50.0);
  check Alcotest.bool "coor-bfs also dramatically faster" true
    (t.Experiments.opencl_s /. t.Experiments.coor_bfs_s > 50.0);
  check Alcotest.bool "rounds = levels" true (t.Experiments.opencl_rounds > 10)

let test_resources_shape () =
  let rows = Experiments.resources () in
  check Alcotest.int "six apps" 6 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool (r.Experiments.rapp ^ " fits device") true r.Experiments.fits_device;
      check Alcotest.bool
        (r.Experiments.rapp ^ " rule share in extended band")
        true
        (r.Experiments.rule_register_share > 0.02 && r.Experiments.rule_register_share < 0.15))
    rows

let test_schedule_diagram () =
  let s = Experiments.schedule_diagram () in
  check Alcotest.bool "mentions both designs" true
    (String.length s > 100
    &&
    let has sub =
      let n = String.length sub and m = String.length s in
      let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
      loop 0
    in
    has "Synthesized" && has "dataflow");
  (* the dataflow schedule must be strictly shorter than the barrier one *)
  let count_cols line = List.length (String.split_on_char ' ' (String.trim line)) in
  let lines = String.split_on_char '\n' s in
  let v_lines = List.filter (fun l -> String.length l > 3 && String.sub l 2 2 = "V:") lines in
  match v_lines with
  | [ barrier; dataflow ] ->
      check Alcotest.bool "dataflow shorter" true (count_cols dataflow < count_cols barrier)
  | _ -> Alcotest.fail "expected two V lanes"

let test_workloads_all_valid () =
  List.iter
    (fun (app : Agp_apps.App_instance.t) ->
      match Agp_core.Spec.validate app.Agp_apps.App_instance.spec with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" app.Agp_apps.App_instance.app_name (String.concat ";" es))
    (Workloads.all Workloads.Small ~seed:1)

let test_amplification_bfs () =
  let row =
    Agp_exp.Amplification.measure ~workers:8 (Workloads.spec_bfs Workloads.Small ~seed:42)
  in
  (* speculation always activates at least the necessary work, and
     SPEC-BFS floods: activated strictly exceeds necessary *)
  check Alcotest.bool "amplification >= 1" true (row.Agp_exp.Amplification.amplification >= 1.0);
  check Alcotest.bool "bfs floods" true (row.Agp_exp.Amplification.squashed > 0);
  check Alcotest.int "accounting closes" row.Agp_exp.Amplification.activated
    (row.Agp_exp.Amplification.committed + row.Agp_exp.Amplification.squashed)

let test_amplification_lu_no_flooding () =
  let row =
    Agp_exp.Amplification.measure ~workers:8 (Workloads.coor_lu Workloads.Small ~seed:42)
  in
  (* coordination admits no conflicts: every activated task commits *)
  check Alcotest.int "no squashes" 0 row.Agp_exp.Amplification.squashed;
  check (Alcotest.float 1e-9) "amplification exactly 1" 1.0
    row.Agp_exp.Amplification.amplification

let test_scale_parse () =
  check Alcotest.bool "small" true (Workloads.scale_of_string "small" = Ok Workloads.Small);
  check Alcotest.bool "medium" true (Workloads.scale_of_string "medium" = Ok Workloads.Medium);
  check Alcotest.bool "default" true (Workloads.scale_of_string "default" = Ok Workloads.Default);
  check Alcotest.bool "large" true (Workloads.scale_of_string "large" = Ok Workloads.Large);
  check Alcotest.bool "huge" true (Workloads.scale_of_string "huge" = Ok Workloads.Huge);
  check Alcotest.bool "garbage rejected" true (Result.is_error (Workloads.scale_of_string "big"))

let () =
  Alcotest.run "agp_exp"
    [
      ( "experiments",
        [
          Alcotest.test_case "fig9 shape" `Slow test_fig9_small_shape;
          Alcotest.test_case "fig10 shape" `Slow test_fig10_small_shape;
          Alcotest.test_case "table1" `Quick test_table1_small;
          Alcotest.test_case "resources" `Quick test_resources_shape;
          Alcotest.test_case "schedule diagram" `Quick test_schedule_diagram;
          Alcotest.test_case "workloads valid" `Quick test_workloads_all_valid;
          Alcotest.test_case "scale parsing" `Quick test_scale_parse;
          Alcotest.test_case "amplification bfs" `Quick test_amplification_bfs;
          Alcotest.test_case "amplification lu" `Quick test_amplification_lu_no_flooding;
        ] );
    ]
