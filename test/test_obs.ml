(* Tests for the Agp_obs observability subsystem: metrics, JSON, sinks,
   Chrome trace export, stall attribution, and the zero-observer-effect
   guarantee on the accelerator. *)

module Json = Agp_obs.Json
module Metrics = Agp_obs.Metrics
module Event = Agp_obs.Event
module Sink = Agp_obs.Sink
module Chrome_trace = Agp_obs.Chrome_trace
module Attribution = Agp_obs.Attribution
module Lifecycle = Agp_obs.Lifecycle
module Timeline = Agp_obs.Timeline
module Report = Agp_obs.Report
module Diff = Agp_obs.Diff
module Window = Agp_obs.Window
module Telemetry = Agp_obs.Telemetry
module Log = Agp_obs.Log
module Span = Agp_obs.Span
module Accelerator = Agp_hw.Accelerator
module Config = Agp_hw.Config
module Memory = Agp_hw.Memory
module Wavefront = Agp_hw.Wavefront
module App_instance = Agp_apps.App_instance
module Bfs_app = Agp_apps.Bfs_app
module Engine = Agp_core.Engine

let check = Alcotest.check

(* --- JSON --- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 1.5);
        ("s", Json.String "he \"quoted\"\n\ttab\\slash");
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Bool false; Json.Int (-7) ]);
        ("nested", Json.Obj [ ("x", Json.List []); ("y", Json.Obj []) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok v -> check Alcotest.bool "roundtrip equal" true (v = doc)
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_parse_basics () =
  check Alcotest.bool "int" true (Json.parse "42" = Ok (Json.Int 42));
  check Alcotest.bool "negative" true (Json.parse "-3" = Ok (Json.Int (-3)));
  check Alcotest.bool "float" true (Json.parse "2.5" = Ok (Json.Float 2.5));
  check Alcotest.bool "exponent" true (Json.parse "1e3" = Ok (Json.Float 1000.0));
  check Alcotest.bool "ws" true (Json.parse "  [ 1 , 2 ]  " = Ok (Json.List [ Json.Int 1; Json.Int 2 ]));
  check Alcotest.bool "escape" true (Json.parse {|"aAb"|} = Ok (Json.String "aAb"))

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_accessors () =
  let v = Json.Obj [ ("n", Json.Int 3); ("f", Json.Float 0.5) ] in
  check Alcotest.bool "member" true (Json.member "n" v = Some (Json.Int 3));
  check Alcotest.bool "missing" true (Json.member "zzz" v = None);
  check Alcotest.bool "to_float of int" true (Json.to_float (Json.Int 2) = Some 2.0)

(* --- metrics --- *)

let test_metrics_counter_gauge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "tasks" in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "counter value" 5 (Metrics.count c);
  check Alcotest.bool "same instance" true (Metrics.counter reg "tasks" == c);
  let g = Metrics.gauge reg "util" in
  Metrics.set g 0.75;
  check (Alcotest.float 1e-9) "gauge value" 0.75 (Metrics.value g);
  let text = Metrics.to_text reg in
  check Alcotest.bool "text mentions counter" true
    (Astring.String.is_infix ~affix:"tasks" text);
  match Json.parse (Json.to_string (Metrics.to_json reg)) with
  | Ok v ->
      check Alcotest.bool "json counter" true (Json.member "tasks" v = Some (Json.Int 5));
      check Alcotest.bool "json gauge" true (Json.member "util" v = Some (Json.Float 0.75))
  | Error e -> Alcotest.failf "metrics json malformed: %s" e

let test_metrics_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" ~buckets:[| 10; 100 |] in
  List.iter (Metrics.observe h) [ 1; 10; 11; 50; 1000 ];
  check Alcotest.int "count" 5 (Metrics.sample_count h);
  check Alcotest.int "sum" 1072 (Metrics.sample_sum h);
  check Alcotest.bool "buckets" true
    (Metrics.bucket_counts h = [ (Some 10, 2); (Some 100, 2); (None, 1) ])

let test_metrics_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x");
  (match Metrics.gauge reg "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gauge over counter name accepted");
  (match Metrics.histogram reg "x" ~buckets:[| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "histogram over counter name accepted");
  match Metrics.histogram reg "h" ~buckets:[| 5; 5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing bounds accepted"

(* --- sinks --- *)

let ev i = Event.Arb_grant { bank = i; port = 0 }

let test_sink_null () =
  check Alcotest.bool "disabled" false (Sink.enabled Sink.null);
  Sink.emit Sink.null ~ts:1 (ev 0);
  check Alcotest.int "no events" 0 (List.length (Sink.events Sink.null));
  check Alcotest.int "no count" 0 (Sink.count Sink.null)

let test_sink_collect () =
  let s = Sink.collect () in
  check Alcotest.bool "enabled" true (Sink.enabled s);
  for i = 0 to 9 do
    Sink.emit s ~ts:i (ev i)
  done;
  let evs = Sink.events s in
  check Alcotest.int "all kept" 10 (List.length evs);
  check Alcotest.bool "chronological" true (List.map fst evs = List.init 10 Fun.id);
  check Alcotest.int "none dropped" 0 (Sink.dropped s);
  Sink.clear s;
  check Alcotest.int "cleared" 0 (Sink.count s)

let test_sink_ring () =
  let s = Sink.ring ~capacity:4 in
  for i = 0 to 9 do
    Sink.emit s ~ts:i (ev i)
  done;
  let evs = Sink.events s in
  check Alcotest.int "bounded" 4 (List.length evs);
  check Alcotest.bool "keeps newest, oldest first" true (List.map fst evs = [ 6; 7; 8; 9 ]);
  check Alcotest.int "total emitted" 10 (Sink.count s);
  check Alcotest.int "dropped" 6 (Sink.dropped s);
  match Sink.ring ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity accepted"

(* --- instrumented components --- *)

let test_memory_events () =
  let sink = Sink.collect () in
  let mem = Memory.create ~sink Config.default in
  ignore (Memory.access mem ~now:0 ~addr:0 ~is_write:false);
  ignore (Memory.access mem ~now:100 ~addr:8 ~is_write:true);
  let kinds = List.map (fun (_, e) -> Event.kind e) (Sink.events sink) in
  check (Alcotest.list Alcotest.string) "miss emits access + transfer, hit only access"
    [ "cache_access"; "link_transfer"; "cache_access" ] kinds;
  let hits =
    List.filter_map
      (fun (_, e) ->
        match e with
        | Event.Cache_access { hit; _ } -> Some hit
        | _ -> None)
      (Sink.events sink)
  in
  check (Alcotest.list Alcotest.bool) "hit flags" [ false; true ] hits

let test_wavefront_events () =
  let sink = Sink.collect () in
  let w = Wavefront.create ~sink ~banks:2 ~ports:2 () in
  ignore (Wavefront.allocate_uniform w ~requesting:[| true; true |]);
  ignore (Wavefront.allocate_uniform w ~requesting:[| true; false |]);
  let evs = Sink.events sink in
  check Alcotest.int "three grants" 3 (List.length evs);
  check Alcotest.bool "round timestamps" true
    (List.map fst evs = [ 0; 0; 1 ]);
  check Alcotest.bool "all grants" true
    (List.for_all (fun (_, e) -> Event.kind e = "arb_grant") evs)

(* --- accelerator observability end to end --- *)

let small_app () =
  Bfs_app.speculative
    (Bfs_app.workload_of_graph (Agp_graph.Generator.road ~seed:3 ~width:12 ~height:8) 0)

let observed_run ?config ?sink ?timeline () =
  let app = small_app () in
  let run = app.App_instance.fresh () in
  let report =
    Accelerator.run ?config ?sink ?timeline ~spec:app.App_instance.spec
      ~bindings:run.App_instance.bindings ~state:run.App_instance.state
      ~initial:run.App_instance.initial ()
  in
  (report, run)

let test_accel_event_taxonomy () =
  let sink = Sink.collect () in
  let report, run = observed_run ~sink () in
  check (Alcotest.result Alcotest.unit Alcotest.string) "still valid" (Ok ())
    (run.App_instance.check ());
  let evs = Sink.events sink in
  let has k = List.exists (fun (_, e) -> Event.kind e = k) evs in
  List.iter
    (fun k -> check Alcotest.bool ("has " ^ k) true (has k))
    [
      "task_dispatch";
      "task_finish";
      "rendezvous_park";
      "rendezvous_resume";
      "cache_access";
      "link_transfer";
    ];
  (* every dispatch/finish timestamp lies within the simulated run *)
  check Alcotest.bool "timestamps within run" true
    (List.for_all (fun (ts, _) -> ts >= 0 && ts <= report.Accelerator.cycles + 1) evs);
  (* commits observed in the stream match the engine's commit count *)
  let commits =
    List.length
      (List.filter
         (fun (_, e) ->
           match e with
           | Event.Task_finish { outcome = Event.Commit; _ } -> true
           | _ -> false)
         evs)
  in
  check Alcotest.int "commit events = committed tasks"
    report.Accelerator.engine_stats.Engine.committed commits

let test_accel_attribution_sums () =
  let report, _ = observed_run () in
  let n_pipes =
    List.fold_left (fun acc (_, n) -> acc + n) 0 report.Accelerator.pipelines
  in
  let attr = report.Accelerator.attribution in
  check Alcotest.int "buckets sum to cycles x pipelines"
    (report.Accelerator.cycles * n_pipes)
    (Attribution.total attr);
  (* per-set: each set's buckets sum to cycles x that set's pipelines *)
  List.iter
    (fun (set, n) ->
      check Alcotest.int (set ^ " row sums")
        (report.Accelerator.cycles * n)
        (Attribution.set_total attr ~set))
    report.Accelerator.pipelines;
  check Alcotest.bool "some busy cycles" true (Attribution.get attr ~set:"update" Attribution.Busy > 0);
  let s = Attribution.summary attr in
  let sum =
    s.Attribution.busy_frac +. s.Attribution.mem_frac +. s.Attribution.rendezvous_frac
    +. s.Attribution.queue_frac +. s.Attribution.squash_frac +. s.Attribution.idle_frac
  in
  check (Alcotest.float 1e-9) "summary fractions sum to 1" 1.0 sum

let fields_of_report (r : Accelerator.report) =
  ( r.Accelerator.cycles,
    r.Accelerator.seconds,
    r.Accelerator.utilization,
    ( r.Accelerator.engine_stats.Engine.activated,
      r.Accelerator.engine_stats.Engine.committed,
      r.Accelerator.engine_stats.Engine.aborted,
      r.Accelerator.engine_stats.Engine.retried,
      r.Accelerator.engine_stats.Engine.ops_executed ),
    r.Accelerator.mem_reads,
    r.Accelerator.mem_writes,
    r.Accelerator.mem_hit_rate,
    r.Accelerator.bytes_over_link,
    r.Accelerator.peak_in_flight,
    r.Accelerator.pipelines )

let test_accel_null_sink_identical () =
  (* the observer must not perturb the model: a fully-captured run and
     a null-sink (uninstrumented) run report bit-identical results *)
  let bare, bare_run = observed_run () in
  let observed, obs_run = observed_run ~sink:(Sink.collect ()) () in
  check Alcotest.bool "reports identical" true
    (fields_of_report bare = fields_of_report observed);
  check Alcotest.bool "attributions identical" true
    (Attribution.equal bare.Accelerator.attribution observed.Accelerator.attribution);
  check (Alcotest.list Alcotest.string) "same final memory" []
    (Agp_core.State.diff bare_run.App_instance.state obs_run.App_instance.state)

let test_accel_squash_waste_appears () =
  (* speculative BFS on this graph squashes thousands of tasks; the
     waste must show up in the attribution *)
  let report, _ = observed_run () in
  let aborted = report.Accelerator.engine_stats.Engine.aborted in
  check Alcotest.bool "squashes happened" true (aborted > 0);
  check Alcotest.bool "squash-waste charged" true
    (Attribution.get report.Accelerator.attribution ~set:"update" Attribution.Squash_waste > 0)

let test_attribution_render_and_reclassify () =
  let a = Attribution.create () in
  Attribution.charge a ~set:"s" Attribution.Busy 10;
  Attribution.charge a ~set:"s" Attribution.Idle 5;
  check Alcotest.int "clamped move" 10
    (Attribution.reclassify a ~set:"s" ~src:Attribution.Busy ~dst:Attribution.Squash_waste 99);
  check Alcotest.int "total preserved" 15 (Attribution.total a);
  check Alcotest.int "src emptied" 0 (Attribution.get a ~set:"s" Attribution.Busy);
  let table = Attribution.render a in
  check Alcotest.bool "renders set row" true (Astring.String.is_infix ~affix:"s" table);
  check Alcotest.bool "renders total" true (Astring.String.is_infix ~affix:"TOTAL" table)

(* --- Chrome trace export --- *)

let test_chrome_trace_wellformed () =
  let sink = Sink.collect () in
  let report, _ = observed_run ~sink () in
  let json = Chrome_trace.to_string ~trace_name:"test" (Sink.events sink) in
  match Json.parse json with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok doc -> begin
      match Option.bind (Json.member "traceEvents" doc) Json.to_list with
      | None -> Alcotest.fail "no traceEvents array"
      | Some evs ->
          check Alcotest.bool "has events" true (List.length evs > 100);
          let ts_of e = Option.get (Option.bind (Json.member "ts" e) Json.to_int) in
          let tss = List.map ts_of evs in
          check Alcotest.bool "events sorted by ts" true (List.sort compare tss = tss);
          List.iter
            (fun e ->
              check Alcotest.bool "has pid" true (Json.member "pid" e <> None);
              check Alcotest.bool "has tid or is process meta" true
                (Json.member "tid" e <> None
                || Json.member "ph" e = Some (Json.String "M"));
              match Json.member "dur" e with
              | Some d -> check Alcotest.bool "dur >= 0" true (Option.get (Json.to_int d) >= 0)
              | None -> ())
            evs;
          check Alcotest.bool "span ends within run" true
            (List.for_all
               (fun e ->
                 match (Json.member "ts" e, Json.member "dur" e) with
                 | Some ts, Some d ->
                     Option.get (Json.to_int ts) + Option.get (Json.to_int d)
                     <= report.Accelerator.cycles + Config.default.Config.miss_latency + 64
                 | _ -> true)
               evs)
    end

let test_chrome_trace_stable () =
  (* same events must export to the identical document: pids/tids are
     derived from sorted names, not from encounter order *)
  let sink = Sink.collect () in
  let _ = observed_run ~sink () in
  let events = Sink.events sink in
  let a = Chrome_trace.to_string events in
  let b = Chrome_trace.to_string events in
  check Alcotest.bool "deterministic export" true (String.equal a b);
  (* and a second simulation of the same seeded app captures the same
     stream, hence the same trace *)
  let sink2 = Sink.collect () in
  let _ = observed_run ~sink:sink2 () in
  let c = Chrome_trace.to_string (Sink.events sink2) in
  check Alcotest.bool "reproducible run-to-run" true (String.equal a c)

let test_chrome_trace_rows () =
  let sink = Sink.collect () in
  let _ = observed_run ~sink () in
  let doc =
    match Json.parse (Chrome_trace.to_string (Sink.events sink)) with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let evs = Option.get (Option.bind (Json.member "traceEvents" doc) Json.to_list) in
  let thread_names =
    List.filter_map
      (fun e ->
        if Json.member "name" e = Some (Json.String "thread_name") then
          Option.bind (Json.member "args" e) (fun a ->
              Option.bind (Json.member "name" a) Json.to_str)
        else None)
      evs
  in
  check Alcotest.bool "pipeline rows named set/index" true
    (List.exists (fun n -> n = "visit/0") thread_names);
  check Alcotest.bool "rule engine row per set" true (List.mem "update" thread_names);
  check Alcotest.bool "link row" true (List.mem "qpi-link" thread_names)

(* --- JSON parse errors carry position + context --- *)

let test_json_error_positions () =
  let expect_infix s affix =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e ->
        if not (Astring.String.is_infix ~affix e) then
          Alcotest.failf "error for %S lacks %S:\n%s" s affix e
  in
  expect_infix "{\n  \"a\": tru\n}" "line 2";
  expect_infix "[1,]" "line 1";
  expect_infix "[1,]" "column";
  expect_infix "[1,]" "^";
  (* the context window shows the offending text *)
  expect_infix "{\"key\": flase}" "flase"

let test_json_fuzz_never_raises () =
  (* every truncation and every single-byte mutation of a valid
     document must yield Ok or Error — never an exception *)
  let doc =
    Report.to_string
      (Report.v ~kind:"t" ~app:"a"
         ~meta:[ ("m", Json.Float 2.5) ]
         ~sections:
           [
             ( "s",
               Json.Obj
                 [
                   ("x", Json.Int (-1));
                   ("y", Json.List [ Json.Float 0.5; Json.Null; Json.Bool true ]);
                   ("z", Json.String "str\"esc\\n");
                 ] );
           ]
         ())
  in
  let n = String.length doc in
  for i = 0 to n - 1 do
    (match Json.parse (String.sub doc 0 i) with
    | Ok _ | Error _ -> ());
    let b = Bytes.of_string doc in
    Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + 13) land 0x7f));
    match Json.parse (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
  done

(* --- Metrics.percentile --- *)

let test_metrics_percentile () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" ~buckets:[| 10; 20 |] in
  (* total on empty: 0.0, never an exception — the serve scrape path
     renders percentiles of histograms that may not have seen traffic *)
  check (Alcotest.float 1e-6) "empty histogram percentile is 0" 0.0
    (Metrics.percentile h 50.0);
  check (Alcotest.float 1e-6) "empty histogram p99 is 0" 0.0 (Metrics.percentile h 99.0);
  for _ = 1 to 10 do
    Metrics.observe h 5
  done;
  check (Alcotest.float 1e-6) "p50 interpolates within first bucket" 5.0
    (Metrics.percentile h 50.0);
  check (Alcotest.float 1e-6) "p100 reaches bucket bound" 10.0 (Metrics.percentile h 100.0);
  for _ = 1 to 10 do
    Metrics.observe h 15
  done;
  check (Alcotest.float 1e-6) "p50 lands on the bucket edge" 10.0 (Metrics.percentile h 50.0);
  check (Alcotest.float 1e-6) "p75 mid second bucket" 15.0 (Metrics.percentile h 75.0);
  (match Metrics.percentile h 101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p > 100 accepted");
  (match Metrics.percentile h (-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p < 0 accepted");
  let o = Metrics.histogram reg "over" ~buckets:[| 10 |] in
  Metrics.observe o 1000;
  check (Alcotest.float 1e-6) "overflow bucket clamps to last bound" 10.0
    (Metrics.percentile o 50.0);
  let text = Metrics.to_text reg in
  check Alcotest.bool "to_text shows percentiles" true
    (Astring.String.is_infix ~affix:"p50=" text)

(* --- rolling windows --- *)

let test_window_observe_and_prune () =
  let w = Window.create ~span_s:10.0 "lat" in
  check Alcotest.string "name" "lat" (Window.name w);
  check (Alcotest.float 1e-9) "span" 10.0 (Window.span_s w);
  Window.observe w ~now:0.0 1.0;
  Window.observe w ~now:1.0 2.0;
  Window.observe w ~now:2.0 3.0;
  let s = Window.summary w ~now:2.0 in
  check Alcotest.int "all live" 3 s.Window.s_count;
  check Alcotest.int "lifetime" 3 s.Window.s_lifetime;
  check (Alcotest.float 1e-9) "mean" 2.0 s.Window.s_mean;
  check (Alcotest.float 1e-9) "p50" 2.0 s.Window.s_p50;
  check (Alcotest.float 1e-9) "max" 3.0 s.Window.s_max;
  check (Alcotest.float 1e-9) "rate = count/span" 0.3 s.Window.s_rate_per_sec;
  (* advance past the horizon of the first two samples: only t=2 remains *)
  let s = Window.summary w ~now:11.5 in
  check Alcotest.int "pruned to window" 1 s.Window.s_count;
  check Alcotest.int "lifetime counts expired" 3 s.Window.s_lifetime;
  check (Alcotest.float 1e-9) "survivor value" 3.0 s.Window.s_p50;
  (* everything expired: summary is total, all zeros *)
  let s = Window.summary w ~now:100.0 in
  check Alcotest.int "empty window" 0 s.Window.s_count;
  check (Alcotest.float 1e-9) "empty p50 is 0" 0.0 s.Window.s_p50;
  check (Alcotest.float 1e-9) "empty p99 is 0" 0.0 s.Window.s_p99;
  check (Alcotest.float 1e-9) "empty max is 0" 0.0 s.Window.s_max

let test_window_cap_drops_oldest () =
  let w = Window.create ~max_samples:4 ~span_s:60.0 "capped" in
  for i = 1 to 6 do
    Window.observe w ~now:(float_of_int i) (float_of_int i)
  done;
  let s = Window.summary w ~now:6.0 in
  check Alcotest.int "capped live count" 4 s.Window.s_count;
  check Alcotest.int "evictions counted" 2 s.Window.s_dropped;
  check Alcotest.int "lifetime counts evicted" 6 s.Window.s_lifetime;
  (* the oldest samples went first: live set is 3..6 *)
  check (Alcotest.float 1e-9) "p50 of survivors" 4.0 s.Window.s_p50;
  check (Alcotest.float 1e-9) "max survives" 6.0 s.Window.s_max;
  (match Window.create ~span_s:0.0 "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "span_s = 0 accepted");
  match Window.summary_json (Window.summary w ~now:6.0) with
  | Json.Obj kv -> check Alcotest.bool "summary json has p99" true (List.mem_assoc "p99" kv)
  | _ -> Alcotest.fail "summary_json not an object"

(* --- telemetry / Prometheus exposition --- *)

let test_telemetry_sanitize () =
  check Alcotest.string "dots become underscores" "serve_queue_ms"
    (Telemetry.sanitize "serve.queue_ms");
  (* digits are legal anywhere but position 0 *)
  check Alcotest.string "leading digit escaped" "_9lives" (Telemetry.sanitize "99lives");
  check Alcotest.string "colon legal" "a:b" (Telemetry.sanitize "a:b");
  check Alcotest.string "already legal untouched" "ok_name" (Telemetry.sanitize "ok_name")

let test_telemetry_prometheus () =
  let t = Telemetry.create () in
  let reg = Telemetry.registry t in
  let c = Metrics.counter reg "serve.requests_total" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.incr c;
  Metrics.set (Metrics.gauge reg "accel.util") 2.5;
  let h = Metrics.histogram reg "exec.cycles" ~buckets:[| 10; 20 |] in
  List.iter (Metrics.observe h) [ 5; 15; 1000 ];
  let w = Telemetry.window t ~span_s:60.0 "serve.latency_ms" in
  List.iter (fun v -> Window.observe w ~now:1.0 v) [ 1.0; 2.0; 3.0; 4.0 ];
  let text = Telemetry.to_prometheus t ~now:1.0 in
  let has affix name =
    check Alcotest.bool name true (Astring.String.is_infix ~affix text)
  in
  has "# TYPE serve_requests_total counter\nserve_requests_total 3\n" "counter line";
  has "# TYPE accel_util gauge\naccel_util 2.5\n" "gauge line";
  has "# TYPE exec_cycles histogram\n" "histogram type line";
  (* buckets are cumulative and end at +Inf *)
  has "exec_cycles_bucket{le=\"10\"} 1\n" "first bucket";
  has "exec_cycles_bucket{le=\"20\"} 2\n" "cumulative second bucket";
  has "exec_cycles_bucket{le=\"+Inf\"} 3\n" "+Inf bucket";
  has "exec_cycles_count 3\n" "histogram count";
  (* windows render as summaries with quantile labels plus gauges *)
  has "# TYPE serve_latency_ms summary\n" "summary type line";
  has "serve_latency_ms{quantile=\"0.5\"} 2\n" "window p50";
  has "serve_latency_ms{quantile=\"0.99\"} 4\n" "window p99 = max at small n";
  has "serve_latency_ms_count 4\n" "window lifetime count";
  has "serve_latency_ms_window_max 4\n" "window max gauge";
  has "serve_latency_ms_window_rate_per_sec" "window rate gauge";
  (* find-or-create: same span returns the same window, new span raises *)
  check Alcotest.bool "find-or-create returns same window" true
    (Telemetry.window t ~span_s:60.0 "serve.latency_ms" == w);
  (match Telemetry.window t ~span_s:30.0 "serve.latency_ms" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "span mismatch accepted");
  match Telemetry.to_json t ~now:1.0 with
  | Json.Obj kv ->
      check Alcotest.bool "json has metrics + windows" true
        (List.mem_assoc "metrics" kv && List.mem_assoc "windows" kv)
  | _ -> Alcotest.fail "to_json not an object"

(* --- structured NDJSON logging --- *)

let test_log_ndjson () =
  let path = Filename.temp_file "agp_log" ".ndjson" in
  let oc = open_out path in
  let log = Log.create ~level:Log.Info ~clock:(fun () -> 42.5) ~out:oc () in
  check Alcotest.bool "info enabled" true (Log.enabled log Log.Info);
  check Alcotest.bool "debug filtered" false (Log.enabled log Log.Debug);
  Log.debug log "dropped";
  Log.info log ~req:"r1" ~fields:[ ("shard", Json.Int 2); ("msg", Json.String "shadow") ]
    "request executed";
  Log.warn log "plain";
  Log.set_level log Log.Debug;
  Log.debug log "now visible";
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check Alcotest.int "three lines (debug filtered until enabled)" 3 (List.length lines);
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok (Json.Obj kv) -> kv
        | Ok _ -> Alcotest.failf "log line not an object: %s" l
        | Error e -> Alcotest.failf "log line not JSON (%s): %s" e l)
      lines
  in
  let first = List.nth parsed 0 in
  check Alcotest.bool "ts from injected clock" true
    (List.assoc "ts" first = Json.Float 42.5);
  check Alcotest.bool "level" true (List.assoc "level" first = Json.String "info");
  check Alcotest.bool "msg wins over shadowing field" true
    (List.assoc "msg" first = Json.String "request executed");
  check Alcotest.bool "req correlation" true (List.assoc "req" first = Json.String "r1");
  check Alcotest.bool "free field kept" true (List.assoc "shard" first = Json.Int 2);
  let second = List.nth parsed 1 in
  check Alcotest.bool "no req when absent" true (not (List.mem_assoc "req" second));
  check Alcotest.bool "warn level name" true (List.assoc "level" second = Json.String "warn");
  let third = List.nth parsed 2 in
  check Alcotest.bool "debug after set_level" true
    (List.assoc "level" third = Json.String "debug");
  (* the null logger drops everything and never raises *)
  check Alcotest.bool "null disabled" false (Log.enabled Log.null Log.Error);
  Log.error Log.null ~req:"x" "ignored";
  (* level parsing accepts the common spellings *)
  check Alcotest.bool "warning alias" true (Log.level_of_string "Warning" = Ok Log.Warn);
  check Alcotest.bool "bad level rejected" true
    (match Log.level_of_string "loud" with Error _ -> true | Ok _ -> false)

(* --- span collector thread-safety (satellite: concurrent shards) --- *)

let test_span_concurrent_hammer () =
  let t = Span.create () in
  let domains = 4 and per_domain = 2000 in
  let phases = [| "queue"; "build"; "execute" |] in
  let worker d =
    Domain.spawn (fun () ->
        for i = 0 to per_domain - 1 do
          let phase = phases.((d + i) mod Array.length phases) in
          Span.record t ~phase (float_of_int ((i mod 10) + 1))
        done)
  in
  List.iter Domain.join (List.init domains worker);
  let total =
    Array.fold_left (fun acc phase -> acc + Span.count t ~phase) 0 phases
  in
  check Alcotest.int "no recorded duration lost under concurrency" (domains * per_domain) total;
  let summaries = Span.summarize t in
  check Alcotest.int "all phases present" (Array.length phases) (List.length summaries);
  List.iter
    (fun s ->
      check Alcotest.bool "mean within recorded range" true
        (s.Span.sp_mean_ms >= 1.0 && s.Span.sp_mean_ms <= 10.0);
      check (Alcotest.float 1e-9) "max is the largest recorded" 10.0 s.Span.sp_max_ms)
    summaries

(* --- task lifecycle spans --- *)

let test_lifecycle_span_invariant () =
  let sink = Sink.collect () in
  let report, _ = observed_run ~sink () in
  let spans, unfinished = Lifecycle.spans (Sink.events sink) in
  check Alcotest.int "every activation retires" 0 unfinished;
  check Alcotest.int "one span per activation"
    report.Accelerator.engine_stats.Engine.activated (List.length spans);
  List.iter
    (fun sp ->
      let open Lifecycle in
      let covered = sp.sp_queue_wait + sp.sp_execute + sp.sp_rdv_wait + sp.sp_squash_redo in
      let lifetime = sp.sp_retired - sp.sp_dispatched in
      if covered <> lifetime then
        Alcotest.failf "span %s/%d: phases sum to %d, lifetime is %d" sp.sp_set sp.sp_tid
          covered lifetime;
      if sp.sp_outcome = Event.Commit && sp.sp_squash_redo <> 0 then
        Alcotest.failf "span %s/%d: committed but charged squash-redo" sp.sp_set sp.sp_tid)
    spans;
  let commits =
    List.length (List.filter (fun sp -> sp.Lifecycle.sp_outcome = Event.Commit) spans)
  in
  check Alcotest.int "commit spans = engine committed"
    report.Accelerator.engine_stats.Engine.committed commits

let test_lifecycle_summarize () =
  let sink = Sink.collect () in
  let _ = observed_run ~sink () in
  let spans, _ = Lifecycle.spans (Sink.events sink) in
  let stats = Lifecycle.summarize spans in
  check Alcotest.int "both task sets present" 2 (List.length stats);
  List.iter
    (fun st ->
      let open Lifecycle in
      check Alcotest.bool (st.ls_set ^ " percentiles ordered") true
        (st.ls_p50 <= st.ls_p90 && st.ls_p90 <= st.ls_p99 && st.ls_p99 <= st.ls_max);
      check Alcotest.int (st.ls_set ^ " outcome partition") st.ls_tasks
        (st.ls_commits + st.ls_squashes))
    stats;
  let total = List.fold_left (fun acc st -> acc + st.Lifecycle.ls_tasks) 0 stats in
  check Alcotest.int "spans partitioned across sets" (List.length spans) total;
  let table = Lifecycle.render stats in
  check Alcotest.bool "renders a row per set" true
    (Astring.String.is_infix ~affix:"update" table
    && Astring.String.is_infix ~affix:"visit" table);
  match Lifecycle.to_json stats with
  | Json.Obj kvs ->
      check Alcotest.int "json keyed by set" (List.length stats) (List.length kvs)
  | _ -> Alcotest.fail "lifecycle json is not an object"

(* --- interval timeline --- *)

let test_timeline_sample_count () =
  let interval = 100 in
  let tl = Timeline.create ~interval () in
  let report, _ = observed_run ~timeline:tl () in
  let expected = (report.Accelerator.cycles + interval - 1) / interval in
  check Alcotest.int "ceil(cycles/interval) samples" expected (Timeline.sample_count tl);
  let samples = Timeline.samples tl in
  let last = List.nth samples (List.length samples - 1) in
  check Alcotest.int "last sample closes at run end" report.Accelerator.cycles
    last.Timeline.s_cycle;
  let cycles = List.map (fun s -> s.Timeline.s_cycle) samples in
  check Alcotest.bool "cycle column strictly increasing" true
    (List.sort_uniq compare cycles = cycles);
  List.iter
    (fun s ->
      let open Timeline in
      check Alcotest.bool "utilization in [0,1]" true
        (s.s_utilization >= 0.0 && s.s_utilization <= 1.0 +. 1e-9);
      check Alcotest.bool "hit rate in [0,1]" true
        (s.s_hit_rate >= 0.0 && s.s_hit_rate <= 1.0 +. 1e-9);
      check Alcotest.bool "window bytes non-negative" true (s.s_link_bytes >= 0))
    samples;
  let csv = Timeline.to_csv tl in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "csv = header + one row per sample" (expected + 1) (List.length lines);
  check Alcotest.bool "csv header" true
    (List.hd lines = "cycle,in_flight,pending,utilization,cache_hit_rate,link_bytes,link_util")

let test_timeline_conservation () =
  (* window link-bytes must sum back to the run's cumulative total *)
  let tl = Timeline.create ~interval:64 () in
  let report, _ = observed_run ~timeline:tl () in
  let windowed =
    List.fold_left (fun acc s -> acc + s.Timeline.s_link_bytes) 0 (Timeline.samples tl)
  in
  check Alcotest.int "link bytes conserved across windows"
    report.Accelerator.bytes_over_link windowed

let test_accel_fully_instrumented_identical () =
  (* extends the null-sink guarantee to the new instruments: capturing
     events AND sampling a timeline must not change the simulation *)
  let bare, bare_run = observed_run () in
  let tl = Timeline.create ~interval:64 () in
  let instrumented, inst_run = observed_run ~sink:(Sink.collect ()) ~timeline:tl () in
  check Alcotest.bool "reports identical" true
    (fields_of_report bare = fields_of_report instrumented);
  check Alcotest.bool "attributions identical" true
    (Attribution.equal bare.Accelerator.attribution instrumented.Accelerator.attribution);
  check (Alcotest.list Alcotest.string) "same final memory" []
    (Agp_core.State.diff bare_run.App_instance.state inst_run.App_instance.state)

(* --- run reports --- *)

let captured_report ?config () =
  let app = small_app () in
  let run = app.App_instance.fresh () in
  let sink = Sink.collect () in
  let tl = Timeline.create ~interval:128 () in
  let config = Option.value config ~default:Config.default in
  let r =
    Accelerator.run ~config ~sink ~timeline:tl ~spec:app.App_instance.spec
      ~bindings:run.App_instance.bindings ~state:run.App_instance.state
      ~initial:run.App_instance.initial ()
  in
  Accelerator.obs_report ~app:app.App_instance.app_name ~events:(Sink.events sink)
    ~timeline:tl ~config r

let test_report_roundtrip_bit_identical () =
  let doc = captured_report () in
  let s = Report.to_string doc in
  match Report.of_string s with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok doc2 ->
      check Alcotest.bool "emit -> parse -> emit bit-identical" true
        (String.equal s (Report.to_string doc2));
      check Alcotest.string "kind preserved" "accelerator-run" doc2.Report.kind;
      check (Alcotest.list Alcotest.string) "section order preserved"
        (List.map fst doc.Report.sections)
        (List.map fst doc2.Report.sections)

let test_report_envelope_validation () =
  let bad s affix =
    match Report.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e ->
        if not (Astring.String.is_infix ~affix e) then
          Alcotest.failf "error for %S lacks %S: %s" s affix e
  in
  bad "[1,2]" "not a JSON object";
  bad "{\"kind\":\"x\",\"app\":\"y\"}" "schema_version";
  bad "{\"schema_version\":99,\"kind\":\"x\",\"app\":\"y\"}" "unsupported schema_version 99";
  bad "{\"schema_version\":99,\"kind\":\"x\",\"app\":\"y\"}"
    (Printf.sprintf "reads versions %d..%d" Report.min_readable_version Report.schema_version);
  bad "{\"schema_version\":0,\"kind\":\"x\",\"app\":\"y\"}" "unsupported schema_version 0";
  bad "{\"schema_version\":1,\"app\":\"y\"}" "kind";
  bad "{\"schema_version\":1" "line 1";
  (* v2 still reads v1 documents — old goldens and archived reports stay usable *)
  check Alcotest.bool "current version is 2" true (Report.schema_version = 2);
  match Report.of_string "{\"schema_version\":1,\"kind\":\"x\",\"app\":\"y\"}" with
  | Ok doc -> check Alcotest.string "v1 doc readable" "x" doc.Report.kind
  | Error e -> Alcotest.failf "v1 document rejected: %s" e

let test_report_flatten () =
  let doc =
    Report.v ~kind:"t" ~app:"a"
      ~meta:[ ("x", Json.Int 2) ]
      ~sections:
        [
          ( "s",
            Json.Obj
              [
                ("f", Json.Float 0.5);
                ("skip_list", Json.List [ Json.Int 1 ]);
                ("skip_str", Json.String "no");
                ("deep", Json.Obj [ ("n", Json.Int 7) ]);
              ] );
        ]
      ()
  in
  check Alcotest.bool "numeric leaves only, document order" true
    (Report.flatten doc = [ ("meta.x", 2.0); ("s.f", 0.5); ("s.deep.n", 7.0) ])

(* --- run diffing --- *)

let test_diff_identical () =
  let doc = captured_report () in
  let r = Diff.compare doc doc in
  check Alcotest.bool "has metrics to compare" true (List.length r.Diff.entries > 20);
  check Alcotest.int "no regressions" 0 r.Diff.regressions;
  check Alcotest.bool "not regressed" false (Diff.regressed r);
  check Alcotest.bool "all unchanged" true
    (List.for_all (fun e -> e.Diff.status = Diff.Unchanged) r.Diff.entries)

let test_diff_degraded_bandwidth_regresses () =
  let base = captured_report () in
  let slow = captured_report ~config:(Config.scale_bandwidth Config.default 0.25) () in
  let r = Diff.compare ~threshold:0.05 base slow in
  check Alcotest.bool "quartered QPI bandwidth flags a regression" true (Diff.regressed r);
  check Alcotest.bool "cycle count among the regressed metrics" true
    (List.exists
       (fun e -> e.Diff.key = "metrics.accel.cycles" && e.Diff.status = Diff.Regressed)
       r.Diff.entries);
  (* and the reverse comparison reads as an improvement, not a regression *)
  let r' = Diff.compare ~threshold:0.05 slow base in
  check Alcotest.bool "restoring bandwidth improves cycles" true
    (List.exists
       (fun e -> e.Diff.key = "metrics.accel.cycles" && e.Diff.status = Diff.Improved)
       r'.Diff.entries)

let test_diff_directions_and_shape () =
  let mk kv = Report.v ~kind:"t" ~app:"a" ~sections:[ ("m", Json.Obj kv) ] () in
  let a =
    mk [ ("cycles", Json.Int 100); ("utilization", Json.Float 0.5); ("note", Json.Int 1) ]
  in
  let b =
    mk [ ("cycles", Json.Int 150); ("utilization", Json.Float 0.25); ("note", Json.Int 2) ]
  in
  let r = Diff.compare a b in
  check Alcotest.int "cycles up + utilization down = two regressions" 2 r.Diff.regressions;
  check Alcotest.int "unrecognized key only informs" 1 r.Diff.changes;
  let r' = Diff.compare b a in
  check Alcotest.int "reverse direction: no regressions" 0 r'.Diff.regressions;
  check Alcotest.int "reverse direction: two improvements" 2 r'.Diff.improvements;
  (* added/removed metrics never gate *)
  let c = mk [ ("cycles", Json.Int 100) ] in
  let r'' = Diff.compare a c in
  check Alcotest.bool "removed metric does not gate" false (Diff.regressed r'');
  check Alcotest.bool "removal is reported" true
    (List.exists (fun e -> e.Diff.status = Diff.Removed) r''.Diff.entries);
  (* within-threshold drift is unchanged *)
  let d = mk [ ("cycles", Json.Int 103); ("utilization", Json.Float 0.5); ("note", Json.Int 1) ] in
  let r3 = Diff.compare ~threshold:0.05 a d in
  check Alcotest.int "3% drift within 5% threshold" 0 (r3.Diff.regressions + r3.Diff.changes);
  let table = Diff.render r in
  check Alcotest.bool "render flags the regression" true
    (Astring.String.is_infix ~affix:"REGRESSED" table)

let test_diff_cycles_per_sec_higher_better () =
  (* "cycles_per_sec" must match the higher-is-better token before the
     lower-is-better "cycles" token: a throughput drop is the regression *)
  let mk v =
    Report.v ~kind:"t" ~app:"a"
      ~sections:[ ("m", Json.Obj [ ("sim_cycles_per_sec", Json.Float v) ]) ]
      ()
  in
  let fast = mk 4.0e6 and slow = mk 1.0e6 in
  let r = Diff.compare fast slow in
  check Alcotest.bool "throughput drop regresses" true (Diff.regressed r);
  check Alcotest.bool "keyed on sim_cycles_per_sec" true
    (List.exists
       (fun e -> e.Diff.key = "m.sim_cycles_per_sec" && e.Diff.status = Diff.Regressed)
       r.Diff.entries);
  let r' = Diff.compare slow fast in
  check Alcotest.int "throughput gain never gates" 0 r'.Diff.regressions;
  check Alcotest.bool "gain reads as improvement" true
    (List.exists
       (fun e -> e.Diff.key = "m.sim_cycles_per_sec" && e.Diff.status = Diff.Improved)
       r'.Diff.entries)

(* --- CLI diff exit codes (0 clean / 1 regression / 2 malformed) --- *)

let cli_exe = Filename.concat (Filename.concat Filename.parent_dir_name "bin") "agp_cli.exe"

let test_cli_diff_exit_codes () =
  if not (Sys.file_exists cli_exe) then ()
  else begin
    let write path s =
      let oc = open_out path in
      output_string oc s;
      output_char oc '\n';
      close_out oc
    in
    let a = Filename.temp_file "agp_base" ".json" in
    let b = Filename.temp_file "agp_slow" ".json" in
    let m = Filename.temp_file "agp_bad" ".json" in
    write a (Report.to_string (captured_report ()));
    write b
      (Report.to_string (captured_report ~config:(Config.scale_bandwidth Config.default 0.25) ()));
    write m "{ this is not json";
    let run args = Sys.command (Printf.sprintf "%s diff %s >/dev/null 2>&1" cli_exe args) in
    check Alcotest.int "identical reports exit 0" 0 (run (a ^ " " ^ a));
    check Alcotest.int "regressed report exits 1" 1 (run (a ^ " " ^ b));
    check Alcotest.int "malformed report exits 2" 2 (run (a ^ " " ^ m));
    check Alcotest.int "missing file exits 2" 2 (run (a ^ " /nonexistent/x.json"));
    List.iter Sys.remove [ a; b; m ]
  end

(* --- Explore sweep export --- *)

let test_explore_csv_and_report () =
  let app = small_app () in
  let candidates =
    [ { Agp_exp.Explore.lanes = 64; pipelines_per_set = 2; window_factor = 1 } ]
  in
  let outcomes = Agp_exp.Explore.sweep ~candidates app in
  let csv = Agp_exp.Explore.to_csv outcomes in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "header + one row per candidate" (List.length outcomes + 1)
    (List.length lines);
  check Alcotest.string "csv header"
    "lanes,pipes_per_set,window,cycles,utilization,mem_frac,rdv_frac,squash_frac,alms,registers,fits"
    (List.hd lines);
  let doc = Agp_exp.Explore.report app outcomes in
  check Alcotest.string "report kind" "explore-sweep" doc.Report.kind;
  match Report.of_string (Report.to_string doc) with
  | Ok doc2 ->
      check Alcotest.bool "sweep report round-trips" true
        (String.equal (Report.to_string doc) (Report.to_string doc2))
  | Error e -> Alcotest.failf "sweep report does not reparse: %s" e

let () =
  Alcotest.run "agp_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "error positions" `Quick test_json_error_positions;
          Alcotest.test_case "fuzz never raises" `Quick test_json_fuzz_never_raises;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "percentile" `Quick test_metrics_percentile;
        ] );
      ( "window",
        [
          Alcotest.test_case "observe and prune" `Quick test_window_observe_and_prune;
          Alcotest.test_case "cap drops oldest" `Quick test_window_cap_drops_oldest;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "name sanitization" `Quick test_telemetry_sanitize;
          Alcotest.test_case "prometheus exposition" `Quick test_telemetry_prometheus;
        ] );
      ( "log",
        [ Alcotest.test_case "ndjson lines" `Quick test_log_ndjson ] );
      ( "span",
        [ Alcotest.test_case "concurrent hammer" `Quick test_span_concurrent_hammer ] );
      ( "sink",
        [
          Alcotest.test_case "null" `Quick test_sink_null;
          Alcotest.test_case "collect" `Quick test_sink_collect;
          Alcotest.test_case "ring" `Quick test_sink_ring;
        ] );
      ( "components",
        [
          Alcotest.test_case "memory events" `Quick test_memory_events;
          Alcotest.test_case "wavefront events" `Quick test_wavefront_events;
        ] );
      ( "accelerator",
        [
          Alcotest.test_case "event taxonomy" `Quick test_accel_event_taxonomy;
          Alcotest.test_case "attribution sums" `Quick test_accel_attribution_sums;
          Alcotest.test_case "null sink identical" `Quick test_accel_null_sink_identical;
          Alcotest.test_case "squash waste" `Quick test_accel_squash_waste_appears;
          Alcotest.test_case "reclassify + render" `Quick test_attribution_render_and_reclassify;
        ] );
      ( "chrome_trace",
        [
          Alcotest.test_case "well-formed" `Quick test_chrome_trace_wellformed;
          Alcotest.test_case "stable ids" `Quick test_chrome_trace_stable;
          Alcotest.test_case "row naming" `Quick test_chrome_trace_rows;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "span phase invariant" `Quick test_lifecycle_span_invariant;
          Alcotest.test_case "per-set summary" `Quick test_lifecycle_summarize;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "sample count" `Quick test_timeline_sample_count;
          Alcotest.test_case "window conservation" `Quick test_timeline_conservation;
          Alcotest.test_case "no observer effect" `Quick test_accel_fully_instrumented_identical;
        ] );
      ( "report",
        [
          Alcotest.test_case "round-trip bit-identical" `Quick test_report_roundtrip_bit_identical;
          Alcotest.test_case "envelope validation" `Quick test_report_envelope_validation;
          Alcotest.test_case "flatten" `Quick test_report_flatten;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical clean" `Quick test_diff_identical;
          Alcotest.test_case "degraded bandwidth regresses" `Quick
            test_diff_degraded_bandwidth_regresses;
          Alcotest.test_case "directions and shape" `Quick test_diff_directions_and_shape;
          Alcotest.test_case "cycles/sec higher-better" `Quick
            test_diff_cycles_per_sec_higher_better;
          Alcotest.test_case "cli exit codes" `Quick test_cli_diff_exit_codes;
        ] );
      ( "explore_export",
        [ Alcotest.test_case "csv and report" `Quick test_explore_csv_and_report ] );
    ]
