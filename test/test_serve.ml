(* Tests for the Agp_serve daemon: wire-protocol codec round-trips,
   fuzzed malformed input, admission control (bounded queue, watermark
   shedding, tenant quotas, drain/recover), and the socket-free
   per-line server state machine. *)

module Json = Agp_obs.Json
module Protocol = Agp_serve.Protocol
module Admission = Agp_serve.Admission
module Scheduler = Agp_serve.Scheduler
module Server = Agp_serve.Server
module Loadgen = Agp_serve.Loadgen
module Backend = Agp_backend.Backend

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- wire protocol: round-trip every variant --- *)

let sample_run =
  {
    Protocol.id = "r1";
    tenant = "team-a";
    app = "spec-bfs";
    scale = "small";
    seed = 7;
    backend = "runtime:4";
    obs = true;
  }

let all_requests =
  [
    Protocol.Hello { Protocol.client = "t"; version = "0.0"; protocol = 1 };
    Protocol.Run sample_run;
    Protocol.Stats;
    Protocol.Metrics;
    Protocol.Ping;
    Protocol.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok back -> check Alcotest.bool "request survives codec" true (back = req)
      | Error e -> Alcotest.failf "request did not re-parse: %s" e)
    all_requests

let sample_outcome verdict =
  {
    Protocol.out_id = "r1";
    verdict;
    backend = "simulator";
    seconds = Some 0.012;
    tasks = Some 512;
    batch = 3;
    shard = 1;
    timing = { Protocol.queue_ms = 1.5; build_ms = 0.25; exec_ms = 12.0 };
    report = Some (Json.Obj [ ("schema_version", Json.Int 1) ]);
  }

let all_responses =
  [
    Protocol.Hello_ack { server = "agp-serve"; version = "0.0"; protocol = 1; schema = 1 };
    Protocol.Result (sample_outcome Protocol.Valid);
    Protocol.Result (sample_outcome (Protocol.Invalid "mismatch"));
    Protocol.Result (sample_outcome (Protocol.Liveness "deadlock"));
    Protocol.Result (sample_outcome (Protocol.Unsupported "timing model"));
    Protocol.Overloaded
      {
        id = "r2";
        reason = Protocol.Queue_full { depth = 9; watermark = 8 };
        retry_after_ms = 40.0;
      };
    Protocol.Overloaded
      {
        id = "r3";
        reason = Protocol.Quota_exceeded { tenant = "team-a"; in_flight = 4; quota = 4 };
        retry_after_ms = 10.0;
      };
    Protocol.Overloaded { id = "r4"; reason = Protocol.Draining; retry_after_ms = 1.0 };
    Protocol.Stats_reply
      {
        Protocol.uptime_ms = 12.5;
        accepted = 10;
        completed = 8;
        shed = 1;
        errors = 1;
        depth = 1;
        in_flight = 2;
        spans =
          [
            {
              Agp_obs.Span.sp_phase = "execute";
              sp_count = 8;
              sp_mean_ms = 3.0;
              sp_p50_ms = 2.5;
              sp_p90_ms = 5.0;
              sp_p99_ms = 6.0;
              sp_max_ms = 6.5;
            };
          ];
      };
    Protocol.Metrics_reply
      { text = "# TYPE serve_requests_total counter\nserve_requests_total 3\n" };
    Protocol.Pong;
    Protocol.Shutdown_ack { completed = 42 };
    Protocol.Error_reply
      { id = None; kind = Protocol.Parse; message = "bad"; line = Some 1; col = Some 3 };
    Protocol.Error_reply
      { id = Some "r9"; kind = Protocol.Bad_request; message = "nope"; line = None; col = None };
    Protocol.Error_reply
      { id = None; kind = Protocol.Incompatible; message = "v9"; line = None; col = None };
    Protocol.Error_reply
      { id = Some "r0"; kind = Protocol.Internal; message = "boom"; line = None; col = None };
  ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      match Protocol.response_of_json (Protocol.response_to_json resp) with
      | Ok back -> check Alcotest.bool "response survives codec" true (back = resp)
      | Error e -> Alcotest.failf "response did not re-parse: %s" e)
    all_responses

let test_wire_lines () =
  (* write then response_of_string is the path the loadgen client uses *)
  List.iter
    (fun resp ->
      match Protocol.response_of_string (Protocol.write resp) with
      | Ok back -> check Alcotest.bool "line survives" true (back = resp)
      | Error e -> Alcotest.failf "wire line did not re-parse: %s" e)
    all_responses;
  List.iter
    (fun req ->
      match Protocol.read_request (Protocol.write_request req) with
      | Ok back -> check Alcotest.bool "request line survives" true (back = req)
      | Error _ -> Alcotest.fail "request line rejected")
    all_requests

let test_run_defaults () =
  match Protocol.read_request {|{"type":"run","id":"a","app":"spec-bfs"}|} with
  | Ok (Protocol.Run r) ->
      check Alcotest.string "tenant default" "anon" r.Protocol.tenant;
      check Alcotest.string "scale default" "small" r.Protocol.scale;
      check Alcotest.int "seed default" 42 r.Protocol.seed;
      check Alcotest.string "backend default" "simulator" r.Protocol.backend;
      check Alcotest.bool "obs default" false r.Protocol.obs
  | _ -> Alcotest.fail "minimal run request rejected"

let test_parse_error_is_positioned () =
  match Protocol.read_request {|{"type":"run", "id": }|} with
  | Error (Protocol.Error_reply { kind = Protocol.Parse; line; col; _ }) ->
      check Alcotest.bool "line" true (line = Some 1);
      check Alcotest.bool "col present" true (col <> None)
  | Error _ -> Alcotest.fail "wrong error shape for malformed JSON"
  | Ok _ -> Alcotest.fail "accepted malformed JSON"

let test_semantic_error_echoes_id () =
  match Protocol.read_request {|{"type":"run","id":"x7"}|} with
  | Error (Protocol.Error_reply { kind = Protocol.Bad_request; id; _ }) ->
      check Alcotest.bool "id echoed" true (id = Some "x7")
  | Error _ -> Alcotest.fail "wrong error shape for missing app"
  | Ok _ -> Alcotest.fail "accepted run without app"

(* Fuzz: no input line may crash the decoder, and anything that is not
   valid JSON must come back as a typed, positioned Parse error. *)
let fuzz_malformed_lines =
  QCheck.Test.make ~name:"read_request never raises; bad JSON is a positioned parse error"
    ~count:500
    QCheck.(string_of_size (Gen.int_range 0 80))
    (fun s ->
      match Protocol.read_request s with
      | Ok _ -> true
      | Error (Protocol.Error_reply { kind = Protocol.Parse; line; col; _ }) ->
          line <> None && col <> None
      | Error (Protocol.Error_reply _) -> true
      | Error _ -> false)

(* Mutate a valid request line at one byte: still never a crash. *)
let fuzz_mutated_lines =
  let base = Protocol.write_request (Protocol.Run sample_run) in
  QCheck.Test.make ~name:"single-byte mutations decode or fail in a structured way" ~count:500
    QCheck.(pair (int_range 0 (String.length base - 1)) (int_range 0 255))
    (fun (i, b) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated i (Char.chr b);
      match Protocol.read_request (Bytes.to_string mutated) with
      | Ok _ | Error (Protocol.Error_reply _) -> true
      | Error _ -> false)

(* --- admission control --- *)

let admission_config ?(depth = 4) ?(watermark = 4) ?(quota = 2) () =
  { Admission.queue_depth = depth; shed_watermark = watermark; tenant_quota = quota }

let test_queue_fills_then_sheds () =
  let a = Admission.create (admission_config ~depth:3 ~watermark:3 ~quota:10 ()) in
  List.iter
    (fun i ->
      match Admission.submit a ~tenant:"t" i with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "submit %d shed below watermark" i)
    [ 0; 1; 2 ];
  (match Admission.submit a ~tenant:"t" 3 with
  | Error (Protocol.Queue_full { depth; watermark }) ->
      check Alcotest.int "depth at shed" 3 depth;
      check Alcotest.int "watermark" 3 watermark
  | Ok () -> Alcotest.fail "queue admitted past the watermark"
  | Error _ -> Alcotest.fail "wrong shed reason");
  check Alcotest.int "depth" 3 (Admission.depth a)

let test_tenant_quota () =
  let a = Admission.create (admission_config ~depth:10 ~watermark:10 ~quota:2 ()) in
  check Alcotest.bool "1st" true (Admission.submit a ~tenant:"a" 1 = Ok ());
  check Alcotest.bool "2nd" true (Admission.submit a ~tenant:"a" 2 = Ok ());
  (match Admission.submit a ~tenant:"a" 3 with
  | Error (Protocol.Quota_exceeded { tenant; in_flight; quota }) ->
      check Alcotest.string "tenant" "a" tenant;
      check Alcotest.int "in_flight" 2 in_flight;
      check Alcotest.int "quota" 2 quota
  | _ -> Alcotest.fail "third request for tenant a should exceed the quota");
  (* another tenant is unaffected *)
  check Alcotest.bool "other tenant" true (Admission.submit a ~tenant:"b" 4 = Ok ());
  (* quota releases on finish, not on take: draining the queue is not enough *)
  let _ = Admission.take_batch a ~max:8 ~compatible:(fun _ _ -> true) in
  (match Admission.submit a ~tenant:"a" 5 with
  | Error (Protocol.Quota_exceeded _) -> ()
  | _ -> Alcotest.fail "quota must be held until finish");
  Admission.finish a ~tenant:"a";
  check Alcotest.bool "after finish" true (Admission.submit a ~tenant:"a" 6 = Ok ())

let test_drain_and_recover () =
  let a = Admission.create (admission_config ~depth:2 ~watermark:2 ~quota:8 ()) in
  check Alcotest.bool "fill 1" true (Admission.submit a ~tenant:"t" 1 = Ok ());
  check Alcotest.bool "fill 2" true (Admission.submit a ~tenant:"t" 2 = Ok ());
  (match Admission.submit a ~tenant:"t" 3 with
  | Error (Protocol.Queue_full _) -> ()
  | _ -> Alcotest.fail "expected shed at watermark");
  let batch = Admission.take_batch a ~max:8 ~compatible:(fun _ _ -> true) in
  check Alcotest.int "batch drains queue" 2 (List.length batch);
  List.iter (fun _ -> Admission.finish a ~tenant:"t") batch;
  (* same admission instance accepts again — no restart needed *)
  check Alcotest.bool "recovered" true (Admission.submit a ~tenant:"t" 4 = Ok ());
  check Alcotest.int "depth after recover" 1 (Admission.depth a)

let test_batch_compatibility () =
  let a = Admission.create (admission_config ~depth:10 ~watermark:10 ~quota:10 ()) in
  List.iter
    (fun x -> check Alcotest.bool "submit" true (Admission.submit a ~tenant:"t" x = Ok ()))
    [ 1; 2; 11; 3; 12 ];
  (* compatible = same decade; head is 1, so the batch is 1,2,3 *)
  let batch = Admission.take_batch a ~max:8 ~compatible:(fun a b -> a / 10 = b / 10) in
  check Alcotest.bool "grouped" true (batch = [ 1; 2; 3 ]);
  let batch2 = Admission.take_batch a ~max:8 ~compatible:(fun a b -> a / 10 = b / 10) in
  check Alcotest.bool "remainder in order" true (batch2 = [ 11; 12 ])

let test_close_sheds_draining () =
  let a = Admission.create (admission_config ()) in
  Admission.close a;
  (match Admission.submit a ~tenant:"t" 1 with
  | Error Protocol.Draining -> ()
  | _ -> Alcotest.fail "closed admission must shed with Draining");
  check Alcotest.bool "take returns empty when closed+drained" true
    (Admission.take_batch a ~max:4 ~compatible:(fun _ _ -> true) = [])

(* --- server state machine (no sockets) --- *)

(* Collect responses across threads: run results arrive from shards. *)
let collector () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let acc = ref [] in
  let respond r =
    Mutex.lock m;
    acc := r :: !acc;
    Condition.signal c;
    Mutex.unlock m
  in
  let wait_for pred =
    Mutex.lock m;
    let deadline = Unix.gettimeofday () +. 30.0 in
    let found = ref (List.find_opt pred !acc) in
    while !found = None && Unix.gettimeofday () < deadline do
      Condition.wait c m;
      found := List.find_opt pred !acc
    done;
    Mutex.unlock m;
    !found
  in
  let all () =
    Mutex.lock m;
    let r = List.rev !acc in
    Mutex.unlock m;
    r
  in
  (respond, wait_for, all)

let line json = check Alcotest.bool "continue" true (json = `Continue)

let test_ping_and_hello () =
  let t = Server.create () in
  let respond, _, all = collector () in
  line (Server.handle_line t ~respond {|{"type":"ping"}|});
  line
    (Server.handle_line t ~respond
       {|{"type":"hello","client":"t","version":"0","protocol":2}|});
  line
    (Server.handle_line t ~respond
       {|{"type":"hello","client":"t","version":"0","protocol":99}|});
  (match all () with
  | [ Protocol.Pong; Protocol.Hello_ack ack; Protocol.Error_reply e ] ->
      check Alcotest.int "protocol" Protocol.protocol_version ack.protocol;
      check Alcotest.int "schema" Agp_obs.Report.schema_version ack.schema;
      check Alcotest.bool "incompatible" true (e.kind = Protocol.Incompatible)
  | _ -> Alcotest.fail "unexpected response sequence");
  Server.shutdown t

let test_bad_run_requests () =
  let t = Server.create () in
  let respond, _, all = collector () in
  line (Server.handle_line t ~respond {|{"type":"run","id":"a","app":"no-such-app"}|});
  line
    (Server.handle_line t ~respond
       {|{"type":"run","id":"b","app":"spec-bfs","backend":"no-such-backend"}|});
  line
    (Server.handle_line t ~respond
       {|{"type":"run","id":"c","app":"spec-bfs","backend":"cpu-1core","obs":true}|});
  (match all () with
  | [ Protocol.Error_reply a; Protocol.Error_reply b; Protocol.Error_reply c ] ->
      check Alcotest.bool "unknown app lists apps" true
        (Astring.String.is_infix ~affix:"spec-bfs" a.message);
      check Alcotest.bool "unknown backend lists registry" true
        (Astring.String.is_infix ~affix:"registered backends" b.message);
      check Alcotest.bool "obs on timing model refused" true
        (c.kind = Protocol.Bad_request)
  | _ -> Alcotest.fail "expected three bad-request replies");
  let s = Server.stats t in
  check Alcotest.int "errors counted" 3 s.Protocol.errors;
  check Alcotest.int "nothing accepted" 0 s.Protocol.accepted;
  Server.shutdown t

let test_run_to_completion () =
  let t = Server.create () in
  let respond, wait_for, _ = collector () in
  line
    (Server.handle_line t ~respond
       {|{"type":"run","id":"ok1","app":"spec-bfs","scale":"small","backend":"simulator","obs":true}|});
  (match
     wait_for (function Protocol.Result o -> o.Protocol.out_id = "ok1" | _ -> false)
   with
  | Some (Protocol.Result o) ->
      check Alcotest.int "valid verdict exit code" 0 (Protocol.exit_code o.Protocol.verdict);
      check Alcotest.string "backend resolved" "simulator" o.Protocol.backend;
      check Alcotest.bool "report attached" true (o.Protocol.report <> None);
      (match o.Protocol.report with
      | Some doc -> begin
          match Agp_obs.Report.of_json doc with
          | Ok r ->
              check Alcotest.string "report app" "spec-bfs"
                (String.lowercase_ascii r.Agp_obs.Report.app)
          | Error e -> Alcotest.failf "embedded report invalid: %s" e
        end
      | None -> ())
  | _ -> Alcotest.fail "no result for admitted request");
  let s = Server.stats t in
  check Alcotest.int "completed" 1 s.Protocol.completed;
  check Alcotest.int "in_flight settles" 0 s.Protocol.in_flight;
  Server.shutdown t

let test_watermark_zero_sheds_everything () =
  (* watermark 0 makes every submission shed — deterministic overload *)
  let config =
    {
      Server.admission = { Admission.queue_depth = 4; shed_watermark = 0; tenant_quota = 4 };
      scheduler = { Scheduler.shards = 1; max_batch = 2 };
    }
  in
  let t = Server.create ~config () in
  let respond, _, all = collector () in
  line (Server.handle_line t ~respond {|{"type":"run","id":"s1","app":"spec-bfs"}|});
  (match all () with
  | [ Protocol.Overloaded { id; reason = Protocol.Queue_full _; retry_after_ms } ] ->
      check Alcotest.string "id echoed" "s1" id;
      check Alcotest.bool "retry hint positive" true (retry_after_ms > 0.0)
  | _ -> Alcotest.fail "expected a typed Overloaded shed");
  let s = Server.stats t in
  check Alcotest.int "shed counted" 1 s.Protocol.shed;
  Server.shutdown t

let test_shutdown_request_drains () =
  let t = Server.create () in
  let respond, wait_for, _ = collector () in
  line (Server.handle_line t ~respond {|{"type":"run","id":"d1","app":"spec-bfs"}|});
  let verdict =
    Server.handle_line t ~respond {|{"type":"shutdown"}|}
  in
  check Alcotest.bool "shutdown verdict" true (verdict = `Shutdown);
  (* the admitted request completed before the ack was sent *)
  (match wait_for (function Protocol.Shutdown_ack _ -> true | _ -> false) with
  | Some (Protocol.Shutdown_ack { completed }) -> check Alcotest.int "drained" 1 completed
  | _ -> Alcotest.fail "no shutdown ack");
  (match wait_for (function Protocol.Result _ -> true | _ -> false) with
  | Some _ -> ()
  | None -> Alcotest.fail "admitted request lost on shutdown");
  (* post-shutdown submissions shed as Draining *)
  let respond2, _, all2 = collector () in
  line (Server.handle_line t ~respond:respond2 {|{"type":"run","id":"d2","app":"spec-bfs"}|});
  match all2 () with
  | [ Protocol.Overloaded { reason = Protocol.Draining; _ } ] -> ()
  | _ -> Alcotest.fail "post-shutdown request should shed as Draining"

let test_metrics_request () =
  let t = Server.create () in
  let respond, wait_for, _ = collector () in
  line
    (Server.handle_line t ~respond
       {|{"type":"run","id":"m1","app":"spec-bfs","scale":"small","backend":"simulator"}|});
  (match wait_for (function Protocol.Result _ -> true | _ -> false) with
  | Some _ -> ()
  | None -> Alcotest.fail "request never completed");
  let respond2, _, all2 = collector () in
  line (Server.handle_line t ~respond:respond2 {|{"type":"metrics"}|});
  (match all2 () with
  | [ Protocol.Metrics_reply { text } ] ->
      let has affix name =
        check Alcotest.bool name true (Astring.String.is_infix ~affix text)
      in
      has "# TYPE serve_requests_accepted_total counter\nserve_requests_accepted_total 1\n"
        "accepted counter scraped";
      has "serve_requests_completed_total 1\n" "completed counter scraped";
      has "serve_requests_shed_total 0\n" "shed counter scraped";
      (* point-in-time gauges are refreshed at scrape *)
      has "# TYPE serve_queue_depth gauge\n" "queue depth gauge";
      has "# TYPE serve_uptime_seconds gauge\n" "uptime gauge";
      (* rolling windows render as summaries; one completion = one sample *)
      has "# TYPE serve_latency_ms summary\n" "latency window";
      has "serve_latency_ms_count 1\n" "latency window saw the request";
      has "serve_latency_ms{quantile=\"0.99\"}" "latency p99 line";
      has "serve_exec_ms_count 1\n" "exec window saw the request"
  | _ -> Alcotest.fail "expected a single Metrics_reply");
  (* the same exposition backs agp stats via Server.prometheus *)
  check Alcotest.bool "prometheus accessor agrees" true
    (Astring.String.is_infix ~affix:"serve_requests_completed_total"
       (Server.prometheus t));
  Server.shutdown t

let test_request_trace_capture () =
  let dir = Filename.temp_file "agp_trace" "" in
  Sys.remove dir;
  let log_path = Filename.temp_file "agp_servelog" ".ndjson" in
  let log_oc = open_out log_path in
  let log =
    Agp_obs.Log.create ~level:Agp_obs.Log.Debug ~clock:Unix.gettimeofday ~out:log_oc ()
  in
  let t = Server.create ~log ~trace_dir:dir () in
  (match Server.tracer t with
  | Some _ -> ()
  | None -> Alcotest.fail "trace_dir did not enable the tracer");
  let respond, wait_for, _ = collector () in
  line
    (Server.handle_line t ~respond
       {|{"type":"run","id":"t1","app":"spec-bfs","scale":"small","backend":"simulator","obs":true}|});
  (match wait_for (function Protocol.Result o -> o.Protocol.out_id = "t1" | _ -> false) with
  | Some (Protocol.Result o) ->
      (* the obs report carries the request id in its meta *)
      (match o.Protocol.report with
      | Some doc -> begin
          match Agp_obs.Report.of_json doc with
          | Ok r ->
              check Alcotest.bool "report meta carries request id" true
                (List.assoc_opt "request_id" r.Agp_obs.Report.meta
                = Some (Json.String "t1"))
          | Error e -> Alcotest.failf "embedded report invalid: %s" e
        end
      | None -> Alcotest.fail "obs report missing")
  | _ -> Alcotest.fail "no result for traced request");
  Server.shutdown t;
  close_out log_oc;
  (* drain flushed the capture: parse it as a Chrome trace *)
  let trace_file = Filename.concat dir "serve-trace.json" in
  check Alcotest.bool "trace file written on drain" true (Sys.file_exists trace_file);
  let ic = open_in trace_file in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  (match Json.parse body with
  | Ok (Json.Obj kv) -> begin
      match List.assoc_opt "traceEvents" kv with
      | Some (Json.List events) ->
          let assoc k = function Json.Obj fields -> List.assoc_opt k fields | _ -> None in
          let slices =
            List.filter (fun e -> assoc "ph" e = Some (Json.String "X")) events
          in
          let phase_names =
            List.filter_map (fun e -> assoc "name" e) slices
          in
          List.iter
            (fun want ->
              check Alcotest.bool (Printf.sprintf "trace has %s slice" want) true
                (List.mem (Json.String want) phase_names))
            [ "queue"; "build"; "execute" ];
          List.iter
            (fun e ->
              check Alcotest.bool "slice categorized as request" true
                (assoc "cat" e = Some (Json.String "request"));
              (match assoc "args" e with
              | Some (Json.Obj args) ->
                  check Alcotest.bool "slice args carry the request id" true
                    (List.assoc_opt "request" args = Some (Json.String "t1"))
              | _ -> Alcotest.fail "slice without args");
              match (assoc "ts" e, assoc "dur" e) with
              | Some (Json.Int ts), Some (Json.Int dur) ->
                  check Alcotest.bool "timestamps rebased non-negative" true
                    (ts >= 0 && dur >= 0)
              | _ -> Alcotest.fail "slice missing ts/dur")
            slices;
          (* one row per request: a thread_name metadata event names it *)
          check Alcotest.bool "request id names its trace row" true
            (List.exists
               (fun e ->
                 assoc "name" e = Some (Json.String "thread_name")
                 && (match assoc "args" e with
                    | Some (Json.Obj args) ->
                        List.assoc_opt "name" args = Some (Json.String "t1")
                    | _ -> false))
               events)
      | _ -> Alcotest.fail "trace lacks traceEvents"
    end
  | Ok _ -> Alcotest.fail "trace root not an object"
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e);
  (* the structured log correlates daemon lines with the same request id *)
  let ic = open_in log_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let logged_req =
    List.exists
      (fun l ->
        match Json.parse l with
        | Ok (Json.Obj kv) -> List.assoc_opt "req" kv = Some (Json.String "t1")
        | _ -> false)
      !lines
  in
  check Alcotest.bool "log lines carry the request id" true logged_req;
  check Alcotest.bool "every log line is one JSON object" true
    (List.for_all
       (fun l -> match Json.parse l with Ok (Json.Obj _) -> true | _ -> false)
       !lines);
  Sys.remove log_path;
  Sys.remove trace_file;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* --- loadgen percentile totality (satellite) --- *)

let test_loadgen_percentile_tiny () =
  check (Alcotest.float 1e-9) "no samples is 0" 0.0 (Loadgen.percentile_ms [] 50.0);
  check (Alcotest.float 1e-9) "no samples p99 is 0" 0.0 (Loadgen.percentile_ms [] 99.0);
  check (Alcotest.float 1e-9) "n=1 p50" 5.0 (Loadgen.percentile_ms [ 5.0 ] 50.0);
  check (Alcotest.float 1e-9) "n=1 p99 is the sample" 5.0 (Loadgen.percentile_ms [ 5.0 ] 99.0);
  check (Alcotest.float 1e-9) "n=2 p50 is the lower" 1.0 (Loadgen.percentile_ms [ 2.0; 1.0 ] 50.0);
  check (Alcotest.float 1e-9) "n=2 p99 is the max" 2.0 (Loadgen.percentile_ms [ 2.0; 1.0 ] 99.0);
  check (Alcotest.float 1e-9) "n=3 p50 is the middle" 2.0
    (Loadgen.percentile_ms [ 3.0; 1.0; 2.0 ] 50.0)

(* --- satellites: backend find UX, version --- *)

let test_unknown_backend_message () =
  match Backend.find "no-such-backend" with
  | Ok _ -> Alcotest.fail "found a backend that should not exist"
  | Error e ->
      List.iter
        (fun needle ->
          check Alcotest.bool (Printf.sprintf "mentions %s" needle) true
            (Astring.String.is_infix ~affix:needle e))
        [ "registered backends"; "simulator"; "runtime:<workers>"; "parallel:<domains>" ]

let test_unknown_backend_suggests () =
  match Backend.find "simulater" with
  | Ok _ -> Alcotest.fail "typo resolved unexpectedly"
  | Error e ->
      check Alcotest.bool "did-you-mean" true
        (Astring.String.is_infix ~affix:{|did you mean "simulator"|} e)

let test_version_string () =
  check Alcotest.bool "version non-empty" true (String.length Agp_util.Version.version > 0);
  (* the handshake triple the daemon advertises *)
  let t = Server.create () in
  let respond, _, all = collector () in
  line
    (Server.handle_line t ~respond
       {|{"type":"hello","client":"t","version":"0","protocol":2}|});
  (match all () with
  | [ Protocol.Hello_ack ack ] ->
      check Alcotest.string "daemon version is the compiled-in one"
        Agp_util.Version.version ack.version
  | _ -> Alcotest.fail "no hello ack");
  Server.shutdown t

(* --- loadgen report shape --- *)

let test_saturation_report_shape () =
  let s =
    {
      Loadgen.label = "rate_50";
      offered_rps = 50.0;
      duration_s = 2.0;
      sent = 100;
      ok = 90;
      failed = 0;
      shed = 10;
      lost = 0;
      achieved_rps = 45.0;
      p50_ms = 4.0;
      p90_ms = 9.0;
      p99_ms = 20.0;
      max_ms = 25.0;
    }
  in
  let doc = Loadgen.report ~meta:[ ("app", "spec-bfs") ] [ s ] in
  check Alcotest.string "kind" "serve-saturation" doc.Agp_obs.Report.kind;
  (* flattens into diffable metrics with gated key tokens *)
  let flat = Agp_obs.Report.flatten doc in
  let has k = List.mem_assoc k flat in
  List.iter
    (fun k -> check Alcotest.bool (Printf.sprintf "flattened %s" k) true (has k))
    [ "rate_50.achieved_rps"; "rate_50.p99_ms"; "rate_50.shed_rate" ];
  (* round-trips through the envelope validator *)
  match Agp_obs.Report.of_string (Agp_obs.Report.to_string doc) with
  | Ok back -> check Alcotest.bool "envelope round-trip" true (back = doc)
  | Error e -> Alcotest.failf "saturation report rejected: %s" e

let test_diff_gates_serving_regression () =
  let mk ~rps ~p99 ~shed =
    Loadgen.report
      [
        {
          Loadgen.label = "rate_100";
          offered_rps = 100.0;
          duration_s = 2.0;
          sent = 200;
          ok = 200 - shed;
          failed = 0;
          shed;
          lost = 0;
          achieved_rps = rps;
          p50_ms = 2.0;
          p90_ms = 5.0;
          p99_ms = p99;
          max_ms = p99 +. 2.0;
        };
      ]
  in
  let base = mk ~rps:100.0 ~p99:10.0 ~shed:0 in
  let slower = mk ~rps:60.0 ~p99:45.0 ~shed:40 in
  let d = Agp_obs.Diff.compare ~threshold:0.05 base slower in
  check Alcotest.bool "throughput collapse regresses" true (Agp_obs.Diff.regressed d);
  let clean = Agp_obs.Diff.compare ~threshold:0.05 base base in
  check Alcotest.bool "identical clean" false (Agp_obs.Diff.regressed clean)

let () =
  Alcotest.run "agp_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "wire lines" `Quick test_wire_lines;
          Alcotest.test_case "run defaults" `Quick test_run_defaults;
          Alcotest.test_case "positioned parse errors" `Quick test_parse_error_is_positioned;
          Alcotest.test_case "semantic errors echo id" `Quick test_semantic_error_echoes_id;
          qtest fuzz_malformed_lines;
          qtest fuzz_mutated_lines;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue fills then sheds" `Quick test_queue_fills_then_sheds;
          Alcotest.test_case "tenant quota" `Quick test_tenant_quota;
          Alcotest.test_case "drain and recover" `Quick test_drain_and_recover;
          Alcotest.test_case "batch compatibility" `Quick test_batch_compatibility;
          Alcotest.test_case "closed sheds draining" `Quick test_close_sheds_draining;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and hello" `Quick test_ping_and_hello;
          Alcotest.test_case "bad run requests" `Quick test_bad_run_requests;
          Alcotest.test_case "run to completion" `Quick test_run_to_completion;
          Alcotest.test_case "watermark zero sheds" `Quick test_watermark_zero_sheds_everything;
          Alcotest.test_case "shutdown drains" `Quick test_shutdown_request_drains;
          Alcotest.test_case "metrics exposition" `Quick test_metrics_request;
          Alcotest.test_case "request trace capture" `Quick test_request_trace_capture;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "unknown backend message" `Quick test_unknown_backend_message;
          Alcotest.test_case "unknown backend suggestion" `Quick test_unknown_backend_suggests;
          Alcotest.test_case "version handshake" `Quick test_version_string;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "saturation report shape" `Quick test_saturation_report_shape;
          Alcotest.test_case "diff gates regression" `Quick test_diff_gates_serving_regression;
          Alcotest.test_case "percentile tiny-n" `Quick test_loadgen_percentile_tiny;
        ] );
    ]
