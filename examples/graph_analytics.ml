(* Graph analytics on the generated accelerators: run both aggressive
   parallelization strategies for BFS plus speculative SSSP and MST on a
   synthetic road network, comparing the FPGA model against the
   software-baseline models through the backend registry — a miniature
   of the paper's §6.3. *)

module App_instance = Agp_apps.App_instance
module Accelerator = Agp_hw.Accelerator
module Backend = Agp_backend.Backend
module Table = Agp_util.Table

let () =
  let seed = 7 in
  let road = Agp_graph.Generator.road ~seed ~width:80 ~height:50 in
  Printf.printf "road network: %d vertices, %d arcs, BFS depth %d\n" road.Agp_graph.Csr.n
    road.Agp_graph.Csr.m
    (Agp_graph.Bfs.diameter_from road 0);
  let random = Agp_graph.Generator.random ~seed ~n:1500 ~m:4500 in
  let apps =
    [
      Agp_apps.Bfs_app.speculative { graph = road; root = 0 };
      Agp_apps.Bfs_app.coordinative { graph = road; root = 0 };
      Agp_apps.Sssp_app.speculative { graph = random; root = 0 };
      Agp_apps.Mst_app.speculative { graph = random };
    ]
  in
  let t =
    Table.create
      [ "app"; "FPGA ms"; "1-core ms"; "10-core ms"; "squashed"; "util"; "cache hit" ]
  in
  List.iter
    (fun (app : App_instance.t) ->
      let hw = Backend.run (Backend.simulator ()) app in
      (match hw.Backend.check with
      | Ok () -> ()
      | Error e -> failwith (app.App_instance.app_name ^ ": " ^ e));
      let report =
        match Backend.simulated_report hw with
        | Some r -> r
        | None -> assert false
      in
      let cpu =
        match Backend.cpu_report (Backend.run Backend.cpu_1core app) with
        | Some r -> r
        | None -> assert false
      in
      let stats = report.Accelerator.engine_stats in
      Table.add_row t
        [
          app.App_instance.app_name;
          Table.cell_float ~decimals:3 (report.Accelerator.seconds *. 1e3);
          Table.cell_float ~decimals:3 (cpu.Agp_baseline.Cpu_model.seconds_1core *. 1e3);
          Table.cell_float ~decimals:3 (cpu.Agp_baseline.Cpu_model.seconds_10core *. 1e3);
          string_of_int (stats.Agp_core.Engine.aborted + stats.Agp_core.Engine.retried);
          Printf.sprintf "%.1f%%" (100.0 *. report.Accelerator.utilization);
          Printf.sprintf "%.1f%%" (100.0 *. report.Accelerator.mem_hit_rate);
        ])
    apps;
  Table.print t;
  print_endline "(all accelerator results validated against the substrate references)"
