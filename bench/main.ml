(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) and, per table/figure, registers a Bechamel
   micro-benchmark of the machinery behind it.

   Scale can be overridden with AGP_BENCH_SCALE=small|medium|default
   (default: Default — the EXPERIMENTS.md headline workloads, ~10
   minutes end to end; the Fig. 10 sweep always runs at Medium to keep
   its 24 accelerator runs affordable). *)

open Bechamel
open Toolkit
module Experiments = Agp_exp.Experiments
module Workloads = Agp_exp.Workloads
module Backend = Agp_backend.Backend

let scale =
  match Sys.getenv_opt "AGP_BENCH_SCALE" with
  | Some s -> begin
      match Workloads.scale_of_string s with
      | Ok sc -> sc
      | Error e ->
          prerr_endline e;
          exit 1
    end
  | None -> Workloads.Default

let scale_name = Workloads.scale_name scale

(* --json [--json-out PATH]: also write the whole evaluation as a
   machine-readable run report (BENCH_<stamp>.json by default), the
   artifact `agp diff` compares across commits. *)
let json_out =
  let argv = Array.to_list Sys.argv in
  let rec find_out = function
    | "--json-out" :: path :: _ -> Some path
    | _ :: rest -> find_out rest
    | [] -> None
  in
  match find_out argv with
  | Some _ as p -> p
  | None ->
      if List.mem "--json" argv then begin
        let t = Unix.localtime (Unix.time ()) in
        Some
          (Printf.sprintf "BENCH_%04d%02d%02d_%02d%02d%02d.json" (t.Unix.tm_year + 1900)
             (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec)
      end
      else None

module Json = Agp_obs.Json

let json_sections : (string * Json.t) list ref = ref []
let add_section name j = json_sections := (name, j) :: !json_sections

let write_json_report () =
  match json_out with
  | None -> ()
  | Some path ->
      let report =
        Agp_obs.Report.v ~kind:"bench" ~app:"all"
          ~meta:[ ("scale", Json.String scale_name) ]
          ~sections:(List.rev !json_sections) ()
      in
      let oc =
        try open_out path
        with Sys_error e ->
          Printf.eprintf "cannot write bench report: %s\n" e;
          exit 1
      in
      output_string oc (Agp_obs.Report.to_string report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s (schema v%d; diff two of these with `agp diff`)\n" path
        Agp_obs.Report.schema_version

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* --- bechamel plumbing: one Test.make per experiment, timed against
   the monotonic clock, reported as ns/run --- *)

let bench_cases : (string * (unit -> unit)) list ref = ref []

let register name fn = bench_cases := (name, fn) :: !bench_cases

let run_microbenches () =
  section "Bechamel micro-benchmarks (ns per run)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let estimates = ref [] in
  List.iter
    (fun (name, fn) ->
      let test = Test.make ~name (Staged.stage fn) in
      let raw = Benchmark.all cfg instances test in
      let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
      let merged = Analyze.merge ols instances results in
      let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
      Hashtbl.iter
        (fun case ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "  %-34s %12.0f ns/run\n%!" case est;
              estimates := (case, Json.Float est) :: !estimates
          | Some _ | None -> Printf.printf "  %-34s (no estimate)\n%!" case)
        clock)
    (List.rev !bench_cases);
  (* microbenchmark timings are machine-dependent: name them so the
     diff direction heuristic treats them as informational, not gating *)
  add_section "microbench_ns_per_run" (Json.Obj (List.rev !estimates))

(* --- Table 1 --- *)

let table1 () =
  section "Table 1 — BFS: OpenCL HLS vs generated accelerators";
  let t1 = Experiments.table1 ~scale () in
  Experiments.print_table1 t1;
  Printf.printf "(OpenCL model iterated %d host rounds)\n" t1.Experiments.opencl_rounds;
  add_section "table1"
    (Json.Obj
       [
         ("opencl_seconds", Json.Float t1.Experiments.opencl_s);
         ("spec_bfs_seconds", Json.Float t1.Experiments.spec_bfs_s);
         ("coor_bfs_seconds", Json.Float t1.Experiments.coor_bfs_s);
         ("opencl_rounds", Json.Int t1.Experiments.opencl_rounds);
       ]);
  register "table1/opencl-model" (fun () ->
      ignore (Agp_baseline.Opencl_model.run_bfs (Workloads.bfs_graph Workloads.Small ~seed:42) 0))

(* --- Figure 9 --- *)

let fig9 () =
  section "Figure 9 — speedup over 1-core and 10-core software";
  let rows = Experiments.fig9 ~scale () in
  Experiments.print_fig9 rows;
  let v1 = List.map (fun r -> r.Experiments.speedup_vs_1) rows in
  let v10 = List.map (fun r -> r.Experiments.speedup_vs_10) rows in
  Printf.printf "vs 1-core range: %.2fx .. %.2fx (paper: 2.3x .. 5.9x)\n"
    (List.fold_left Float.min infinity v1)
    (List.fold_left Float.max 0.0 v1);
  Printf.printf "vs 10-core range: %.2fx .. %.2fx (paper: 0.5x .. 1.9x)\n"
    (List.fold_left Float.min infinity v10)
    (List.fold_left Float.max 0.0 v10);
  add_section "fig9"
    (Json.Obj
       (List.map
          (fun r ->
            ( r.Experiments.app,
              Json.Obj
                [
                  ("fpga_seconds", Json.Float r.Experiments.fpga_s);
                  ("cpu1_seconds", Json.Float r.Experiments.cpu1_s);
                  ("cpu10_seconds", Json.Float r.Experiments.cpu10_s);
                  ("speedup_vs_1", Json.Float r.Experiments.speedup_vs_1);
                  ("speedup_vs_10", Json.Float r.Experiments.speedup_vs_10);
                  ("utilization", Json.Float r.Experiments.utilization);
                ] ))
          rows));
  register "fig9/accelerator-spec-bfs-small" (fun () ->
      let app = Workloads.spec_bfs Workloads.Small ~seed:42 in
      let run = app.Agp_apps.App_instance.fresh () in
      ignore
        (Agp_hw.Accelerator.run ~spec:app.Agp_apps.App_instance.spec
           ~bindings:run.Agp_apps.App_instance.bindings ~state:run.Agp_apps.App_instance.state
           ~initial:run.Agp_apps.App_instance.initial ()));
  register "fig9/cpu-model-spec-bfs-small" (fun () ->
      ignore (Agp_baseline.Cpu_model.run (Workloads.spec_bfs Workloads.Small ~seed:42)))

(* --- Figure 10 --- *)

let fig10 () =
  section "Figure 10 — QPI bandwidth sweep (speedup over 1x / utilization)";
  let rows = Experiments.fig10 () in
  Experiments.print_fig10 rows;
  add_section "fig10"
    (Json.Obj
       (List.map
          (fun r ->
            ( Printf.sprintf "%s_bw%gx" r.Experiments.app10 r.Experiments.factor,
              Json.Obj
                [
                  ("speedup_over_1x", Json.Float r.Experiments.speedup_over_1x);
                  ("utilization", Json.Float r.Experiments.utilization10);
                  ("aborted", Json.Int r.Experiments.aborted);
                ] ))
          rows));
  register "fig10/memory-burst-64-lines" (fun () ->
      let mem = Agp_hw.Memory.create Agp_hw.Config.default in
      ignore
        (Agp_hw.Memory.access_burst mem ~now:0
           ~addrs:(List.init 64 (fun i -> (i * 4096, false)))
           ~dependent:false))

(* --- §6.2 resources --- *)

let resources () =
  section "Section 6.2 — FPGA resource breakdown (Stratix V 5SGXEA7)";
  let rows = Experiments.resources () in
  Experiments.print_resources rows;
  let shares = List.map (fun r -> r.Experiments.rule_register_share) rows in
  Printf.printf "rule-engine register share: %.1f%% .. %.1f%% (paper: 4.8%% .. 10%%)\n"
    (100.0 *. List.fold_left Float.min infinity shares)
    (100.0 *. List.fold_left Float.max 0.0 shares);
  add_section "resources"
    (Json.Obj
       (List.map
          (fun r ->
            ( r.Experiments.rapp,
              Json.Obj
                [
                  ("alms", Json.Int r.Experiments.alms);
                  ("registers", Json.Int r.Experiments.registers);
                  ("brams", Json.Int r.Experiments.brams);
                  ("rule_register_share", Json.Float r.Experiments.rule_register_share);
                  ("fits", Json.Bool r.Experiments.fits_device);
                ] ))
          rows));
  register "resources/heuristic-sizing" (fun () ->
      ignore (Agp_hw.Resource.heuristic_pipelines Agp_apps.Bfs_app.spec_speculative ~max_per_set:8))

(* --- Figure 2(b) --- *)

let schedules () =
  section "Figure 2(b) — schedule diagrams on the 6-vertex example";
  print_string (Experiments.schedule_diagram ());
  register "fig2/bdfg-compile-all" (fun () ->
      List.iter
        (fun sp -> ignore (Agp_dataflow.Bdfg.of_spec sp))
        [
          Agp_apps.Bfs_app.spec_speculative;
          Agp_apps.Sssp_app.spec_speculative;
          Agp_apps.Mst_app.spec_speculative;
          Agp_apps.Dmr_app.spec_speculative;
          Agp_apps.Lu_app.spec_coordinative;
        ])

(* --- substrate micro-benchmarks (ablation-adjacent) --- *)

let substrates () =
  register "substrate/delaunay-triangulate-200" (fun () ->
      ignore (Agp_geometry.Delaunay.triangulate (Agp_graph.Generator.points ~seed:1 ~n:200 ~span:100.0)));
  register "substrate/sparselu-factorize-6x6" (fun () ->
      let m = Agp_sparse.Block_matrix.random_sparse ~seed:2 ~nb:6 ~bs:8 ~density:0.3 in
      ignore (Agp_sparse.Sparse_lu.factorize m));
  register "substrate/kruskal-2500" (fun () ->
      ignore (Agp_graph.Mst.kruskal (Agp_graph.Generator.random ~seed:3 ~n:2500 ~m:7500)));
  register "substrate/sequential-oracle-bfs" (fun () ->
      let app = Workloads.spec_bfs Workloads.Small ~seed:4 in
      let run = app.Agp_apps.App_instance.fresh () in
      ignore
        (Agp_core.Sequential.run ~initial:run.Agp_apps.App_instance.initial
           app.Agp_apps.App_instance.spec run.Agp_apps.App_instance.bindings
           run.Agp_apps.App_instance.state))

(* --- work amplification (the flooding of §6.3, quantified) --- *)

let amplification () =
  section "Work amplification — activated vs. necessary tasks (flooding)";
  Agp_exp.Amplification.print (Agp_exp.Amplification.table ~scale:Workloads.Small ());
  register "amplification/spec-bfs" (fun () ->
      ignore (Agp_exp.Amplification.measure (Workloads.spec_bfs Workloads.Small ~seed:42)))

(* --- observability overhead (the Agp_obs null-sink gate) --- *)

let observability () =
  section (Printf.sprintf "Observability — sink overhead on a full accelerator run (SPEC-BFS, %s)" scale_name);
  let simulate sink =
    let app = Workloads.spec_bfs scale ~seed:42 in
    let run = app.Agp_apps.App_instance.fresh () in
    ignore
      (Agp_hw.Accelerator.run ~sink ~spec:app.Agp_apps.App_instance.spec
         ~bindings:run.Agp_apps.App_instance.bindings ~state:run.Agp_apps.App_instance.state
         ~initial:run.Agp_apps.App_instance.initial ())
  in
  let time_best sink_of =
    (* best of 5 to shake scheduler noise out of a wall-clock compare *)
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Sys.time () in
      simulate (sink_of ());
      best := Float.min !best (Sys.time () -. t0)
    done;
    !best
  in
  let null_s = time_best (fun () -> Agp_obs.Sink.null) in
  let collect_s = time_best (fun () -> Agp_obs.Sink.collect ()) in
  let overhead = (collect_s -. null_s) /. Float.max 1e-9 null_s in
  Printf.printf "null sink:    %.4f s\nfull capture: %.4f s (+%.1f%%)\n" null_s collect_s
    (100.0 *. overhead);
  (* the null sink must cost nothing: disabled instrumentation is a
     predicted-false branch, so a *capturing* run staying within ~2x of
     the null run bounds the branch cost at far below measurement noise *)
  let gate_ok = collect_s <= 2.0 *. Float.max 1e-9 null_s in
  if gate_ok then
    print_endline "null-sink overhead gate: OK (full capture within 2x of disabled)"
  else print_endline "null-sink overhead gate: WARN (capture cost unexpectedly high)";
  add_section "observability"
    (Json.Obj
       [
         ("null_sink_best_of_5_s", Json.Float null_s);
         ("full_capture_best_of_5_s", Json.Float collect_s);
         ("overhead_info_frac", Json.Float overhead);
         ("gate_ok", Json.Bool gate_ok);
       ]);
  let ring = Agp_obs.Sink.ring ~capacity:4096 in
  register "obs/sink-emit-null" (fun () ->
      Agp_obs.Sink.emit Agp_obs.Sink.null ~ts:0
        (Agp_obs.Event.Queue_full { set = "visit"; pipe = 0 }));
  register "obs/sink-emit-ring" (fun () ->
      Agp_obs.Sink.emit ring ~ts:0 (Agp_obs.Event.Queue_full { set = "visit"; pipe = 0 }));
  register "obs/attribution-charge" (fun () ->
      let a = Agp_obs.Attribution.create () in
      Agp_obs.Attribution.charge a ~set:"visit" Agp_obs.Attribution.Busy 1)

(* --- backend registry: one app across every execution substrate --- *)

let backends () =
  section (Printf.sprintf "Backend registry — SPEC-BFS across every substrate (%s)" scale_name);
  let app = Workloads.spec_bfs scale ~seed:42 in
  let t = Agp_util.Table.create [ "backend"; "tasks"; "time"; "check" ] in
  let rows = ref [] in
  List.iter
    (fun (b : Backend.t) ->
      if b.Backend.supports app = Ok () then begin
        let res = Backend.run b app in
        let tasks =
          match res.Backend.tasks_run with
          | Some n -> string_of_int n
          | None -> "-"
        in
        let time =
          match res.Backend.seconds with
          | Some s -> Printf.sprintf "%.3f ms" (s *. 1e3)
          | None -> "-"
        in
        let check =
          if not b.Backend.capabilities.Backend.validates then "n/a"
          else
            match res.Backend.check with
            | Ok () -> "ok"
            | Error e -> "FAIL: " ^ e
        in
        rows :=
          ( b.Backend.name,
            Json.Obj
              (List.concat
                 [
                   (match res.Backend.tasks_run with
                   | Some n -> [ ("tasks", Json.Int n) ]
                   | None -> []);
                   (match res.Backend.seconds with
                   | Some s -> [ ("seconds", Json.Float s) ]
                   | None -> []);
                   [ ("check_ok", Json.Bool (res.Backend.check = Ok ())) ];
                 ]) )
          :: !rows;
        Agp_util.Table.add_row t [ b.Backend.name; tasks; time; check ]
      end
      else Agp_util.Table.add_row t [ b.Backend.name; "-"; "-"; "unsupported" ])
    Backend.all;
  Agp_util.Table.print t;
  add_section "backends" (Json.Obj (List.rev !rows));
  register "backend/sequential-spec-bfs-small" (fun () ->
      ignore (Backend.run Backend.sequential (Workloads.spec_bfs Workloads.Small ~seed:42)))

(* --- ablations --- *)

let ablations () =
  section "Ablation — rule-engine lanes (SPEC-BFS, medium road graph)";
  let app = Workloads.spec_bfs Workloads.Medium ~seed:42 in
  let t = Agp_util.Table.create [ "lanes"; "cycles"; "utilization" ] in
  let lane_rows = ref [] in
  List.iter
    (fun lanes ->
      let run = app.Agp_apps.App_instance.fresh () in
      let config = { Agp_hw.Config.default with Agp_hw.Config.rule_lanes = lanes } in
      let r =
        Agp_hw.Accelerator.run ~config ~spec:app.Agp_apps.App_instance.spec
          ~bindings:run.Agp_apps.App_instance.bindings ~state:run.Agp_apps.App_instance.state
          ~initial:run.Agp_apps.App_instance.initial ()
      in
      lane_rows :=
        ( Printf.sprintf "lanes%d" lanes,
          Json.Obj
            [
              ("cycles", Json.Int r.Agp_hw.Accelerator.cycles);
              ("utilization", Json.Float r.Agp_hw.Accelerator.utilization);
            ] )
        :: !lane_rows;
      Agp_util.Table.add_row t
        [
          string_of_int lanes;
          string_of_int r.Agp_hw.Accelerator.cycles;
          Printf.sprintf "%.1f%%" (100.0 *. r.Agp_hw.Accelerator.utilization);
        ])
    [ 16; 64; 256 ];
  Agp_util.Table.print t;
  section "Ablation — pipeline replication (SPEC-BFS, medium road graph)";
  let t = Agp_util.Table.create [ "pipelines/set"; "cycles" ] in
  let pipe_rows = ref [] in
  List.iter
    (fun n ->
      let run = app.Agp_apps.App_instance.fresh () in
      let config =
        Agp_hw.Config.with_pipelines Agp_hw.Config.default [ ("visit", n); ("update", n) ]
      in
      let r =
        Agp_hw.Accelerator.run ~config ~auto_size:false ~spec:app.Agp_apps.App_instance.spec
          ~bindings:run.Agp_apps.App_instance.bindings ~state:run.Agp_apps.App_instance.state
          ~initial:run.Agp_apps.App_instance.initial ()
      in
      pipe_rows :=
        (Printf.sprintf "pipes%d" n, Json.Obj [ ("cycles", Json.Int r.Agp_hw.Accelerator.cycles) ])
        :: !pipe_rows;
      Agp_util.Table.add_row t [ string_of_int n; string_of_int r.Agp_hw.Accelerator.cycles ])
    [ 1; 2; 4; 8 ];
  Agp_util.Table.print t;
  add_section "ablations"
    (Json.Obj
       [
         ("rule_lanes", Json.Obj (List.rev !lane_rows));
         ("pipeline_replication", Json.Obj (List.rev !pipe_rows));
       ])

(* --- simulator throughput (the cycles/sec ratchet) --- *)

let sim_throughput () =
  section
    (Printf.sprintf "Simulator throughput — simulated cycles per host second (SPEC-BFS, %s)"
       scale_name);
  let run_once engine =
    let app = Workloads.spec_bfs scale ~seed:42 in
    let run = app.Agp_apps.App_instance.fresh () in
    Agp_hw.Accelerator.run ~engine ~spec:app.Agp_apps.App_instance.spec
      ~bindings:run.Agp_apps.App_instance.bindings ~state:run.Agp_apps.App_instance.state
      ~initial:run.Agp_apps.App_instance.initial ()
  in
  (* best of 5: the ratchet gate wants the machine's capability, not its
     scheduler noise *)
  let best_of n engine =
    let best = ref (run_once engine) in
    for _ = 1 to n - 1 do
      let r = run_once engine in
      if r.Agp_hw.Accelerator.sim_cycles_per_sec > !best.Agp_hw.Accelerator.sim_cycles_per_sec
      then best := r
    done;
    !best
  in
  let r = best_of 5 Agp_hw.Accelerator.Compiled in
  let legacy = best_of 2 Agp_hw.Accelerator.Legacy in
  Printf.printf "%d cycles in %.4f s -> %.3g simulated cycles/sec (best of 5, compiled)\n"
    r.Agp_hw.Accelerator.cycles r.Agp_hw.Accelerator.wall_seconds
    r.Agp_hw.Accelerator.sim_cycles_per_sec;
  Printf.printf "legacy engine: %.3g cycles/sec -> compiled speedup %.1fx\n"
    legacy.Agp_hw.Accelerator.sim_cycles_per_sec
    (r.Agp_hw.Accelerator.sim_cycles_per_sec
    /. Float.max 1e-9 legacy.Agp_hw.Accelerator.sim_cycles_per_sec);
  Printf.printf "minor heap: %.1f words/cycle (compiled), %.1f words/cycle (legacy)\n"
    r.Agp_hw.Accelerator.minor_words_per_cycle
    legacy.Agp_hw.Accelerator.minor_words_per_cycle;
  add_section "sim_throughput"
    (Json.Obj
       [
         ("cycles", Json.Int r.Agp_hw.Accelerator.cycles);
         ("sim_cycles_per_sec", Json.Float r.Agp_hw.Accelerator.sim_cycles_per_sec);
         ("minor_words_per_cycle", Json.Float r.Agp_hw.Accelerator.minor_words_per_cycle);
         ( "legacy_sim_cycles_per_sec",
           Json.Float legacy.Agp_hw.Accelerator.sim_cycles_per_sec );
         ( "legacy_minor_words_per_cycle",
           Json.Float legacy.Agp_hw.Accelerator.minor_words_per_cycle );
       ])

(* --- serving saturation (the Agp_serve daemon under offered load) --- *)

let serve_saturation () =
  section "Serving — saturation sweep against an in-process agp-serve daemon";
  let module Serve_server = Agp_serve.Server in
  let module Loadgen = Agp_serve.Loadgen in
  (* requests always run the small workload: the sweep measures the
     serving path (admission, batching, shard dispatch), not substrate
     scaling, and offered rates must outrun request latency to find a
     knee.  The sweep itself scales with AGP_BENCH_SCALE. *)
  let rates, duration_s =
    match scale with
    | Workloads.Small -> ([ 25.0; 50.0 ], 1.0)
    | Workloads.Medium | Workloads.Default | Workloads.Large | Workloads.Huge ->
        ([ 25.0; 50.0; 100.0; 200.0 ], 2.0)
  in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "agp-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let addr = Serve_server.Unix_path sock in
  let server = Serve_server.create () in
  let daemon = Thread.create (fun () -> Serve_server.listen server ~addr) () in
  let result =
    Loadgen.saturation
      ~spec:{ Loadgen.default_spec with Loadgen.tenant = "bench" }
      ~addr ~rates ~duration_s ()
  in
  (match Loadgen.shutdown addr with
  | Ok _ -> ()
  | Error _ -> Serve_server.shutdown server);
  Thread.join daemon;
  match result with
  | Error e -> Printf.printf "serve saturation sweep failed: %s\n" e
  | Ok summaries ->
      print_endline (Loadgen.render summaries);
      let doc = Loadgen.report summaries in
      add_section "serve_saturation" (Json.Obj doc.Agp_obs.Report.sections)

let () =
  Printf.printf "aggrpipe benchmark harness — reproduction of ISCA'17 evaluation\n";
  Printf.printf "workload scale: %s\n" scale_name;
  table1 ();
  fig9 ();
  fig10 ();
  resources ();
  schedules ();
  amplification ();
  observability ();
  backends ();
  ablations ();
  substrates ();
  sim_throughput ();
  serve_saturation ();
  run_microbenches ();
  write_json_report ();
  print_endline "\nbench: done"
