(* Figure 2(b): why rule-scheduled dataflow pipelines beat
   barrier-synchronized kernels on the paper's 6-vertex example graph —
   printed as ASCII timelines. *)

let () = print_string (Agp_exp.Experiments.schedule_diagram ())
