(* Delaunay mesh refinement end to end: triangulate a point cloud,
   refine it sequentially as a baseline, then run SPEC-DMR — the
   speculative accelerator whose rule engine compares cavity signatures
   between concurrent tasks — and show the conflict statistics. *)

module Mesh = Agp_geometry.Mesh
module Delaunay = Agp_geometry.Delaunay
module Refinement = Agp_geometry.Refinement
module App_instance = Agp_apps.App_instance

let () =
  let points = Agp_graph.Generator.points ~seed:11 ~n:400 ~span:100.0 in
  (* sequential reference refinement *)
  let t = Delaunay.triangulate points in
  let cfg = Refinement.default_config in
  Printf.printf "triangulated %d points: %d triangles, %d bad (min angle < %.1f°)\n"
    (Array.length points)
    (Mesh.num_live t.Delaunay.mesh)
    (List.length (Refinement.bad_triangles cfg t))
    cfg.Refinement.min_angle;
  let stats = Refinement.refine_with_stats cfg t in
  Printf.printf
    "sequential refinement: %d insertions -> %d triangles, min interior angle %.2f°\n"
    stats.Refinement.insertions stats.Refinement.final_triangles
    stats.Refinement.min_angle_after;

  (* the same workload through the SPEC-DMR accelerator *)
  let app = Agp_apps.Dmr_app.speculative { points } in
  let run = app.App_instance.fresh () in
  let hw =
    Agp_hw.Accelerator.run ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
      ~state:run.App_instance.state ~initial:run.App_instance.initial ()
  in
  (match run.App_instance.check () with
  | Ok () -> print_endline "SPEC-DMR accelerator: mesh valid, no bad triangles remain"
  | Error e -> failwith e);
  let s = hw.Agp_hw.Accelerator.engine_stats in
  Printf.printf
    "accelerator: %d cycles (%.3f ms), %d tasks committed, %d squashed-and-retried on cavity \
     conflicts, %d events broadcast\n"
    hw.Agp_hw.Accelerator.cycles
    (hw.Agp_hw.Accelerator.seconds *. 1e3)
    s.Agp_core.Engine.committed
    (s.Agp_core.Engine.aborted + s.Agp_core.Engine.retried)
    s.Agp_core.Engine.events_fired;

  (* the cavity conflict footprint in action: show one refinement task's
     signature *)
  let t2 = Delaunay.triangulate points in
  match Refinement.bad_triangles cfg t2 with
  | [] -> ()
  | tri :: _ ->
      let center = Mesh.circumcenter t2.Delaunay.mesh tri in
      let cavity =
        match Delaunay.locate t2.Delaunay.mesh ~hint:tri center with
        | Some start -> Delaunay.cavity_of t2.Delaunay.mesh ~start center
        | None -> []
      in
      Printf.printf "example conflict footprint: refining triangle %d retriangulates cavity {%s}\n"
        tri
        (String.concat ", " (List.map string_of_int cavity))
