(* Coordinative sparse LU factorization: the block-task DAG, the
   countdown rules that schedule it at runtime, and the accelerator
   executing block tasks out of order the moment their dependences
   resolve — no barriers, no host round trips. *)

module Block_matrix = Agp_sparse.Block_matrix
module Sparse_lu = Agp_sparse.Sparse_lu
module App_instance = Agp_apps.App_instance

let () =
  let w = Agp_apps.Lu_app.sized_workload ~seed:5 ~nb:8 ~bs:16 ~density:0.3 in
  let m = w.Agp_apps.Lu_app.matrix in
  Printf.printf "blocked sparse matrix: %dx%d blocks of %dx%d, %d blocks present\n"
    m.Block_matrix.nb m.Block_matrix.nb m.Block_matrix.bs m.Block_matrix.bs
    (Block_matrix.num_present m);
  let tasks = Sparse_lu.tasks m in
  let count p = List.length (List.filter p tasks) in
  Printf.printf "task DAG: %d tasks (%d lu0, %d fwd, %d bdiv, %d bmod)\n" (List.length tasks)
    (count (function Sparse_lu.Lu0 _ -> true | _ -> false))
    (count (function Sparse_lu.Fwd _ -> true | _ -> false))
    (count (function Sparse_lu.Bdiv _ -> true | _ -> false))
    (count (function Sparse_lu.Bmod _ -> true | _ -> false));
  let deps = Sparse_lu.dependencies m in
  let edges = List.fold_left (fun acc (_, ds) -> acc + List.length ds) 0 deps in
  Printf.printf "dependence edges enforced by countdown rules: %d\n" edges;

  (* sequential reference *)
  let f = Block_matrix.copy m in
  ignore (Sparse_lu.factorize f);
  Printf.printf "sequential factorization residual: %.2e\n"
    (Sparse_lu.residual ~original:m ~factored:f);

  (* accelerator: countdown rules release block tasks out of order *)
  let app = Agp_apps.Lu_app.coordinative w in
  let run = app.App_instance.fresh () in
  let hw =
    Agp_hw.Accelerator.run ~spec:app.App_instance.spec ~bindings:run.App_instance.bindings
      ~state:run.App_instance.state ~initial:run.App_instance.initial ()
  in
  (match run.App_instance.check () with
  | Ok () -> print_endline "COOR-LU accelerator: factorization residual within tolerance"
  | Error e -> failwith e);
  let s = hw.Agp_hw.Accelerator.engine_stats in
  Printf.printf
    "accelerator: %d cycles (%.3f ms); %d countdown releases fired out of order, %d tasks \
     released by the minimum-task exit path, 0 squashes (coordination admits no conflicts)\n"
    hw.Agp_hw.Accelerator.cycles
    (hw.Agp_hw.Accelerator.seconds *. 1e3)
    s.Agp_core.Engine.clause_resolutions s.Agp_core.Engine.otherwise_fired
