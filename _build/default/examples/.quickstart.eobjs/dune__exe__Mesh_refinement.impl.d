examples/mesh_refinement.ml: Agp_apps Agp_core Agp_geometry Agp_graph Agp_hw Array List Printf String
