examples/quickstart.ml: Agp_core Agp_dataflow Agp_hw Array Engine Format List Printf Runtime Sequential Spec State String Value
