examples/schedule_diagram.ml: Agp_exp
