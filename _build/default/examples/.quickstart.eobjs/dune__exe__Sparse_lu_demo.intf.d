examples/sparse_lu_demo.mli:
