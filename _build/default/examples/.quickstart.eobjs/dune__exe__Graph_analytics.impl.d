examples/graph_analytics.ml: Agp_apps Agp_baseline Agp_core Agp_graph Agp_hw Agp_util List Printf
