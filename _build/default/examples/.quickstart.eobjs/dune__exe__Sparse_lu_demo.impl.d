examples/sparse_lu_demo.ml: Agp_apps Agp_core Agp_hw Agp_sparse List Printf
