examples/schedule_diagram.mli:
