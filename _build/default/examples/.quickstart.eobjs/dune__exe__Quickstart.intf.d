examples/quickstart.mli:
