(* Quickstart: specify a tiny irregular application as tasks + rules,
   debug it on the software runtimes, compile it to a dataflow graph,
   and simulate the generated accelerator — the full flow of Figure 4.

   The application: concurrent "claim" tasks race to reserve slots in a
   shared table; a speculative rule squashes any later task that
   collides with an earlier committing claim, so each slot keeps the
   earliest claimant (think: hotel room booking with optimistic
   concurrency). *)

open Agp_core

let spec : Spec.t =
  let open Spec in
  {
    spec_name = "quickstart-claims";
    task_sets =
      [
        {
          ts_name = "claim";
          ts_order = For_each;
          arity = 2;
          (* payload: [slot; customer] *)
          body =
            [
              (* guard the slot BEFORE reading it: the rule watches all
                 commits from its creation onward *)
              Alloc ("h", "slot_guard", [ Param 0 ]);
              Load ("owner", "table", Param 0);
              If
                ( Binop (Eq, Var "owner", int (-1)),
                  [
                    Await ("ok", "h");
                    If
                      ( Var "ok",
                        [
                          Emit ("committing", [ Param 0 ]);
                          Store ("table", Param 0, Param 1);
                        ],
                        [ Abort ] );
                  ],
                  [ Abort ] );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "slot_guard";
          n_params = 1;
          clauses =
            [
              {
                on = On_reached ("claim", "committing");
                condition = CBinop (And, CEarlier, CBinop (Eq, CField 0, CParam 0));
                action = Return_bool false;
              };
            ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = false;
        };
      ];
  }

let () =
  (* 1. program state Σ: a table of 8 slots, all free (-1) *)
  let fresh_state () =
    let st = State.create () in
    State.add_int_array st "table" (Array.make 8 (-1));
    st
  in
  (* customers 100..109 claim slots (several collide) *)
  let initial =
    List.mapi
      (fun i slot -> ("claim", [ Value.Int slot; Value.Int (100 + i) ]))
      [ 3; 1; 3; 5; 1; 7; 5; 0; 3; 6 ]
  in
  print_endline "specification:";
  Format.printf "%a@." Spec.pp spec;

  (* 2. sequential oracle (Definition 4.3) *)
  let st_seq = fresh_state () in
  let seq = Sequential.run ~initial spec Spec.no_bindings st_seq in
  Printf.printf "sequential oracle ran %d tasks\n" seq.Sequential.tasks_run;

  (* 3. aggressive software runtime, 4 workers *)
  let st_par = fresh_state () in
  let par = Runtime.run ~initial ~workers:4 spec Spec.no_bindings st_par in
  Printf.printf "aggressive runtime: %d tasks, %d squashed, %d scheduler ticks\n"
    par.Runtime.tasks_run par.Runtime.stats.Engine.aborted par.Runtime.steps;
  assert (State.equal_content st_seq st_par);
  print_endline "parallel result equals the sequential oracle (correctness criterion of §4.1)";

  (* 4. compile to a Boolean dataflow graph *)
  let bdfg = Agp_dataflow.Bdfg.of_spec spec in
  Printf.printf "BDFG: %d actors, %d primitive pipeline stages\n"
    (Array.length bdfg.Agp_dataflow.Bdfg.actors)
    (Agp_dataflow.Bdfg.stage_count bdfg "claim");

  (* 5. simulate the synthesized accelerator *)
  let st_hw = fresh_state () in
  let report =
    Agp_hw.Accelerator.run ~spec ~bindings:Spec.no_bindings ~state:st_hw ~initial ()
  in
  Printf.printf "FPGA model: %d cycles (%.2f us) on %s\n" report.Agp_hw.Accelerator.cycles
    (report.Agp_hw.Accelerator.seconds *. 1e6)
    (String.concat ", "
       (List.map
          (fun (s, n) -> Printf.sprintf "%dx %s pipeline" n s)
          report.Agp_hw.Accelerator.pipelines));
  assert (State.equal_content st_seq st_hw);
  print_endline "accelerator result equals the sequential oracle";
  Printf.printf "final table: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int (State.int_array st_hw "table"))))
