(** Blocked sparse matrices: an [nb] × [nb] grid of optional dense
    [bs] × [bs] blocks, the input format of the BOTS sparselu kernel. *)

type t = {
  nb : int;  (** blocks per side *)
  bs : int;  (** rows/columns per block *)
  blocks : Dense_block.t option array;  (** row-major grid, [nb * nb] entries *)
}

val create : nb:int -> bs:int -> t
(** All blocks absent. *)

val random_sparse : seed:int -> nb:int -> bs:int -> density:float -> t
(** BOTS-like structure: every diagonal block present, each off-diagonal
    block present with probability [density]. *)

val get : t -> int -> int -> Dense_block.t option

val present : t -> int -> int -> bool

val set : t -> int -> int -> Dense_block.t -> unit

val ensure : t -> int -> int -> Dense_block.t
(** Return the block, allocating a zero block if absent (fill-in). *)

val copy : t -> t
(** Deep copy. *)

val num_present : t -> int

val to_dense : t -> float array
(** Row-major [(nb*bs)]² dense expansion; absent blocks are zero. *)

val max_abs_diff : t -> t -> float
(** Max absolute entry difference of the dense expansions (grids must
    have equal shape). *)
