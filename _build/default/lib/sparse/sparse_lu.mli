(** Blocked sparse LU factorization (BOTS sparselu) — the sequential
    reference for COOR-LU, plus the static task DAG that the
    coordinative accelerator schedules with rules.

    The factorization overwrites the matrix: diagonal blocks hold their
    LU factors, sub-diagonal blocks hold L, super-diagonal blocks hold
    U.  Fill-in blocks are allocated on demand. *)

type task =
  | Lu0 of int  (** factor diagonal block [k] *)
  | Fwd of int * int  (** [Fwd (k, j)], j > k: row block of pivot row *)
  | Bdiv of int * int  (** [Bdiv (i, k)], i > k: column block of pivot column *)
  | Bmod of int * int * int  (** [Bmod (i, j, k)]: trailing update by pivot [k] *)

val task_to_string : task -> string

val symbolic : Block_matrix.t -> bool array array
(** Presence grid after symbolic factorization (fill-in propagated):
    [ (symbolic m).(i).(j) ] is true when block (i,j) exists at some
    point during numeric factorization. *)

val tasks : Block_matrix.t -> task list
(** The full static task list in sequential (k-major) order, derived
    from the symbolic factorization — the well-ordered task sequence of
    COOR-LU. *)

val dependencies : Block_matrix.t -> (task * task list) list
(** Each task paired with the earlier tasks it directly depends on —
    the dependence edges the coordinative rules enforce at runtime. *)

val run_task : Block_matrix.t -> task -> unit
(** Execute one task's block kernel against the (mutable) matrix. *)

val factorize : Block_matrix.t -> int
(** In-place sequential factorization; returns the number of tasks
    executed.  Equivalent to running {!tasks} in order. *)

val reconstruct : Block_matrix.t -> Block_matrix.t
(** Multiply the stored block factors back together: for a factored
    matrix this reproduces the original (up to rounding). *)

val residual : original:Block_matrix.t -> factored:Block_matrix.t -> float
(** Max-abs difference between [original] and the reconstruction of
    [factored], normalized by the largest original entry. *)

val sampled_residual :
  seed:int -> samples:int -> original:Block_matrix.t -> factored:Block_matrix.t -> float
(** Like {!residual} but reconstructing only a random sample of block
    positions (always including the corners), so large factorizations
    can be validated in O(samples · nb · bs³). *)
