type task =
  | Lu0 of int
  | Fwd of int * int
  | Bdiv of int * int
  | Bmod of int * int * int

let task_to_string = function
  | Lu0 k -> Printf.sprintf "lu0(%d)" k
  | Fwd (k, j) -> Printf.sprintf "fwd(%d,%d)" k j
  | Bdiv (i, k) -> Printf.sprintf "bdiv(%d,%d)" i k
  | Bmod (i, j, k) -> Printf.sprintf "bmod(%d,%d,%d)" i j k

let symbolic (m : Block_matrix.t) =
  let nb = m.Block_matrix.nb in
  let p = Array.init nb (fun i -> Array.init nb (fun j -> Block_matrix.present m i j)) in
  for k = 0 to nb - 1 do
    for i = k + 1 to nb - 1 do
      for j = k + 1 to nb - 1 do
        if p.(i).(k) && p.(k).(j) then p.(i).(j) <- true
      done
    done
  done;
  p

let tasks (m : Block_matrix.t) =
  let nb = m.Block_matrix.nb in
  let p = symbolic m in
  let acc = ref [] in
  let push t = acc := t :: !acc in
  for k = 0 to nb - 1 do
    push (Lu0 k);
    for j = k + 1 to nb - 1 do
      if p.(k).(j) then push (Fwd (k, j))
    done;
    for i = k + 1 to nb - 1 do
      if p.(i).(k) then push (Bdiv (i, k))
    done;
    for i = k + 1 to nb - 1 do
      for j = k + 1 to nb - 1 do
        if p.(i).(k) && p.(k).(j) then push (Bmod (i, j, k))
      done
    done
  done;
  List.rev !acc

let dependencies (m : Block_matrix.t) =
  let p = symbolic m in
  let all = tasks m in
  (* A task depends on the latest earlier writers of the blocks it
     reads, plus the latest earlier writer of the block it updates. *)
  ignore p;
  let writers_of_block i j upto =
    (* Latest task strictly before [upto] (in list order) writing block
       (i,j).  Tasks are pairwise distinct, so structural equality
       identifies the cutoff. *)
    let rec scan acc = function
      | [] -> acc
      | t :: _ when t = upto -> acc
      | t :: rest ->
          let writes =
            match t with
            | Lu0 k -> (k, k)
            | Fwd (k, j') -> (k, j')
            | Bdiv (i', k) -> (i', k)
            | Bmod (i', j', _) -> (i', j')
          in
          scan (if writes = (i, j) then Some t else acc) rest
    in
    scan None all
  in
  List.map
    (fun t ->
      let reads =
        match t with
        | Lu0 k -> [ (k, k) ]
        | Fwd (k, j) -> [ (k, k); (k, j) ]
        | Bdiv (i, k) -> [ (k, k); (i, k) ]
        | Bmod (i, j, k) -> [ (i, k); (k, j); (i, j) ]
      in
      let deps = List.filter_map (fun (i, j) -> writers_of_block i j t) reads in
      (t, List.sort_uniq compare deps))
    all

let run_task (m : Block_matrix.t) t =
  let bs = m.Block_matrix.bs in
  match t with
  | Lu0 k -> begin
      match Block_matrix.get m k k with
      | Some d -> Dense_block.lu0 d bs
      | None -> invalid_arg "Sparse_lu.run_task: missing diagonal block"
    end
  | Fwd (k, j) -> begin
      match (Block_matrix.get m k k, Block_matrix.get m k j) with
      | Some diag, Some b -> Dense_block.fwd ~diag b bs
      | _ -> invalid_arg "Sparse_lu.run_task: missing block for fwd"
    end
  | Bdiv (i, k) -> begin
      match (Block_matrix.get m k k, Block_matrix.get m i k) with
      | Some diag, Some b -> Dense_block.bdiv ~diag b bs
      | _ -> invalid_arg "Sparse_lu.run_task: missing block for bdiv"
    end
  | Bmod (i, j, k) -> begin
      match (Block_matrix.get m i k, Block_matrix.get m k j) with
      | Some row, Some col ->
          let b = Block_matrix.ensure m i j in
          Dense_block.bmod ~row ~col b bs
      | _ -> invalid_arg "Sparse_lu.run_task: missing block for bmod"
    end

let factorize m =
  let ts = tasks m in
  List.iter (run_task m) ts;
  List.length ts

let reconstruct (m : Block_matrix.t) =
  let nb = m.Block_matrix.nb and bs = m.Block_matrix.bs in
  let out = Block_matrix.create ~nb ~bs in
  let l_block i k =
    if i = k then
      Option.map (fun d -> fst (Dense_block.split_lu d bs)) (Block_matrix.get m i k)
    else if i > k then Block_matrix.get m i k
    else None
  in
  let u_block k j =
    if k = j then
      Option.map (fun d -> snd (Dense_block.split_lu d bs)) (Block_matrix.get m k j)
    else if k < j then Block_matrix.get m k j
    else None
  in
  for i = 0 to nb - 1 do
    for j = 0 to nb - 1 do
      let acc = ref None in
      for k = 0 to min i j do
        match (l_block i k, u_block k j) with
        | Some l, Some u ->
            let prod = Dense_block.matmul l u bs in
            acc :=
              Some
                (match !acc with
                | None -> prod
                | Some a ->
                    Array.iteri (fun idx x -> a.(idx) <- a.(idx) +. x) prod;
                    a)
        | _ -> ()
      done;
      match !acc with
      | Some b -> Block_matrix.set out i j b
      | None -> ()
    done
  done;
  out

let reconstruct_block (m : Block_matrix.t) i j =
  let bs = m.Block_matrix.bs in
  let l_block i k =
    if i = k then Option.map (fun d -> fst (Dense_block.split_lu d bs)) (Block_matrix.get m i k)
    else if i > k then Block_matrix.get m i k
    else None
  in
  let u_block k j =
    if k = j then Option.map (fun d -> snd (Dense_block.split_lu d bs)) (Block_matrix.get m k j)
    else if k < j then Block_matrix.get m k j
    else None
  in
  let acc = ref (Dense_block.create bs) in
  for k = 0 to min i j do
    match (l_block i k, u_block k j) with
    | Some l, Some u ->
        let prod = Dense_block.matmul l u bs in
        Array.iteri (fun idx x -> !acc.(idx) <- !acc.(idx) +. x) prod
    | _ -> ()
  done;
  !acc

let scale_of original =
  Array.fold_left
    (fun acc b ->
      match b with
      | None -> acc
      | Some blk -> Float.max acc (Dense_block.max_abs blk))
    1.0 original.Block_matrix.blocks

let sampled_residual ~seed ~samples ~original ~factored =
  let nb = original.Block_matrix.nb and bs = original.Block_matrix.bs in
  let rng = Agp_util.Rng.create seed in
  let positions =
    [ (0, 0); (nb - 1, nb - 1); (0, nb - 1); (nb - 1, 0) ]
    @ List.init samples (fun _ -> (Agp_util.Rng.int rng nb, Agp_util.Rng.int rng nb))
  in
  let scale = scale_of original in
  let worst = ref 0.0 in
  List.iter
    (fun (i, j) ->
      let recon = reconstruct_block factored i j in
      let orig =
        match Block_matrix.get original i j with
        | Some b -> b
        | None -> Dense_block.create bs
      in
      worst := Float.max !worst (Dense_block.max_abs (Dense_block.sub orig recon bs)))
    positions;
  !worst /. scale

let residual ~original ~factored =
  let recon = reconstruct factored in
  let scale =
    Array.fold_left
      (fun acc b ->
        match b with
        | None -> acc
        | Some blk -> Float.max acc (Dense_block.max_abs blk))
      1.0 original.Block_matrix.blocks
  in
  Block_matrix.max_abs_diff original recon /. scale
