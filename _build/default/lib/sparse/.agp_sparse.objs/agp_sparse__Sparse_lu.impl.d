lib/sparse/sparse_lu.ml: Agp_util Array Block_matrix Dense_block Float List Option Printf
