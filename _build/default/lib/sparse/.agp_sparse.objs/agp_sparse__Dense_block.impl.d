lib/sparse/dense_block.ml: Agp_util Array Float
