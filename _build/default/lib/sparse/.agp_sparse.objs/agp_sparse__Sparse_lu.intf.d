lib/sparse/sparse_lu.mli: Block_matrix
