lib/sparse/dense_block.mli: Agp_util
