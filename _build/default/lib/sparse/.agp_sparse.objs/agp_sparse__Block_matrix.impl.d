lib/sparse/block_matrix.ml: Agp_util Array Dense_block Float Option
