lib/sparse/block_matrix.mli: Dense_block
