module Rng = Agp_util.Rng

type t = {
  nb : int;
  bs : int;
  blocks : Dense_block.t option array;
}

let create ~nb ~bs = { nb; bs; blocks = Array.make (nb * nb) None }

let idx t i j =
  if i < 0 || i >= t.nb || j < 0 || j >= t.nb then invalid_arg "Block_matrix: block out of range";
  (i * t.nb) + j

let get t i j = t.blocks.(idx t i j)

let present t i j = get t i j <> None

let set t i j b = t.blocks.(idx t i j) <- Some b

let ensure t i j =
  match get t i j with
  | Some b -> b
  | None ->
      let b = Dense_block.create t.bs in
      set t i j b;
      b

let random_sparse ~seed ~nb ~bs ~density =
  let rng = Rng.create seed in
  let t = create ~nb ~bs in
  for i = 0 to nb - 1 do
    for j = 0 to nb - 1 do
      if i = j || Rng.chance rng density then set t i j (Dense_block.random rng bs)
    done
  done;
  t

let copy t = { t with blocks = Array.map (Option.map Dense_block.copy) t.blocks }

let num_present t =
  Array.fold_left (fun acc b -> if b = None then acc else acc + 1) 0 t.blocks

let to_dense t =
  let n = t.nb * t.bs in
  let d = Array.make (n * n) 0.0 in
  for bi = 0 to t.nb - 1 do
    for bj = 0 to t.nb - 1 do
      match get t bi bj with
      | None -> ()
      | Some b ->
          for i = 0 to t.bs - 1 do
            for j = 0 to t.bs - 1 do
              d.((((bi * t.bs) + i) * n) + (bj * t.bs) + j) <- Dense_block.get b t.bs i j
            done
          done
    done
  done;
  d

let max_abs_diff a b =
  if a.nb <> b.nb || a.bs <> b.bs then invalid_arg "Block_matrix.max_abs_diff: shape mismatch";
  let da = to_dense a and db = to_dense b in
  let best = ref 0.0 in
  Array.iteri (fun i x -> best := Float.max !best (Float.abs (x -. db.(i)))) da;
  !best
