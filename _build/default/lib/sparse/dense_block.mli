(** Dense square blocks and the four sparselu block kernels.

    These are the per-task datapaths of COOR-LU (the blocked sparse LU
    factorization from the Barcelona OpenMP Task Suite): [lu0] factors a
    diagonal block in place, [fwd]/[bdiv] solve the triangular systems
    along the pivot row/column, and [bmod] applies the Schur-complement
    update to a trailing block. *)

type t = float array
(** Row-major [bs * bs] block. *)

val create : int -> t
(** Zero block of the given block size. *)

val random : Agp_util.Rng.t -> int -> t
(** Diagonally-dominant-ish random block (entries in [\[1, 2\)] on the
    diagonal scaled by block size, off-diagonal in [\[0, 1\)]), keeping
    pivots well away from zero. *)

val copy : t -> t

val identity : int -> t

val get : t -> int -> int -> int -> float
(** [get b bs i j]. *)

val set : t -> int -> int -> int -> float -> unit

val lu0 : t -> int -> unit
(** In-place LU factorization without pivoting. *)

val fwd : diag:t -> t -> int -> unit
(** [fwd ~diag b bs]: b := L(diag)⁻¹ · b. *)

val bdiv : diag:t -> t -> int -> unit
(** [bdiv ~diag b bs]: b := b · U(diag)⁻¹. *)

val bmod : row:t -> col:t -> t -> int -> unit
(** [bmod ~row ~col b bs]: b := b − row · col.  ([row] is the bdiv'd
    block in the pivot column's row... see {!Sparse_lu} for orientation.) *)

val matmul : t -> t -> int -> t

val sub : t -> t -> int -> t

val max_abs : t -> float

val split_lu : t -> int -> t * t
(** Extract (L with unit diagonal, U) from a factored block. *)
