module Rng = Agp_util.Rng

type t = float array

let create bs = Array.make (bs * bs) 0.0

let random rng bs =
  Array.init (bs * bs) (fun idx ->
      let i = idx / bs and j = idx mod bs in
      if i = j then (1.0 +. Rng.float rng 1.0) *. float_of_int bs else Rng.float rng 1.0)

let copy = Array.copy

let identity bs =
  Array.init (bs * bs) (fun idx -> if idx / bs = idx mod bs then 1.0 else 0.0)

let get b bs i j = b.((i * bs) + j)

let set b bs i j v = b.((i * bs) + j) <- v

let lu0 b bs =
  for k = 0 to bs - 1 do
    let pivot = get b bs k k in
    for i = k + 1 to bs - 1 do
      let lik = get b bs i k /. pivot in
      set b bs i k lik;
      for j = k + 1 to bs - 1 do
        set b bs i j (get b bs i j -. (lik *. get b bs k j))
      done
    done
  done

let fwd ~diag b bs =
  (* Solve L x = b column by column, where L is the unit lower triangle
     of [diag]. *)
  for j = 0 to bs - 1 do
    for i = 0 to bs - 1 do
      let acc = ref (get b bs i j) in
      for k = 0 to i - 1 do
        acc := !acc -. (get diag bs i k *. get b bs k j)
      done;
      set b bs i j !acc
    done
  done

let bdiv ~diag b bs =
  (* Solve x U = b row by row, where U is the upper triangle of [diag]. *)
  for i = 0 to bs - 1 do
    for j = 0 to bs - 1 do
      let acc = ref (get b bs i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get b bs i k *. get diag bs k j)
      done;
      set b bs i j (!acc /. get diag bs j j)
    done
  done

let bmod ~row ~col b bs =
  for i = 0 to bs - 1 do
    for j = 0 to bs - 1 do
      let acc = ref 0.0 in
      for k = 0 to bs - 1 do
        acc := !acc +. (get row bs i k *. get col bs k j)
      done;
      set b bs i j (get b bs i j -. !acc)
    done
  done

let matmul a b bs =
  let c = create bs in
  for i = 0 to bs - 1 do
    for k = 0 to bs - 1 do
      let aik = get a bs i k in
      if aik <> 0.0 then
        for j = 0 to bs - 1 do
          set c bs i j (get c bs i j +. (aik *. get b bs k j))
        done
    done
  done;
  c

let sub a b bs =
  let c = create bs in
  for idx = 0 to (bs * bs) - 1 do
    c.(idx) <- a.(idx) -. b.(idx)
  done;
  c

let max_abs b = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 b

let split_lu b bs =
  let l = identity bs and u = create bs in
  for i = 0 to bs - 1 do
    for j = 0 to bs - 1 do
      if i > j then set l bs i j (get b bs i j) else set u bs i j (get b bs i j)
    done
  done;
  (l, u)
