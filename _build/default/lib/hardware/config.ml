type t = {
  clock_mhz : float;
  cache_bytes : int;
  line_bytes : int;
  hit_latency : int;
  miss_latency : int;
  qpi_gbps : float;
  pipelines : (string * int) list;
  rule_lanes : int;
  mlp : int;
  prim_latency : (string * int) list;
  queue_banks : int;
  window_factor : int;
}

let default =
  {
    clock_mhz = 200.0;
    cache_bytes = 64 * 1024;
    line_bytes = 64;
    hit_latency = 14;
    miss_latency = 40;
    qpi_gbps = 7.0;
    pipelines = [];
    rule_lanes = 256;
    mlp = 4;
    prim_latency = [];
    queue_banks = 8;
    window_factor = 2;
  }

let scale_bandwidth t factor = { t with qpi_gbps = t.qpi_gbps *. factor }

let with_pipelines t pipelines = { t with pipelines }

let bytes_per_cycle t = t.qpi_gbps *. 1.0e9 /. (t.clock_mhz *. 1.0e6)

let cycles_to_seconds t cycles = float_of_int cycles /. (t.clock_mhz *. 1.0e6)

let pipeline_count t set =
  match List.assoc_opt set t.pipelines with
  | Some n -> max 1 n
  | None -> 1
