(** FPGA resource model: per-template costs, the Stratix V
    5SGXEA7N1F45 budget, the pipeline-replication heuristic of §6.3
    ("occupy the FPGA resource as much as possible") and the §6.2
    resource breakdown (rule engines at 4.8–10% of registers). *)

type cost = {
  alms : int;
  registers : int;
  brams : int;  (** M20K blocks *)
  dsps : int;
}

val zero : cost

val add : cost -> cost -> cost

val scale : int -> cost -> cost

val actor_cost : Agp_dataflow.Bdfg.actor_kind -> cost
(** Template cost of one primitive-operation module. *)

val stratix_v : cost
(** Device budget: 234,720 ALMs / 938,880 registers / 2,560 M20K /
    256 DSP. *)

type breakdown = {
  pipelines : cost;  (** all replicated task pipelines *)
  queues : cost;  (** multi-bank task queues + wavefront allocators *)
  rule_engines : cost;  (** lanes, allocators, event buses *)
  memory_system : cost;  (** generic cache + QPI interface *)
  total : cost;
  register_share_rules : float;  (** rule engine registers / total registers *)
}

val pipeline_cost : Agp_dataflow.Bdfg.t -> string -> cost
(** One instance of the named task set's pipeline. *)

val rule_engine_cost : Agp_core.Spec.t -> lanes_per_rule:int -> cost

val breakdown : Agp_core.Spec.t -> Config.t -> breakdown
(** Resource use of a full accelerator under the given configuration. *)

val heuristic_pipelines : Agp_core.Spec.t -> max_per_set:int -> (string * int) list
(** Uniformly replicate every task set's pipeline until the next
    replica would exceed the device budget (capped per set). *)

val fits : breakdown -> bool
