(** Architectural parameters of the modelled CPU-FPGA platform.

    Defaults reproduce the evaluation platform of §6: an Altera
    Stratix V behind Intel HARP's QPI-attached CCI with a 64 KB cache,
    200 MHz fabric clock, 70 ns cache hits and ~200 ns misses
    (Choi et al., DAC'16). *)

type t = {
  clock_mhz : float;  (** fabric clock (200) *)
  cache_bytes : int;  (** CCI cache size (64 KB) *)
  line_bytes : int;  (** cache line (64 B) *)
  hit_latency : int;  (** cycles for a cache hit (14 = 70 ns) *)
  miss_latency : int;  (** added cycles for a QPI round trip (40 = 200 ns) *)
  qpi_gbps : float;  (** shared-memory bandwidth (7.0), scaled in Fig. 10 *)
  pipelines : (string * int) list;
      (** replication per task set; empty = 1 each (the resource
          heuristic of §6.3 fills this in) *)
  rule_lanes : int;  (** lanes across the rule engines (256) *)
  mlp : int;  (** memory-level parallelism of a prim's access burst (4) *)
  prim_latency : (string * int) list;
      (** per-kernel pipeline occupancy in cycles (default 4) *)
  queue_banks : int;  (** banks per multi-bank task queue (8) *)
  window_factor : int;
      (** in-flight tasks per pipeline as a multiple of its stage count
          (2): the depth of the dynamic-dataflow reordering window *)
}

val default : t

val scale_bandwidth : t -> float -> t
(** Multiply the QPI bandwidth (the x-axis of Fig. 10). *)

val with_pipelines : t -> (string * int) list -> t

val bytes_per_cycle : t -> float

val cycles_to_seconds : t -> int -> float

val pipeline_count : t -> string -> int
