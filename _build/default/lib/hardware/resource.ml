module Bdfg = Agp_dataflow.Bdfg
module Spec = Agp_core.Spec

type cost = {
  alms : int;
  registers : int;
  brams : int;
  dsps : int;
}

let zero = { alms = 0; registers = 0; brams = 0; dsps = 0 }

let add a b =
  {
    alms = a.alms + b.alms;
    registers = a.registers + b.registers;
    brams = a.brams + b.brams;
    dsps = a.dsps + b.dsps;
  }

let scale k c =
  { alms = k * c.alms; registers = k * c.registers; brams = k * c.brams; dsps = k * c.dsps }

let mk alms registers brams dsps = { alms; registers; brams; dsps }

(* Template costs, calibrated to typical Stratix V synthesis results
   for comparable modules (dual-port FIFOs between stages included in
   each op's cost). *)
let actor_cost (k : Bdfg.actor_kind) =
  match k with
  | Bdfg.Entry -> mk 200 400 1 0
  | Bdfg.Compute -> mk 350 700 0 1
  | Bdfg.Load_op _ | Bdfg.Store_op _ ->
      (* out-of-order unit: MSHRs and response matching dominate *)
      mk 1400 3200 4 0
  | Bdfg.Spawn _ -> mk 420 850 1 0
  | Bdfg.Spawn_iter _ -> mk 650 1300 1 1
  | Bdfg.Rule_alloc _ -> mk 220 450 0 0
  | Bdfg.Rendezvous -> mk 900 1900 2 0 (* reorder buffer for ooo returns *)
  | Bdfg.Event _ -> mk 160 320 0 0
  | Bdfg.Switch -> mk 120 240 0 0
  | Bdfg.Merge -> mk 120 240 0 0
  | Bdfg.Prim_op _ -> mk 2600 5200 8 6
  | Bdfg.Commit -> mk 60 120 0 0
  | Bdfg.Squash -> mk 60 120 0 0
  | Bdfg.Respawn -> mk 180 360 1 0

let stratix_v = mk 234_720 938_880 2_560 256

let queue_cost ~banks ~ports = add (mk 850 1500 0 0) (add (scale banks (mk 120 260 4 0)) (scale ports (mk 300 650 0 0)))

let rule_engine_cost (sp : Spec.t) ~lanes_per_rule =
  (* Lane payloads live in BRAM (cheap); the registers go to the
     allocator's grant matrix, the event bus and the per-lane
     comparators — matching the paper's observation that the engine is
     4.8-10% of registers, "most of which are consumed by the allocator
     and event bus", with negligible BRAM and logic. *)
  List.fold_left
    (fun acc (r : Spec.rule) ->
      let width = if r.Spec.n_params < 0 then 18 else max 2 r.Spec.n_params in
      let lane = mk 30 24 0 0 in
      let bus = mk 60 180 0 0 in
      let fixed = mk 520 2600 1 0 in
      add acc
        (add fixed
           (add (scale lanes_per_rule lane)
              (add (scale width bus) (mk 0 0 (1 + (lanes_per_rule / 16)) 0)))))
    zero sp.Spec.rules

let memory_system_cost = mk 9000 18000 128 0

type breakdown = {
  pipelines : cost;
  queues : cost;
  rule_engines : cost;
  memory_system : cost;
  total : cost;
  register_share_rules : float;
}

let pipeline_cost g set =
  List.fold_left (fun acc a -> add acc (actor_cost a.Bdfg.kind)) zero (Bdfg.actors_of_set g set)

let breakdown (sp : Spec.t) (cfg : Config.t) =
  let g = Bdfg.of_spec sp in
  let pipelines =
    List.fold_left
      (fun acc ts ->
        let set = ts.Spec.ts_name in
        add acc (scale (Config.pipeline_count cfg set) (pipeline_cost g set)))
      zero sp.Spec.task_sets
  in
  let queues =
    List.fold_left
      (fun acc ts ->
        let ports = Config.pipeline_count cfg ts.Spec.ts_name in
        add acc (queue_cost ~banks:cfg.Config.queue_banks ~ports))
      zero sp.Spec.task_sets
  in
  let lanes_per_rule =
    match sp.Spec.rules with
    | [] -> 0
    | rules -> max 1 (cfg.Config.rule_lanes / List.length rules)
  in
  let rule_engines = rule_engine_cost sp ~lanes_per_rule in
  let total = add pipelines (add queues (add rule_engines memory_system_cost)) in
  {
    pipelines;
    queues;
    rule_engines;
    memory_system = memory_system_cost;
    total;
    register_share_rules =
      (if total.registers = 0 then 0.0
       else float_of_int rule_engines.registers /. float_of_int total.registers);
  }

let fits b =
  b.total.alms <= stratix_v.alms
  && b.total.registers <= stratix_v.registers
  && b.total.brams <= stratix_v.brams
  && b.total.dsps <= stratix_v.dsps

let heuristic_pipelines (sp : Spec.t) ~max_per_set =
  let sets = List.map (fun ts -> ts.Spec.ts_name) sp.Spec.task_sets in
  let rec grow n =
    if n >= max_per_set then n
    else begin
      let cfg =
        Config.with_pipelines Config.default (List.map (fun s -> (s, n + 1)) sets)
      in
      if fits (breakdown sp cfg) then grow (n + 1) else n
    end
  in
  let n = max 1 (grow 1) in
  List.map (fun s -> (s, n)) sets
