lib/hardware/accelerator.mli: Agp_core Config
