lib/hardware/accelerator.ml: Agp_core Agp_dataflow Array Config Hashtbl List Memory Resource
