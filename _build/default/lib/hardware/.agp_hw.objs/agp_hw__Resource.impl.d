lib/hardware/resource.ml: Agp_core Agp_dataflow Config List
