lib/hardware/resource.mli: Agp_core Agp_dataflow Config
