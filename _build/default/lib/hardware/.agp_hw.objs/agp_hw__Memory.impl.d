lib/hardware/memory.ml: Array Config Float List
