lib/hardware/config.ml: List
