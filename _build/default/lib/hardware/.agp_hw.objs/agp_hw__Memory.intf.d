lib/hardware/memory.mli: Config
