lib/hardware/wavefront.ml: Array List
