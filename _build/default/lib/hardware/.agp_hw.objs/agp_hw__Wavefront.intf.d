lib/hardware/wavefront.mli:
