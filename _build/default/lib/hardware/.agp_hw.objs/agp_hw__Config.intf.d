lib/hardware/config.mli:
