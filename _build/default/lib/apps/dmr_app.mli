(** SPEC-DMR: speculative Delaunay mesh refinement (Kulkarni et al.
    PLDI'07 style).

    Each [refine] task re-checks that its triangle is still alive and
    bad, computes the cavity its circumcenter insertion would
    retriangulate, and publishes that cavity as a bounded signature
    (a 16-entry CAM word, the problem-specific comparator template of
    §5.2).  A rule squashes-and-retries a task when an earlier
    concurrent task commits an overlapping cavity; the commit itself is
    an atomic validate-and-retriangulate kernel, so even missed events
    degrade to a retry, never to a corrupt mesh.

    Unlike the graph kernels, the rule uses the [Min_waiting] liveness
    scope: refinement order is irrelevant to correctness (any maximal
    refinement is acceptable), so out-of-order commits are embraced.

    Memory layout: ["spawn"] (queue of triangle ids; task payloads are
    spawn slots) plus synthetic ["tri_data"] addresses touched by the
    mesh kernels. *)

type workload = {
  points : (float * float) array;
}

val default_workload : seed:int -> workload
(** 250 random points in a 100x100 box. *)

val workload_of_points : (float * float) array -> workload

val cavity_signature_width : int
(** Entries in the broadcast cavity signature (16). *)

val speculative : workload -> App_instance.t

val spec_speculative : Agp_core.Spec.t
