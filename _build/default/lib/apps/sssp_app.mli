(** SPEC-SSSP: speculative single-source shortest paths (Bellman-Ford
    worklist, Hassaan et al. PPoPP'11 style).

    Each [relax] task proposes a candidate distance for the head of one
    edge.  A rule broadcasts committing distances so dominated in-flight
    candidates squash themselves ("distance of committing vertices are
    broadcast to all running tasks to avoid data hazard", §6.1).

    Memory layout: ["row_ptr"], ["col"], ["weight"] (CSR) and ["dist"]
    initialized to {!Agp_graph.Sssp.unreachable}. *)

type workload = {
  graph : Agp_graph.Csr.t;
  root : int;
}

val default_workload : seed:int -> workload

val workload_of_graph : Agp_graph.Csr.t -> int -> workload

val speculative : workload -> App_instance.t

val spec_speculative : Agp_core.Spec.t
