(** Breadth-first search in the task/rule abstraction — both aggressive
    parallelization strategies evaluated in the paper.

    - {b SPEC-BFS} (Kulkarni et al. / TLS style): [update] tasks guard
      their write to [level] with a speculative rule that squashes a
      task when an earlier task commits the same address; [visit] tasks
      carry a staleness guard so flooded duplicate work self-squashes.
    - {b COOR-BFS} (Leiserson & Schardl style): [visit] tasks wait at a
      rendezvous until the minimum-task broadcast carries their level —
      the level-synchronized schedule without barriers.

    Memory layout (Σ): ["row_ptr"], ["col"] (CSR) and ["level"]
    initialized to {!Agp_graph.Bfs.infinity_level}. *)

type workload = {
  graph : Agp_graph.Csr.t;
  root : int;
}

val default_workload : seed:int -> workload
(** A road-network graph (40x25 grid), root 0. *)

val workload_of_graph : Agp_graph.Csr.t -> int -> workload

val speculative : workload -> App_instance.t
(** SPEC-BFS. *)

val coordinative : workload -> App_instance.t
(** COOR-BFS. *)

val spec_speculative : Agp_core.Spec.t
(** The specification alone (for compilation/synthesis tooling). *)

val spec_coordinative : Agp_core.Spec.t
