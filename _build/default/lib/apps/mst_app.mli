(** SPEC-MST: speculative Kruskal minimum spanning tree (Blelloch
    et al. PPoPP'12 style).

    Edges are sorted by weight host-side; each [addedge] task finds the
    component roots of its endpoints (a metered pointer chase through
    the union-find arrays) and commits the union in strict weight order
    ([Min_uncommitted] scope).  A rule squashes-and-retries any later
    edge whose endpoint overlaps a committing earlier edge, exactly the
    abort condition of §6.1.

    Memory layout: ["ea"], ["eb"], ["ew"] (sorted endpoints/weights),
    ["uf_parent"] (union-find forest read by the find prim) and
    ["mst_flag"] (1 marks a chosen edge). *)

type workload = { graph : Agp_graph.Csr.t }

val default_workload : seed:int -> workload

val workload_of_graph : Agp_graph.Csr.t -> workload

val speculative : workload -> App_instance.t

val spec_speculative : Agp_core.Spec.t
