(** COOR-LU: coordinative blocked sparse LU factorization (Hassaan
    et al. ASPLOS'15 kinetic-dependence-graph style, over the BOTS
    sparselu kernel).

    All block tasks are pushed host-side in the sequential (k-major)
    order.  Each task's rule is a {e countdown}: it decrements on every
    [block_done] broadcast from an earlier task writing one of the
    blocks this task reads, and releases the task when the count
    reaches zero — out-of-order commits whenever dependences allow,
    with the minimum-task otherwise path guaranteeing liveness.  The
    expected counts come from the symbolic factorization (the
    scoreboard of Fig. 8).

    Payload layout (arity 13):
    [kind; k; i; j; rank; r0i; r0j; r1i; r1j; r2i; r2j; wi; wj]
    where kind is 0=lu0 1=fwd 2=bdiv 3=bmod, (rXi, rXj) are read
    blocks padded with -1, and (wi, wj) is the written block. *)

type workload = {
  matrix : Agp_sparse.Block_matrix.t;
}

val default_workload : seed:int -> workload
(** 8x8 blocks of 8x8 doubles at 30% off-diagonal density. *)

val sized_workload : seed:int -> nb:int -> bs:int -> density:float -> workload

val coordinative : workload -> App_instance.t

val spec_coordinative : Agp_core.Spec.t
