lib/apps/sssp_app.ml: Agp_core Agp_graph App_instance Array List Spec State Value
