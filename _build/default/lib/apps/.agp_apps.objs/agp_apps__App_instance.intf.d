lib/apps/app_instance.mli: Agp_core
