lib/apps/app_instance.ml: Agp_core Result
