lib/apps/bfs_app.ml: Agp_core Agp_graph App_instance Array Spec State Value
