lib/apps/dmr_app.ml: Agp_core Agp_geometry Agp_graph App_instance Array Hashtbl Index List Option Printf Spec State Value
