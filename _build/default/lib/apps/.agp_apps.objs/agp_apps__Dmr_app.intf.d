lib/apps/dmr_app.mli: Agp_core App_instance
