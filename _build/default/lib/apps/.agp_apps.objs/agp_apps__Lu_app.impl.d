lib/apps/lu_app.ml: Agp_core Agp_sparse App_instance Array List Printf Spec State Value
