lib/apps/mst_app.ml: Agp_core Agp_graph Agp_util App_instance Array List Spec State Value
