lib/apps/lu_app.mli: Agp_core Agp_sparse App_instance
