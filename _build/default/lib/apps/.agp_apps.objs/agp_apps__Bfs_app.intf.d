lib/apps/bfs_app.mli: Agp_core Agp_graph App_instance
