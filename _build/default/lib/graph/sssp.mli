(** Reference single-source shortest paths.

    Dijkstra provides the gold answer; the worklist Bellman-Ford variant
    mirrors the task structure that SPEC-SSSP aggressively parallelizes
    (Hassaan et al., PPoPP'11) and additionally reports how much work the
    unordered algorithm performs. *)

val unreachable : int
(** Distance sentinel for unreachable vertices. *)

val dijkstra : Csr.t -> int -> int array

val bellman_ford : Csr.t -> int -> int array * int
(** Worklist (chaotic-relaxation) Bellman-Ford.  Returns the distance
    array and the number of relaxation tasks executed — the sequential
    task count of the SPEC-SSSP formulation. *)

val check_distances : Csr.t -> int -> int array -> (unit, string) result
(** Triangle-inequality certificate: [d.(root) = 0], every edge is
    relaxed ([d.(v) <= d.(u) + w]), and every reached non-root vertex has
    a tight incoming edge. *)
