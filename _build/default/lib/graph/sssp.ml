module Heap = Agp_util.Heap

let unreachable = max_int / 2

let dijkstra (g : Csr.t) root =
  let dist = Array.make g.n unreachable in
  dist.(root) <- 0;
  let heap = Heap.create (fun (d1, _) (d2, _) -> compare d1 d2) in
  Heap.push heap (0, root);
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d = dist.(u) then
          Csr.iter_neighbors g u (fun v w ->
              let nd = d + w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Heap.push heap (nd, v)
              end);
        loop ()
  in
  loop ();
  dist

let bellman_ford (g : Csr.t) root =
  let dist = Array.make g.n unreachable in
  dist.(root) <- 0;
  let q = Queue.create () in
  let in_queue = Array.make g.n false in
  Queue.push root q;
  in_queue.(root) <- true;
  let tasks = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    in_queue.(u) <- false;
    incr tasks;
    Csr.iter_neighbors g u (fun v w ->
        let nd = dist.(u) + w in
        if nd < dist.(v) then begin
          dist.(v) <- nd;
          if not in_queue.(v) then begin
            in_queue.(v) <- true;
            Queue.push v q
          end
        end)
  done;
  (dist, !tasks)

let check_distances (g : Csr.t) root d =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length d <> g.n then err "distance array has wrong length"
  else if d.(root) <> 0 then err "root distance is %d" d.(root)
  else begin
    let rec check v =
      if v >= g.n then Ok ()
      else begin
        let relaxed =
          Csr.fold_neighbors g v
            (fun acc dst w -> acc && (d.(v) = unreachable || d.(dst) <= d.(v) + w))
            true
        in
        if not relaxed then err "edge out of vertex %d not relaxed" v
        else if v <> root && d.(v) <> unreachable then begin
          let tight =
            Csr.fold_neighbors g v
              (fun acc dst w -> acc || (d.(dst) <> unreachable && d.(dst) + w = d.(v)))
              false
          in
          (* The graph is symmetric, so an incoming tight edge appears as an
             outgoing edge of [v]. *)
          if tight then check (v + 1) else err "vertex %d has no tight predecessor" v
        end
        else check (v + 1)
      end
    in
    check 0
  end
