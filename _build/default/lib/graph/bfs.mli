(** Reference breadth-first search (the sequential algorithm of the
    paper's Figure 1a) plus helpers used as correctness oracles for the
    SPEC-BFS / COOR-BFS accelerators. *)

val infinity_level : int
(** Sentinel stored for unreached vertices ([max_int / 2]). *)

val levels : Csr.t -> int -> int array
(** [levels g root] assigns each vertex its BFS level: [root] gets 0,
    unreachable vertices get {!infinity_level}. *)

val level_histogram : int array -> (int * int) list
(** [(level, count)] pairs, ascending, excluding unreached vertices. *)

val diameter_from : Csr.t -> int -> int
(** Largest finite level observed from the given root. *)

val check_levels : Csr.t -> int -> int array -> (unit, string) result
(** Verify a level assignment without recomputing the reference:
    root is 0, every edge differs by at most 1 level, every non-root
    reached vertex has a parent one level below, and reachability agrees
    with a fresh traversal's visit set. *)
