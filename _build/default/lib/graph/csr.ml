type t = {
  n : int;
  m : int;
  row_ptr : int array;
  col : int array;
  weight : int array;
}

let of_edges ?(directed = false) ~n edges =
  let all =
    if directed then edges
    else List.concat_map (fun (u, v, w) -> [ (u, v, w); (v, u, w) ]) edges
  in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Csr.of_edges: vertex out of range";
      deg.(u) <- deg.(u) + 1)
    all;
  let row_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_ptr.(v + 1) <- row_ptr.(v) + deg.(v)
  done;
  let m = row_ptr.(n) in
  let col = Array.make (max m 1) 0 in
  let weight = Array.make (max m 1) 0 in
  let cursor = Array.copy row_ptr in
  List.iter
    (fun (u, v, w) ->
      let slot = cursor.(u) in
      col.(slot) <- v;
      weight.(slot) <- w;
      cursor.(u) <- slot + 1)
    all;
  (* Sort each adjacency list for determinism. *)
  for v = 0 to n - 1 do
    let lo = row_ptr.(v) and hi = row_ptr.(v + 1) in
    let slice = Array.init (hi - lo) (fun i -> (col.(lo + i), weight.(lo + i))) in
    Array.sort compare slice;
    Array.iteri
      (fun i (c, w) ->
        col.(lo + i) <- c;
        weight.(lo + i) <- w)
      slice
  done;
  { n; m; row_ptr; col; weight }

let degree g v = g.row_ptr.(v + 1) - g.row_ptr.(v)

let iter_neighbors g v f =
  for i = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
    f g.col.(i) g.weight.(i)
  done

let fold_neighbors g v f acc =
  let acc = ref acc in
  iter_neighbors g v (fun dst w -> acc := f !acc dst w);
  !acc

let edges g =
  let out = ref [] in
  for v = g.n - 1 downto 0 do
    for i = g.row_ptr.(v + 1) - 1 downto g.row_ptr.(v) do
      out := (v, g.col.(i), g.weight.(i)) :: !out
    done
  done;
  !out

let undirected_edges g =
  List.filter (fun (u, v, _) -> u <= v) (edges g)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (degree g v)
  done;
  !best

let total_weight g = Array.fold_left ( + ) 0 (Array.sub g.weight 0 g.m)

let is_symmetric g =
  let has_edge u v w =
    fold_neighbors g u (fun acc dst dw -> acc || (dst = v && dw = w)) false
  in
  List.for_all (fun (u, v, w) -> has_edge v u w) (edges g)

let validate g =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length g.row_ptr <> g.n + 1 then err "row_ptr length %d <> n+1" (Array.length g.row_ptr)
  else if g.row_ptr.(0) <> 0 then err "row_ptr.(0) <> 0"
  else if g.row_ptr.(g.n) <> g.m then err "row_ptr.(n) %d <> m %d" g.row_ptr.(g.n) g.m
  else begin
    let rec check_mono v =
      if v >= g.n then Ok ()
      else if g.row_ptr.(v + 1) < g.row_ptr.(v) then err "row_ptr not monotone at %d" v
      else check_mono (v + 1)
    in
    match check_mono 0 with
    | Error _ as e -> e
    | Ok () ->
        let rec check_edges i =
          if i >= g.m then Ok ()
          else if g.col.(i) < 0 || g.col.(i) >= g.n then err "edge %d target out of range" i
          else if g.weight.(i) <= 0 then err "edge %d weight not positive" i
          else check_edges (i + 1)
        in
        check_edges 0
  end
