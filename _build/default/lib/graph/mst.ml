module Union_find = Agp_util.Union_find

type tree = {
  edges : (int * int * int) list;
  weight : int;
  components : int;
}

let sorted_edges g =
  let arr = Array.of_list (Csr.undirected_edges g) in
  Array.sort (fun (u1, v1, w1) (u2, v2, w2) -> compare (w1, u1, v1) (w2, u2, v2)) arr;
  arr

let kruskal (g : Csr.t) =
  let uf = Union_find.create g.n in
  let chosen = ref [] in
  let weight = ref 0 in
  Array.iter
    (fun (u, v, w) ->
      if Union_find.union uf u v then begin
        chosen := (u, v, w) :: !chosen;
        weight := !weight + w
      end)
    (sorted_edges g);
  { edges = List.rev !chosen; weight = !weight; components = Union_find.count_sets uf }

let check (g : Csr.t) r =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let uf = Union_find.create g.n in
  let rec add = function
    | [] -> Ok ()
    | (u, v, _) :: rest ->
        if Union_find.union uf u v then add rest else err "cycle through edge %d-%d" u v
  in
  match add r.edges with
  | Error _ as e -> e
  | Ok () ->
      let reference = kruskal g in
      if List.length r.edges <> List.length reference.edges then
        err "tree has %d edges, expected %d" (List.length r.edges) (List.length reference.edges)
      else if r.weight <> reference.weight then
        err "tree weight %d, optimal is %d" r.weight reference.weight
      else if Union_find.count_sets uf <> reference.components then
        err "component count mismatch"
      else Ok ()
