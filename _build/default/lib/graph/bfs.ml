let infinity_level = max_int / 2

let levels (g : Csr.t) root =
  let level = Array.make g.n infinity_level in
  level.(root) <- 0;
  let q = Queue.create () in
  Queue.push root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Csr.iter_neighbors g u (fun v _ ->
        if level.(v) = infinity_level then begin
          level.(v) <- level.(u) + 1;
          Queue.push v q
        end)
  done;
  level

let level_histogram levels =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      if l <> infinity_level then
        Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    levels;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl [] |> List.sort compare

let diameter_from g root =
  Array.fold_left
    (fun acc l -> if l <> infinity_level && l > acc then l else acc)
    0 (levels g root)

let check_levels (g : Csr.t) root given =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length given <> g.n then err "level array has wrong length"
  else if given.(root) <> 0 then err "root level is %d, expected 0" given.(root)
  else begin
    let reference = levels g root in
    let rec check v =
      if v >= g.n then Ok ()
      else begin
        let reached_ref = reference.(v) <> infinity_level in
        let reached_giv = given.(v) <> infinity_level in
        if reached_ref <> reached_giv then err "vertex %d reachability mismatch" v
        else begin
          let edge_ok =
            Csr.fold_neighbors g v
              (fun acc dst _ ->
                acc
                && (given.(dst) = infinity_level
                   || given.(v) = infinity_level
                   || abs (given.(dst) - given.(v)) <= 1))
              true
          in
          if not edge_ok then err "edge slack violated at vertex %d" v
          else if reached_giv && v <> root then begin
            let has_parent =
              Csr.fold_neighbors g v (fun acc dst _ -> acc || given.(dst) = given.(v) - 1) false
            in
            if has_parent then check (v + 1) else err "vertex %d has no parent" v
          end
          else check (v + 1)
        end
      end
    in
    check 0
  end
