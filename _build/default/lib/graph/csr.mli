(** Compressed sparse row graphs.

    The canonical in-memory graph layout for all graph workloads: a
    vertex-indexed offset array into packed adjacency and weight arrays.
    This is also exactly the layout the accelerator models read through
    the simulated memory system, so the same arrays back both the
    software references and the hardware simulation. *)

type t = {
  n : int;  (** number of vertices *)
  m : int;  (** number of directed edges stored *)
  row_ptr : int array;  (** length [n+1]; edges of [v] are [row_ptr.(v) .. row_ptr.(v+1)-1] *)
  col : int array;  (** length [m]; target vertex per edge slot *)
  weight : int array;  (** length [m]; positive edge weights *)
}

val of_edges : ?directed:bool -> n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds a graph over vertices [0..n-1] from
    [(src, dst, weight)] triples.  When [directed] is [false] (default)
    each edge is stored in both directions. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g v f] calls [f dst weight] for every out-edge. *)

val fold_neighbors : t -> int -> ('acc -> int -> int -> 'acc) -> 'acc -> 'acc

val edges : t -> (int * int * int) list
(** All stored directed edges as [(src, dst, weight)]. *)

val undirected_edges : t -> (int * int * int) list
(** One triple per undirected edge (keeps [src <= dst]). *)

val max_degree : t -> int

val total_weight : t -> int
(** Sum of stored directed edge weights. *)

val is_symmetric : t -> bool
(** True when every stored edge has a reverse of equal weight. *)

val validate : t -> (unit, string) result
(** Structural invariants: monotone offsets, in-range targets, positive
    weights. *)
