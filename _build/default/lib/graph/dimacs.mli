(** Reader/writer for the 9th DIMACS Implementation Challenge shortest
    path format ([.gr] files: [c] comments, one [p sp n m] problem line,
    [a u v w] arc lines with 1-based vertices).

    Lets real road-network inputs be swapped in for the synthetic
    generator when available. *)

val parse : string -> (Csr.t, string) result
(** Parse the contents of a [.gr] file (arcs are taken as directed; a
    symmetric file round-trips to a symmetric graph). *)

val read_file : string -> (Csr.t, string) result

val to_string : Csr.t -> string
(** Serialize all stored directed edges. *)

val write_file : string -> Csr.t -> unit
