(** Reference minimum spanning tree via Kruskal's algorithm — the
    sequential semantics that SPEC-MST speculates over. *)

type tree = {
  edges : (int * int * int) list;  (** chosen tree edges, in acceptance order *)
  weight : int;  (** total tree weight *)
  components : int;  (** connected components of the input (1 = spanning) *)
}

val sorted_edges : Csr.t -> (int * int * int) array
(** Undirected edge list sorted by (weight, src, dst) — the well-ordered
    task sequence of SPEC-MST. *)

val kruskal : Csr.t -> tree

val check : Csr.t -> tree -> (unit, string) result
(** Validates tree-ness (acyclic, right edge count) and weight optimality
    by comparing against a fresh Kruskal run (MST weight is unique even
    when the tree is not). *)
