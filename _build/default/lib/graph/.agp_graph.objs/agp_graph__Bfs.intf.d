lib/graph/bfs.mli: Csr
