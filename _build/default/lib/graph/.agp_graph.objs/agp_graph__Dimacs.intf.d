lib/graph/dimacs.mli: Csr
