lib/graph/sssp.ml: Agp_util Array Csr Printf Queue
