lib/graph/csr.ml: Array List Printf
