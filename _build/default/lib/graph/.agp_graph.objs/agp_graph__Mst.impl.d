lib/graph/mst.ml: Agp_util Array Csr List Printf
