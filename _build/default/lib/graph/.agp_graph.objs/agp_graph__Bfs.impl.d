lib/graph/bfs.ml: Array Csr Hashtbl List Option Printf Queue
