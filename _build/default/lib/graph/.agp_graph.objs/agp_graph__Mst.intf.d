lib/graph/mst.mli: Csr
