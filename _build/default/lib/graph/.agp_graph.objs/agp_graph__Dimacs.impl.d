lib/graph/dimacs.ml: Buffer Csr In_channel List Out_channel Printf String
