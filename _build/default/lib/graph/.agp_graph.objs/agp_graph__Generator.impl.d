lib/graph/generator.ml: Agp_util Array Csr Hashtbl List
