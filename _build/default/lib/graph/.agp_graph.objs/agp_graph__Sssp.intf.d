lib/graph/sssp.mli: Csr
