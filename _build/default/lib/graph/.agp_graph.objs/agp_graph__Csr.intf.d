lib/graph/csr.mli:
