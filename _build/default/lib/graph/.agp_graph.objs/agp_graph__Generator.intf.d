lib/graph/generator.mli: Csr
