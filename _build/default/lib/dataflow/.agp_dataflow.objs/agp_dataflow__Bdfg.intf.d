lib/dataflow/bdfg.mli: Agp_core
