lib/dataflow/bdfg.ml: Agp_core Agp_util Array Buffer Format Hashtbl List Option Printf Seq
