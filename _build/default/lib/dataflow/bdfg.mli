(** Boolean Dataflow Graph (BDFG) — the intermediate representation
    between the task/rule abstraction and the FPGA templates (§5.1,
    Buck's token-flow model).

    Each task set compiles to one subgraph: an entry actor fed by the
    set's task queue, a chain of primitive-operation actors following
    the body, switch actors for conditionals and rendezvous (the
    boolean-controlled actors that make the graph a BDFG), and sinks
    for commit/squash.  Control dependence is encoded as data
    dependence on the boolean token steering each switch — there is no
    centralized controller, which is the property that lets the
    hardware model execute tasks as freely-flowing tokens. *)

type actor_kind =
  | Entry  (** pops task tokens from the set's queue *)
  | Compute  (** ALU work: [Let] *)
  | Load_op of string  (** memory read from the named array *)
  | Store_op of string
  | Spawn of string  (** push one task token to the named set's queue *)
  | Spawn_iter of string  (** data-dependent task spawner (inner loop) *)
  | Rule_alloc of string  (** lane allocation in the named rule engine *)
  | Rendezvous  (** switch steered by the rule's future *)
  | Event of string  (** broadcast port onto the event bus *)
  | Switch  (** boolean switch actor (If) *)
  | Merge  (** boolean merge actor *)
  | Prim_op of string  (** problem-specific kernel *)
  | Commit
  | Squash  (** abort sink *)
  | Respawn  (** retry sink: re-enqueue with the same index *)

type actor = {
  id : int;
  kind : actor_kind;
  set : string;  (** owning task set *)
  label : string;
}

type edge = {
  src : int;
  dst : int;
  branch : bool option;
      (** for edges out of a [Switch]/[Rendezvous]: which boolean steers
          a token this way *)
}

type t = {
  actors : actor array;
  edges : edge list;
}

val of_spec : Agp_core.Spec.t -> t
(** Compile every task set's body.  The translation is the systematic
    one described in §5.1: queues from for-all/for-each constructs,
    rule constructors and rendezvous inserted as primitive
    operations. *)

val actors_of_set : t -> string -> actor list
(** In pipeline order (a topological order of the subgraph). *)

val stage_count : t -> string -> int
(** Primitive operations in one pipeline instance of the set —
    the denominator of the utilization metric. *)

val depth : t -> string -> int
(** Longest actor chain from the set's entry to a sink — the pipeline
    depth (fill latency in stages) of one instance. *)

val successors : t -> int -> (actor * bool option) list

val validate : t -> (unit, string) result
(** Every subgraph has exactly one [Entry], all non-sink actors have a
    successor, switches have both branches, and the graph is acyclic
    within a task body. *)

val to_dot : t -> string
(** Graphviz rendering (one cluster per task set). *)
