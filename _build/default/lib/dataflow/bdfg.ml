module Spec = Agp_core.Spec
module Vec = Agp_util.Vec

type actor_kind =
  | Entry
  | Compute
  | Load_op of string
  | Store_op of string
  | Spawn of string
  | Spawn_iter of string
  | Rule_alloc of string
  | Rendezvous
  | Event of string
  | Switch
  | Merge
  | Prim_op of string
  | Commit
  | Squash
  | Respawn

type actor = {
  id : int;
  kind : actor_kind;
  set : string;
  label : string;
}

type edge = {
  src : int;
  dst : int;
  branch : bool option;
}

type t = {
  actors : actor array;
  edges : edge list;
}

type builder = {
  acts : actor Vec.t;
  mutable eds : edge list;
}

let new_actor b set kind label =
  let a = { id = Vec.length b.acts; kind; set; label } in
  Vec.push b.acts a;
  a

let connect b ?branch src dst = b.eds <- { src; dst; branch } :: b.eds

let rec expr_label (e : Spec.expr) = Format.asprintf "%a" pp_expr_short e

and pp_expr_short fmt (e : Spec.expr) =
  match e with
  | Spec.Const v -> Agp_core.Value.pp fmt v
  | Spec.Param i -> Format.fprintf fmt "$%d" i
  | Spec.Var v -> Format.fprintf fmt "%s" v
  | Spec.Binop (_, _, _) -> Format.fprintf fmt "expr"
  | Spec.Not _ -> Format.fprintf fmt "!expr"
  | Spec.Neg _ -> Format.fprintf fmt "-expr"

(* Compile a body; [prev] is the (actor, branch) feeding the next op.
   Returns the dangling outputs that reach the end of the list (i.e.
   fall through to Commit). *)
let rec compile_body b set prev ops =
  match ops with
  | [] -> [ prev ]
  | op :: rest -> begin
      let pa, pbr = prev in
      let simple kind label =
        let a = new_actor b set kind label in
        connect b ?branch:pbr pa.id a.id;
        compile_body b set (a, None) rest
      in
      match op with
      | Spec.Let (v, e) -> simple Compute (v ^ " = " ^ expr_label e)
      | Spec.Load (v, arr, _) -> simple (Load_op arr) (v ^ " <- " ^ arr)
      | Spec.Store (arr, _, _) -> simple (Store_op arr) (arr ^ " <- store")
      | Spec.Push (target, _) -> simple (Spawn target) ("push " ^ target)
      | Spec.Push_iter (target, _, _, _, _) -> simple (Spawn_iter target) ("spawn* " ^ target)
      | Spec.Alloc (h, rule, _) -> simple (Rule_alloc rule) (h ^ " <- " ^ rule)
      | Spec.Await (v, h) -> simple Rendezvous (v ^ " <- await " ^ h)
      | Spec.Emit (l, _) -> simple (Event l) ("emit " ^ l)
      | Spec.Prim (_, name, _) -> simple (Prim_op name) ("prim " ^ name)
      | Spec.Abort ->
          let a = new_actor b set Squash "abort" in
          connect b ?branch:pbr pa.id a.id;
          []
      | Spec.Retry ->
          let a = new_actor b set Respawn "retry" in
          connect b ?branch:pbr pa.id a.id;
          []
      | Spec.If (_, then_ops, else_ops) ->
          let sw = new_actor b set Switch "switch" in
          connect b ?branch:pbr pa.id sw.id;
          let then_ends = compile_body b set (sw, Some true) then_ops in
          let else_ends = compile_body b set (sw, Some false) else_ops in
          let ends = then_ends @ else_ends in
          begin
            match ends with
            | [] -> [] (* both branches sink *)
            | [ single ] -> compile_body b set single rest
            | _ :: _ :: _ ->
                let mg = new_actor b set Merge "merge" in
                List.iter (fun (a, br) -> connect b ?branch:br a.id mg.id) ends;
                compile_body b set (mg, None) rest
          end
    end

let of_spec (sp : Spec.t) =
  let b = { acts = Vec.create (); eds = [] } in
  List.iter
    (fun ts ->
      let set = ts.Spec.ts_name in
      let entry = new_actor b set Entry (set ^ " queue") in
      let ends = compile_body b set (entry, None) ts.Spec.body in
      match ends with
      | [] -> ()
      | ends ->
          let commit = new_actor b set Commit "commit" in
          List.iter (fun (a, br) -> connect b ?branch:br a.id commit.id) ends)
    sp.Spec.task_sets;
  { actors = Vec.to_array b.acts; edges = List.rev b.eds }

let actors_of_set t set =
  (* actor ids are allocated in pipeline order during compilation *)
  Array.to_list (Array.of_seq (Seq.filter (fun a -> a.set = set) (Array.to_seq t.actors)))

let is_primitive a =
  match a.kind with
  | Entry | Merge -> false
  | Compute | Load_op _ | Store_op _ | Spawn _ | Spawn_iter _ | Rule_alloc _ | Rendezvous
  | Event _ | Switch | Prim_op _ | Commit | Squash | Respawn ->
      true

let stage_count t set = List.length (List.filter is_primitive (actors_of_set t set))

let depth t set =
  (* ids are allocated in topological order within a body, so one
     forward sweep computes the longest path *)
  let actors = actors_of_set t set in
  let dist = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let here = Option.value ~default:1 (Hashtbl.find_opt dist a.id) in
      List.iter
        (fun e ->
          if e.src = a.id then begin
            let cur = Option.value ~default:0 (Hashtbl.find_opt dist e.dst) in
            if here + 1 > cur then Hashtbl.replace dist e.dst (here + 1)
          end)
        t.edges)
    actors;
  List.fold_left
    (fun acc a -> max acc (Option.value ~default:1 (Hashtbl.find_opt dist a.id)))
    1 actors

let successors t id =
  List.filter_map
    (fun e -> if e.src = id then Some (t.actors.(e.dst), e.branch) else None)
    t.edges

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let sets = List.sort_uniq compare (Array.to_list (Array.map (fun a -> a.set) t.actors)) in
  let rec check_sets = function
    | [] -> Ok ()
    | set :: rest ->
        let actors = actors_of_set t set in
        let entries = List.filter (fun a -> a.kind = Entry) actors in
        if List.length entries <> 1 then err "set %s has %d entries" set (List.length entries)
        else begin
          let bad_actor =
            List.find_opt
              (fun a ->
                match a.kind with
                | Commit | Squash | Respawn -> successors t a.id <> []
                | Switch ->
                    let succ = successors t a.id in
                    not
                      (List.exists (fun (_, br) -> br = Some true) succ
                      && List.exists (fun (_, br) -> br = Some false) succ)
                | Entry | Compute | Load_op _ | Store_op _ | Spawn _ | Spawn_iter _
                | Rule_alloc _ | Event _ | Merge | Prim_op _ | Rendezvous ->
                    (* a rendezvous forwards the resolved boolean; the
                       steering switch follows as its own actor *)
                    successors t a.id = [])
              actors
          in
          match bad_actor with
          | Some a -> err "set %s: actor %d (%s) ill-connected" set a.id a.label
          | None -> check_sets rest
        end
  in
  (* Acyclicity holds by construction (edges go to fresh actors), so
     only connectivity is checked. *)
  check_sets sets

let kind_shape = function
  | Entry -> "house"
  | Compute -> "box"
  | Load_op _ | Store_op _ -> "cylinder"
  | Spawn _ | Spawn_iter _ -> "cds"
  | Rule_alloc _ -> "component"
  | Rendezvous -> "diamond"
  | Event _ -> "rarrow"
  | Switch -> "diamond"
  | Merge -> "invtriangle"
  | Prim_op _ -> "box3d"
  | Commit -> "doublecircle"
  | Squash | Respawn -> "octagon"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph bdfg {\n  rankdir=TB;\n";
  let sets = List.sort_uniq compare (Array.to_list (Array.map (fun a -> a.set) t.actors)) in
  List.iteri
    (fun i set ->
      Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d {\n    label=%S;\n" i set);
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "    n%d [label=%S shape=%s];\n" a.id a.label (kind_shape a.kind)))
        (actors_of_set t set);
      Buffer.add_string buf "  }\n")
    sets;
  List.iter
    (fun e ->
      let style =
        match e.branch with
        | Some true -> " [label=\"T\"]"
        | Some false -> " [label=\"F\"]"
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" e.src e.dst style))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
