module App_instance = Agp_apps.App_instance
module Engine = Agp_core.Engine
module Table = Agp_util.Table

type row = {
  amp_app : string;
  necessary : int;
  activated : int;
  committed : int;
  squashed : int;
  amplification : float;
}

let validated name check =
  match check () with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "Amplification: %s produced a wrong result: %s" name e)

let measure ?(workers = 10) (app : App_instance.t) =
  let seq = app.App_instance.fresh () in
  let seq_report =
    Agp_core.Sequential.run ~initial:seq.App_instance.initial app.App_instance.spec
      seq.App_instance.bindings seq.App_instance.state
  in
  validated app.App_instance.app_name seq.App_instance.check;
  let par = app.App_instance.fresh () in
  let par_report =
    Agp_core.Runtime.run ~initial:par.App_instance.initial ~workers app.App_instance.spec
      par.App_instance.bindings par.App_instance.state
  in
  validated app.App_instance.app_name par.App_instance.check;
  let s = par_report.Agp_core.Runtime.stats in
  let necessary = seq_report.Agp_core.Sequential.stats.Engine.committed in
  {
    amp_app = app.App_instance.app_name;
    necessary;
    activated = s.Engine.activated;
    committed = s.Engine.committed;
    squashed = s.Engine.aborted + s.Engine.retried;
    amplification =
      (if necessary = 0 then 1.0 else float_of_int s.Engine.activated /. float_of_int necessary);
  }

let table ?(workers = 10) ?(scale = Workloads.Small) ?(seed = 42) () =
  List.map (measure ~workers) (Workloads.all scale ~seed)

let print rows =
  let t =
    Table.create [ "app"; "necessary"; "activated"; "committed"; "squashed"; "amplification" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.amp_app;
          string_of_int r.necessary;
          string_of_int r.activated;
          string_of_int r.committed;
          string_of_int r.squashed;
          Table.cell_ratio r.amplification;
        ])
    rows;
  Table.print t
