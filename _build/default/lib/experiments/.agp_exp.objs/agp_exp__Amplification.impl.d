lib/experiments/amplification.ml: Agp_apps Agp_core Agp_util List Printf Workloads
