lib/experiments/explore.ml: Agp_apps Agp_core Agp_hw Agp_util List Printf
