lib/experiments/amplification.mli: Agp_apps Workloads
