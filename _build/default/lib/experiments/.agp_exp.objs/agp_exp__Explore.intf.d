lib/experiments/explore.mli: Agp_apps
