lib/experiments/experiments.ml: Agp_apps Agp_baseline Agp_core Agp_graph Agp_hw Agp_util Array Buffer List Printf Queue String Workloads
