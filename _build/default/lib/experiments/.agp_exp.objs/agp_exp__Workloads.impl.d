lib/experiments/workloads.ml: Agp_apps Agp_graph Printf
