lib/experiments/experiments.mli: Workloads
