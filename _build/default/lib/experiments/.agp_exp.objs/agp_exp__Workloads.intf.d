lib/experiments/workloads.mli: Agp_apps Agp_graph
