(** Reproduction harness: one entry per table/figure in the paper's
    evaluation (§6).  Each returns structured rows and can render the
    same table the paper prints; EXPERIMENTS.md records paper-reported
    vs. measured values. *)

(** {1 Figure 9 — speedup over software} *)

type fig9_row = {
  app : string;
  fpga_s : float;
  cpu1_s : float;
  cpu10_s : float;
  speedup_vs_1 : float;
  speedup_vs_10 : float;
  utilization : float;
}

val fig9 : ?scale:Workloads.scale -> ?seed:int -> unit -> fig9_row list
(** All six accelerators against the 1-core and 10-core models.
    Each accelerated run is validated against the substrate reference
    before its time is reported.  @raise Failure on validation
    failure. *)

val print_fig9 : fig9_row list -> unit

(** {1 Figure 10 — QPI bandwidth sweep} *)

type fig10_row = {
  app10 : string;
  factor : float;  (** bandwidth multiplier over 7 GB/s *)
  speedup_over_1x : float;
  utilization10 : float;
  aborted : int;  (** squashed tasks: the SPEC-BFS flooding signal *)
}

val fig10 : ?scale:Workloads.scale -> ?seed:int -> ?factors:float list -> unit -> fig10_row list
(** Default factors 1, 2, 4, 8. *)

val print_fig10 : fig10_row list -> unit

(** {1 Table 1 — OpenCL BFS vs generated accelerators} *)

type table1 = {
  opencl_s : float;
  spec_bfs_s : float;
  coor_bfs_s : float;
  opencl_rounds : int;
}

val table1 : ?scale:Workloads.scale -> ?seed:int -> unit -> table1

val print_table1 : table1 -> unit

(** {1 §6.2 — resource breakdown} *)

type resource_row = {
  rapp : string;
  pipelines_used : (string * int) list;
  alms : int;
  registers : int;
  brams : int;
  rule_register_share : float;  (** paper band: 4.8–10% *)
  fits_device : bool;
}

val resources : ?seed:int -> unit -> resource_row list

val print_resources : resource_row list -> unit

(** {1 Figure 2(b) — schedule diagrams} *)

val schedule_diagram : unit -> string
(** ASCII timelines of the barrier-synchronized (synthesized) and
    dataflow (handcrafted/rule-scheduled) 2-stage BFS pipelines on the
    paper's 6-vertex example graph. *)
