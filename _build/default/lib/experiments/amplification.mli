(** Work amplification of aggressive parallelization — quantifying the
    flooding the paper discusses in §6.3 ("pipelines may be flooded with
    tasks that will be squashed later... rules should be chosen
    judiciously").

    For each benchmark we compare the algorithmically necessary task
    count (the sequential oracle's committed tasks) against what the
    aggressive execution actually activated, split into useful commits,
    squashed speculation (aborts) and squash-and-re-execute retries. *)

type row = {
  amp_app : string;
  necessary : int;  (** committed tasks of the sequential oracle *)
  activated : int;  (** tasks activated by the aggressive runtime *)
  committed : int;
  squashed : int;  (** aborted + retried *)
  amplification : float;  (** activated / necessary *)
}

val measure : ?workers:int -> Agp_apps.App_instance.t -> row
(** Runs the app on the sequential oracle and the aggressive runtime
    (both validated), then compares their task accounting. *)

val table :
  ?workers:int -> ?scale:Workloads.scale -> ?seed:int -> unit -> row list
(** All six benchmarks. *)

val print : row list -> unit
