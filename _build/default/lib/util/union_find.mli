(** Disjoint-set forests with union by rank and path halving.

    The MST substrate and the SPEC-MST accelerator share this structure;
    the accelerator version additionally meters the pointer chase (see
    {!find_trace}). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val size : t -> int

val find : t -> int -> int
(** Representative of the set containing the element, with path halving. *)

val find_trace : t -> int -> int * int list
(** Like {!find} but also returns the list of parent slots read during the
    chase (before compression), oldest first — used by the hardware model
    to charge the walk through the memory system. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [false] when they were
    already the same set. *)

val same : t -> int -> int -> bool

val count_sets : t -> int
(** Number of distinct sets remaining. *)
