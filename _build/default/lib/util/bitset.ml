type t = {
  words : int array;
  n : int;
}

let bits_per_word = Sys.int_size

let create n = { words = Array.make ((n / bits_per_word) + 1) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x lsr 1) (acc + (x land 1)) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let intersects a b =
  if a.n <> b.n then invalid_arg "Bitset.intersects: capacity mismatch";
  let rec loop i =
    i < Array.length a.words && (a.words.(i) land b.words.(i) <> 0 || loop (i + 1))
  in
  loop 0
