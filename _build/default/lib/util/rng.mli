(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    workload, test and experiment is reproducible from a single integer
    seed.  The generator is splitmix64, which is small, fast and has good
    statistical quality for simulation purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give sub-components their own streams without coupling their
    consumption rates. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
