lib/util/heap.mli:
