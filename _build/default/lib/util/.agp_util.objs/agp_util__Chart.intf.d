lib/util/chart.mli:
