lib/util/vec.mli:
