lib/util/rng.mli:
