lib/util/stats.mli:
