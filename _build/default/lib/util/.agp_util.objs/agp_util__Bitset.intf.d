lib/util/bitset.mli:
