lib/util/fifo.mli:
