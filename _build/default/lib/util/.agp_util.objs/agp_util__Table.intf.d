lib/util/table.mli:
