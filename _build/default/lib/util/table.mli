(** Plain-text table rendering for experiment output.

    Produces aligned, pipe-separated tables similar to the rows the paper
    reports, suitable for terminals and for diffing in tests. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded; longer rows are rejected.
    @raise Invalid_argument on too many cells. *)

val render : t -> string
(** Render with a header separator and aligned columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Format helper: fixed-point with [decimals] (default 2). *)

val cell_ratio : float -> string
(** Format helper: a speedup such as ["1.9x"]. *)
