let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  if Array.length values = 0 then ""
  else begin
    let lo = Array.fold_left Float.min values.(0) values in
    let hi = Array.fold_left Float.max values.(0) values in
    let buf = Buffer.create (3 * Array.length values) in
    Array.iter
      (fun v ->
        let idx =
          if hi = lo then 3
          else begin
            let t = (v -. lo) /. (hi -. lo) in
            min 7 (max 0 (int_of_float (t *. 7.999)))
          end
        in
        Buffer.add_string buf glyphs.(idx))
      values;
    Buffer.contents buf
  end

let series ?width rows =
  let label_width =
    match width with
    | Some w -> w
    | None -> List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  String.concat "\n"
    (List.map
       (fun (label, values) ->
         Printf.sprintf "%-*s %s  (%.2f .. %.2f)" label_width label (sparkline values)
           (Array.fold_left Float.min values.(0) values)
           (Array.fold_left Float.max values.(0) values))
       rows)
