(** Fixed-capacity bit sets backed by an int array. *)

type t

val create : int -> t
(** [create n] holds members in [\[0, n)], initially empty. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Visit members in increasing order. *)

val intersects : t -> t -> bool
(** True when the two sets (of equal capacity) share a member. *)
