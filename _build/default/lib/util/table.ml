type t = {
  headers : string list;
  rows : string list Vec.t;
}

let create headers = { headers; rows = Vec.create () }

let add_row t row =
  let n = List.length t.headers in
  let len = List.length row in
  if len > n then invalid_arg "Table.add_row: too many cells";
  let padded = row @ List.init (n - len) (fun _ -> "") in
  Vec.push t.rows padded

let widths t =
  let n = List.length t.headers in
  let w = Array.make n 0 in
  let measure row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  measure t.headers;
  Vec.iter measure t.rows;
  w

let render_row w row =
  let cells = List.mapi (fun i cell -> Printf.sprintf "%-*s" w.(i) cell) row in
  "| " ^ String.concat " | " cells ^ " |"

let render t =
  let w = widths t in
  let sep =
    "|" ^ String.concat "|" (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w)) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row w t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Vec.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_row w row))
    t.rows;
  Buffer.contents buf

let print t = print_endline (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_ratio x = Printf.sprintf "%.2fx" x
