(** Minimal terminal charts for experiment output: Unicode sparklines
    for the Fig. 10 bandwidth curves. *)

val sparkline : float array -> string
(** Map values onto the eight block glyphs [▁▂▃▄▅▆▇█], scaled to the
    array's own min/max (a constant series renders mid-height).  Empty
    input yields the empty string. *)

val series : ?width:int -> (string * float array) list -> string
(** One labelled sparkline per row, labels padded to align. *)
