(** Binary min-heaps with a caller-supplied ordering. *)

type 'a t

val create : ('a -> 'a -> int) -> 'a t
(** [create cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val peek : 'a t -> 'a option

val of_array : ('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)

val to_sorted_list : 'a t -> 'a list
(** Drains the heap; ascending order. *)
