type 'a t = {
  cmp : 'a -> 'a -> int;
  v : 'a Vec.t;
}

let create cmp = { cmp; v = Vec.create () }

let length t = Vec.length t.v

let is_empty t = Vec.is_empty t.v

let swap t i j =
  let a = Vec.get t.v i and b = Vec.get t.v j in
  Vec.set t.v i b;
  Vec.set t.v j a

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (Vec.get t.v i) (Vec.get t.v parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t.v in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && t.cmp (Vec.get t.v l) (Vec.get t.v !smallest) < 0 then smallest := l;
  if r < n && t.cmp (Vec.get t.v r) (Vec.get t.v !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  Vec.push t.v x;
  sift_up t (Vec.length t.v - 1)

let pop t =
  if Vec.is_empty t.v then None
  else begin
    let top = Vec.get t.v 0 in
    let last = Vec.pop t.v in
    if not (Vec.is_empty t.v) then begin
      Vec.set t.v 0 last;
      sift_down t 0
    end;
    Some top
  end

let peek t = if Vec.is_empty t.v then None else Some (Vec.get t.v 0)

let of_array cmp a =
  let t = { cmp; v = Vec.of_array a } in
  for i = (Array.length a / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let to_sorted_list t =
  let rec drain acc =
    match pop t with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
