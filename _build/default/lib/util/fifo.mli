(** Ring-buffer FIFO queues, optionally bounded.

    Used both by software worklists and by the hardware simulator, where a
    bounded FIFO models a physical dual-port queue between pipeline
    stages. *)

type 'a t

val create : ?bound:int -> unit -> 'a t
(** [create ?bound ()] makes an empty queue.  When [bound] is given,
    [push] fails once [length] reaches it; otherwise the queue grows. *)

val bound : 'a t -> int option

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool
(** Always [false] for unbounded queues. *)

val push : 'a t -> 'a -> bool
(** [push t x] enqueues and returns [true], or returns [false] when the
    queue is bounded and full (the element is dropped, as backpressure). *)

val push_exn : 'a t -> 'a -> unit
(** Like {!push} but raises [Failure] on a full queue. *)

val push_front : 'a t -> 'a -> bool
(** Enqueue at the head (the element becomes the next pop).  Returns
    [false] when bounded and full. *)

val pop : 'a t -> 'a option
(** Dequeue the oldest element. *)

val peek : 'a t -> 'a option
(** Oldest element without removal. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate oldest-first over current contents. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list
(** Contents, oldest first. *)
