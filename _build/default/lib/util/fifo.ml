type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
  bound : int option;
}

let create ?bound () = { data = Array.make 8 None; head = 0; len = 0; bound }

let bound t = t.bound

let length t = t.len

let is_empty t = t.len = 0

let is_full t =
  match t.bound with
  | None -> false
  | Some b -> t.len >= b

let grow t =
  let cap = Array.length t.data in
  let ndata = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    ndata.(i) <- t.data.((t.head + i) mod cap)
  done;
  t.data <- ndata;
  t.head <- 0

let push t x =
  if is_full t then false
  else begin
    if t.len = Array.length t.data then grow t;
    let cap = Array.length t.data in
    t.data.((t.head + t.len) mod cap) <- Some x;
    t.len <- t.len + 1;
    true
  end

let push_exn t x = if not (push t x) then failwith "Fifo.push_exn: full"

let push_front t x =
  if is_full t then false
  else begin
    if t.len = Array.length t.data then grow t;
    let cap = Array.length t.data in
    t.head <- (t.head + cap - 1) mod cap;
    t.data.(t.head) <- Some x;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.data.(t.head) in
    t.data.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.data;
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then None else t.data.(t.head)

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = Array.length t.data in
  for i = 0 to t.len - 1 do
    match t.data.((t.head + i) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
