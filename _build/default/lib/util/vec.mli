(** Growable arrays.

    A thin dynamic-array abstraction used throughout the simulators for
    worklists, logs and adjacency construction. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Bounds-checked read. *)

val set : 'a t -> int -> 'a -> unit
(** Bounds-checked write. *)

val push : 'a t -> 'a -> unit
(** Append one element, growing geometrically. *)

val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
(** Last element without removal. *)

val clear : 'a t -> unit
(** Logical reset; capacity is retained. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_array : 'a array -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
