type t = {
  parent : int array;
  rank : int array;
}

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let size t = Array.length t.parent

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    (* path halving *)
    let gp = t.parent.(p) in
    t.parent.(x) <- gp;
    find t gp
  end

let find_trace t x =
  let rec walk x acc =
    let p = t.parent.(x) in
    if p = x then (x, List.rev (x :: acc)) else walk p (x :: acc)
  in
  let root, trace = walk x [] in
  ignore (find t x);
  (root, trace)

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    true
  end

let same t a b = find t a = find t b

let count_sets t =
  let n = ref 0 in
  for i = 0 to size t - 1 do
    if t.parent.(i) = i then incr n
  done;
  !n
