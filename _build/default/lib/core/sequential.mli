(** Sequential execution (Definition 4.3): iteratively apply the
    minimum active task to Σ until no active task remains.

    This is the semantics oracle — a parallelized execution is correct
    exactly when its result is equivalent to this one (§4.1).  Rules
    degenerate gracefully: the running task is always minimal, so each
    rendezvous resolves via its [otherwise] path (or immediately for
    counted rules whose dependences have all fired). *)

type report = {
  tasks_run : int;
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

val run :
  ?initial:(string * Value.t list) list ->
  ?max_tasks:int ->
  Spec.t ->
  Spec.bindings ->
  State.t ->
  report
(** [run ~initial spec bindings state] pushes the initial tasks (host
    injection), then executes to quiescence, mutating [state].
    [max_tasks] (default 10 million) guards against diverging
    specifications.
    @raise Failure on deadlock or when [max_tasks] is exceeded. *)
