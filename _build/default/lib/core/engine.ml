module Vec = Agp_util.Vec
module Fifo = Agp_util.Fifo
module Heap = Agp_util.Heap

type task = {
  tid : int;
  set_slot : int;
  index : Index.t;
  payload : Value.t array;
  env : Interp.env;
  mutable cont : Spec.op list;
  mutable status : status;
  mutable awaiting : (string * rule_instance) option;
  mutable broadcast_committed : bool;
}

and status =
  | Pending
  | Running
  | Waiting
  | Committed
  | Squashed

and rule_instance = {
  rule : Spec.rule;
  params : Value.t array;
  parent : task;
  mutable counter : int;
  mutable resolved : bool option;
}

type outcome =
  | Committed_task
  | Aborted_task
  | Retried_task

type step_result =
  | Stepped
  | Blocked
  | Finished of outcome

type stats = {
  mutable activated : int;
  mutable committed : int;
  mutable aborted : int;
  mutable retried : int;
  mutable events_fired : int;
  mutable otherwise_fired : int;
  mutable clause_resolutions : int;
  mutable ops_executed : int;
  mutable rule_allocs : int;
}

(* A fired event, kept in the log so counted rules can reconstruct how
   many of their expected dependences already resolved before the rule
   was allocated (the scoreboard of Fig. 8). *)
type logged_event = {
  ev_kind : [ `Activated | `Reached of string ];
  ev_set : int; (* source task set slot *)
  ev_index : Index.t;
  ev_fields : Value.t array;
  ev_source : int; (* tid *)
}

type t = {
  sp : Spec.t;
  bindings : Spec.bindings;
  st : State.t;
  stats_r : stats;
  counters : int array;
  queues : (string * task Fifo.t) array;
  mutable rr : int; (* round-robin pointer for pop_any *)
  mutable next_tid : int;
  mutable running : int; (* count of Running tasks *)
  mutable waiting : task list;
  uncommitted : (Index.t * task) Heap.t;
  mutable live_rules : rule_instance list;
  mutable last_min_broadcast : int; (* tid, -1 = none *)
  event_log : logged_event Vec.t;
  handles : (int, (string, rule_instance) Hashtbl.t) Hashtbl.t; (* per tid *)
  prim_counts : (string, int) Hashtbl.t;
}

let create sp bindings st =
  begin
    match Spec.validate sp with
    | Ok () -> ()
    | Error es -> invalid_arg ("Engine.create: invalid spec: " ^ String.concat "; " es)
  end;
  let n_sets = List.length sp.Spec.task_sets in
  {
    sp;
    bindings;
    st;
    stats_r =
      {
        activated = 0;
        committed = 0;
        aborted = 0;
        retried = 0;
        events_fired = 0;
        otherwise_fired = 0;
        clause_resolutions = 0;
        ops_executed = 0;
        rule_allocs = 0;
      };
    counters = Array.make n_sets 0;
    queues =
      Array.of_list (List.map (fun ts -> (ts.Spec.ts_name, Fifo.create ())) sp.Spec.task_sets);
    rr = 0;
    next_tid = 0;
    running = 0;
    waiting = [];
    uncommitted = Heap.create (fun (i1, _) (i2, _) -> Index.compare i1 i2);
    live_rules = [];
    last_min_broadcast = -1;
    event_log = Vec.create ();
    handles = Hashtbl.create 64;
    prim_counts = Hashtbl.create 8;
  }

let spec t = t.sp

let state t = t.st

let stats t = t.stats_r

let set_of_slot t slot = List.nth t.sp.Spec.task_sets slot

let queue_of t name =
  let rec find i =
    if i >= Array.length t.queues then invalid_arg ("Engine: unknown task set " ^ name)
    else begin
      let qname, q = t.queues.(i) in
      if qname = name then q else find (i + 1)
    end
  in
  find 0

(* --- rule resolution plumbing --- *)

let resolve_rule t inst value =
  if inst.resolved = None then begin
    inst.resolved <- Some value;
    t.live_rules <- List.filter (fun r -> r != inst) t.live_rules
  end

let release_task_rules t task =
  t.live_rules <- List.filter (fun r -> r.parent.tid <> task.tid || r.resolved <> None) t.live_rules;
  Hashtbl.remove t.handles task.tid

(* --- event dispatch --- *)

let clause_matches_event clause (kind : [ `Activated | `Reached of string ]) set_name =
  match (clause.Spec.on, kind) with
  | Spec.On_activated s, `Activated -> s = set_name
  | Spec.On_reached (s, l), `Reached label -> s = set_name && l = label
  | Spec.On_min_changed, (`Activated | `Reached _) -> false
  | (Spec.On_activated _ | Spec.On_reached _), _ -> false

let apply_clause t inst clause ~fields ~earlier ~later =
  if
    Interp.eval_cond_strict ~params:inst.params ~fields ~earlier ~later clause.Spec.condition
  then begin
    match clause.Spec.action with
    | Spec.Return_bool b ->
        t.stats_r.clause_resolutions <- t.stats_r.clause_resolutions + 1;
        resolve_rule t inst b
    | Spec.Decrement ->
        inst.counter <- inst.counter - 1;
        if inst.counter <= 0 then begin
          t.stats_r.clause_resolutions <- t.stats_r.clause_resolutions + 1;
          resolve_rule t inst true
        end
  end

let fire_event t ~kind ~set_slot ~index ~fields ~source_tid =
  t.stats_r.events_fired <- t.stats_r.events_fired + 1;
  let set_name = (set_of_slot t set_slot).Spec.ts_name in
  Vec.push t.event_log { ev_kind = kind; ev_set = set_slot; ev_index = index; ev_fields = fields; ev_source = source_tid };
  List.iter
    (fun inst ->
      if inst.resolved = None && inst.parent.tid <> source_tid then begin
        let cmp = Index.compare index inst.parent.index in
        let earlier = cmp < 0 and later = cmp > 0 in
        List.iter
          (fun clause ->
            if inst.resolved = None && clause_matches_event clause kind set_name then
              apply_clause t inst clause ~fields ~earlier ~later)
          inst.rule.Spec.clauses
      end)
    t.live_rules

let fire_min_changed t ~index ~fields ~source_tid =
  t.stats_r.events_fired <- t.stats_r.events_fired + 1;
  List.iter
    (fun inst ->
      if inst.resolved = None && inst.parent.tid <> source_tid then begin
        let cmp = Index.compare index inst.parent.index in
        let earlier = cmp < 0 and later = cmp > 0 in
        List.iter
          (fun clause ->
            if inst.resolved = None && clause.Spec.on = Spec.On_min_changed then
              apply_clause t inst clause ~fields ~earlier ~later)
          inst.rule.Spec.clauses
      end)
    t.live_rules

(* --- task creation --- *)

let make_task t ~slot ~index ~payload =
  let task =
    {
      tid = t.next_tid;
      set_slot = slot;
      index;
      payload;
      env = Hashtbl.create 8;
      cont = (set_of_slot t slot).Spec.body;
      status = Pending;
      awaiting = None;
      broadcast_committed = false;
    }
  in
  t.next_tid <- t.next_tid + 1;
  task

let enqueue ?(front = false) t task =
  let set = set_of_slot t task.set_slot in
  let q = queue_of t set.Spec.ts_name in
  if front then ignore (Fifo.push_front q task) else Fifo.push_exn q task;
  Heap.push t.uncommitted (task.index, task);
  t.stats_r.activated <- t.stats_r.activated + 1;
  fire_event t ~kind:`Activated ~set_slot:task.set_slot ~index:task.index ~fields:task.payload
    ~source_tid:task.tid

let stamp t slot =
  match (set_of_slot t slot).Spec.ts_order with
  | Spec.For_all -> 0
  | Spec.For_each ->
      let c = t.counters.(slot) in
      t.counters.(slot) <- c + 1;
      c

let do_push t ~parent_index ~source_tid set_name payload =
  ignore source_tid;
  let slot = Spec.task_set_slot t.sp set_name in
  let index = Index.child ~parent:parent_index ~slot ~stamp:(stamp t slot) in
  let task = make_task t ~slot ~index ~payload:(Array.of_list payload) in
  enqueue t task

let push_initial t set_name payload =
  let slot = Spec.task_set_slot t.sp set_name in
  let root = Index.root (List.length t.sp.Spec.task_sets) in
  do_push t ~parent_index:root ~source_tid:(-1) set_name payload;
  ignore slot

(* --- queues --- *)

let pop_task t set_name =
  match Fifo.pop (queue_of t set_name) with
  | Some task ->
      task.status <- Running;
      t.running <- t.running + 1;
      Some task
  | None -> None

let pop_any t =
  let n = Array.length t.queues in
  let rec loop tries =
    if tries >= n then None
    else begin
      let i = (t.rr + tries) mod n in
      let _, q = t.queues.(i) in
      match Fifo.pop q with
      | Some task ->
          t.rr <- (i + 1) mod n;
          task.status <- Running;
          t.running <- t.running + 1;
          Some task
      | None -> loop (tries + 1)
    end
  in
  loop 0

let pop_min t =
  (* Per-set queues are FIFO and for-each stamps are monotone, so each
     queue head is that set's minimum pending task; the global minimum
     pending task is the smallest head. *)
  let best = ref None in
  Array.iter
    (fun (_, q) ->
      match Fifo.peek q with
      | None -> ()
      | Some task -> begin
          match !best with
          | None -> best := Some (task, q)
          | Some (b, _) -> if Index.compare task.index b.index < 0 then best := Some (task, q)
        end)
    t.queues;
  match !best with
  | None -> None
  | Some (_, q) -> begin
      match Fifo.pop q with
      | Some task ->
          task.status <- Running;
          t.running <- t.running + 1;
          Some task
      | None -> assert false
    end

let pending_count t = Array.fold_left (fun acc (_, q) -> acc + Fifo.length q) 0 t.queues

let min_pending_head t =
  let best = ref None in
  Array.iter
    (fun (_, q) ->
      match Fifo.peek q with
      | None -> ()
      | Some task -> begin
          match !best with
          | None -> best := Some task
          | Some b -> if Index.compare task.index b.index < 0 then best := Some task
        end)
    t.queues;
  !best

let waiting_tasks t = t.waiting

let uncommitted_remaining t =
  t.running > 0 || t.waiting <> [] || pending_count t > 0

(* --- minimum tracking --- *)

let live_rule_count t = List.length t.live_rules

let prim_counts t = Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.prim_counts []

let min_uncommitted_task t =
  (* A task that has fired its commit broadcast (its first Emit) is
     retired for ordering purposes: its remaining tail pipelines behind
     later tasks, exactly as a TLS commit stage drains while younger
     work proceeds.  Conflict events always precede the release of the
     next minimum because the Emit is dispatched before the minimum is
     recomputed. *)
  let rec peek () =
    match Heap.peek t.uncommitted with
    | None -> None
    | Some (_, task) -> begin
        match task.status with
        | (Pending | Running | Waiting) when not task.broadcast_committed -> Some task
        | Pending | Running | Waiting | Committed | Squashed ->
            ignore (Heap.pop t.uncommitted);
            peek ()
      end
  in
  peek ()

let min_uncommitted_index t = Option.map (fun task -> task.index) (min_uncommitted_task t)

let min_waiting_index t =
  List.fold_left
    (fun acc task ->
      match acc with
      | None -> Some task.index
      | Some best -> if Index.compare task.index best < 0 then Some task.index else acc)
    None t.waiting

(* --- counted rule allocation --- *)

let count_past_matches t rule params parent_index =
  let count = ref 0 in
  Vec.iter
    (fun ev ->
      let set_name = (set_of_slot t ev.ev_set).Spec.ts_name in
      let cmp = Index.compare ev.ev_index parent_index in
      let earlier = cmp < 0 and later = cmp > 0 in
      if
        List.exists
          (fun clause ->
            clause.Spec.action = Spec.Decrement
            && clause_matches_event clause ev.ev_kind set_name
            && Interp.eval_cond_strict ~params ~fields:ev.ev_fields ~earlier ~later
                 clause.Spec.condition)
          rule.Spec.clauses
      then incr count)
    t.event_log;
  !count

let alloc_rule t task rule_name params =
  let rule = Spec.find_rule t.sp rule_name in
  let params = Array.of_list params in
  let counter =
    if rule.Spec.counted then begin
      let expected =
        match List.assoc_opt rule_name t.bindings.Spec.expected with
        | Some f -> f (Array.to_list params)
        | None ->
            invalid_arg ("Engine: counted rule " ^ rule_name ^ " has no expected binding")
      in
      expected - count_past_matches t rule params task.index
    end
    else 0
  in
  let inst = { rule; params; parent = task; counter; resolved = None } in
  t.stats_r.rule_allocs <- t.stats_r.rule_allocs + 1;
  if rule.Spec.counted && inst.counter <= 0 then inst.resolved <- Some true
  else t.live_rules <- inst :: t.live_rules;
  inst

(* --- stepping --- *)

let finish t task outcome =
  begin
    match task.status with
    | Running -> t.running <- t.running - 1
    | Waiting -> t.waiting <- List.filter (fun w -> w.tid <> task.tid) t.waiting
    | Pending | Committed | Squashed -> ()
  end;
  release_task_rules t task;
  match outcome with
  | Committed_task ->
      task.status <- Committed;
      t.stats_r.committed <- t.stats_r.committed + 1
  | Aborted_task ->
      task.status <- Squashed;
      t.stats_r.aborted <- t.stats_r.aborted + 1
  | Retried_task ->
      task.status <- Squashed;
      t.stats_r.retried <- t.stats_r.retried + 1;
      (* Re-activate with the same index and payload at the FRONT of
         the queue: TLS-style squash and re-execute in place, so the
         well-order minimum is always at a queue head. *)
      let again = make_task t ~slot:task.set_slot ~index:task.index ~payload:task.payload in
      enqueue ~front:true t again

let handle_table t task =
  match Hashtbl.find_opt t.handles task.tid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.add t.handles task.tid tbl;
      tbl

let step t task =
  match task.cont with
  | [] ->
      finish t task Committed_task;
      Finished Committed_task
  | op :: rest -> begin
      t.stats_r.ops_executed <- t.stats_r.ops_executed + 1;
      let eval e = Interp.eval_expr task.env task.payload e in
      match op with
      | Spec.Let (v, e) ->
          Hashtbl.replace task.env v (eval e);
          task.cont <- rest;
          Stepped
      | Spec.Load (v, arr, addr) ->
          Hashtbl.replace task.env v (t.st |> fun st -> State.read st arr (Value.to_int (eval addr)));
          task.cont <- rest;
          Stepped
      | Spec.Store (arr, addr, e) ->
          State.write t.st arr (Value.to_int (eval addr)) (eval e);
          task.cont <- rest;
          Stepped
      | Spec.Push (set, payload) ->
          do_push t ~parent_index:task.index ~source_tid:task.tid set (List.map eval payload);
          task.cont <- rest;
          Stepped
      | Spec.Push_iter (set, lo, hi, var, payload) ->
          let lo = Value.to_int (eval lo) and hi = Value.to_int (eval hi) in
          for i = lo to hi - 1 do
            Hashtbl.replace task.env var (Value.Int i);
            do_push t ~parent_index:task.index ~source_tid:task.tid set (List.map eval payload)
          done;
          task.cont <- rest;
          Stepped
      | Spec.Alloc (handle, rule_name, params) ->
          let inst = alloc_rule t task rule_name (List.map eval params) in
          Hashtbl.replace (handle_table t task) handle inst;
          task.cont <- rest;
          Stepped
      | Spec.Await (dst, handle) -> begin
          match Hashtbl.find_opt (handle_table t task) handle with
          | None -> invalid_arg ("Engine: Await on unallocated handle " ^ handle)
          | Some inst -> begin
              match inst.resolved with
              | Some b ->
                  Hashtbl.replace task.env dst (Value.Bool b);
                  task.cont <- rest;
                  Stepped
              | None ->
                  task.status <- Waiting;
                  task.awaiting <- Some (dst, inst);
                  t.running <- t.running - 1;
                  t.waiting <- task :: t.waiting;
                  Blocked
            end
        end
      | Spec.Emit (label, fields) ->
          fire_event t ~kind:(`Reached label) ~set_slot:task.set_slot ~index:task.index
            ~fields:(Array.of_list (List.map eval fields))
            ~source_tid:task.tid;
          task.broadcast_committed <- true;
          task.cont <- rest;
          Stepped
      | Spec.If (c, a, b) ->
          task.cont <- (if Value.truthy (eval c) then a @ rest else b @ rest);
          Stepped
      | Spec.Abort ->
          finish t task Aborted_task;
          Finished Aborted_task
      | Spec.Retry ->
          finish t task Retried_task;
          Finished Retried_task
      | Spec.Prim (dsts, name, args) -> begin
          match List.assoc_opt name t.bindings.Spec.prims with
          | None -> invalid_arg ("Engine: unbound prim " ^ name)
          | Some impl ->
              Hashtbl.replace t.prim_counts name
                (1 + Option.value ~default:0 (Hashtbl.find_opt t.prim_counts name));
              let results =
                impl { Spec.state = t.st; Spec.task_index = task.index } (List.map eval args)
              in
              if List.length results <> List.length dsts then
                invalid_arg
                  (Printf.sprintf "Engine: prim %s returned %d values, expected %d" name
                     (List.length results) (List.length dsts));
              List.iter2 (fun d v -> Hashtbl.replace task.env d v) dsts results;
              task.cont <- rest;
              Stepped
        end
    end

(* --- minimum resolution --- *)

let resolve_pending t =
  (* 1. Broadcast a change of the minimum uncommitted task. *)
  begin
    match min_uncommitted_task t with
    | Some task when task.tid <> t.last_min_broadcast ->
        t.last_min_broadcast <- task.tid;
        fire_min_changed t ~index:task.index ~fields:task.payload ~source_tid:task.tid
    | Some _ | None -> ()
  end;
  (* 2. Fire otherwise clauses for minimal waiting parents. *)
  let min_unc = min_uncommitted_index t in
  let min_wait = min_waiting_index t in
  List.iter
    (fun task ->
      match task.awaiting with
      | Some (_, inst) when inst.resolved = None -> begin
          let minimal =
            match inst.rule.Spec.scope with
            | Spec.Min_waiting -> begin
                match min_wait with
                | Some m -> Index.compare task.index m = 0
                | None -> true
              end
            | Spec.Min_uncommitted -> begin
                match min_unc with
                | Some m -> Index.compare task.index m = 0
                | None -> true
              end
          in
          if minimal then begin
            t.stats_r.otherwise_fired <- t.stats_r.otherwise_fired + 1;
            resolve_rule t inst inst.rule.Spec.otherwise
          end
        end
      | Some _ | None -> ())
    t.waiting

let resume_ready t =
  let ready, still =
    List.partition
      (fun task ->
        match task.awaiting with
        | Some (_, inst) -> inst.resolved <> None
        | None -> true)
      t.waiting
  in
  t.waiting <- still;
  let ready = List.sort (fun a b -> Index.compare a.index b.index) ready in
  List.iter
    (fun task ->
      begin
        match task.awaiting with
        | Some (dst, inst) -> begin
            match inst.resolved with
            | Some b ->
                Hashtbl.replace task.env dst (Value.Bool b);
                (* drop the Await op *)
                (match task.cont with
                | Spec.Await _ :: rest -> task.cont <- rest
                | _ -> assert false)
            | None -> assert false
          end
        | None -> ()
      end;
      task.awaiting <- None;
      task.status <- Running;
      t.running <- t.running + 1)
    ready;
  ready

let run_to_completion t task =
  let rec loop () =
    match step t task with
    | Stepped -> loop ()
    | Finished outcome ->
        resolve_pending t;
        outcome
    | Blocked -> begin
        resolve_pending t;
        match resume_ready t with
        | [] ->
            failwith
              (Printf.sprintf "Engine: sequential deadlock at task %s of set %d"
                 (Index.to_string task.index) task.set_slot)
        | _ -> loop ()
      end
  in
  loop ()

let deadlocked t =
  t.running = 0 && pending_count t = 0 && t.waiting <> []
  &&
  (resolve_pending t;
   List.for_all
     (fun task ->
       match task.awaiting with
       | Some (_, inst) -> inst.resolved = None
       | None -> false)
     t.waiting)
