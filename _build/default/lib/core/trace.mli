(** Execution tracing for the pure software runtime — the debugging
    support of §4.4 ("a pure software runtime is provided to help
    programmers debug applications").

    Runs a specification exactly like {!Runtime} (same worker model,
    same schedule) while recording every task lifecycle transition, and
    renders the recording as a per-worker timeline plus a per-task-set
    summary — making collisions, squashes and rendezvous stalls visible
    before any hardware is generated. *)

type event_kind =
  | Started
  | Executed of string  (** op descriptor, e.g. ["load level"] *)
  | Blocked_at of string  (** rendezvous handle *)
  | Resumed of bool  (** rule verdict *)
  | Committed
  | Aborted
  | Retried

type entry = {
  tick : int;
  worker : int;
  tid : int;
  set_name : string;
  index : string;  (** rendered well-order index *)
  kind : event_kind;
}

type t = {
  entries : entry list;  (** chronological *)
  report : Runtime.report;
}

val run :
  ?initial:(string * Value.t list) list ->
  ?workers:int ->
  ?max_entries:int ->
  Spec.t ->
  Spec.bindings ->
  State.t ->
  t
(** Traced execution (default 4 workers; recording stops after
    [max_entries] (default 100k) while execution continues). *)

val op_descriptor : Spec.op -> string

val render_timeline : ?max_ticks:int -> t -> string
(** ASCII worker-per-row timeline of the first [max_ticks] (default 60)
    scheduler ticks: each cell is the task index that occupied the
    worker, with [*] marking a squash and [~] a rendezvous stall. *)

val summarize : t -> (string * int * int * int * int) list
(** Per task set: (name, committed, aborted, retried, rendezvous
    blocks). *)
