type event_kind =
  | Started
  | Executed of string
  | Blocked_at of string
  | Resumed of bool
  | Committed
  | Aborted
  | Retried

type entry = {
  tick : int;
  worker : int;
  tid : int;
  set_name : string;
  index : string;
  kind : event_kind;
}

type t = {
  entries : entry list;
  report : Runtime.report;
}

let op_descriptor (op : Spec.op) =
  match op with
  | Spec.Let (v, _) -> "let " ^ v
  | Spec.Load (v, arr, _) -> Printf.sprintf "%s <- %s" v arr
  | Spec.Store (arr, _, _) -> "store " ^ arr
  | Spec.Push (set, _) -> "push " ^ set
  | Spec.Push_iter (set, _, _, _, _) -> "spawn* " ^ set
  | Spec.Alloc (_, rule, _) -> "alloc " ^ rule
  | Spec.Await (_, h) -> "await " ^ h
  | Spec.Emit (l, _) -> "emit " ^ l
  | Spec.If (_, _, _) -> "switch"
  | Spec.Abort -> "abort"
  | Spec.Retry -> "retry"
  | Spec.Prim (_, name, _) -> "prim " ^ name

(* A re-run of the Runtime scheduling loop with recording.  The loop is
   kept structurally identical to Runtime.run so a traced execution has
   the same schedule as an untraced one. *)
let run ?(initial = []) ?(workers = 4) ?(max_entries = 100_000) sp bindings st =
  let eng = Engine.create sp bindings st in
  List.iter (fun (set, payload) -> Engine.push_initial eng set payload) initial;
  let entries = ref [] in
  let n_entries = ref 0 in
  let set_name slot = (List.nth sp.Spec.task_sets slot).Spec.ts_name in
  let record tick worker (task : Engine.task) kind =
    if !n_entries < max_entries then begin
      incr n_entries;
      entries :=
        {
          tick;
          worker;
          tid = task.Engine.tid;
          set_name = set_name task.Engine.set_slot;
          index = Index.to_string task.Engine.index;
          kind;
        }
        :: !entries
    end
  in
  let slots : Engine.task option array = Array.make workers None in
  let resumable = Queue.create () in
  let tasks_run = ref 0 in
  let steps = ref 0 in
  let max_concurrency = ref 0 in
  let total_busy = ref 0 in
  let max_waiting = ref 0 in
  let occupied () = Array.fold_left (fun n s -> if s = None then n else n + 1) 0 slots in
  while Engine.uncommitted_remaining eng do
    incr steps;
    if !steps > 50_000_000 then failwith "Trace.run: step budget exceeded";
    let progressed = ref false in
    for w = 0 to workers - 1 do
      if slots.(w) = None then begin
        if not (Queue.is_empty resumable) then begin
          let task, verdict = Queue.pop resumable in
          record !steps w task (Resumed verdict);
          slots.(w) <- Some task
        end
        else begin
          match Engine.pop_any eng with
          | Some task ->
              record !steps w task Started;
              slots.(w) <- Some task
          | None -> ()
        end
      end
    done;
    let busy = occupied () in
    total_busy := !total_busy + busy;
    max_concurrency := max !max_concurrency busy;
    for w = 0 to workers - 1 do
      match slots.(w) with
      | None -> ()
      | Some task -> begin
          let descr =
            match task.Engine.cont with
            | op :: _ -> op_descriptor op
            | [] -> "commit"
          in
          let handle =
            match task.Engine.cont with
            | Spec.Await (_, h) :: _ -> h
            | _ -> ""
          in
          match Engine.step eng task with
          | Engine.Stepped ->
              progressed := true;
              record !steps w task (Executed descr)
          | Engine.Blocked ->
              progressed := true;
              record !steps w task (Blocked_at handle);
              slots.(w) <- None;
              Engine.resolve_pending eng
          | Engine.Finished outcome ->
              progressed := true;
              incr tasks_run;
              record !steps w task
                (match outcome with
                | Engine.Committed_task -> Committed
                | Engine.Aborted_task -> Aborted
                | Engine.Retried_task -> Retried);
              slots.(w) <- None;
              Engine.resolve_pending eng
        end
    done;
    max_waiting := max !max_waiting (List.length (Engine.waiting_tasks eng));
    List.iter
      (fun (task : Engine.task) ->
        let verdict =
          match Hashtbl.find_opt task.Engine.env "ok" with
          | Some (Value.Bool b) -> b
          | Some _ | None -> true
        in
        Queue.push (task, verdict) resumable)
      (Engine.resume_ready eng);
    if (not !progressed) && Queue.is_empty resumable then begin
      Engine.resolve_pending eng;
      let woke = Engine.resume_ready eng in
      List.iter (fun task -> Queue.push (task, true) resumable) woke;
      if woke = [] && Engine.deadlocked eng then
        failwith "Trace.run: deadlock — a rule lacks a viable exit path"
    end
  done;
  let report : Runtime.report =
    {
      Runtime.tasks_run = !tasks_run;
      steps = !steps;
      max_concurrency = !max_concurrency;
      max_waiting = !max_waiting;
      avg_busy =
        (if !steps = 0 then 0.0 else float_of_int !total_busy /. float_of_int !steps);
      stats = Engine.stats eng;
      prim_counts = Engine.prim_counts eng;
    }
  in
  { entries = List.rev !entries; report }

let render_timeline ?(max_ticks = 60) t =
  let workers =
    1 + List.fold_left (fun acc e -> max acc e.worker) 0 t.entries
  in
  let buf = Buffer.create 1024 in
  let cell_of w tick =
    let here = List.filter (fun e -> e.worker = w && e.tick = tick) t.entries in
    match List.rev here with
    | [] -> "."
    | e :: _ -> begin
        match e.kind with
        | Aborted | Retried -> "*"
        | Blocked_at _ -> "~"
        | Started | Executed _ | Resumed _ | Committed -> e.index
      end
  in
  for w = 0 to workers - 1 do
    Buffer.add_string buf (Printf.sprintf "w%d: " w);
    for tick = 1 to max_ticks do
      Buffer.add_string buf (Printf.sprintf "%-8s" (cell_of w tick))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let summarize t =
  let sets = List.sort_uniq compare (List.map (fun e -> e.set_name) t.entries) in
  List.map
    (fun set ->
      let of_kind p = List.length (List.filter (fun e -> e.set_name = set && p e.kind) t.entries) in
      ( set,
        of_kind (fun k -> k = Committed),
        of_kind (fun k -> k = Aborted),
        of_kind (fun k -> k = Retried),
        of_kind (function Blocked_at _ -> true | _ -> false) ))
    sets
