(** Shared execution machinery for specifications: task instances and
    their well-order indices, task queues, rule instances (lanes),
    event broadcast, and minimum-task tracking.

    The {!Sequential} oracle and the aggressive {!Runtime} drive this
    engine with different scheduling policies; the hardware model wraps
    the same transitions in cycle timing.  All semantics of §4 live
    here so the three interpreters cannot drift apart. *)

type task = private {
  tid : int;  (** unique per activation (a retry gets a fresh tid) *)
  set_slot : int;
  index : Index.t;
  payload : Value.t array;
  env : Interp.env;
  mutable cont : Spec.op list;  (** remaining operations *)
  mutable status : status;
  mutable awaiting : (string * rule_instance) option;
      (** destination variable and rule blocked on *)
  mutable broadcast_committed : bool;
      (** the task fired its commit broadcast (first [Emit]): it is
          retired for well-order purposes while its tail pipelines out *)
}

and status =
  | Pending  (** in a task queue *)
  | Running
  | Waiting  (** stalled at a rendezvous *)
  | Committed
  | Squashed  (** aborted or retried *)

and rule_instance = private {
  rule : Spec.rule;
  params : Value.t array;
  parent : task;
  mutable counter : int;  (** meaningful only for counted rules *)
  mutable resolved : bool option;
}

type outcome =
  | Committed_task
  | Aborted_task
  | Retried_task

type step_result =
  | Stepped  (** one operation executed *)
  | Blocked  (** task is now waiting at a rendezvous *)
  | Finished of outcome

type stats = {
  mutable activated : int;
  mutable committed : int;
  mutable aborted : int;
  mutable retried : int;
  mutable events_fired : int;
  mutable otherwise_fired : int;
  mutable clause_resolutions : int;
  mutable ops_executed : int;
  mutable rule_allocs : int;
}

type t

val create : Spec.t -> Spec.bindings -> State.t -> t
(** @raise Invalid_argument when the specification fails
    {!Spec.validate}. *)

val spec : t -> Spec.t

val state : t -> State.t

val stats : t -> stats

val push_initial : t -> string -> Value.t list -> unit
(** Host-side activation into a task set (index stamped as a normal
    push from the root index). *)

val pop_task : t -> string -> task option
(** Dequeue the oldest pending task of a set and mark it running. *)

val pop_any : t -> task option
(** Dequeue round-robin across sets. *)

val pop_min : t -> task option
(** Dequeue the globally minimum pending task (per-set queue heads are
    per-set minima because for-each stamps are monotone). *)

val pending_count : t -> int
(** Tasks sitting in queues. *)

val min_pending_head : t -> task option
(** The smallest-index task among the queue heads, without popping. *)

val waiting_tasks : t -> task list
(** Tasks stalled at rendezvous. *)

val uncommitted_remaining : t -> bool
(** True while any task is pending, running or waiting. *)

val step : t -> task -> step_result
(** Execute exactly one operation of a running task.  All events,
    pushes and rule transitions implied by the operation happen
    inside. *)

val run_to_completion : t -> task -> outcome
(** Step a task until it finishes, resolving its own rendezvous via
    the minimum rule (used by the sequential oracle, where the running
    task is always minimal). *)

val resolve_pending : t -> unit
(** Re-evaluate minimum-task conditions: fire [On_min_changed] events
    when the minimum uncommitted task changes, and fire the
    [otherwise] clause of rules whose waiting parent is minimal in the
    rule's scope.  Call after any commit, squash or block. *)

val resume_ready : t -> task list
(** Waiting tasks whose rendezvous has resolved; they are returned in
    index order, marked running, and their await binding is applied. *)

val live_rule_count : t -> int
(** Unresolved rule instances — occupied rule-engine lanes. *)

val prim_counts : t -> (string * int) list
(** Invocations per [Prim] kernel so far. *)

val min_uncommitted_index : t -> Index.t option

val min_waiting_index : t -> Index.t option

val deadlocked : t -> bool
(** No task is running or resumable, queues are empty, but waiting
    tasks remain — indicates a specification whose rules lack a viable
    exit path. *)
