type report = {
  tasks_run : int;
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

let run ?(initial = []) ?(max_tasks = 10_000_000) sp bindings st =
  let eng = Engine.create sp bindings st in
  List.iter (fun (set, payload) -> Engine.push_initial eng set payload) initial;
  let tasks_run = ref 0 in
  (* Definition 4.3: always run the minimum active task. *)
  let rec loop () =
    if !tasks_run > max_tasks then failwith "Sequential.run: task budget exceeded";
    match Engine.pop_min eng with
    | None -> ()
    | Some task ->
        incr tasks_run;
        ignore (Engine.run_to_completion eng task);
        loop ()
  in
  loop ();
  { tasks_run = !tasks_run; stats = Engine.stats eng; prim_counts = Engine.prim_counts eng }
