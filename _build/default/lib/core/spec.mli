(** The inherently parallel abstraction of the paper (§4): irregular
    applications as well-ordered task sets whose unpredictable
    dependences are expressed as ECA rules.

    A specification is consumed by three interpreters that share its
    semantics exactly:
    - {!Sequential} — Definition 4.3, the correctness oracle;
    - {!Runtime} — the aggressive software runtime (the "pure software
      runtime" of §4.4) with speculative/coordinative scheduling;
    - [Agp_hw.Accelerator] — the cycle-level FPGA model, after
      compilation to a Boolean dataflow graph ([Agp_dataflow]).

    Task bodies are straight-line programs over a small typed expression
    language, with structured branching ([If] becomes a BDFG switch
    actor), task activation ([Push]/[Push_iter]), rule construction and
    rendezvous ([Alloc]/[Await]), event broadcast ([Emit]), squashing
    ([Abort]/[Retry]) and opaque problem-specific kernels ([Prim]). *)

(** {1 Expressions} *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Const of Value.t
  | Param of int  (** payload field of the current task *)
  | Var of string  (** local binding introduced by [Let]/[Load]/[Prim] *)
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr

val int : int -> expr
(** [Const (Int n)]. *)

val bool : bool -> expr

(** {1 Task body operations} *)

type op =
  | Let of string * expr
  | Load of string * string * expr  (** [Load (dst, array, addr)] *)
  | Store of string * expr * expr  (** [Store (array, addr, value)] *)
  | Push of string * expr list  (** activate a task in a named set *)
  | Push_iter of string * expr * expr * string * expr list
      (** [Push_iter (set, lo, hi, i, payload)]: activate one task per
          [i] in [\[lo, hi)]; payload may reference [Var i].  This is the
          task-spawner actor for data-dependent inner loops. *)
  | Alloc of string * string * expr list
      (** [Alloc (handle, rule, params)]: construct a rule instance. *)
  | Await of string * string
      (** [Await (dst, handle)]: rendezvous — stall until the rule
          resolves, binding the returned boolean. *)
  | Emit of string * expr list
      (** [Emit (label, fields)]: broadcast an event to all rule
          instances. *)
  | If of expr * op list * op list
  | Abort  (** squash this task permanently *)
  | Retry  (** squash and re-activate this task with the same index *)
  | Prim of string list * string * expr list
      (** [Prim (dsts, name, args)]: problem-specific kernel bound at
          execution time; may read/write Σ and side structures. *)

(** {1 Rules (ECA grammar, §4.2.2)} *)

type event_pat =
  | On_activated of string  (** a task enters the named set *)
  | On_reached of string * string  (** a task in the set executes [Emit label] *)
  | On_min_changed
      (** the minimum uncommitted task changed; fields are its payload
          (the broadcast of Fig. 8 (4)) *)

(** Conditions are evaluated with the rule instance's constructor
    parameters and the triggering event's broadcast fields in scope. *)
type cond =
  | CConst of bool
  | CParam of int  (** constructor parameter (as value; use comparisons) *)
  | CField of int  (** event field *)
  | CEarlier  (** the event's task is strictly earlier in the well-order *)
  | CLater
  | CBinop of binop * cond * cond
  | CNot of cond
  | COverlap of int * int
      (** [COverlap (p, f)]: the parameter tail starting at [p]
          intersects the field tail starting at [f] — the bounded-set
          comparator template used by SPEC-DMR cavities.  Negative
          integers act as invalid CAM entries (padding) and never
          match. *)

type action =
  | Return_bool of bool  (** resolve the rendezvous with this value *)
  | Decrement
      (** countdown toward 0; at 0 the rule resolves [true] (the
          coordinative dependence-counting template used by COOR-LU) *)

type clause = {
  on : event_pat;
  condition : cond;
  action : action;
}

(** When the mandatory [otherwise] exit path fires (§4.2.1 liveness):
    - [Min_waiting]: the parent is the minimum task among those stalled
      at a rendezvous — the paper's deadlock-free default; tolerates
      out-of-order commits (the spec must make them benign, as SPEC-BFS
      and SPEC-SSSP do with their re-validation guards).
    - [Min_uncommitted]: the parent is the minimum among {e all}
      uncommitted tasks — commits retire in well-order, giving exact
      sequential semantics (needed by SPEC-MST's weight order and
      COOR-LU/COOR-BFS dependence order); requires rule-engine lanes
      sized to the in-flight window to stay deadlock-free. *)
type otherwise_scope =
  | Min_waiting
  | Min_uncommitted

type rule = {
  rule_name : string;
  n_params : int;  (** -1 for variadic (e.g. cavity sets) *)
  clauses : clause list;
  otherwise : bool;
      (** value resolved when the parent task becomes minimal in
          [scope] — the mandatory liveness exit path *)
  scope : otherwise_scope;
  counted : bool;
      (** when true the rule is a countdown: its initial counter is
          [expected params - matching events already fired], with
          [expected] supplied in {!bindings} *)
}

(** {1 Task sets} *)

type order =
  | For_all  (** siblings tie in the well-order (do-all) *)
  | For_each  (** activation order is the well-order (do-across) *)

type task_set = {
  ts_name : string;
  ts_order : order;
  arity : int;  (** payload width *)
  body : op list;
}

(** {1 Whole specification} *)

type t = {
  spec_name : string;
  task_sets : task_set list;
  rules : rule list;
}

val task_set_slot : t -> string -> int
(** Declaration position of a task set (its well-order slot).
    @raise Not_found on unknown names. *)

val find_task_set : t -> string -> task_set

val find_rule : t -> string -> rule

(** {1 Execution-time bindings} *)

type prim_ctx = {
  state : State.t;
  task_index : Index.t;
}

type prim_impl = prim_ctx -> Value.t list -> Value.t list

type bindings = {
  prims : (string * prim_impl) list;
  expected : (string * (Value.t list -> int)) list;
      (** per counted rule: total number of matching events that will
          ever fire for these constructor params *)
}

val no_bindings : bindings

(** {1 Validation} *)

val validate : t -> (unit, string list) result
(** Static checks: unique names, payload arities on every push, rule
    references resolve, [Await] handles are allocated first, parameters
    in range, counted rules carry no [Return_bool] countdown confusion,
    and no [Store]/[Push] precedes an [Abort]/[Retry] in the same
    branch after the last [Await] (the squash-safety discipline). *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing of the whole specification. *)
