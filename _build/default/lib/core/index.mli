(** Well-order indices over the task domain (paper §4.1).

    With [s] task sets declared, every task carries an [s]-tuple of
    non-negative integers compared lexicographically.  Slot [k]
    corresponds to task set [k] in declaration order; for-each sets
    stamp a fresh counter value into their slot, for-all sets stamp 0
    (so all siblings tie), and a child inherits its parent's slots to
    the left of its own.  Sequential execution (Definition 4.3) always
    runs the minimum active index. *)

type t

val root : int -> t
(** [root s] is the all-zero index of width [s] (used for host-injected
    initial tasks before any counter ticks). *)

val of_array : int array -> t

val to_array : t -> int array

val width : t -> int

val compare : t -> t -> int
(** Lexicographic. *)

val equal : t -> t -> bool

val child : parent:t -> slot:int -> stamp:int -> t
(** Index for a task pushed into set [slot]: slots left of [slot] are
    inherited from the parent, [slot] itself gets [stamp], and slots to
    the right are reset to 0. *)

val slot : t -> int -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
