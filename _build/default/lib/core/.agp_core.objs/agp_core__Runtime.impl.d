lib/core/runtime.ml: Array Engine List Queue
