lib/core/engine.ml: Agp_util Array Hashtbl Index Interp List Option Printf Spec State String Value
