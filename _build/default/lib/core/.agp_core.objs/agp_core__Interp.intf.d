lib/core/interp.mli: Hashtbl Spec Value
