lib/core/parallel_runtime.ml: Atomic Domain Engine List Mutex Queue
