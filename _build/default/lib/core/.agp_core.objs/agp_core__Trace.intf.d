lib/core/trace.mli: Runtime Spec State Value
