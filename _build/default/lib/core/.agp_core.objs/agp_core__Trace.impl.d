lib/core/trace.ml: Array Buffer Engine Hashtbl Index List Printf Queue Runtime Spec Value
