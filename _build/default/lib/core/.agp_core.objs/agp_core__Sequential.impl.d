lib/core/sequential.ml: Engine List
