lib/core/state.mli: Value
