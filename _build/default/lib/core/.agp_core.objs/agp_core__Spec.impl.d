lib/core/spec.ml: Format Index List Printf State String Value
