lib/core/value.ml: Format
