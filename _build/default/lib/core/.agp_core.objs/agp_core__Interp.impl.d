lib/core/interp.ml: Array Hashtbl List Printf Spec Value
