lib/core/spec.mli: Format Index State Value
