lib/core/runtime.mli: Engine Spec State Value
