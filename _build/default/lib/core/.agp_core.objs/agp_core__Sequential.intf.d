lib/core/sequential.mli: Engine Spec State Value
