lib/core/engine.mli: Index Interp Spec State Value
