lib/core/state.ml: Agp_util Array Hashtbl List Printf Value
