lib/core/index.ml: Array Format Stdlib String
