lib/core/parallel_runtime.mli: Engine Spec State Value
