(** Runtime values flowing through task pipelines.

    Task payloads, local bindings, rule parameters and event fields are
    all vectors of these values.  The set is deliberately small — it is
    what a hardware token carries. *)

type t =
  | Int of int
  | Float of float
  | Bool of bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

val to_int : t -> int
(** @raise Invalid_argument on non-integers. *)

val to_float : t -> float
(** Ints widen; @raise Invalid_argument on booleans. *)

val to_bool : t -> bool
(** @raise Invalid_argument on non-booleans. *)

val truthy : t -> bool
(** [Bool b] is [b]; [Int n] is [n <> 0]; floats are an error. *)
