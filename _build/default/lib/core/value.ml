type t =
  | Int of int
  | Float of float
  | Bool of bool

let pp fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Float x -> Format.fprintf fmt "%g" x
  | Bool b -> Format.fprintf fmt "%b" b

let to_string v = Format.asprintf "%a" pp v

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Bool x, Bool y -> x = y
  | (Int _ | Float _ | Bool _), _ -> false

let to_int = function
  | Int n -> n
  | Float _ | Bool _ as v -> invalid_arg ("Value.to_int: " ^ to_string v)

let to_float = function
  | Float x -> x
  | Int n -> float_of_int n
  | Bool _ as v -> invalid_arg ("Value.to_float: " ^ to_string v)

let to_bool = function
  | Bool b -> b
  | Int _ | Float _ as v -> invalid_arg ("Value.to_bool: " ^ to_string v)

let truthy = function
  | Bool b -> b
  | Int n -> n <> 0
  | Float _ as v -> invalid_arg ("Value.truthy: " ^ to_string v)
