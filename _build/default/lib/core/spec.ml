type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Const of Value.t
  | Param of int
  | Var of string
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr

let int n = Const (Value.Int n)

let bool b = Const (Value.Bool b)

type op =
  | Let of string * expr
  | Load of string * string * expr
  | Store of string * expr * expr
  | Push of string * expr list
  | Push_iter of string * expr * expr * string * expr list
  | Alloc of string * string * expr list
  | Await of string * string
  | Emit of string * expr list
  | If of expr * op list * op list
  | Abort
  | Retry
  | Prim of string list * string * expr list

type event_pat =
  | On_activated of string
  | On_reached of string * string
  | On_min_changed

type cond =
  | CConst of bool
  | CParam of int
  | CField of int
  | CEarlier
  | CLater
  | CBinop of binop * cond * cond
  | CNot of cond
  | COverlap of int * int

type action =
  | Return_bool of bool
  | Decrement

type clause = {
  on : event_pat;
  condition : cond;
  action : action;
}

type otherwise_scope =
  | Min_waiting
  | Min_uncommitted

type rule = {
  rule_name : string;
  n_params : int;
  clauses : clause list;
  otherwise : bool;
  scope : otherwise_scope;
  counted : bool;
}

type order =
  | For_all
  | For_each

type task_set = {
  ts_name : string;
  ts_order : order;
  arity : int;
  body : op list;
}

type t = {
  spec_name : string;
  task_sets : task_set list;
  rules : rule list;
}

let task_set_slot t name =
  let rec loop i = function
    | [] -> raise Not_found
    | ts :: _ when ts.ts_name = name -> i
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 t.task_sets

let find_task_set t name = List.find (fun ts -> ts.ts_name = name) t.task_sets

let find_rule t name = List.find (fun r -> r.rule_name = name) t.rules

type prim_ctx = {
  state : State.t;
  task_index : Index.t;
}

type prim_impl = prim_ctx -> Value.t list -> Value.t list

type bindings = {
  prims : (string * prim_impl) list;
  expected : (string * (Value.t list -> int)) list;
}

let no_bindings = { prims = []; expected = [] }

(* --- validation --- *)

let rec expr_params acc = function
  | Const _ | Var _ -> acc
  | Param i -> i :: acc
  | Binop (_, a, b) -> expr_params (expr_params acc a) b
  | Not e | Neg e -> expr_params acc e

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* unique names *)
  let check_unique what names =
    let sorted = List.sort compare names in
    let rec dups = function
      | a :: (b :: _ as rest) ->
          if a = b then err "duplicate %s %S" what a;
          dups rest
      | [ _ ] | [] -> ()
    in
    dups sorted
  in
  check_unique "task set" (List.map (fun ts -> ts.ts_name) t.task_sets);
  check_unique "rule" (List.map (fun r -> r.rule_name) t.rules);
  if t.task_sets = [] then err "specification has no task sets";
  (* per-task-set body checks *)
  let check_body ts =
    let arity = ts.arity in
    let check_params where e =
      List.iter
        (fun i -> if i < 0 || i >= arity then err "%s: Param %d out of range in %s" ts.ts_name i where)
        (expr_params [] e)
    in
    let rec walk allocated = function
      | [] -> allocated
      | op :: rest ->
          let allocated =
            match op with
            | Let (_, e) ->
                check_params "Let" e;
                allocated
            | Load (_, _, addr) ->
                check_params "Load" addr;
                allocated
            | Store (_, addr, v) ->
                check_params "Store" addr;
                check_params "Store" v;
                allocated
            | Push (set, payload) -> begin
                List.iter (check_params "Push") payload;
                match List.find_opt (fun s -> s.ts_name = set) t.task_sets with
                | None ->
                    err "%s: Push to unknown task set %S" ts.ts_name set;
                    allocated
                | Some target ->
                    if List.length payload <> target.arity then
                      err "%s: Push to %s with %d fields, expected %d" ts.ts_name set
                        (List.length payload) target.arity;
                    allocated
              end
            | Push_iter (set, lo, hi, _, payload) -> begin
                check_params "Push_iter" lo;
                check_params "Push_iter" hi;
                List.iter (check_params "Push_iter") payload;
                match List.find_opt (fun s -> s.ts_name = set) t.task_sets with
                | None ->
                    err "%s: Push_iter to unknown task set %S" ts.ts_name set;
                    allocated
                | Some target ->
                    if List.length payload <> target.arity then
                      err "%s: Push_iter to %s with %d fields, expected %d" ts.ts_name set
                        (List.length payload) target.arity;
                    allocated
              end
            | Alloc (handle, rule, params) -> begin
                List.iter (check_params "Alloc") params;
                match List.find_opt (fun r -> r.rule_name = rule) t.rules with
                | None ->
                    err "%s: Alloc of unknown rule %S" ts.ts_name rule;
                    handle :: allocated
                | Some r ->
                    if r.n_params >= 0 && List.length params <> r.n_params then
                      err "%s: Alloc %s with %d params, expected %d" ts.ts_name rule
                        (List.length params) r.n_params;
                    handle :: allocated
              end
            | Await (_, handle) ->
                if not (List.mem handle allocated) then
                  err "%s: Await on handle %S with no preceding Alloc" ts.ts_name handle;
                allocated
            | Emit (_, fields) ->
                List.iter (check_params "Emit") fields;
                allocated
            | If (c, a, b) ->
                check_params "If" c;
                let after_a = walk allocated a in
                let after_b = walk allocated b in
                (* handles allocated on both branches survive *)
                List.filter (fun h -> List.mem h after_b) after_a
            | Abort | Retry -> allocated
            | Prim (_, _, args) ->
                List.iter (check_params "Prim") args;
                allocated
          in
          walk allocated rest
    in
    ignore (walk [] ts.body)
  in
  List.iter check_body t.task_sets;
  (* rule references in clauses *)
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          match c.on with
          | On_activated set | On_reached (set, _) ->
              if not (List.exists (fun ts -> ts.ts_name = set) t.task_sets) then
                err "rule %s: clause on unknown task set %S" r.rule_name set
          | On_min_changed -> ())
        r.clauses;
      if r.counted && List.for_all (fun c -> c.action <> Decrement) r.clauses then
        err "rule %s: counted but no Decrement clause" r.rule_name;
      if (not r.counted) && List.exists (fun c -> c.action = Decrement) r.clauses then
        err "rule %s: Decrement clause in uncounted rule" r.rule_name)
    t.rules;
  match List.rev !errors with
  | [] -> Ok ()
  | es -> Error es

(* --- pretty printing --- *)

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Min -> "min"
  | Max -> "max"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr fmt = function
  | Const v -> Value.pp fmt v
  | Param i -> Format.fprintf fmt "$%d" i
  | Var v -> Format.fprintf fmt "%s" v
  | Binop ((Min | Max) as o, a, b) ->
      Format.fprintf fmt "%s(%a, %a)" (binop_str o) pp_expr a pp_expr b
  | Binop (o, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str o) pp_expr b
  | Not e -> Format.fprintf fmt "!%a" pp_expr e
  | Neg e -> Format.fprintf fmt "-%a" pp_expr e

let pp_exprs fmt es =
  Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_expr fmt es

let rec pp_op indent fmt op =
  let pad = String.make indent ' ' in
  match op with
  | Let (v, e) -> Format.fprintf fmt "%slet %s = %a@," pad v pp_expr e
  | Load (v, arr, a) -> Format.fprintf fmt "%s%s <- %s[%a]@," pad v arr pp_expr a
  | Store (arr, a, e) -> Format.fprintf fmt "%s%s[%a] := %a@," pad arr pp_expr a pp_expr e
  | Push (set, p) -> Format.fprintf fmt "%spush %s(%a)@," pad set pp_exprs p
  | Push_iter (set, lo, hi, i, p) ->
      Format.fprintf fmt "%sfor %s in [%a, %a): push %s(%a)@," pad i pp_expr lo pp_expr hi set
        pp_exprs p
  | Alloc (h, r, p) -> Format.fprintf fmt "%s%s <- rule %s(%a)@," pad h r pp_exprs p
  | Await (v, h) -> Format.fprintf fmt "%s%s <- await %s@," pad v h
  | Emit (l, f) -> Format.fprintf fmt "%semit %s(%a)@," pad l pp_exprs f
  | If (c, a, b) ->
      Format.fprintf fmt "%sif %a {@," pad pp_expr c;
      List.iter (pp_op (indent + 2) fmt) a;
      if b <> [] then begin
        Format.fprintf fmt "%s} else {@," pad;
        List.iter (pp_op (indent + 2) fmt) b
      end;
      Format.fprintf fmt "%s}@," pad
  | Abort -> Format.fprintf fmt "%sabort@," pad
  | Retry -> Format.fprintf fmt "%sretry@," pad
  | Prim (ds, name, args) ->
      Format.fprintf fmt "%s[%s] <- prim %s(%a)@," pad (String.concat ", " ds) name pp_exprs args

let rec pp_cond fmt = function
  | CConst b -> Format.fprintf fmt "%b" b
  | CParam i -> Format.fprintf fmt "p%d" i
  | CField i -> Format.fprintf fmt "f%d" i
  | CEarlier -> Format.fprintf fmt "earlier"
  | CLater -> Format.fprintf fmt "later"
  | CBinop (o, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_cond a (binop_str o) pp_cond b
  | CNot c -> Format.fprintf fmt "!%a" pp_cond c
  | COverlap (p, f) -> Format.fprintf fmt "overlap(p%d.., f%d..)" p f

let pp_event fmt = function
  | On_activated s -> Format.fprintf fmt "activated(%s)" s
  | On_reached (s, l) -> Format.fprintf fmt "reached(%s, %s)" s l
  | On_min_changed -> Format.fprintf fmt "min_changed"

let pp fmt t =
  Format.fprintf fmt "@[<v>spec %s@," t.spec_name;
  List.iter
    (fun ts ->
      Format.fprintf fmt "task set %s (%s, arity %d):@," ts.ts_name
        (match ts.ts_order with For_all -> "for-all" | For_each -> "for-each")
        ts.arity;
      List.iter (pp_op 2 fmt) ts.body)
    t.task_sets;
  List.iter
    (fun r ->
      Format.fprintf fmt "rule %s (%d params%s):@," r.rule_name r.n_params
        (if r.counted then ", counted" else "");
      List.iter
        (fun c ->
          Format.fprintf fmt "  ON %a IF %a DO %s@," pp_event c.on pp_cond c.condition
            (match c.action with
            | Return_bool b -> Printf.sprintf "return %b" b
            | Decrement -> "decrement"))
        r.clauses;
      Format.fprintf fmt "  OTHERWISE return %b@," r.otherwise)
    t.rules;
  Format.fprintf fmt "@]"
