type t = int array

let root s = Array.make (max s 1) 0

let of_array a = Array.copy a

let to_array t = Array.copy t

let width = Array.length

let compare (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then Stdlib.compare (Array.length a) (Array.length b)
    else begin
      let c = Stdlib.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
    end
  in
  loop 0

let equal a b = compare a b = 0

let child ~parent ~slot ~stamp =
  let t = Array.make (Array.length parent) 0 in
  Array.blit parent 0 t 0 slot;
  t.(slot) <- stamp;
  t

let slot t i = t.(i)

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (Array.to_list (Array.map string_of_int t)))

let to_string t = Format.asprintf "%a" pp t
