(** Expression and condition evaluation shared by every interpreter of
    a specification (sequential oracle, software runtime, hardware
    model). *)

type env = (string, Value.t) Hashtbl.t
(** Per-task local bindings. *)

val eval_binop : Spec.binop -> Value.t -> Value.t -> Value.t
(** Arithmetic promotes int to float when mixed; comparisons yield
    [Bool]; [And]/[Or] require booleans.
    @raise Invalid_argument on kind errors or division by zero. *)

val eval_expr : env -> Value.t array -> Spec.expr -> Value.t
(** [eval_expr env payload e]: [Param i] reads the payload, [Var]
    reads the environment.  @raise Invalid_argument on unbound
    variables. *)

val eval_cond :
  params:Value.t array ->
  fields:Value.t array ->
  event_earlier:bool ->
  Spec.cond ->
  bool
(** Evaluate a rule condition against a triggering event.
    [event_earlier] is the precomputed well-order comparison between
    the event's task and the rule's parent ([CLater] is its negation
    only when the indices differ — ties are neither earlier nor
    later).  Out-of-range [CParam]/[CField] evaluate comparisons to
    mismatch rather than raising, so variadic rules can probe. *)

val eval_cond_strict :
  params:Value.t array ->
  fields:Value.t array ->
  earlier:bool ->
  later:bool ->
  Spec.cond ->
  bool
(** Like {!eval_cond} but with both order relations explicit. *)
