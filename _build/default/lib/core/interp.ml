type env = (string, Value.t) Hashtbl.t

let arith_error op = invalid_arg ("Interp: bad operands for " ^ op)

let eval_binop (op : Spec.binop) (a : Value.t) (b : Value.t) : Value.t =
  let open Value in
  let num_promote f_int f_float =
    match (a, b) with
    | Int x, Int y -> Int (f_int x y)
    | Float x, Float y -> Float (f_float x y)
    | Int x, Float y -> Float (f_float (float_of_int x) y)
    | Float x, Int y -> Float (f_float x (float_of_int y))
    | (Bool _, _ | _, Bool _) -> arith_error "arithmetic"
  in
  let cmp f =
    match (a, b) with
    | Int x, Int y -> Bool (f (compare x y) 0)
    | Float x, Float y -> Bool (f (compare x y) 0)
    | Int x, Float y -> Bool (f (compare (float_of_int x) y) 0)
    | Float x, Int y -> Bool (f (compare x (float_of_int y)) 0)
    | Bool x, Bool y -> Bool (f (compare x y) 0)
    | (Bool _, _ | _, Bool _) -> arith_error "comparison"
  in
  match op with
  | Add -> num_promote ( + ) ( +. )
  | Sub -> num_promote ( - ) ( -. )
  | Mul -> num_promote ( * ) ( *. )
  | Div -> begin
      match (a, b) with
      | _, Int 0 -> invalid_arg "Interp: division by zero"
      | _, (Int _ | Float _) -> num_promote ( / ) ( /. )
      | _, Bool _ -> arith_error "division"
    end
  | Rem -> begin
      match (a, b) with
      | Int _, Int 0 -> invalid_arg "Interp: modulo by zero"
      | Int x, Int y -> Int (x mod y)
      | (Int _ | Float _ | Bool _), _ -> arith_error "rem"
    end
  | Min -> num_promote min min
  | Max -> num_promote max max
  | Eq -> cmp ( = )
  | Ne -> cmp ( <> )
  | Lt -> cmp ( < )
  | Le -> cmp ( <= )
  | Gt -> cmp ( > )
  | Ge -> cmp ( >= )
  | And -> Bool (Value.to_bool a && Value.to_bool b)
  | Or -> Bool (Value.to_bool a || Value.to_bool b)

let rec eval_expr env payload (e : Spec.expr) : Value.t =
  match e with
  | Const v -> v
  | Param i ->
      if i < 0 || i >= Array.length payload then
        invalid_arg (Printf.sprintf "Interp: Param %d out of range" i)
      else payload.(i)
  | Var name -> begin
      match Hashtbl.find_opt env name with
      | Some v -> v
      | None -> invalid_arg ("Interp: unbound variable " ^ name)
    end
  | Binop (op, a, b) -> eval_binop op (eval_expr env payload a) (eval_expr env payload b)
  | Not e -> Value.Bool (not (Value.to_bool (eval_expr env payload e)))
  | Neg e -> begin
      match eval_expr env payload e with
      | Value.Int n -> Value.Int (-n)
      | Value.Float x -> Value.Float (-.x)
      | Value.Bool _ -> arith_error "negation"
    end

(* A sentinel for out-of-range param/field probes in variadic rules:
   comparisons against it are always false, overlap handles lengths
   itself. *)
exception Out_of_range

let rec eval_cond_value ~params ~fields (c : Spec.cond) : Value.t =
  match c with
  | CConst b -> Value.Bool b
  | CParam i -> if i < 0 || i >= Array.length params then raise Out_of_range else params.(i)
  | CField i -> if i < 0 || i >= Array.length fields then raise Out_of_range else fields.(i)
  | CEarlier | CLater -> assert false (* replaced before reaching here *)
  | CBinop (op, a, b) ->
      eval_binop op (eval_cond_value ~params ~fields a) (eval_cond_value ~params ~fields b)
  | CNot c -> Value.Bool (not (Value.to_bool (eval_cond_value ~params ~fields c)))
  | COverlap (p, f) ->
      let tail arr from =
        if from >= Array.length arr then []
        else Array.to_list (Array.sub arr from (Array.length arr - from))
      in
      (* Negative integers are padding in fixed-width signatures (the
         invalid bit of a CAM entry) and never match. *)
      let valid = function
        | Value.Int n -> n >= 0
        | Value.Float _ | Value.Bool _ -> true
      in
      let ps = List.filter valid (tail params p) and fs = List.filter valid (tail fields f) in
      Value.Bool (List.exists (fun x -> List.exists (Value.equal x) fs) ps)

let eval_cond_strict ~params ~fields ~earlier ~later c =
  (* Substitute the order relations, then evaluate; any out-of-range
     probe makes the whole clause not match. *)
  let rec subst (c : Spec.cond) : Spec.cond =
    match c with
    | CEarlier -> CConst earlier
    | CLater -> CConst later
    | CBinop (op, a, b) -> CBinop (op, subst a, subst b)
    | CNot c -> CNot (subst c)
    | (CConst _ | CParam _ | CField _ | COverlap _) as c -> c
  in
  match eval_cond_value ~params ~fields (subst c) with
  | v -> Value.to_bool v
  | exception Out_of_range -> false

let eval_cond ~params ~fields ~event_earlier c =
  eval_cond_strict ~params ~fields ~earlier:event_earlier ~later:false c
