module Vec = Agp_util.Vec
module P = Predicates

type point = float * float

type tri = {
  v : int array; (* 3 vertex ids, counter-clockwise *)
  nbr : int array; (* nbr.(i) is across the edge opposite v.(i); -1 = hull *)
  mutable alive : bool;
}

type t = {
  points : point Vec.t;
  tris : tri Vec.t;
}

let create pts = { points = Vec.of_array pts; tris = Vec.create () }

let num_points t = Vec.length t.points

let point t i = Vec.get t.points i

let add_point t p =
  Vec.push t.points p;
  Vec.length t.points - 1

let num_triangle_slots t = Vec.length t.tris

let alive t i = (Vec.get t.tris i).alive

let vertices t i =
  let tr = Vec.get t.tris i in
  (tr.v.(0), tr.v.(1), tr.v.(2))

let neighbor t i k = (Vec.get t.tris i).nbr.(k)

let add_triangle t a b c =
  let pa = point t a and pb = point t b and pc = point t c in
  let a, b, c = if P.ccw pa pb pc then (a, b, c) else (a, c, b) in
  Vec.push t.tris { v = [| a; b; c |]; nbr = [| -1; -1; -1 |]; alive = true };
  Vec.length t.tris - 1

let kill t i = (Vec.get t.tris i).alive <- false

(* Edge opposite vertex index k of triangle [tr] is (v.(k+1), v.(k+2)). *)
let edge_of tr k = (tr.v.((k + 1) mod 3), tr.v.((k + 2) mod 3))

let shared_edge_index ta tb =
  (* index k in ta such that edge k of ta is an edge of tb (reversed) *)
  let has_edge tr (x, y) =
    let rec loop k =
      if k >= 3 then false
      else begin
        let ex, ey = edge_of tr k in
        ((ex = x && ey = y) || (ex = y && ey = x)) || loop (k + 1)
      end
    in
    loop 0
  in
  let rec loop k =
    if k >= 3 then None
    else if has_edge tb (edge_of ta k) then Some k
    else loop (k + 1)
  in
  loop 0

let link t a b =
  if b >= 0 then begin
    let ta = Vec.get t.tris a and tb = Vec.get t.tris b in
    match (shared_edge_index ta tb, shared_edge_index tb ta) with
    | Some ka, Some kb ->
        ta.nbr.(ka) <- b;
        tb.nbr.(kb) <- a
    | _ -> invalid_arg "Mesh.link: triangles share no edge"
  end

let opposite_index t tri nbr =
  let tr = Vec.get t.tris tri in
  let rec loop k =
    if k >= 3 then raise Not_found else if tr.nbr.(k) = nbr then k else loop (k + 1)
  in
  loop 0

let live_triangles t =
  let acc = ref [] in
  Vec.iteri (fun i tr -> if tr.alive then acc := i :: !acc) t.tris;
  List.rev !acc

let num_live t = Vec.fold (fun acc tr -> if tr.alive then acc + 1 else acc) 0 t.tris

let corners t i =
  let a, b, c = vertices t i in
  (point t a, point t b, point t c)

let min_angle t i =
  let pa, pb, pc = corners t i in
  P.triangle_min_angle pa pb pc

let circumcenter t i =
  let pa, pb, pc = corners t i in
  P.circumcenter pa pb pc

let in_circumcircle t i p =
  let pa, pb, pc = corners t i in
  P.in_circle pa pb pc p

let contains t i p =
  let pa, pb, pc = corners t i in
  P.orient2d pa pb p >= 0.0 && P.orient2d pb pc p >= 0.0 && P.orient2d pc pa p >= 0.0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let problem = ref None in
  Vec.iteri
    (fun i tr ->
      if tr.alive && !problem = None then begin
        let pa, pb, pc = corners t i in
        if not (P.ccw pa pb pc) then problem := Some (Printf.sprintf "triangle %d not ccw" i)
        else
          for k = 0 to 2 do
            let n = tr.nbr.(k) in
            if n >= 0 && !problem = None then begin
              let tn = Vec.get t.tris n in
              if not tn.alive then problem := Some (Printf.sprintf "triangle %d links dead %d" i n)
              else if not (Array.exists (fun x -> x = i) tn.nbr) then
                problem := Some (Printf.sprintf "adjacency %d->%d not symmetric" i n)
            end
          done
      end)
    t.tris;
  match !problem with
  | Some msg -> err "%s" msg
  | None -> Ok ()
