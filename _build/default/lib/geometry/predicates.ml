let epsilon = 1e-12

let orient2d (ax, ay) (bx, by) (cx, cy) =
  let det = ((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax)) in
  if Float.abs det < epsilon then 0.0 else det

let ccw a b c = orient2d a b c > 0.0

let in_circle (ax, ay) (bx, by) (cx, cy) (px, py) =
  let adx = ax -. px and ady = ay -. py in
  let bdx = bx -. px and bdy = by -. py in
  let cdx = cx -. px and cdy = cy -. py in
  let ad2 = (adx *. adx) +. (ady *. ady) in
  let bd2 = (bdx *. bdx) +. (bdy *. bdy) in
  let cd2 = (cdx *. cdx) +. (cdy *. cdy) in
  let det =
    (adx *. ((bdy *. cd2) -. (bd2 *. cdy)))
    -. (ady *. ((bdx *. cd2) -. (bd2 *. cdx)))
    +. (ad2 *. ((bdx *. cdy) -. (bdy *. cdx)))
  in
  det > epsilon

let circumcenter (ax, ay) (bx, by) (cx, cy) =
  let d = 2.0 *. ((ax *. (by -. cy)) +. (bx *. (cy -. ay)) +. (cx *. (ay -. by))) in
  let a2 = (ax *. ax) +. (ay *. ay) in
  let b2 = (bx *. bx) +. (by *. by) in
  let c2 = (cx *. cx) +. (cy *. cy) in
  let ux = ((a2 *. (by -. cy)) +. (b2 *. (cy -. ay)) +. (c2 *. (ay -. by))) /. d in
  let uy = ((a2 *. (cx -. bx)) +. (b2 *. (ax -. cx)) +. (c2 *. (bx -. ax))) /. d in
  (ux, uy)

let dist (ax, ay) (bx, by) = Float.hypot (bx -. ax) (by -. ay)

let circumradius a b c = dist (circumcenter a b c) a

let shortest_edge a b c = min (dist a b) (min (dist b c) (dist c a))

let triangle_area a b c =
  let (ax, ay), (bx, by), (cx, cy) = (a, b, c) in
  Float.abs (((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax))) /. 2.0

let angle_at (ax, ay) (bx, by) (cx, cy) =
  (* angle at vertex a of triangle abc *)
  let ux = bx -. ax and uy = by -. ay in
  let vx = cx -. ax and vy = cy -. ay in
  let dot = (ux *. vx) +. (uy *. vy) in
  let nu = Float.hypot ux uy and nv = Float.hypot vx vy in
  if nu = 0.0 || nv = 0.0 then 0.0
  else begin
    let c = Float.max (-1.0) (Float.min 1.0 (dot /. (nu *. nv))) in
    acos c *. 180.0 /. Float.pi
  end

let triangle_min_angle a b c = min (angle_at a b c) (min (angle_at b c a) (angle_at c a b))
