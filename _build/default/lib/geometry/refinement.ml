module P = Predicates

type config = {
  min_angle : float;
  edge_floor : float;
}

let default_config = { min_angle = 20.7; edge_floor = 1e-6 }

let is_bad cfg (t : Delaunay.t) tri =
  Mesh.alive t.mesh tri
  && Delaunay.inside_domain t tri
  &&
  let a, b, c = Mesh.vertices t.mesh tri in
  let pa = Mesh.point t.mesh a and pb = Mesh.point t.mesh b and pc = Mesh.point t.mesh c in
  P.triangle_min_angle pa pb pc < cfg.min_angle && P.shortest_edge pa pb pc > cfg.edge_floor

let bad_triangles cfg t = List.filter (is_bad cfg t) (Mesh.live_triangles t.mesh)

type step = {
  killed : int list;
  created : int list;
  new_bad : int list;
}

let refine_one cfg (t : Delaunay.t) tri =
  if not (is_bad cfg t tri) then None
  else begin
    (* Chew's kernel: insert the circumcenter.  The victim's own
       circumcircle is empty (Delaunay) and the new vertex sits at its
       center, so every insertion keeps a global minimum vertex spacing
       of B * edge_floor — the packing argument that bounds total work.
       The circumcenter is strictly inside the victim's circumcircle, so
       the cavity always swallows the victim. *)
    match Delaunay.insert_point t.mesh ~hint:tri (Mesh.circumcenter t.mesh tri) with
    | None -> None
    | Some (_, killed, created) ->
        let new_bad = List.filter (is_bad cfg t) created in
        Some { killed; created; new_bad }
  end

let refine cfg t =
  let work = Queue.create () in
  List.iter (fun tri -> Queue.push tri work) (bad_triangles cfg t);
  let insertions = ref 0 in
  while not (Queue.is_empty work) do
    let tri = Queue.pop work in
    match refine_one cfg t tri with
    | None -> ()
    | Some step ->
        incr insertions;
        List.iter (fun nb -> Queue.push nb work) step.new_bad
  done;
  !insertions

type stats = {
  initial_bad : int;
  insertions : int;
  final_triangles : int;
  min_angle_after : float;
}

let refine_with_stats cfg t =
  let initial_bad = List.length (bad_triangles cfg t) in
  let insertions = refine cfg t in
  let live = Mesh.live_triangles t.mesh in
  let interior = List.filter (Delaunay.inside_domain t) live in
  let min_angle_after =
    List.fold_left (fun acc tri -> Float.min acc (Mesh.min_angle t.mesh tri)) 180.0 interior
  in
  { initial_bad; insertions; final_triangles = List.length live; min_angle_after }
