(** Delaunay mesh refinement (Chew's algorithm): repeatedly insert the
    circumcenter of a "bad" (poor-quality) triangle until none remain.

    This module is the sequential reference for SPEC-DMR and also serves
    the accelerator model, whose tasks call {!refine_one} as their
    problem-specific datapath while the rule engine arbitrates cavity
    overlaps between concurrent tasks. *)

type config = {
  min_angle : float;  (** triangles below this interior angle (degrees) are bad *)
  edge_floor : float;  (** triangles with a shortest edge below this are left alone *)
}

val default_config : config
(** 20.7° (Chew's B = √2 bound) and a tiny positive edge floor;
    together with circumcenter-only insertion and the domain-interior
    restriction this guarantees termination (minimum-spacing packing
    argument). *)

val is_bad : config -> Delaunay.t -> int -> bool
(** Bad = live, entirely inside the input domain, angle below the
    threshold, shortest edge above the floor. *)

val bad_triangles : config -> Delaunay.t -> int list

type step = {
  killed : int list;  (** cavity triangles removed (the conflict footprint) *)
  created : int list;  (** fresh triangles *)
  new_bad : int list;  (** created triangles that are themselves bad *)
}

val refine_one : config -> Delaunay.t -> int -> step option
(** Refine one bad triangle by inserting its circumcenter (Chew's
    kernel).  [None] when the triangle is already dead or no longer
    bad. *)

val refine : config -> Delaunay.t -> int
(** Run to fixpoint; returns the number of successful insertions.
    Postcondition: [bad_triangles cfg t = \[\]]. *)

type stats = {
  initial_bad : int;
  insertions : int;
  final_triangles : int;
  min_angle_after : float;
}

val refine_with_stats : config -> Delaunay.t -> stats
