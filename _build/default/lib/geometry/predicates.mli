(** Planar geometric predicates.

    Double-precision evaluations with a conservative epsilon filter —
    adequate for the random point clouds used as DMR workloads (points
    are generated with spacing far above the filter threshold). *)

val orient2d : float * float -> float * float -> float * float -> float
(** Positive when the three points make a counter-clockwise turn,
    negative for clockwise, 0 for (near-)collinear. *)

val ccw : float * float -> float * float -> float * float -> bool
(** [orient2d a b c > 0]. *)

val in_circle : float * float -> float * float -> float * float -> float * float -> bool
(** [in_circle a b c p] is true when [p] lies strictly inside the
    circumcircle of the counter-clockwise triangle [abc]. *)

val circumcenter : float * float -> float * float -> float * float -> float * float
(** Circumcenter of a non-degenerate triangle. *)

val circumradius : float * float -> float * float -> float * float -> float

val dist : float * float -> float * float -> float

val triangle_min_angle : float * float -> float * float -> float * float -> float
(** Smallest interior angle in degrees. *)

val triangle_area : float * float -> float * float -> float * float -> float
(** Unsigned area. *)

val shortest_edge : float * float -> float * float -> float * float -> float
