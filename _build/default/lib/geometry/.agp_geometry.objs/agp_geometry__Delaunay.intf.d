lib/geometry/delaunay.mli: Mesh
