lib/geometry/mesh.mli:
