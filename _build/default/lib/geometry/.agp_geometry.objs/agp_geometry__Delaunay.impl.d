lib/geometry/delaunay.ml: Array Float Hashtbl List Mesh Predicates
