lib/geometry/refinement.ml: Delaunay Float List Mesh Predicates Queue
