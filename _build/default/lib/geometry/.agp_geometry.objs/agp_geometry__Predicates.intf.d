lib/geometry/predicates.mli:
