lib/geometry/mesh.ml: Agp_util Array List Predicates Printf
