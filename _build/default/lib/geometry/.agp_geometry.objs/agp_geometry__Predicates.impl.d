lib/geometry/predicates.ml: Float
