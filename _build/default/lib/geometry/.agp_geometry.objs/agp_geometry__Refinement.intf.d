lib/geometry/refinement.mli: Delaunay
