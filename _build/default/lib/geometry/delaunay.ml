module P = Predicates

type t = {
  mesh : Mesh.t;
  enclosure : int list;
  domain : float * float * float * float;
}

let locate mesh ~hint p =
  let max_steps = 4 * (Mesh.num_triangle_slots mesh + 4) in
  let rec walk tri steps =
    if steps > max_steps then
      (* Degenerate walk (should not happen on generated inputs); fall
         back to a linear scan for robustness. *)
      List.find_opt (fun i -> Mesh.contains mesh i p) (Mesh.live_triangles mesh)
    else begin
      let a, b, c = Mesh.vertices mesh tri in
      let pa = Mesh.point mesh a and pb = Mesh.point mesh b and pc = Mesh.point mesh c in
      (* Edge opposite vertex 0 is (b, c), etc.; for a ccw triangle the
         point is inside iff it is on the left of every directed edge. *)
      let step_through k pa pb =
        if P.orient2d pa pb p < 0.0 then Some (Mesh.neighbor mesh tri k) else None
      in
      let next =
        match step_through 2 pa pb with
        | Some n -> Some n
        | None -> begin
            match step_through 0 pb pc with
            | Some n -> Some n
            | None -> step_through 1 pc pa
          end
      in
      match next with
      | None -> Some tri
      | Some -1 -> None
      | Some n -> walk n (steps + 1)
    end
  in
  walk hint 0

let cavity_of mesh ~start p =
  let seen = Hashtbl.create 16 in
  let cavity = ref [] in
  let rec grow tri =
    if tri >= 0 && (not (Hashtbl.mem seen tri)) && Mesh.alive mesh tri then begin
      Hashtbl.add seen tri ();
      if Mesh.in_circumcircle mesh tri p then begin
        cavity := tri :: !cavity;
        for k = 0 to 2 do
          grow (Mesh.neighbor mesh tri k)
        done
      end
    end
  in
  grow start;
  (* [start] contains p, hence p is inside (or on) its circumcircle, so
     start is always part of its own cavity. *)
  !cavity

let insert_into mesh cavity p =
      let in_cavity = Hashtbl.create 16 in
      List.iter (fun t -> Hashtbl.add in_cavity t ()) cavity;
      (* Boundary edges of the cavity, with the external neighbour (or -1). *)
      let boundary = ref [] in
      List.iter
        (fun tri ->
          let a, b, c = Mesh.vertices mesh tri in
          let edge k =
            match k with
            | 0 -> (b, c)
            | 1 -> (c, a)
            | _ -> (a, b)
          in
          for k = 0 to 2 do
            let n = Mesh.neighbor mesh tri k in
            if n = -1 || not (Hashtbl.mem in_cavity n) then boundary := (edge k, n) :: !boundary
          done)
        cavity;
      List.iter (Mesh.kill mesh) cavity;
      let pid = Mesh.add_point mesh p in
      (* A point landing exactly on a hull edge is collinear with that
         boundary edge; skip the degenerate triangle (the edge splits in
         two and both halves stay on the hull). *)
      let non_degenerate ((a, b), _) =
        P.orient2d (Mesh.point mesh a) (Mesh.point mesh b) p <> 0.0
      in
      let usable = List.filter non_degenerate !boundary in
      let created = List.map (fun ((a, b), ext) -> (Mesh.add_triangle mesh pid a b, ext)) usable in
      (* External links. *)
      List.iter (fun (nt, ext) -> if ext >= 0 then Mesh.link mesh nt ext) created;
      (* Internal links: two new triangles share the spoke edge (pid, v)
         exactly when they both have boundary vertex v. *)
      let by_vertex = Hashtbl.create 16 in
      List.iter
        (fun (nt, _) ->
          let a, b, c = Mesh.vertices mesh nt in
          List.iter (fun v -> if v <> pid then Hashtbl.add by_vertex v nt) [ a; b; c ])
        created;
      let linked = Hashtbl.create 16 in
      Hashtbl.iter
        (fun v _ ->
          if not (Hashtbl.mem linked v) then begin
            Hashtbl.add linked v ();
            match Hashtbl.find_all by_vertex v with
            | [ t1; t2 ] -> Mesh.link mesh t1 t2
            | _ -> ()
          end)
        by_vertex;
      Some (pid, cavity, List.map fst created)

let insert_point mesh ~hint p =
  let px, py = p in
  if not (Float.is_finite px && Float.is_finite py) then None
  else
    match locate mesh ~hint p with
    | None -> None
    | Some start -> begin
        match cavity_of mesh ~start p with
        | [] ->
            (* An epsilon-filtered in-circle test rejected even the
               containing triangle (degenerate insertion point); refuse
               to mutate the mesh. *)
            None
        | cavity -> insert_into mesh cavity p
      end

let triangulate pts =
  (* Generous bounding square (10x the input span): refinement
     circumcenters essentially never escape it, and triangles with a
     vertex outside the input domain are exempt from refinement (see
     Refinement), so the fringe between domain and enclosure stays
     coarse. *)
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let minx = Array.fold_left min infinity xs and maxx = Array.fold_left max neg_infinity xs in
  let miny = Array.fold_left min infinity ys and maxy = Array.fold_left max neg_infinity ys in
  let dx = Float.max (maxx -. minx) 1.0 and dy = Float.max (maxy -. miny) 1.0 in
  let margin = 10.0 *. Float.max dx dy in
  let x0 = minx -. margin and x1 = maxx +. margin in
  let y0 = miny -. margin and y1 = maxy +. margin in
  let mesh = Mesh.create [| (x0, y0); (x1, y0); (x1, y1); (x0, y1) |] in
  let t0 = Mesh.add_triangle mesh 0 1 2 in
  let t1 = Mesh.add_triangle mesh 0 2 3 in
  Mesh.link mesh t0 t1;
  let hint = ref t0 in
  Array.iter
    (fun p ->
      match insert_point mesh ~hint:!hint p with
      | Some (_, _, created) -> begin
          match created with
          | t :: _ -> hint := t
          | [] -> ()
        end
      | None ->
          (* Impossible: the bounding square encloses every input point. *)
          assert false)
    pts;
  { mesh; enclosure = [ 0; 1; 2; 3 ]; domain = (minx, miny, maxx, maxy) }

let is_enclosure_vertex t v = List.mem v t.enclosure

let touches_enclosure t tri =
  let a, b, c = Mesh.vertices t.mesh tri in
  is_enclosure_vertex t a || is_enclosure_vertex t b || is_enclosure_vertex t c

let in_domain t (x, y) =
  let minx, miny, maxx, maxy = t.domain in
  x >= minx && x <= maxx && y >= miny && y <= maxy

let inside_domain t tri =
  let a, b, c = Mesh.vertices t.mesh tri in
  in_domain t (Mesh.point t.mesh a)
  && in_domain t (Mesh.point t.mesh b)
  && in_domain t (Mesh.point t.mesh c)

let delaunay_violations t =
  let mesh = t.mesh in
  let live = Mesh.live_triangles mesh in
  let count = ref 0 in
  List.iter
    (fun tri ->
      let a, b, c = Mesh.vertices mesh tri in
      let bad = ref false in
      for v = 0 to Mesh.num_points mesh - 1 do
        if v <> a && v <> b && v <> c && Mesh.in_circumcircle mesh tri (Mesh.point mesh v) then
          bad := true
      done;
      if !bad then incr count)
    live;
  !count
