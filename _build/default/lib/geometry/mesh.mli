(** Mutable triangle meshes with adjacency.

    Triangles are stored in a growing arena and never reused: deletion
    marks a slot dead and later insertions allocate fresh ids.  This
    mirrors the array-of-records layout the simulated accelerator reads
    through the memory system and makes triangle ids stable task
    payloads. *)

type point = float * float

type t

val create : point array -> t
(** [create pts] makes a mesh whose vertex table starts with [pts]
    (no triangles yet).  Further vertices may be added by {!add_point}. *)

val num_points : t -> int

val point : t -> int -> point

val add_point : t -> point -> int
(** Appends a vertex, returning its id. *)

val num_triangle_slots : t -> int
(** Arena size, including dead slots. *)

val alive : t -> int -> bool

val vertices : t -> int -> int * int * int
(** Vertex ids of a triangle (counter-clockwise). *)

val neighbor : t -> int -> int -> int
(** [neighbor t tri i] is the triangle sharing the edge opposite vertex
    [i] of [tri], or [-1] on the hull. *)

val add_triangle : t -> int -> int -> int -> int
(** [add_triangle t a b c] allocates a live triangle with the given
    vertices (reordered to counter-clockwise), neighbours unset ([-1]).
    Returns its id. *)

val kill : t -> int -> unit
(** Mark a triangle dead.  Neighbour links of others are not touched;
    callers rewire adjacency via {!link}. *)

val link : t -> int -> int -> unit
(** [link t a b] connects two live triangles that share an edge (finds
    the shared edge and sets both neighbour slots).  [link t a (-1)] is a
    no-op.  @raise Invalid_argument when no shared edge exists. *)

val opposite_index : t -> int -> int -> int
(** [opposite_index t tri nbr] is the index [i] such that
    [neighbor t tri i = nbr].  @raise Not_found otherwise. *)

val live_triangles : t -> int list

val num_live : t -> int

val min_angle : t -> int -> float
(** Smallest interior angle (degrees) of a live triangle. *)

val circumcenter : t -> int -> point

val in_circumcircle : t -> int -> point -> bool

val contains : t -> int -> point -> bool
(** Point-in-triangle (closed, counter-clockwise). *)

val validate : t -> (unit, string) result
(** Adjacency symmetry, counter-clockwise orientation and liveness
    consistency for every live triangle. *)
