(** Incremental Bowyer–Watson Delaunay triangulation.

    The triangulation lives inside a snug axis-aligned bounding square
    (10% margin around the input cloud) whose four corners are real mesh
    vertices; refinement may insert points anywhere inside it, including
    on its boundary edges.  The cavity machinery (locate → in-circle
    region → star retriangulation) is exposed because Delaunay mesh
    refinement reuses it verbatim: a DMR task is exactly "insert the
    circumcenter of a bad triangle", and the cavity is the conflict
    footprint that SPEC-DMR's rules compare between concurrent tasks. *)

type t = {
  mesh : Mesh.t;
  enclosure : int list;  (** ids of the four bounding-square corner vertices *)
  domain : float * float * float * float;
      (** [(minx, miny, maxx, maxy)] bounding box of the input points —
          the refinable region *)
}

val triangulate : Mesh.point array -> t
(** Builds the Delaunay triangulation of the points inside the bounding
    square (corners get ids 0..3; input point [i] gets id [i+4]). *)

val locate : Mesh.t -> hint:int -> Mesh.point -> int option
(** Walk from the live triangle [hint] to a live triangle containing the
    point; [None] when the point escapes the hull. *)

val cavity_of : Mesh.t -> start:int -> Mesh.point -> int list
(** Connected region of live triangles whose circumcircles contain the
    point, grown from [start] (which must contain the point). *)

val insert_point : Mesh.t -> hint:int -> Mesh.point -> (int * int list * int list) option
(** [insert_point mesh ~hint p] inserts [p], returning
    [(point_id, killed_triangles, created_triangles)], or [None] when
    [p] lies outside the hull.  Points landing exactly on a hull edge
    split that edge. *)

val is_enclosure_vertex : t -> int -> bool

val touches_enclosure : t -> int -> bool
(** True when the (live) triangle has a bounding-square corner vertex. *)

val in_domain : t -> Mesh.point -> bool
(** Point lies in the input-domain bounding box. *)

val inside_domain : t -> int -> bool
(** All three corners of the triangle lie in the input domain —
    the refinability condition for DMR (exempting the coarse fringe
    between domain and enclosure breaks the boundary cascade; combined
    with circumcenter-only insertion this makes refinement provably
    terminating by a minimum-spacing packing argument). *)

val delaunay_violations : t -> int
(** Number of live triangles whose circumcircle strictly contains some
    mesh vertex — 0 for a proper Delaunay triangulation. *)
