(** Timing model of the Altera-OpenCL synthesized BFS (§2.2, Fig. 1c,
    Table 1): a host CPU iterates two kernels with barriers between
    them until no vertex changes.

    The model charges exactly the terms that make AOCL-BFS two orders
    of magnitude slower than the rule-scheduled pipelines on a
    high-diameter graph: one pair of kernel launches per BFS level,
    barrier drain/refill of the pipelines, and a full scan of the
    vertex set per kernel (the OpenDwarfs BFS has no frontier — every
    thread re-checks its vertex), all streamed over the board link. *)

type params = {
  launch_overhead_s : float;  (** host-to-FPGA kernel launch cost (300 µs) *)
  barrier_overhead_s : float;  (** pipeline drain + flag readback (50 µs) *)
  bytes_per_vertex_scan : int;  (** per-kernel per-vertex traffic (16 B) *)
  link_gbps : float;  (** board memory bandwidth seen by kernels (25) *)
  edge_bytes : int;  (** per-edge traffic when a frontier vertex expands (8) *)
}

val default_params : params

type report = {
  seconds : float;
  rounds : int;  (** host iterations = BFS levels + 1 *)
  kernel_launches : int;
  bytes_moved : int;
}

val run_bfs : ?params:params -> Agp_graph.Csr.t -> int -> report
(** Model the AOCL-BFS execution on a graph from the given root. *)
