module Csr = Agp_graph.Csr
module Bfs = Agp_graph.Bfs

type params = {
  launch_overhead_s : float;
  barrier_overhead_s : float;
  bytes_per_vertex_scan : int;
  link_gbps : float;
  edge_bytes : int;
}

let default_params =
  {
    launch_overhead_s = 300.0e-6;
    barrier_overhead_s = 50.0e-6;
    bytes_per_vertex_scan = 16;
    link_gbps = 25.0;
    edge_bytes = 8;
  }

type report = {
  seconds : float;
  rounds : int;
  kernel_launches : int;
  bytes_moved : int;
}

let run_bfs ?(params = default_params) (g : Csr.t) root =
  let p = params in
  let levels = Bfs.levels g root in
  let hist = Bfs.level_histogram levels in
  let depth = List.fold_left (fun acc (l, _) -> max acc l) 0 hist in
  (* per level: kernel 1 expands the frontier (full vertex scan + edge
     traffic of the frontier), kernel 2 applies updates (full vertex
     scan); the host then reads the continuation flag. *)
  let rounds = depth + 1 in
  let bytes = ref 0 in
  let seconds = ref 0.0 in
  let frontier_edges l =
    (* edges leaving vertices at level l *)
    let total = ref 0 in
    Array.iteri (fun v lv -> if lv = l then total := !total + Csr.degree g v) levels;
    !total
  in
  for l = 0 to rounds - 1 do
    let scan = 2 * g.Csr.n * p.bytes_per_vertex_scan in
    let edges = frontier_edges l * p.edge_bytes in
    let round_bytes = scan + edges in
    bytes := !bytes + round_bytes;
    seconds :=
      !seconds
      +. (2.0 *. p.launch_overhead_s)
      +. (2.0 *. p.barrier_overhead_s)
      +. (float_of_int round_bytes /. (p.link_gbps *. 1.0e9))
  done;
  { seconds = !seconds; rounds; kernel_launches = 2 * rounds; bytes_moved = !bytes }
