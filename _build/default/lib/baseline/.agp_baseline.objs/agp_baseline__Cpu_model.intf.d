lib/baseline/cpu_model.mli: Agp_apps
