lib/baseline/cpu_model.ml: Agp_apps Agp_core Array Float List
