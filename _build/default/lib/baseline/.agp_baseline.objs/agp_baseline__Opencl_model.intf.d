lib/baseline/opencl_model.mli: Agp_graph
