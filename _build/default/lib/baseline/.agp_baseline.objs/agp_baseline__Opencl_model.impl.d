lib/baseline/opencl_model.ml: Agp_graph Array List
