test/test_geometry.ml: Agp_geometry Agp_graph Alcotest Delaunay Float List Mesh Predicates QCheck QCheck_alcotest Refinement
