test/test_hw.ml: Agp_apps Agp_core Agp_dataflow Agp_graph Agp_hw Alcotest Array List QCheck QCheck_alcotest String
