test/test_exp.ml: Agp_apps Agp_core Agp_exp Alcotest List Result String
