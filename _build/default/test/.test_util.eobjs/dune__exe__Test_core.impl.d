test/test_core.ml: Agp_apps Agp_core Agp_graph Alcotest Array Engine Hashtbl Index Interp List Printf QCheck QCheck_alcotest Runtime Sequential Spec State String Value
