test/test_dataflow.ml: Agp_apps Agp_core Agp_dataflow Alcotest List String
