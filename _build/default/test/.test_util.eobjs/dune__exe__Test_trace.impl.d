test/test_trace.ml: Agp_apps Agp_core Agp_exp Alcotest Engine List Runtime Spec String
