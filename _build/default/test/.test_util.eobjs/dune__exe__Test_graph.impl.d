test/test_graph.ml: Agp_graph Agp_util Alcotest Array Bfs Csr Dimacs Filename Fun Generator List Mst QCheck QCheck_alcotest Result Sssp Sys
