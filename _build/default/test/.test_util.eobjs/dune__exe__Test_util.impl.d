test/test_util.ml: Agp_util Alcotest Array Bitset Chart Fifo Heap List QCheck QCheck_alcotest Rng Stats String Table Union_find Vec
