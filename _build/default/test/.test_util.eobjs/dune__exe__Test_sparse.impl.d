test/test_sparse.ml: Agp_sparse Agp_util Alcotest Array Block_matrix Dense_block Hashtbl List QCheck QCheck_alcotest Sparse_lu
