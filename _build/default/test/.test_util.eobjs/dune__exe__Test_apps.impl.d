test/test_apps.ml: Agp_apps Agp_core Agp_graph Alcotest Engine Format List Printf QCheck QCheck_alcotest Runtime Spec String
