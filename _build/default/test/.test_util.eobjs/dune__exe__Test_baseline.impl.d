test/test_baseline.ml: Agp_apps Agp_baseline Agp_exp Agp_graph Agp_hw Alcotest
