(* Unit and property tests for the graph substrate. *)

open Agp_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let ok_result = Alcotest.result Alcotest.unit Alcotest.string

let triangle_graph () = Csr.of_edges ~n:3 [ (0, 1, 1); (1, 2, 1); (0, 2, 5) ]

(* The 6-vertex example graph of the paper's Figure 2(a): a small tree
   with a cross edge, reused by the schedule-diagram experiment. *)
let figure2_graph () =
  Csr.of_edges ~n:6 [ (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 4, 1); (3, 5, 1); (2, 3, 1) ]

(* --- Csr --- *)

let test_csr_shape () =
  let g = triangle_graph () in
  check Alcotest.int "n" 3 g.Csr.n;
  check Alcotest.int "m (undirected doubles)" 6 g.Csr.m;
  check Alcotest.int "degree 0" 2 (Csr.degree g 0);
  check Alcotest.int "max degree" 2 (Csr.max_degree g)

let test_csr_neighbors_sorted () =
  let g = figure2_graph () in
  let ns = Csr.fold_neighbors g 2 (fun acc dst _ -> dst :: acc) [] |> List.rev in
  check (Alcotest.list Alcotest.int) "sorted neighbors" [ 0; 3; 4 ] ns

let test_csr_directed () =
  let g = Csr.of_edges ~directed:true ~n:3 [ (0, 1, 7) ] in
  check Alcotest.int "one arc" 1 g.Csr.m;
  check Alcotest.int "deg 1 is 0" 0 (Csr.degree g 1)

let test_csr_symmetric () =
  check Alcotest.bool "undirected symmetric" true (Csr.is_symmetric (figure2_graph ()));
  let d = Csr.of_edges ~directed:true ~n:2 [ (0, 1, 1) ] in
  check Alcotest.bool "directed asymmetric" false (Csr.is_symmetric d)

let test_csr_validate () =
  check ok_result "valid graph" (Ok ()) (Csr.validate (figure2_graph ()));
  let broken = { (triangle_graph ()) with Csr.m = 5 } in
  check Alcotest.bool "broken rejected" true (Result.is_error (Csr.validate broken))

let test_csr_out_of_range () =
  Alcotest.check_raises "oob edge" (Invalid_argument "Csr.of_edges: vertex out of range")
    (fun () -> ignore (Csr.of_edges ~n:2 [ (0, 5, 1) ]))

let test_csr_undirected_edges () =
  let g = triangle_graph () in
  check Alcotest.int "3 undirected edges" 3 (List.length (Csr.undirected_edges g))

(* --- generators --- *)

let test_road_connected () =
  let g = Generator.road ~seed:1 ~width:20 ~height:15 in
  check ok_result "valid" (Ok ()) (Csr.validate g);
  let lv = Bfs.levels g 0 in
  Array.iteri
    (fun v l -> if l = Bfs.infinity_level then Alcotest.failf "vertex %d unreachable" v)
    lv

let test_road_high_diameter () =
  let g = Generator.road ~seed:2 ~width:40 ~height:40 in
  let d = Bfs.diameter_from g 0 in
  check Alcotest.bool "diameter at least width" true (d >= 40)

let test_road_low_degree () =
  let g = Generator.road ~seed:3 ~width:30 ~height:30 in
  check Alcotest.bool "road degree small" true (Csr.max_degree g <= 8)

let test_random_connected () =
  let g = Generator.random ~seed:4 ~n:200 ~m:500 in
  check ok_result "valid" (Ok ()) (Csr.validate g);
  let lv = Bfs.levels g 0 in
  Array.iter (fun l -> if l = Bfs.infinity_level then Alcotest.fail "unreachable") lv

let test_rmat_skewed () =
  let g = Generator.rmat ~seed:5 ~scale:9 ~edge_factor:8 in
  check ok_result "valid" (Ok ()) (Csr.validate g);
  (* Power-law-ish: max degree far above average. *)
  let avg = float_of_int g.Csr.m /. float_of_int g.Csr.n in
  check Alcotest.bool "skewed degrees" true (float_of_int (Csr.max_degree g) > 4.0 *. avg)

let prop_generators_deterministic =
  QCheck.Test.make ~name:"generators deterministic per seed" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let a = Generator.random ~seed ~n:50 ~m:120 in
      let b = Generator.random ~seed ~n:50 ~m:120 in
      Csr.edges a = Csr.edges b)

(* --- dimacs --- *)

let test_dimacs_roundtrip () =
  let g = Generator.random ~seed:6 ~n:40 ~m:80 in
  match Dimacs.parse (Dimacs.to_string g) with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      check Alcotest.int "n" g.Csr.n g'.Csr.n;
      check Alcotest.int "m" g.Csr.m g'.Csr.m;
      check Alcotest.bool "same edges" true (Csr.edges g = Csr.edges g')

let test_dimacs_rejects_garbage () =
  check Alcotest.bool "bad line" true (Result.is_error (Dimacs.parse "hello world"));
  check Alcotest.bool "missing p" true (Result.is_error (Dimacs.parse "a 1 2 3"));
  check Alcotest.bool "count mismatch" true
    (Result.is_error (Dimacs.parse "p sp 3 2\na 1 2 5"))

let test_dimacs_file_roundtrip () =
  let g = Generator.road ~seed:17 ~width:8 ~height:6 in
  let path = Filename.temp_file "agp" ".gr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path g;
      match Dimacs.read_file path with
      | Error e -> Alcotest.fail e
      | Ok g' -> check Alcotest.bool "file roundtrip" true (Csr.edges g = Csr.edges g'))

let test_dimacs_missing_file () =
  check Alcotest.bool "missing file is an error" true
    (Result.is_error (Dimacs.read_file "/nonexistent/path.gr"))

let test_dimacs_comments_ok () =
  let input = "c hi\np sp 2 1\na 1 2 9" in
  match Dimacs.parse input with
  | Error e -> Alcotest.fail e
  | Ok g ->
      check Alcotest.int "n" 2 g.Csr.n;
      check Alcotest.int "weight read" 9 g.Csr.weight.(0)

(* --- bfs --- *)

let test_bfs_figure2 () =
  let g = figure2_graph () in
  let lv = Bfs.levels g 0 in
  check (Alcotest.array Alcotest.int) "levels" [| 0; 1; 1; 2; 2; 3 |] lv

let test_bfs_unreachable () =
  let g = Csr.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  let lv = Bfs.levels g 0 in
  check Alcotest.int "reached" 1 lv.(1);
  check Alcotest.int "unreached" Bfs.infinity_level lv.(2)

let test_bfs_histogram () =
  let g = figure2_graph () in
  let h = Bfs.level_histogram (Bfs.levels g 0) in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "histogram"
    [ (0, 1); (1, 2); (2, 2); (3, 1) ]
    h

let test_bfs_check_accepts_reference () =
  let g = Generator.road ~seed:7 ~width:12 ~height:9 in
  check ok_result "reference accepted" (Ok ()) (Bfs.check_levels g 0 (Bfs.levels g 0))

let test_bfs_check_rejects_wrong () =
  let g = figure2_graph () in
  let lv = Bfs.levels g 0 in
  lv.(5) <- 1;
  check Alcotest.bool "rejects corrupted" true (Result.is_error (Bfs.check_levels g 0 lv))

let prop_bfs_levels_edge_slack =
  QCheck.Test.make ~name:"bfs adjacent levels differ by <=1" ~count:50
    QCheck.(int_range 0 500)
    (fun seed ->
      let g = Generator.random ~seed ~n:60 ~m:150 in
      let lv = Bfs.levels g 0 in
      List.for_all (fun (u, v, _) -> abs (lv.(u) - lv.(v)) <= 1) (Csr.edges g))

(* --- sssp --- *)

let test_dijkstra_triangle () =
  let g = triangle_graph () in
  let d = Sssp.dijkstra g 0 in
  check (Alcotest.array Alcotest.int) "distances" [| 0; 1; 2 |] d

let test_bellman_ford_matches_dijkstra () =
  let g = Generator.random ~seed:8 ~n:120 ~m:400 in
  let d1 = Sssp.dijkstra g 0 in
  let d2, tasks = Sssp.bellman_ford g 0 in
  check (Alcotest.array Alcotest.int) "same distances" d1 d2;
  check Alcotest.bool "worklist did work" true (tasks >= g.Csr.n)

let test_sssp_check_accepts () =
  let g = Generator.road ~seed:9 ~width:10 ~height:10 in
  check ok_result "certificate ok" (Ok ()) (Sssp.check_distances g 0 (Sssp.dijkstra g 0))

let test_sssp_check_rejects () =
  let g = triangle_graph () in
  let d = Sssp.dijkstra g 0 in
  d.(2) <- 7;
  check Alcotest.bool "rejects" true (Result.is_error (Sssp.check_distances g 0 d))

let prop_sssp_dijkstra_bellman_agree =
  QCheck.Test.make ~name:"dijkstra and bellman-ford agree" ~count:30
    QCheck.(int_range 0 500)
    (fun seed ->
      let g = Generator.random ~seed ~n:50 ~m:130 in
      Sssp.dijkstra g 0 = fst (Sssp.bellman_ford g 0))

(* --- mst --- *)

let test_mst_triangle () =
  let r = Mst.kruskal (triangle_graph ()) in
  check Alcotest.int "weight" 2 r.Mst.weight;
  check Alcotest.int "edges" 2 (List.length r.Mst.edges);
  check Alcotest.int "spanning" 1 r.Mst.components

let test_mst_sorted_edges () =
  let edges = Mst.sorted_edges (triangle_graph ()) in
  let weights = Array.to_list (Array.map (fun (_, _, w) -> w) edges) in
  check (Alcotest.list Alcotest.int) "ascending" [ 1; 1; 5 ] weights

let test_mst_check_accepts () =
  let g = Generator.random ~seed:10 ~n:80 ~m:200 in
  check ok_result "self check" (Ok ()) (Mst.check g (Mst.kruskal g))

let test_mst_check_rejects_cycle () =
  let g = triangle_graph () in
  let bogus = { (Mst.kruskal g) with Mst.edges = [ (0, 1, 1); (1, 2, 1); (0, 2, 5) ] } in
  check Alcotest.bool "cycle rejected" true (Result.is_error (Mst.check g bogus))

let test_mst_disconnected () =
  let g = Csr.of_edges ~n:4 [ (0, 1, 2); (2, 3, 3) ] in
  let r = Mst.kruskal g in
  check Alcotest.int "forest edges" 2 (List.length r.Mst.edges);
  check Alcotest.int "components" 2 r.Mst.components

let prop_mst_weight_leq_any_tree =
  QCheck.Test.make ~name:"kruskal weight minimal vs random spanning tree" ~count:30
    QCheck.(int_range 0 500)
    (fun seed ->
      let g = Generator.random ~seed ~n:30 ~m:70 in
      let mst = Mst.kruskal g in
      (* Build some spanning tree greedily in arbitrary edge order. *)
      let uf = Agp_util.Union_find.create g.Csr.n in
      let w = ref 0 in
      List.iter
        (fun (u, v, ew) -> if Agp_util.Union_find.union uf u v then w := !w + ew)
        (Csr.undirected_edges g);
      mst.Mst.weight <= !w)

let () =
  Alcotest.run "agp_graph"
    [
      ( "csr",
        [
          Alcotest.test_case "shape" `Quick test_csr_shape;
          Alcotest.test_case "neighbors sorted" `Quick test_csr_neighbors_sorted;
          Alcotest.test_case "directed" `Quick test_csr_directed;
          Alcotest.test_case "symmetry" `Quick test_csr_symmetric;
          Alcotest.test_case "validate" `Quick test_csr_validate;
          Alcotest.test_case "out of range" `Quick test_csr_out_of_range;
          Alcotest.test_case "undirected edges" `Quick test_csr_undirected_edges;
        ] );
      ( "generator",
        [
          Alcotest.test_case "road connected" `Quick test_road_connected;
          Alcotest.test_case "road high diameter" `Quick test_road_high_diameter;
          Alcotest.test_case "road low degree" `Quick test_road_low_degree;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "rmat skewed" `Quick test_rmat_skewed;
          qtest prop_generators_deterministic;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_dimacs_rejects_garbage;
          Alcotest.test_case "comments ok" `Quick test_dimacs_comments_ok;
          Alcotest.test_case "file roundtrip" `Quick test_dimacs_file_roundtrip;
          Alcotest.test_case "missing file" `Quick test_dimacs_missing_file;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "figure-2 levels" `Quick test_bfs_figure2;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "histogram" `Quick test_bfs_histogram;
          Alcotest.test_case "check accepts reference" `Quick test_bfs_check_accepts_reference;
          Alcotest.test_case "check rejects wrong" `Quick test_bfs_check_rejects_wrong;
          qtest prop_bfs_levels_edge_slack;
        ] );
      ( "sssp",
        [
          Alcotest.test_case "dijkstra triangle" `Quick test_dijkstra_triangle;
          Alcotest.test_case "bellman-ford matches" `Quick test_bellman_ford_matches_dijkstra;
          Alcotest.test_case "certificate accepts" `Quick test_sssp_check_accepts;
          Alcotest.test_case "certificate rejects" `Quick test_sssp_check_rejects;
          qtest prop_sssp_dijkstra_bellman_agree;
        ] );
      ( "mst",
        [
          Alcotest.test_case "triangle" `Quick test_mst_triangle;
          Alcotest.test_case "sorted edges" `Quick test_mst_sorted_edges;
          Alcotest.test_case "check accepts" `Quick test_mst_check_accepts;
          Alcotest.test_case "check rejects cycle" `Quick test_mst_check_rejects_cycle;
          Alcotest.test_case "disconnected forest" `Quick test_mst_disconnected;
          qtest prop_mst_weight_leq_any_tree;
        ] );
    ]
