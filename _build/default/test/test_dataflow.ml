(* Dedicated tests for the Boolean dataflow graph compiler. *)

module Bdfg = Agp_dataflow.Bdfg
module Spec = Agp_core.Spec

let check = Alcotest.check

let census g set kind_pred =
  List.length (List.filter (fun a -> kind_pred a.Bdfg.kind) (Bdfg.actors_of_set g set))

let test_bfs_actor_census () =
  let g = Bdfg.of_spec Agp_apps.Bfs_app.spec_speculative in
  (* update body: 2 loads, 1 alloc, 1 rendezvous, 1 event, 1 store,
     1 spawn, 2 switches, 2 aborts, 1 commit *)
  check Alcotest.int "loads" 2 (census g "update" (function Bdfg.Load_op _ -> true | _ -> false));
  check Alcotest.int "stores" 1 (census g "update" (function Bdfg.Store_op _ -> true | _ -> false));
  check Alcotest.int "allocs" 1
    (census g "update" (function Bdfg.Rule_alloc _ -> true | _ -> false));
  check Alcotest.int "rendezvous" 1 (census g "update" (fun k -> k = Bdfg.Rendezvous));
  check Alcotest.int "events" 1 (census g "update" (function Bdfg.Event _ -> true | _ -> false));
  check Alcotest.int "switches" 2 (census g "update" (fun k -> k = Bdfg.Switch));
  check Alcotest.int "squash sinks" 2 (census g "update" (fun k -> k = Bdfg.Squash));
  check Alcotest.int "commit sinks" 1 (census g "update" (fun k -> k = Bdfg.Commit));
  check Alcotest.int "spawns" 1 (census g "update" (function Bdfg.Spawn _ -> true | _ -> false))

let test_mst_respawn_sink () =
  let g = Bdfg.of_spec Agp_apps.Mst_app.spec_speculative in
  check Alcotest.bool "retry compiles to respawn" true
    (census g "addedge" (fun k -> k = Bdfg.Respawn) >= 1)

let test_entry_has_successor () =
  let g = Bdfg.of_spec Agp_apps.Sssp_app.spec_speculative in
  let entry =
    List.find (fun a -> a.Bdfg.kind = Bdfg.Entry) (Bdfg.actors_of_set g "relax")
  in
  check Alcotest.bool "entry feeds the pipeline" true (Bdfg.successors g entry.Bdfg.id <> [])

let test_depth_vs_stage_count () =
  List.iter
    (fun (sp : Spec.t) ->
      List.iter
        (fun ts ->
          let set = ts.Spec.ts_name in
          let g = Bdfg.of_spec sp in
          let d = Bdfg.depth g set and n = Bdfg.stage_count g set in
          if not (d >= 2 && d <= n + 2) then
            Alcotest.failf "%s/%s: depth %d vs stages %d out of range" sp.Spec.spec_name set d n)
        sp.Spec.task_sets)
    [
      Agp_apps.Bfs_app.spec_speculative;
      Agp_apps.Bfs_app.spec_coordinative;
      Agp_apps.Sssp_app.spec_speculative;
      Agp_apps.Mst_app.spec_speculative;
      Agp_apps.Dmr_app.spec_speculative;
      Agp_apps.Lu_app.spec_coordinative;
    ]

let test_depth_linear_body () =
  (* a straight-line body: depth = entry + ops + commit *)
  let sp : Spec.t =
    {
      spec_name = "line";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 1;
            body =
              [
                Spec.Let ("a", Spec.Param 0);
                Spec.Let ("b", Spec.Var "a");
                Spec.Let ("c", Spec.Var "b");
              ];
          };
        ];
      rules = [];
    }
  in
  let g = Bdfg.of_spec sp in
  check Alcotest.int "entry + 3 + commit" 5 (Bdfg.depth g "t")

let test_branch_merge_structure () =
  (* both branches fall through: a merge actor must join them *)
  let sp : Spec.t =
    {
      spec_name = "diamond";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 1;
            body =
              [
                Spec.If
                  ( Spec.Binop (Spec.Gt, Spec.Param 0, Spec.int 0),
                    [ Spec.Let ("x", Spec.int 1) ],
                    [ Spec.Let ("x", Spec.int 2) ] );
                Spec.Store ("cell", Spec.int 0, Spec.Var "x");
              ];
          };
        ];
      rules = [];
    }
  in
  let g = Bdfg.of_spec sp in
  check Alcotest.int "one merge" 1 (census g "t" (fun k -> k = Bdfg.Merge));
  check (Alcotest.result Alcotest.unit Alcotest.string) "valid" (Ok ()) (Bdfg.validate g)

let test_sink_branches_no_merge () =
  (* else-branch aborts: no merge is needed *)
  let sp : Spec.t =
    {
      spec_name = "one-sided";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 1;
            body =
              [
                Spec.If
                  (Spec.Binop (Spec.Gt, Spec.Param 0, Spec.int 0), [], [ Spec.Abort ]);
                Spec.Store ("cell", Spec.int 0, Spec.Param 0);
              ];
          };
        ];
      rules = [];
    }
  in
  let g = Bdfg.of_spec sp in
  check Alcotest.int "no merge" 0 (census g "t" (fun k -> k = Bdfg.Merge));
  check Alcotest.int "one squash" 1 (census g "t" (fun k -> k = Bdfg.Squash))

let test_dot_mentions_every_set () =
  let g = Bdfg.of_spec Agp_apps.Bfs_app.spec_speculative in
  let dot = Bdfg.to_dot g in
  let has sub =
    let n = String.length sub and m = String.length dot in
    let rec loop i = i + n <= m && (String.sub dot i n = sub || loop (i + 1)) in
    loop 0
  in
  check Alcotest.bool "visit cluster" true (has "\"visit\"");
  check Alcotest.bool "update cluster" true (has "\"update\"");
  check Alcotest.bool "labelled branches" true (has "[label=\"T\"]")

let () =
  Alcotest.run "agp_dataflow"
    [
      ( "bdfg",
        [
          Alcotest.test_case "bfs actor census" `Quick test_bfs_actor_census;
          Alcotest.test_case "mst respawn sink" `Quick test_mst_respawn_sink;
          Alcotest.test_case "entry connected" `Quick test_entry_has_successor;
          Alcotest.test_case "depth within bounds" `Quick test_depth_vs_stage_count;
          Alcotest.test_case "depth linear body" `Quick test_depth_linear_body;
          Alcotest.test_case "branch merge" `Quick test_branch_merge_structure;
          Alcotest.test_case "sink branches" `Quick test_sink_branches_no_merge;
          Alcotest.test_case "dot clusters" `Quick test_dot_mentions_every_set;
        ] );
    ]
