(* Unit and property tests for the Delaunay mesh substrate. *)

open Agp_geometry

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let feq = Alcotest.float 1e-6

(* --- predicates --- *)

let test_orient2d () =
  check Alcotest.bool "ccw" true (Predicates.ccw (0.0, 0.0) (1.0, 0.0) (0.0, 1.0));
  check Alcotest.bool "cw" false (Predicates.ccw (0.0, 0.0) (0.0, 1.0) (1.0, 0.0));
  check feq "collinear" 0.0 (Predicates.orient2d (0.0, 0.0) (1.0, 1.0) (2.0, 2.0))

let test_in_circle () =
  let a = (0.0, 0.0) and b = (2.0, 0.0) and c = (0.0, 2.0) in
  check Alcotest.bool "center inside" true (Predicates.in_circle a b c (1.0, 1.0));
  check Alcotest.bool "far point outside" false (Predicates.in_circle a b c (10.0, 10.0));
  check Alcotest.bool "on circle is not inside" false (Predicates.in_circle a b c (2.0, 2.0))

let test_circumcenter () =
  let cx, cy = Predicates.circumcenter (0.0, 0.0) (2.0, 0.0) (0.0, 2.0) in
  check feq "cx" 1.0 cx;
  check feq "cy" 1.0 cy;
  check feq "radius" (sqrt 2.0) (Predicates.circumradius (0.0, 0.0) (2.0, 0.0) (0.0, 2.0))

let test_angles_and_area () =
  let a = (0.0, 0.0) and b = (1.0, 0.0) and c = (0.0, 1.0) in
  check feq "right isoceles min angle" 45.0 (Predicates.triangle_min_angle a b c);
  check feq "area" 0.5 (Predicates.triangle_area a b c);
  check feq "shortest edge" 1.0 (Predicates.shortest_edge a b c)

let test_equilateral_angle () =
  let a = (0.0, 0.0) and b = (1.0, 0.0) and c = (0.5, sqrt 3.0 /. 2.0) in
  check (Alcotest.float 1e-4) "equilateral 60" 60.0 (Predicates.triangle_min_angle a b c)

let prop_orient_antisymmetric =
  QCheck.Test.make ~name:"orient2d antisymmetric under swap" ~count:300
    QCheck.(triple (pair (float_range 0. 10.) (float_range 0. 10.))
              (pair (float_range 0. 10.) (float_range 0. 10.))
              (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun (a, b, c) ->
      let o1 = Predicates.orient2d a b c and o2 = Predicates.orient2d a c b in
      (o1 = 0.0 && o2 = 0.0) || (o1 > 0.0) <> (o2 > 0.0))

let prop_circumcenter_equidistant =
  QCheck.Test.make ~name:"circumcenter equidistant from corners" ~count:200
    QCheck.(triple (pair (float_range 0. 10.) (float_range 0. 10.))
              (pair (float_range 0. 10.) (float_range 0. 10.))
              (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun (a, b, c) ->
      QCheck.assume (Float.abs (Predicates.orient2d a b c) > 0.5);
      let o = Predicates.circumcenter a b c in
      let da = Predicates.dist o a and db = Predicates.dist o b and dc = Predicates.dist o c in
      Float.abs (da -. db) < 1e-6 && Float.abs (da -. dc) < 1e-6)

(* --- mesh --- *)

let ok_result = Alcotest.result Alcotest.unit Alcotest.string

let two_triangle_mesh () =
  (* A unit square split along the diagonal. *)
  let m = Mesh.create [| (0.0, 0.0); (1.0, 0.0); (1.0, 1.0); (0.0, 1.0) |] in
  let t0 = Mesh.add_triangle m 0 1 2 in
  let t1 = Mesh.add_triangle m 0 2 3 in
  Mesh.link m t0 t1;
  (m, t0, t1)

let test_mesh_ccw_normalization () =
  let m = Mesh.create [| (0.0, 0.0); (1.0, 0.0); (0.0, 1.0) |] in
  (* Given clockwise, stored counter-clockwise. *)
  let t = Mesh.add_triangle m 0 2 1 in
  let a, b, c = Mesh.vertices m t in
  check Alcotest.bool "ccw stored" true
    (Predicates.ccw (Mesh.point m a) (Mesh.point m b) (Mesh.point m c))

let test_mesh_link_symmetric () =
  let m, t0, t1 = two_triangle_mesh () in
  check ok_result "valid" (Ok ()) (Mesh.validate m);
  let k0 = Mesh.opposite_index m t0 t1 in
  let k1 = Mesh.opposite_index m t1 t0 in
  check Alcotest.int "t0 sees t1" t1 (Mesh.neighbor m t0 k0);
  check Alcotest.int "t1 sees t0" t0 (Mesh.neighbor m t1 k1)

let test_mesh_link_rejects_disjoint () =
  let m = Mesh.create [| (0.0, 0.0); (1.0, 0.0); (0.0, 1.0); (5.0, 5.0); (6.0, 5.0); (5.0, 6.0) |] in
  let t0 = Mesh.add_triangle m 0 1 2 in
  let t1 = Mesh.add_triangle m 3 4 5 in
  Alcotest.check_raises "no shared edge" (Invalid_argument "Mesh.link: triangles share no edge")
    (fun () -> Mesh.link m t0 t1)

let test_mesh_kill () =
  let m, t0, _ = two_triangle_mesh () in
  Mesh.kill m t0;
  check Alcotest.bool "dead" false (Mesh.alive m t0);
  check Alcotest.int "one live" 1 (Mesh.num_live m)

let test_mesh_contains () =
  let m, t0, t1 = two_triangle_mesh () in
  check Alcotest.bool "inside t0" true (Mesh.contains m t0 (0.7, 0.2));
  check Alcotest.bool "not inside t0" false (Mesh.contains m t0 (0.2, 0.7));
  check Alcotest.bool "inside t1" true (Mesh.contains m t1 (0.2, 0.7))

(* --- delaunay --- *)

let random_points seed n =
  Agp_graph.Generator.points ~seed ~n ~span:100.0

let test_triangulate_small () =
  let t = Delaunay.triangulate (random_points 1 30) in
  check ok_result "mesh valid" (Ok ()) (Mesh.validate t.Delaunay.mesh);
  check Alcotest.int "no violations" 0 (Delaunay.delaunay_violations t)

let test_triangulate_euler () =
  (* With the bounding square retained, every input point is interior,
     so the triangulation of n+4 points has exactly 2*(n+4) - 2 - 4 =
     2n+2 triangles (Euler's formula with a 4-vertex hull). *)
  let n = 40 in
  let t = Delaunay.triangulate (random_points 2 n) in
  check Alcotest.int "euler count" ((2 * n) + 2) (Mesh.num_live t.Delaunay.mesh)

let test_locate_finds_containing () =
  let t = Delaunay.triangulate (random_points 3 50) in
  let mesh = t.Delaunay.mesh in
  let hint = List.hd (Mesh.live_triangles mesh) in
  List.iter
    (fun p ->
      match Delaunay.locate mesh ~hint p with
      | None -> Alcotest.fail "point not located"
      | Some tri -> check Alcotest.bool "contains" true (Mesh.contains mesh tri p))
    [ (10.0, 10.0); (50.0, 50.0); (90.0, 5.0) ]

let test_locate_outside () =
  let t = Delaunay.triangulate (random_points 4 10) in
  let mesh = t.Delaunay.mesh in
  let hint = List.hd (Mesh.live_triangles mesh) in
  check Alcotest.bool "far point escapes hull" true
    (Delaunay.locate mesh ~hint (1.0e7, 1.0e7) = None)

let test_insert_point_updates () =
  let t = Delaunay.triangulate (random_points 5 20) in
  let mesh = t.Delaunay.mesh in
  let before = Mesh.num_live mesh in
  let hint = List.hd (Mesh.live_triangles mesh) in
  match Delaunay.insert_point mesh ~hint (42.0, 43.0) with
  | None -> Alcotest.fail "insert failed"
  | Some (_, killed, created) ->
      check Alcotest.bool "cavity nonempty" true (List.length killed >= 1);
      (* Star retriangulation: k cavity triangles are replaced by k+2. *)
      check Alcotest.int "created = killed + 2" (List.length killed + 2) (List.length created);
      check Alcotest.int "net +2" (before + 2) (Mesh.num_live mesh);
      check ok_result "still valid" (Ok ()) (Mesh.validate mesh)

let prop_triangulation_valid_delaunay =
  QCheck.Test.make ~name:"random triangulations are valid delaunay" ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let n = 10 + (seed mod 40) in
      let t = Delaunay.triangulate (random_points seed n) in
      Mesh.validate t.Delaunay.mesh = Ok () && Delaunay.delaunay_violations t = 0)

(* --- refinement --- *)

let test_refinement_removes_bad () =
  let t = Delaunay.triangulate (random_points 6 60) in
  let cfg = Refinement.default_config in
  let before = List.length (Refinement.bad_triangles cfg t) in
  check Alcotest.bool "has bad triangles initially" true (before > 0);
  let stats = Refinement.refine_with_stats cfg t in
  check Alcotest.int "initial count recorded" before stats.Refinement.initial_bad;
  check (Alcotest.list Alcotest.int) "no bad triangles remain" [] (Refinement.bad_triangles cfg t);
  check ok_result "mesh still valid" (Ok ()) (Mesh.validate t.Delaunay.mesh);
  check Alcotest.bool "quality bound reached" true
    (stats.Refinement.min_angle_after >= cfg.Refinement.min_angle)

let test_refine_one_skips_good () =
  let t = Delaunay.triangulate (random_points 7 30) in
  let cfg = Refinement.default_config in
  let good =
    List.find
      (fun tri -> not (Refinement.is_bad cfg t tri))
      (Mesh.live_triangles t.Delaunay.mesh)
  in
  check Alcotest.bool "good triangle not refined" true (Refinement.refine_one cfg t good = None)

let test_refine_one_step_shape () =
  let t = Delaunay.triangulate (random_points 8 60) in
  let cfg = Refinement.default_config in
  match Refinement.bad_triangles cfg t with
  | [] -> Alcotest.fail "expected a bad triangle"
  | tri :: _ -> begin
      match Refinement.refine_one cfg t tri with
      | None -> Alcotest.fail "refinement step failed"
      | Some step ->
          check Alcotest.bool "victim killed" false (Mesh.alive t.Delaunay.mesh tri);
          check Alcotest.bool "cavity contains victim" true (List.mem tri step.Refinement.killed);
          (* Interior circumcenter insertions replace k cavity triangles
             with k+2; boundary fallbacks may differ, but always create
             at least one triangle per kill. *)
          check Alcotest.bool "star shape" true
            (List.length step.Refinement.created >= List.length step.Refinement.killed + 1)
    end

let total_live_area (t : Delaunay.t) =
  List.fold_left
    (fun acc tri ->
      let a, b, c = Mesh.vertices t.Delaunay.mesh tri in
      acc
      +. Predicates.triangle_area (Mesh.point t.Delaunay.mesh a) (Mesh.point t.Delaunay.mesh b)
           (Mesh.point t.Delaunay.mesh c))
    0.0
    (Mesh.live_triangles t.Delaunay.mesh)

let enclosure_area (t : Delaunay.t) =
  match t.Delaunay.enclosure with
  | [ a; _; c; _ ] ->
      let ax, ay = Mesh.point t.Delaunay.mesh a and cx, cy = Mesh.point t.Delaunay.mesh c in
      Float.abs ((cx -. ax) *. (cy -. ay))
  | _ -> Alcotest.fail "expected four enclosure corners"

let test_area_conserved_by_triangulation () =
  let t = Delaunay.triangulate (random_points 21 50) in
  let rel = Float.abs (total_live_area t -. enclosure_area t) /. enclosure_area t in
  check Alcotest.bool "triangles tile the square" true (rel < 1e-8)

let prop_area_conserved_by_refinement =
  (* every cavity retriangulation replaces a region with a retiling of
     the same region: total live area is invariant *)
  QCheck.Test.make ~name:"refinement conserves total area" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let t = Delaunay.triangulate (random_points seed 40) in
      let before = total_live_area t in
      ignore (Refinement.refine Refinement.default_config t);
      Float.abs (total_live_area t -. before) /. before < 1e-6)

let prop_refinement_monotone_triangles =
  QCheck.Test.make ~name:"refinement only adds triangles" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let t = Delaunay.triangulate (random_points seed 30) in
      let before = Mesh.num_live t.Delaunay.mesh in
      ignore (Refinement.refine Refinement.default_config t);
      Mesh.num_live t.Delaunay.mesh >= before)

let prop_refinement_terminates_clean =
  QCheck.Test.make ~name:"refinement reaches zero bad triangles" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let t = Delaunay.triangulate (random_points seed 40) in
      let cfg = Refinement.default_config in
      ignore (Refinement.refine cfg t);
      Refinement.bad_triangles cfg t = [] && Mesh.validate t.Delaunay.mesh = Ok ())

let () =
  Alcotest.run "agp_geometry"
    [
      ( "predicates",
        [
          Alcotest.test_case "orient2d" `Quick test_orient2d;
          Alcotest.test_case "in_circle" `Quick test_in_circle;
          Alcotest.test_case "circumcenter" `Quick test_circumcenter;
          Alcotest.test_case "angles and area" `Quick test_angles_and_area;
          Alcotest.test_case "equilateral" `Quick test_equilateral_angle;
          qtest prop_orient_antisymmetric;
          qtest prop_circumcenter_equidistant;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "ccw normalization" `Quick test_mesh_ccw_normalization;
          Alcotest.test_case "link symmetric" `Quick test_mesh_link_symmetric;
          Alcotest.test_case "link rejects disjoint" `Quick test_mesh_link_rejects_disjoint;
          Alcotest.test_case "kill" `Quick test_mesh_kill;
          Alcotest.test_case "contains" `Quick test_mesh_contains;
        ] );
      ( "delaunay",
        [
          Alcotest.test_case "triangulate small" `Quick test_triangulate_small;
          Alcotest.test_case "euler count" `Quick test_triangulate_euler;
          Alcotest.test_case "locate containing" `Quick test_locate_finds_containing;
          Alcotest.test_case "locate outside" `Quick test_locate_outside;
          Alcotest.test_case "insert point" `Quick test_insert_point_updates;
          qtest prop_triangulation_valid_delaunay;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "removes bad triangles" `Quick test_refinement_removes_bad;
          Alcotest.test_case "area conserved by triangulation" `Quick
            test_area_conserved_by_triangulation;
          qtest prop_area_conserved_by_refinement;
          qtest prop_refinement_monotone_triangles;
          Alcotest.test_case "skips good" `Quick test_refine_one_skips_good;
          Alcotest.test_case "step shape" `Quick test_refine_one_step_shape;
          qtest prop_refinement_terminates_clean;
        ] );
    ]
