(* Tests for the software-baseline timing models. *)

module Cpu_model = Agp_baseline.Cpu_model
module Opencl_model = Agp_baseline.Opencl_model
module Workloads = Agp_exp.Workloads

let check = Alcotest.check

let bfs_app () = Workloads.spec_bfs Workloads.Small ~seed:42

let test_cpu_model_runs () =
  let r = Cpu_model.run (bfs_app ()) in
  check Alcotest.bool "positive 1-core time" true (r.Cpu_model.seconds_1core > 0.0);
  check Alcotest.bool "positive 10-core time" true (r.Cpu_model.seconds_10core > 0.0);
  check Alcotest.bool "tasks counted" true (r.Cpu_model.tasks > 100);
  check Alcotest.bool "accesses traced" true (r.Cpu_model.accesses > r.Cpu_model.tasks)

let test_cpu_model_parallel_faster () =
  let r = Cpu_model.run (bfs_app ()) in
  check Alcotest.bool "10 cores beat 1 core" true
    (r.Cpu_model.seconds_10core < r.Cpu_model.seconds_1core);
  check Alcotest.bool "but not superlinearly" true
    (r.Cpu_model.seconds_1core /. r.Cpu_model.seconds_10core < 11.0)

let test_cpu_model_deterministic () =
  let a = Cpu_model.run (bfs_app ()) and b = Cpu_model.run (bfs_app ()) in
  check (Alcotest.float 1e-12) "same 1-core" a.Cpu_model.seconds_1core b.Cpu_model.seconds_1core;
  check (Alcotest.float 1e-12) "same 10-core" a.Cpu_model.seconds_10core
    b.Cpu_model.seconds_10core

let test_cpu_model_more_work_more_time () =
  let small = Cpu_model.run (bfs_app ()) in
  let bigger =
    Cpu_model.run
      (Agp_apps.Bfs_app.speculative
         { graph = Agp_graph.Generator.road ~seed:42 ~width:80 ~height:50; root = 0 })
  in
  check Alcotest.bool "bigger graph costs more" true
    (bigger.Cpu_model.seconds_1core > small.Cpu_model.seconds_1core)

let test_cpu_model_l1_behaviour () =
  let r = Cpu_model.run (bfs_app ()) in
  check Alcotest.bool "l1 hit rate sane" true
    (r.Cpu_model.l1_hit_rate > 0.1 && r.Cpu_model.l1_hit_rate <= 1.0)

let test_opencl_rounds_follow_depth () =
  let g = Agp_graph.Generator.road ~seed:3 ~width:30 ~height:10 in
  let depth = Agp_graph.Bfs.diameter_from g 0 in
  let r = Opencl_model.run_bfs g 0 in
  check Alcotest.int "one round per level" (depth + 1) r.Opencl_model.rounds;
  check Alcotest.int "two launches per round" (2 * r.Opencl_model.rounds)
    r.Opencl_model.kernel_launches

let test_opencl_dominated_by_rounds () =
  (* Two graphs with equal vertex count: the deeper one must cost more
     (host round trips dominate on high-diameter inputs — the Table 1
     mechanism). *)
  let deep = Agp_graph.Generator.road ~seed:4 ~width:300 ~height:2 in
  let shallow = Agp_graph.Generator.random ~seed:4 ~n:600 ~m:1800 in
  let rd = Opencl_model.run_bfs deep 0 and rs = Opencl_model.run_bfs shallow 0 in
  check Alcotest.bool "deep graph slower" true (rd.Opencl_model.seconds > rs.Opencl_model.seconds)

let test_opencl_vs_accelerator_gap () =
  (* the Table 1 claim at test scale: the OpenCL model is at least an
     order of magnitude behind the generated accelerator *)
  let g = Workloads.bfs_graph Workloads.Small ~seed:42 in
  let opencl = Opencl_model.run_bfs g 0 in
  let app = Workloads.spec_bfs Workloads.Small ~seed:42 in
  let run = app.Agp_apps.App_instance.fresh () in
  let hw =
    Agp_hw.Accelerator.run ~spec:app.Agp_apps.App_instance.spec
      ~bindings:run.Agp_apps.App_instance.bindings ~state:run.Agp_apps.App_instance.state
      ~initial:run.Agp_apps.App_instance.initial ()
  in
  check Alcotest.bool "at least 10x gap" true
    (opencl.Opencl_model.seconds /. hw.Agp_hw.Accelerator.seconds > 10.0)

let () =
  Alcotest.run "agp_baseline"
    [
      ( "cpu_model",
        [
          Alcotest.test_case "runs" `Quick test_cpu_model_runs;
          Alcotest.test_case "parallel faster" `Quick test_cpu_model_parallel_faster;
          Alcotest.test_case "deterministic" `Quick test_cpu_model_deterministic;
          Alcotest.test_case "monotone in work" `Quick test_cpu_model_more_work_more_time;
          Alcotest.test_case "l1 behaviour" `Quick test_cpu_model_l1_behaviour;
        ] );
      ( "opencl_model",
        [
          Alcotest.test_case "rounds follow depth" `Quick test_opencl_rounds_follow_depth;
          Alcotest.test_case "dominated by rounds" `Quick test_opencl_dominated_by_rounds;
          Alcotest.test_case "gap vs accelerator" `Quick test_opencl_vs_accelerator_gap;
        ] );
    ]
