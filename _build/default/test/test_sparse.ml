(* Unit and property tests for the sparse LU substrate. *)

open Agp_sparse
module Rng = Agp_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- dense blocks --- *)

let test_block_identity_matmul () =
  let bs = 4 in
  let rng = Rng.create 1 in
  let a = Dense_block.random rng bs in
  let i = Dense_block.identity bs in
  check (Alcotest.array (Alcotest.float 1e-12)) "a*I = a" a (Dense_block.matmul a i bs);
  check (Alcotest.array (Alcotest.float 1e-12)) "I*a = a" a (Dense_block.matmul i a bs)

let test_block_lu0_reconstructs () =
  let bs = 5 in
  let rng = Rng.create 2 in
  let a = Dense_block.random rng bs in
  let f = Dense_block.copy a in
  Dense_block.lu0 f bs;
  let l, u = Dense_block.split_lu f bs in
  let recon = Dense_block.matmul l u bs in
  let diff = Dense_block.max_abs (Dense_block.sub a recon bs) in
  check Alcotest.bool "LU reconstructs A" true (diff < 1e-9)

let test_block_fwd_solves () =
  let bs = 4 in
  let rng = Rng.create 3 in
  let diag = Dense_block.random rng bs in
  Dense_block.lu0 diag bs;
  let l, _ = Dense_block.split_lu diag bs in
  let b = Dense_block.random rng bs in
  let x = Dense_block.copy b in
  Dense_block.fwd ~diag x bs;
  (* L x should equal b *)
  let lx = Dense_block.matmul l x bs in
  check Alcotest.bool "fwd solves L x = b" true
    (Dense_block.max_abs (Dense_block.sub lx b bs) < 1e-9)

let test_block_bdiv_solves () =
  let bs = 4 in
  let rng = Rng.create 4 in
  let diag = Dense_block.random rng bs in
  Dense_block.lu0 diag bs;
  let _, u = Dense_block.split_lu diag bs in
  let b = Dense_block.random rng bs in
  let x = Dense_block.copy b in
  Dense_block.bdiv ~diag x bs;
  let xu = Dense_block.matmul x u bs in
  check Alcotest.bool "bdiv solves x U = b" true
    (Dense_block.max_abs (Dense_block.sub xu b bs) < 1e-9)

let test_block_bmod () =
  let bs = 3 in
  let rng = Rng.create 5 in
  let row = Dense_block.random rng bs in
  let col = Dense_block.random rng bs in
  let b = Dense_block.random rng bs in
  let expect = Dense_block.sub b (Dense_block.matmul row col bs) bs in
  let got = Dense_block.copy b in
  Dense_block.bmod ~row ~col got bs;
  check Alcotest.bool "bmod = b - row*col" true
    (Dense_block.max_abs (Dense_block.sub expect got bs) < 1e-9)

(* --- block matrix --- *)

let test_block_matrix_shape () =
  let m = Block_matrix.random_sparse ~seed:6 ~nb:6 ~bs:4 ~density:0.3 in
  check Alcotest.bool "diagonal always present" true
    (List.for_all (fun k -> Block_matrix.present m k k) [ 0; 1; 2; 3; 4; 5 ]);
  check Alcotest.bool "sparse" true (Block_matrix.num_present m < 36)

let test_block_matrix_ensure () =
  let m = Block_matrix.create ~nb:2 ~bs:2 in
  check Alcotest.bool "absent" false (Block_matrix.present m 0 1);
  let b = Block_matrix.ensure m 0 1 in
  check Alcotest.bool "allocated zero" true (Dense_block.max_abs b = 0.0);
  check Alcotest.bool "now present" true (Block_matrix.present m 0 1);
  let b' = Block_matrix.ensure m 0 1 in
  check Alcotest.bool "same block returned" true (b == b')

let test_block_matrix_copy_deep () =
  let m = Block_matrix.random_sparse ~seed:7 ~nb:3 ~bs:2 ~density:0.5 in
  let c = Block_matrix.copy m in
  (match Block_matrix.get c 0 0 with
  | Some b -> Dense_block.set b 2 0 0 999.0
  | None -> Alcotest.fail "diagonal missing");
  match Block_matrix.get m 0 0 with
  | Some b -> check Alcotest.bool "original untouched" true (Dense_block.get b 2 0 0 <> 999.0)
  | None -> Alcotest.fail "diagonal missing"

let test_block_matrix_out_of_range () =
  let m = Block_matrix.create ~nb:2 ~bs:2 in
  Alcotest.check_raises "oob" (Invalid_argument "Block_matrix: block out of range") (fun () ->
      ignore (Block_matrix.get m 2 0))

(* --- sparse LU --- *)

let test_symbolic_fillin () =
  (* A[1][0] and A[0][1] present => fill-in at A[1][1]... already present.
     Craft: A[2][0], A[0][1] => fill at (2,1). *)
  let m = Block_matrix.create ~nb:3 ~bs:2 in
  let rng = Rng.create 8 in
  List.iter
    (fun (i, j) -> Block_matrix.set m i j (Dense_block.random rng 2))
    [ (0, 0); (1, 1); (2, 2); (2, 0); (0, 1) ];
  let p = Sparse_lu.symbolic m in
  check Alcotest.bool "fill-in (2,1)" true p.(2).(1);
  check Alcotest.bool "no fill-in (1,0)" false p.(1).(0)

let test_tasks_order_and_count () =
  let m = Block_matrix.random_sparse ~seed:9 ~nb:4 ~bs:2 ~density:0.4 in
  let ts = Sparse_lu.tasks m in
  (* First task factors the first pivot; every k appears exactly once as Lu0. *)
  (match ts with
  | Sparse_lu.Lu0 0 :: _ -> ()
  | _ -> Alcotest.fail "first task must be lu0(0)");
  let lu0s = List.filter (function Sparse_lu.Lu0 _ -> true | _ -> false) ts in
  check Alcotest.int "one lu0 per pivot" 4 (List.length lu0s)

let test_factorize_residual () =
  let m = Block_matrix.random_sparse ~seed:10 ~nb:5 ~bs:4 ~density:0.3 in
  let f = Block_matrix.copy m in
  let n_tasks = Sparse_lu.factorize f in
  check Alcotest.bool "did work" true (n_tasks >= 5);
  let r = Sparse_lu.residual ~original:m ~factored:f in
  check Alcotest.bool "small residual" true (r < 1e-8)

let test_task_list_equals_factorize () =
  let m = Block_matrix.random_sparse ~seed:11 ~nb:4 ~bs:3 ~density:0.35 in
  let f1 = Block_matrix.copy m in
  ignore (Sparse_lu.factorize f1);
  let f2 = Block_matrix.copy m in
  List.iter (Sparse_lu.run_task f2) (Sparse_lu.tasks m);
  check (Alcotest.float 1e-12) "same result" 0.0 (Block_matrix.max_abs_diff f1 f2)

let test_dependencies_sound () =
  (* Fully dense so every dependence class is exercised (lu0(1) is then
     guaranteed to depend on bmod(1,1,0)). *)
  let m = Block_matrix.random_sparse ~seed:12 ~nb:4 ~bs:2 ~density:1.0 in
  let deps = Sparse_lu.dependencies m in
  let order = Sparse_lu.tasks m in
  let pos t =
    let rec find i = function
      | [] -> Alcotest.failf "task %s missing" (Sparse_lu.task_to_string t)
      | x :: _ when x = t -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 order
  in
  List.iter
    (fun (t, ds) -> List.iter (fun d -> Alcotest.(check bool) "dep earlier" true (pos d < pos t)) ds)
    deps;
  (* lu0(k>0) must depend on something (the bmods that updated its block). *)
  let lu1_deps = List.assoc (Sparse_lu.Lu0 1) deps in
  check Alcotest.bool "lu0(1) has deps" true (List.length lu1_deps >= 1)

let test_dependency_respecting_shuffle_ok () =
  (* Executing tasks in any dependency-respecting order must give the
     same factors: run a reversed-within-k greedy topological order. *)
  let m = Block_matrix.random_sparse ~seed:13 ~nb:4 ~bs:2 ~density:0.4 in
  let deps = Sparse_lu.dependencies m in
  let remaining = ref (List.map fst deps) in
  let done_tbl = Hashtbl.create 16 in
  let f = Block_matrix.copy m in
  let rng = Rng.create 99 in
  while !remaining <> [] do
    let ready =
      List.filter
        (fun t ->
          let ds = List.assoc t deps in
          List.for_all (Hashtbl.mem done_tbl) ds)
        !remaining
    in
    if ready = [] then Alcotest.fail "deadlock: dependency list not well-founded";
    let choice = Rng.pick rng (Array.of_list ready) in
    Sparse_lu.run_task f choice;
    Hashtbl.add done_tbl choice ();
    remaining := List.filter (fun t -> t <> choice) !remaining
  done;
  let reference = Block_matrix.copy m in
  ignore (Sparse_lu.factorize reference);
  check Alcotest.bool "same factors under reordering" true
    (Block_matrix.max_abs_diff f reference < 1e-9)

let prop_symbolic_monotone =
  QCheck.Test.make ~name:"symbolic fill-in only adds blocks" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 2 8))
    (fun (seed, nb) ->
      let m = Block_matrix.random_sparse ~seed ~nb ~bs:2 ~density:0.3 in
      let p = Sparse_lu.symbolic m in
      let ok = ref true in
      for i = 0 to nb - 1 do
        for j = 0 to nb - 1 do
          if Block_matrix.present m i j && not p.(i).(j) then ok := false
        done
      done;
      !ok)

let prop_task_count_matches_symbolic =
  QCheck.Test.make ~name:"task list size derives from symbolic presence" ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 2 6))
    (fun (seed, nb) ->
      let m = Block_matrix.random_sparse ~seed ~nb ~bs:2 ~density:0.4 in
      let p = Sparse_lu.symbolic m in
      let expected = ref 0 in
      for k = 0 to nb - 1 do
        incr expected;
        for j = k + 1 to nb - 1 do
          if p.(k).(j) then incr expected
        done;
        for i = k + 1 to nb - 1 do
          if p.(i).(k) then incr expected
        done;
        for i = k + 1 to nb - 1 do
          for j = k + 1 to nb - 1 do
            if p.(i).(k) && p.(k).(j) then incr expected
          done
        done
      done;
      List.length (Sparse_lu.tasks m) = !expected)

let test_sampled_residual_agrees () =
  let m = Block_matrix.random_sparse ~seed:33 ~nb:5 ~bs:4 ~density:0.3 in
  let f = Block_matrix.copy m in
  ignore (Sparse_lu.factorize f);
  let full = Sparse_lu.residual ~original:m ~factored:f in
  let sampled = Sparse_lu.sampled_residual ~seed:1 ~samples:50 ~original:m ~factored:f in
  check Alcotest.bool "both tiny" true (full < 1e-9 && sampled < 1e-9)

let test_sampled_residual_detects_corruption () =
  let m = Block_matrix.random_sparse ~seed:34 ~nb:4 ~bs:3 ~density:0.4 in
  let f = Block_matrix.copy m in
  ignore (Sparse_lu.factorize f);
  (match Block_matrix.get f 0 0 with
  | Some b -> Dense_block.set b 3 0 0 (1000.0 +. Dense_block.get b 3 0 0)
  | None -> Alcotest.fail "diagonal missing");
  check Alcotest.bool "corruption detected" true
    (Sparse_lu.sampled_residual ~seed:1 ~samples:20 ~original:m ~factored:f > 1.0e-3)

let prop_factorization_residual_small =
  QCheck.Test.make ~name:"random sparse LU has small residual" ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 2 6))
    (fun (seed, nb) ->
      let m = Block_matrix.random_sparse ~seed ~nb ~bs:3 ~density:0.3 in
      let f = Block_matrix.copy m in
      ignore (Sparse_lu.factorize f);
      Sparse_lu.residual ~original:m ~factored:f < 1e-7)

let () =
  Alcotest.run "agp_sparse"
    [
      ( "dense_block",
        [
          Alcotest.test_case "identity matmul" `Quick test_block_identity_matmul;
          Alcotest.test_case "lu0 reconstructs" `Quick test_block_lu0_reconstructs;
          Alcotest.test_case "fwd solves" `Quick test_block_fwd_solves;
          Alcotest.test_case "bdiv solves" `Quick test_block_bdiv_solves;
          Alcotest.test_case "bmod" `Quick test_block_bmod;
        ] );
      ( "block_matrix",
        [
          Alcotest.test_case "shape" `Quick test_block_matrix_shape;
          Alcotest.test_case "ensure" `Quick test_block_matrix_ensure;
          Alcotest.test_case "deep copy" `Quick test_block_matrix_copy_deep;
          Alcotest.test_case "out of range" `Quick test_block_matrix_out_of_range;
        ] );
      ( "sparse_lu",
        [
          Alcotest.test_case "symbolic fill-in" `Quick test_symbolic_fillin;
          Alcotest.test_case "task order and count" `Quick test_tasks_order_and_count;
          Alcotest.test_case "factorize residual" `Quick test_factorize_residual;
          Alcotest.test_case "task list = factorize" `Quick test_task_list_equals_factorize;
          Alcotest.test_case "dependencies sound" `Quick test_dependencies_sound;
          Alcotest.test_case "reordered execution ok" `Quick test_dependency_respecting_shuffle_ok;
          qtest prop_factorization_residual_small;
          qtest prop_symbolic_monotone;
          qtest prop_task_count_matches_symbolic;
          Alcotest.test_case "sampled residual agrees" `Quick test_sampled_residual_agrees;
          Alcotest.test_case "sampled residual detects corruption" `Quick
            test_sampled_residual_detects_corruption;
        ] );
    ]
