(* Unit tests for the core abstraction: values, indices, expressions,
   spec validation, engine semantics — plus BFS integration through both
   software interpreters. *)

open Agp_core
module Bfs_app = Agp_apps.Bfs_app
module App_instance = Agp_apps.App_instance

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Value --- *)

let test_value_conversions () =
  check Alcotest.int "to_int" 5 (Value.to_int (Value.Int 5));
  check (Alcotest.float 0.0) "widen" 5.0 (Value.to_float (Value.Int 5));
  check Alcotest.bool "to_bool" true (Value.to_bool (Value.Bool true));
  check Alcotest.bool "truthy int" true (Value.truthy (Value.Int 3));
  check Alcotest.bool "truthy zero" false (Value.truthy (Value.Int 0));
  Alcotest.check_raises "int of bool" (Invalid_argument "Value.to_int: true") (fun () ->
      ignore (Value.to_int (Value.Bool true)))

let test_value_equal () =
  check Alcotest.bool "int eq" true (Value.equal (Value.Int 1) (Value.Int 1));
  check Alcotest.bool "kind mismatch" false (Value.equal (Value.Int 1) (Value.Float 1.0))

(* --- Index --- *)

let test_index_lexicographic () =
  let i a = Index.of_array a in
  check Alcotest.bool "fewer wins" true (Index.compare (i [| 1; 0 |]) (i [| 2; 0 |]) < 0);
  check Alcotest.bool "second slot" true (Index.compare (i [| 1; 1 |]) (i [| 1; 2 |]) < 0);
  check Alcotest.bool "equal" true (Index.equal (i [| 3; 4 |]) (i [| 3; 4 |]))

let test_index_child () =
  let parent = Index.of_array [| 7; 3; 9 |] in
  let c = Index.child ~parent ~slot:1 ~stamp:5 in
  check (Alcotest.array Alcotest.int) "inherit left, stamp, reset right" [| 7; 5; 0 |]
    (Index.to_array c)

let prop_index_compare_total_order =
  QCheck.Test.make ~name:"index compare is antisymmetric" ~count:300
    QCheck.(pair (array_of_size (QCheck.Gen.return 3) (int_range 0 5))
              (array_of_size (QCheck.Gen.return 3) (int_range 0 5)))
    (fun (a, b) ->
      let ia = Index.of_array a and ib = Index.of_array b in
      compare (Index.compare ia ib) 0 = -compare (Index.compare ib ia) 0)

(* --- Interp --- *)

let test_interp_arith () =
  let e = Interp.eval_binop in
  check Alcotest.bool "int add" true (Value.equal (Value.Int 7) (e Spec.Add (Value.Int 3) (Value.Int 4)));
  check Alcotest.bool "promote" true
    (Value.equal (Value.Float 3.5) (e Spec.Add (Value.Int 3) (Value.Float 0.5)));
  check Alcotest.bool "min" true (Value.equal (Value.Int 2) (e Spec.Min (Value.Int 2) (Value.Int 5)));
  check Alcotest.bool "lt" true (Value.equal (Value.Bool true) (e Spec.Lt (Value.Int 1) (Value.Int 2)));
  Alcotest.check_raises "div by zero" (Invalid_argument "Interp: division by zero") (fun () ->
      ignore (e Spec.Div (Value.Int 1) (Value.Int 0)))

let test_interp_expr () =
  let env = Hashtbl.create 4 in
  Hashtbl.replace env "x" (Value.Int 10);
  let payload = [| Value.Int 2; Value.Int 3 |] in
  let v =
    Interp.eval_expr env payload Spec.(Binop (Add, Var "x", Binop (Mul, Param 0, Param 1)))
  in
  check Alcotest.bool "x + p0*p1" true (Value.equal (Value.Int 16) v);
  Alcotest.check_raises "unbound" (Invalid_argument "Interp: unbound variable y") (fun () ->
      ignore (Interp.eval_expr env payload (Spec.Var "y")))

let test_interp_cond () =
  let params = [| Value.Int 5; Value.Int 1; Value.Int 2 |] in
  let fields = [| Value.Int 5; Value.Int 9 |] in
  let run ?(earlier = false) c =
    Interp.eval_cond_strict ~params ~fields ~earlier ~later:(not earlier) c
  in
  check Alcotest.bool "field==param" true (run Spec.(CBinop (Eq, CField 0, CParam 0)));
  check Alcotest.bool "earlier gate" false
    (run Spec.(CBinop (And, CEarlier, CConst true)));
  check Alcotest.bool "earlier gate on" true
    (run ~earlier:true Spec.(CBinop (And, CEarlier, CConst true)));
  (* out-of-range probe fails the clause instead of raising *)
  check Alcotest.bool "oob probe" false (run Spec.(CBinop (Eq, CField 7, CParam 0)))

let test_interp_overlap () =
  let go params fields =
    Interp.eval_cond_strict
      ~params:(Array.of_list (List.map (fun n -> Value.Int n) params))
      ~fields:(Array.of_list (List.map (fun n -> Value.Int n) fields))
      ~earlier:false ~later:false (Spec.COverlap (1, 1))
  in
  check Alcotest.bool "overlap hit" true (go [ 0; 3; 4 ] [ 9; 4; 7 ]);
  check Alcotest.bool "overlap miss" false (go [ 0; 3; 4 ] [ 9; 5; 7 ]);
  check Alcotest.bool "empty tails" false (go [ 0 ] [ 9 ])

(* --- State --- *)

let test_state_rw () =
  let st = State.create () in
  State.add_int_array st "a" [| 1; 2; 3 |];
  State.add_float_array st "f" [| 0.5 |];
  check Alcotest.bool "read" true (Value.equal (Value.Int 2) (State.read st "a" 1));
  State.write st "a" 1 (Value.Int 9);
  check Alcotest.int "written" 9 (State.int_array st "a").(1);
  State.write st "f" 0 (Value.Int 2);
  check (Alcotest.float 0.0) "int->float widen" 2.0 (State.float_array st "f").(0);
  Alcotest.check_raises "oob" (Invalid_argument "State: a[5] out of bounds (length 3)")
    (fun () -> ignore (State.read st "a" 5))

let test_state_trace () =
  let st = State.create () in
  State.add_int_array st "a" [| 0; 0 |];
  ignore (State.read st "a" 0);
  check Alcotest.int "no trace until enabled" 0 (List.length (State.drain_trace st));
  State.set_tracing st true;
  ignore (State.read st "a" 1);
  State.write st "a" 0 (Value.Int 1);
  State.touch st "a" 1 true;
  let tr = State.drain_trace st in
  check Alcotest.int "three accesses" 3 (List.length tr);
  check Alcotest.bool "kinds" true
    (List.map (fun a -> a.State.is_write) tr = [ false; true; true ]);
  check Alcotest.int "drained" 0 (List.length (State.drain_trace st))

let test_state_layout_and_snapshot () =
  let st = State.create () in
  State.add_int_array st "a" [| 0; 0; 0 |];
  State.add_int_array st "b" [| 0 |];
  check Alcotest.int "a base" 0 (State.address_of st "a" 0);
  check Alcotest.int "b after a" 24 (State.address_of st "b" 0);
  let snap = State.snapshot st in
  State.write st "a" 0 (Value.Int 5);
  check Alcotest.bool "snapshot isolated" false (State.equal_content st snap);
  check Alcotest.bool "diff reports" true (List.length (State.diff st snap) = 1)

(* --- Spec validation --- *)

let trivial_set ?(body = []) name arity : Spec.task_set =
  { ts_name = name; ts_order = Spec.For_each; arity; body }

let test_validate_ok () =
  let sp : Spec.t =
    { spec_name = "ok"; task_sets = [ trivial_set "t" 1 ]; rules = [] }
  in
  check (Alcotest.result Alcotest.unit (Alcotest.list Alcotest.string)) "valid" (Ok ())
    (Spec.validate sp)

let expect_invalid sp needle =
  match Spec.validate sp with
  | Ok () -> Alcotest.failf "expected validation failure about %s" needle
  | Error es ->
      let found =
        List.exists
          (fun e ->
            let rec contains i =
              i + String.length needle <= String.length e
              && (String.sub e i (String.length needle) = needle || contains (i + 1))
            in
            contains 0)
          es
      in
      if not found then Alcotest.failf "no error mentioning %S in: %s" needle (String.concat "; " es)

let test_validate_bad_push () =
  expect_invalid
    { spec_name = "x"; task_sets = [ trivial_set ~body:[ Spec.Push ("nope", []) ] "t" 0 ]; rules = [] }
    "unknown task set";
  expect_invalid
    {
      spec_name = "x";
      task_sets =
        [ trivial_set ~body:[ Spec.Push ("t", [ Spec.int 1; Spec.int 2 ]) ] "t" 1 ];
      rules = [];
    }
    "expected 1"

let test_validate_await_without_alloc () =
  expect_invalid
    { spec_name = "x"; task_sets = [ trivial_set ~body:[ Spec.Await ("ok", "h") ] "t" 0 ]; rules = [] }
    "no preceding Alloc"

let test_validate_param_range () =
  expect_invalid
    { spec_name = "x"; task_sets = [ trivial_set ~body:[ Spec.Let ("v", Spec.Param 3) ] "t" 1 ]; rules = [] }
    "out of range"

let test_validate_duplicate_sets () =
  expect_invalid
    { spec_name = "x"; task_sets = [ trivial_set "t" 0; trivial_set "t" 0 ]; rules = [] }
    "duplicate task set"

let test_validate_counted_rules () =
  let rule clauses counted : Spec.rule =
    {
      rule_name = "r";
      n_params = 0;
      clauses;
      otherwise = true;
      scope = Spec.Min_waiting;
      counted;
    }
  in
  expect_invalid
    { spec_name = "x"; task_sets = [ trivial_set "t" 0 ]; rules = [ rule [] true ] }
    "no Decrement";
  expect_invalid
    {
      spec_name = "x";
      task_sets = [ trivial_set "t" 0 ];
      rules =
        [
          rule
            [ { on = Spec.On_activated "t"; condition = Spec.CConst true; action = Spec.Decrement } ]
            false;
        ];
    }
    "Decrement clause in uncounted rule"

(* --- Engine on a toy counter spec --- *)

(* One task set: "inc" tasks add their payload into cell 0 and push a
   child until payload reaches 0 — exercises push indexing and state. *)
let counter_spec : Spec.t =
  let open Spec in
  {
    spec_name = "counter";
    task_sets =
      [
        {
          ts_name = "inc";
          ts_order = For_each;
          arity = 1;
          body =
            [
              Load ("acc", "cell", int 0);
              Store ("cell", int 0, Binop (Add, Var "acc", Param 0));
              If
                ( Binop (Gt, Param 0, int 1),
                  [ Push ("inc", [ Binop (Sub, Param 0, int 1) ]) ],
                  [] );
            ];
        };
      ];
    rules = [];
  }

let counter_state () =
  let st = State.create () in
  State.add_int_array st "cell" [| 0 |];
  st

let test_sequential_counter () =
  let st = counter_state () in
  let report =
    Sequential.run ~initial:[ ("inc", [ Value.Int 4 ]) ] counter_spec Spec.no_bindings st
  in
  (* 4 + 3 + 2 + 1 *)
  check Alcotest.int "sum" 10 (State.int_array st "cell").(0);
  check Alcotest.int "tasks" 4 report.Sequential.tasks_run;
  check Alcotest.int "committed" 4 report.Sequential.stats.Engine.committed

let test_runtime_counter_matches () =
  let st = counter_state () in
  let report =
    Runtime.run ~initial:[ ("inc", [ Value.Int 6 ]) ] ~workers:4 counter_spec Spec.no_bindings st
  in
  check Alcotest.int "sum" 21 (State.int_array st "cell").(0);
  check Alcotest.bool "avg busy in (0, workers]" true
    (report.Runtime.avg_busy > 0.0 && report.Runtime.avg_busy <= 4.0)

let test_engine_rejects_invalid_spec () =
  let bad : Spec.t =
    { spec_name = "bad"; task_sets = [ trivial_set ~body:[ Spec.Await ("o", "h") ] "t" 0 ]; rules = [] }
  in
  check Alcotest.bool "raises" true
    (try
       ignore (Sequential.run bad Spec.no_bindings (State.create ()));
       false
     with Invalid_argument _ -> true)

(* --- Engine rules: a tiny speculative exclusive-write spec --- *)

(* Two writer tasks race to claim cell 0; the rule squashes the later
   one, so exactly the earlier task's payload lands. *)
let claim_spec : Spec.t =
  let open Spec in
  {
    spec_name = "claim";
    task_sets =
      [
        {
          ts_name = "writer";
          ts_order = For_each;
          arity = 1;
          body =
            [
              Alloc ("h", "guard", []);
              Await ("ok", "h");
              If
                ( Var "ok",
                  [ Emit ("claimed", []); Store ("cell", int 0, Param 0) ],
                  [ Abort ] );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "guard";
          n_params = 0;
          clauses =
            [
              {
                on = On_reached ("writer", "claimed");
                condition = CEarlier;
                action = Return_bool false;
              };
            ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = false;
        };
      ];
  }

let test_rule_squashes_later_writer () =
  let st = counter_state () in
  let report =
    Runtime.run
      ~initial:[ ("writer", [ Value.Int 111 ]); ("writer", [ Value.Int 222 ]) ]
      ~workers:2 claim_spec Spec.no_bindings st
  in
  check Alcotest.int "earlier writer wins" 111 (State.int_array st "cell").(0);
  check Alcotest.int "one abort" 1 report.Runtime.stats.Engine.aborted;
  check Alcotest.int "one commit" 1 report.Runtime.stats.Engine.committed

let test_sequential_claim_overwrites () =
  (* Sequentially both writers run in order and both store (the rule
     degenerates to its otherwise path), so the LATER value remains.
     This toy spec deliberately omits the load-and-revalidate guard that
     real speculative specs (SPEC-BFS, SPEC-SSSP) carry, which is what
     makes their parallel results equal to their sequential ones. *)
  let st = counter_state () in
  ignore
    (Sequential.run
       ~initial:[ ("writer", [ Value.Int 111 ]); ("writer", [ Value.Int 222 ]) ]
       claim_spec Spec.no_bindings st);
  check Alcotest.int "both stored in order" 222 (State.int_array st "cell").(0)

(* --- Counted rule: a two-phase dependence --- *)

(* Task "b" must not compute before both "a" tasks have emitted;
   expressed as a counted rule with expected = 2.  The a's write
   disjoint cells (no data race) and b combines them. *)
let counted_spec : Spec.t =
  let open Spec in
  {
    spec_name = "counted";
    task_sets =
      [
        {
          ts_name = "a";
          ts_order = For_each;
          arity = 1;
          body = [ Store ("cell", Param 0, int 1); Emit ("done_a", []) ];
        };
        {
          ts_name = "b";
          ts_order = For_each;
          arity = 0;
          body =
            [
              Alloc ("h", "deps", []);
              Await ("ok", "h");
              Load ("x1", "cell", int 1);
              Load ("x2", "cell", int 2);
              Store
                ( "cell",
                  int 0,
                  Binop (Add, Binop (Mul, Binop (Add, Var "x1", Var "x2"), int 10), int 1) );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "deps";
          n_params = 0;
          clauses =
            [ { on = On_reached ("a", "done_a"); condition = CConst true; action = Decrement } ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = true;
        };
      ];
  }

let counted_bindings : Spec.bindings =
  { prims = []; expected = [ ("deps", fun _ -> 2) ] }

let counted_state () =
  let st = State.create () in
  State.add_int_array st "cell" [| 0; 0; 0 |];
  st

let test_counted_rule_orders () =
  (* Push b FIRST so it would run before the a's without the rule. *)
  let st = counted_state () in
  ignore
    (Runtime.run
       ~initial:[ ("b", []); ("a", [ Value.Int 1 ]); ("a", [ Value.Int 2 ]) ]
       ~workers:3 counted_spec counted_bindings st);
  (* (1 + 1) * 10 + 1 — b's countdown held it until both a's emitted *)
  check Alcotest.int "b waited for both" 21 (State.int_array st "cell").(0)

let test_counted_rule_sequential () =
  let st = counted_state () in
  ignore
    (Sequential.run
       ~initial:[ ("b", []); ("a", [ Value.Int 1 ]); ("a", [ Value.Int 2 ]) ]
       counted_spec counted_bindings st);
  (* Sequentially the well-order interleaves b between the a's (b's
     index ties the first a and precedes the second), and b's rendezvous
     degenerates to the otherwise path when b is minimal — so b computes
     with only the first a's result visible: (1 + 0) * 10 + 1.

     This documents the semantic frame of §4.1: rules never *delay* the
     sequential execution; coordinative specs are correct when, as in
     COOR-LU, the host pushes tasks in a dependence-consistent
     sequential order so the oracle itself is a valid schedule. *)
  check Alcotest.int "sequential runs in well-order" 11 (State.int_array st "cell").(0)

(* --- Prim binding --- *)

let test_prim_roundtrip () =
  let sp : Spec.t =
    {
      spec_name = "prim";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 1;
            body =
              [
                Spec.Prim ([ "d" ], "double", [ Spec.Param 0 ]);
                Spec.Store ("cell", Spec.int 0, Spec.Var "d");
              ];
          };
        ];
      rules = [];
    }
  in
  let bindings : Spec.bindings =
    {
      prims =
        [
          ( "double",
            fun ctx args ->
              State.touch ctx.Spec.state "cell" 0 false;
              [ Value.Int (2 * Value.to_int (List.hd args)) ] );
        ];
      expected = [];
    }
  in
  let st = counter_state () in
  ignore (Sequential.run ~initial:[ ("t", [ Value.Int 21 ]) ] sp bindings st);
  check Alcotest.int "prim result stored" 42 (State.int_array st "cell").(0)

(* --- more engine edge cases --- *)

let test_push_iter_empty_range () =
  let sp : Spec.t =
    {
      spec_name = "spawn0";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 1;
            body =
              [
                (* hi <= lo: no children *)
                Spec.Push_iter ("t", Spec.Param 0, Spec.int 0, "i", [ Spec.Var "i" ]);
                Spec.Store ("cell", Spec.int 0, Spec.int 1);
              ];
          };
        ];
      rules = [];
    }
  in
  let st = counter_state () in
  let report = Sequential.run ~initial:[ ("t", [ Value.Int 5 ]) ] sp Spec.no_bindings st in
  check Alcotest.int "only the seed task ran" 1 report.Sequential.tasks_run;
  check Alcotest.int "body executed" 1 (State.int_array st "cell").(0)

let test_on_activated_rule () =
  (* a barrier task waits until two workers have been ACTIVATED (not
     finished) — exercising the On_activated event pattern *)
  let sp : Spec.t =
    {
      spec_name = "activation-barrier";
      task_sets =
        [
          {
            ts_name = "worker";
            ts_order = Spec.For_each;
            arity = 1;
            body = [ Spec.Store ("cell", Spec.Param 0, Spec.int 1) ];
          };
          {
            ts_name = "barrier";
            ts_order = Spec.For_each;
            arity = 0;
            body =
              [
                Spec.Alloc ("h", "seen_two", []);
                Spec.Await ("ok", "h");
                Spec.Store ("cell", Spec.int 0, Spec.int 9);
              ];
          };
        ];
      rules =
        [
          {
            rule_name = "seen_two";
            n_params = 0;
            clauses =
              [
                {
                  on = Spec.On_activated "worker";
                  condition = Spec.CConst true;
                  action = Spec.Decrement;
                };
              ];
            otherwise = true;
            scope = Spec.Min_uncommitted;
            counted = true;
          };
        ];
    }
  in
  let bindings : Spec.bindings = { prims = []; expected = [ ("seen_two", fun _ -> 2) ] } in
  let st = counted_state () in
  ignore
    (Runtime.run
       ~initial:[ ("barrier", []); ("worker", [ Value.Int 1 ]); ("worker", [ Value.Int 2 ]) ]
       ~workers:3 sp bindings st);
  check Alcotest.int "barrier fired" 9 (State.int_array st "cell").(0)

let test_float_memory_in_spec () =
  let sp : Spec.t =
    {
      spec_name = "floats";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 1;
            body =
              [
                Spec.Load ("x", "fs", Spec.int 0);
                Spec.Store ("fs", Spec.int 1, Spec.Binop (Spec.Mul, Spec.Var "x", Spec.Param 0));
              ];
          };
        ];
      rules = [];
    }
  in
  let st = State.create () in
  State.add_float_array st "fs" [| 1.5; 0.0 |];
  ignore (Sequential.run ~initial:[ ("t", [ Value.Int 4 ]) ] sp Spec.no_bindings st);
  check (Alcotest.float 1e-12) "float arithmetic through the IR" 6.0 (State.float_array st "fs").(1)

let test_engine_pop_min_order () =
  let eng = Engine.create counter_spec Spec.no_bindings (counter_state ()) in
  Engine.push_initial eng "inc" [ Value.Int 1 ];
  Engine.push_initial eng "inc" [ Value.Int 1 ];
  (match Engine.min_pending_head eng with
  | Some t -> check Alcotest.int "head is first pushed" 0 (Index.to_array t.Engine.index).(0)
  | None -> Alcotest.fail "expected a pending head");
  match Engine.pop_min eng with
  | Some t -> check Alcotest.int "pop_min returns it" 0 (Index.to_array t.Engine.index).(0)
  | None -> Alcotest.fail "expected a task"

let test_engine_unbound_prim () =
  let sp : Spec.t =
    {
      spec_name = "noprim";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 0;
            body = [ Spec.Prim ([], "missing", []) ];
          };
        ];
      rules = [];
    }
  in
  check Alcotest.bool "unbound prim raises" true
    (try
       ignore (Sequential.run ~initial:[ ("t", []) ] sp Spec.no_bindings (counter_state ()));
       false
     with Invalid_argument _ -> true)

let test_prim_counts_exposed () =
  let sp : Spec.t =
    {
      spec_name = "primcount";
      task_sets =
        [
          {
            ts_name = "t";
            ts_order = Spec.For_each;
            arity = 0;
            body = [ Spec.Prim ([], "nop", []) ];
          };
        ];
      rules = [];
    }
  in
  let bindings : Spec.bindings = { prims = [ ("nop", fun _ _ -> []) ]; expected = [] } in
  let report =
    Sequential.run ~initial:[ ("t", []); ("t", []); ("t", []) ] sp bindings (counter_state ())
  in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "three invocations"
    [ ("nop", 3) ] report.Sequential.prim_counts

(* --- BFS integration through both interpreters --- *)

let small_graph () = Agp_graph.Generator.road ~seed:3 ~width:12 ~height:8

let test_spec_bfs_sequential () =
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph (small_graph ()) 0) in
  let _, run = App_instance.run_sequential app in
  check (Alcotest.result Alcotest.unit Alcotest.string) "levels valid" (Ok ())
    (run.App_instance.check ())

let test_spec_bfs_runtime_many_workers () =
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph (small_graph ()) 0) in
  List.iter
    (fun workers ->
      let _, run = App_instance.run_runtime ~workers app in
      check (Alcotest.result Alcotest.unit Alcotest.string)
        (Printf.sprintf "levels valid (%d workers)" workers)
        (Ok ())
        (run.App_instance.check ()))
    [ 1; 2; 7; 16 ]

let test_coor_bfs_both () =
  let app = Bfs_app.coordinative (Bfs_app.workload_of_graph (small_graph ()) 0) in
  check (Alcotest.result Alcotest.unit Alcotest.string) "coor-bfs ok" (Ok ())
    (App_instance.check_both ~workers:8 app)

let test_bfs_state_equivalence () =
  (* Parallel execution must produce the exact sequential level array —
     BFS levels are unique, so state equality is the correctness
     criterion of §4.1. *)
  let w = Bfs_app.workload_of_graph (small_graph ()) 0 in
  let app = Bfs_app.speculative w in
  let _, seq = App_instance.run_sequential app in
  let _, par = App_instance.run_runtime ~workers:8 app in
  check (Alcotest.list Alcotest.string) "identical final state" []
    (State.diff seq.App_instance.state par.App_instance.state)

let test_spec_bfs_speculation_stats () =
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph (small_graph ()) 0) in
  let report, _ = App_instance.run_runtime ~workers:8 app in
  let s = report.Runtime.stats in
  (* Flooding: speculative BFS activates more update tasks than edges
     that succeed; some must abort. *)
  check Alcotest.bool "aborts happened" true (s.Engine.aborted > 0);
  check Alcotest.bool "events fired" true (s.Engine.events_fired > 0)

let prop_bfs_random_graphs_both_modes =
  QCheck.Test.make ~name:"spec-bfs correct on random graphs" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Agp_graph.Generator.random ~seed ~n:60 ~m:150 in
      let app = Bfs_app.speculative (Bfs_app.workload_of_graph g 0) in
      App_instance.check_both ~workers:6 app = Ok ())

let prop_coor_bfs_random_graphs =
  QCheck.Test.make ~name:"coor-bfs correct on random graphs" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Agp_graph.Generator.random ~seed ~n:60 ~m:150 in
      let app = Bfs_app.coordinative (Bfs_app.workload_of_graph g 0) in
      App_instance.check_both ~workers:6 app = Ok ())

let () =
  Alcotest.run "agp_core"
    [
      ( "value",
        [
          Alcotest.test_case "conversions" `Quick test_value_conversions;
          Alcotest.test_case "equality" `Quick test_value_equal;
        ] );
      ( "index",
        [
          Alcotest.test_case "lexicographic" `Quick test_index_lexicographic;
          Alcotest.test_case "child" `Quick test_index_child;
          qtest prop_index_compare_total_order;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "expressions" `Quick test_interp_expr;
          Alcotest.test_case "conditions" `Quick test_interp_cond;
          Alcotest.test_case "overlap" `Quick test_interp_overlap;
        ] );
      ( "state",
        [
          Alcotest.test_case "read/write" `Quick test_state_rw;
          Alcotest.test_case "tracing" `Quick test_state_trace;
          Alcotest.test_case "layout and snapshot" `Quick test_state_layout_and_snapshot;
        ] );
      ( "spec_validation",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_ok;
          Alcotest.test_case "bad push" `Quick test_validate_bad_push;
          Alcotest.test_case "await without alloc" `Quick test_validate_await_without_alloc;
          Alcotest.test_case "param range" `Quick test_validate_param_range;
          Alcotest.test_case "duplicate sets" `Quick test_validate_duplicate_sets;
          Alcotest.test_case "counted rules" `Quick test_validate_counted_rules;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sequential counter" `Quick test_sequential_counter;
          Alcotest.test_case "runtime counter" `Quick test_runtime_counter_matches;
          Alcotest.test_case "rejects invalid spec" `Quick test_engine_rejects_invalid_spec;
          Alcotest.test_case "rule squashes later writer" `Quick test_rule_squashes_later_writer;
          Alcotest.test_case "sequential claim overwrites" `Quick test_sequential_claim_overwrites;
          Alcotest.test_case "counted rule orders" `Quick test_counted_rule_orders;
          Alcotest.test_case "counted rule sequential" `Quick test_counted_rule_sequential;
          Alcotest.test_case "prim binding" `Quick test_prim_roundtrip;
          Alcotest.test_case "push_iter empty range" `Quick test_push_iter_empty_range;
          Alcotest.test_case "on_activated rule" `Quick test_on_activated_rule;
          Alcotest.test_case "float memory" `Quick test_float_memory_in_spec;
          Alcotest.test_case "pop_min order" `Quick test_engine_pop_min_order;
          Alcotest.test_case "unbound prim" `Quick test_engine_unbound_prim;
          Alcotest.test_case "prim counts" `Quick test_prim_counts_exposed;
        ] );
      ( "bfs_integration",
        [
          Alcotest.test_case "spec-bfs sequential" `Quick test_spec_bfs_sequential;
          Alcotest.test_case "spec-bfs runtime workers" `Quick test_spec_bfs_runtime_many_workers;
          Alcotest.test_case "coor-bfs both" `Quick test_coor_bfs_both;
          Alcotest.test_case "state equivalence" `Quick test_bfs_state_equivalence;
          Alcotest.test_case "speculation stats" `Quick test_spec_bfs_speculation_stats;
          qtest prop_bfs_random_graphs_both_modes;
          qtest prop_coor_bfs_random_graphs;
        ] );
    ]
