(* Integration tests: every paper benchmark runs through the sequential
   oracle and the aggressive runtime, and its result is validated
   against the substrate reference. *)

module App_instance = Agp_apps.App_instance
module Bfs_app = Agp_apps.Bfs_app
module Sssp_app = Agp_apps.Sssp_app
module Mst_app = Agp_apps.Mst_app
module Dmr_app = Agp_apps.Dmr_app
module Lu_app = Agp_apps.Lu_app
open Agp_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let ok_result = Alcotest.result Alcotest.unit Alcotest.string

let specs_validate () =
  List.iter
    (fun (name, sp) ->
      match Spec.validate sp with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" name (String.concat "; " es))
    [
      ("spec-bfs", Bfs_app.spec_speculative);
      ("coor-bfs", Bfs_app.spec_coordinative);
      ("spec-sssp", Sssp_app.spec_speculative);
      ("spec-mst", Mst_app.spec_speculative);
      ("spec-dmr", Dmr_app.spec_speculative);
      ("coor-lu", Lu_app.spec_coordinative);
    ]

let specs_printable () =
  List.iter
    (fun sp ->
      let s = Format.asprintf "%a" Spec.pp sp in
      check Alcotest.bool "nonempty listing" true (String.length s > 100))
    [ Bfs_app.spec_speculative; Lu_app.spec_coordinative; Dmr_app.spec_speculative ]

(* --- SSSP --- *)

let sssp_small () =
  Sssp_app.workload_of_graph (Agp_graph.Generator.random ~seed:11 ~n:80 ~m:220) 0

let test_sssp_sequential () =
  let _, run = App_instance.run_sequential (Sssp_app.speculative (sssp_small ())) in
  check ok_result "distances" (Ok ()) (run.App_instance.check ())

let test_sssp_runtime () =
  List.iter
    (fun workers ->
      let _, run = App_instance.run_runtime ~workers (Sssp_app.speculative (sssp_small ())) in
      check ok_result (Printf.sprintf "workers=%d" workers) (Ok ()) (run.App_instance.check ()))
    [ 1; 4; 12 ]

let test_sssp_aborts_dominated () =
  let report, _ = App_instance.run_runtime ~workers:8 (Sssp_app.speculative (sssp_small ())) in
  check Alcotest.bool "dominated tasks squashed" true
    (report.Runtime.stats.Engine.aborted > 0)

let prop_sssp_random =
  QCheck.Test.make ~name:"spec-sssp correct on random graphs" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Agp_graph.Generator.random ~seed ~n:50 ~m:130 in
      App_instance.check_both ~workers:6 (Sssp_app.speculative (Sssp_app.workload_of_graph g 0))
      = Ok ())

(* --- MST --- *)

let mst_small () = Mst_app.workload_of_graph (Agp_graph.Generator.random ~seed:21 ~n:60 ~m:150)

let test_mst_sequential () =
  let _, run = App_instance.run_sequential (Mst_app.speculative (mst_small ())) in
  check ok_result "tree" (Ok ()) (run.App_instance.check ())

let test_mst_runtime () =
  List.iter
    (fun workers ->
      let _, run = App_instance.run_runtime ~workers (Mst_app.speculative (mst_small ())) in
      check ok_result (Printf.sprintf "workers=%d" workers) (Ok ()) (run.App_instance.check ()))
    [ 1; 4; 10 ]

let test_mst_retries () =
  (* A dense-ish graph provokes endpoint conflicts between concurrent
     edges, so some tasks must squash and retry. *)
  let w = Mst_app.workload_of_graph (Agp_graph.Generator.random ~seed:5 ~n:40 ~m:200) in
  let report, run = App_instance.run_runtime ~workers:12 (Mst_app.speculative w) in
  check ok_result "still optimal" (Ok ()) (run.App_instance.check ());
  check Alcotest.bool "conflicts retried" true (report.Runtime.stats.Engine.retried > 0)

let prop_mst_random =
  QCheck.Test.make ~name:"spec-mst correct on random graphs" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Agp_graph.Generator.random ~seed ~n:40 ~m:100 in
      App_instance.check_both ~workers:6 (Mst_app.speculative (Mst_app.workload_of_graph g))
      = Ok ())

(* --- DMR --- *)

let dmr_small () = Dmr_app.workload_of_points (Agp_graph.Generator.points ~seed:31 ~n:80 ~span:100.0)

let test_dmr_sequential () =
  let _, run = App_instance.run_sequential (Dmr_app.speculative (dmr_small ())) in
  check ok_result "refined" (Ok ()) (run.App_instance.check ())

let test_dmr_runtime () =
  List.iter
    (fun workers ->
      let _, run = App_instance.run_runtime ~workers (Dmr_app.speculative (dmr_small ())) in
      check ok_result (Printf.sprintf "workers=%d" workers) (Ok ()) (run.App_instance.check ()))
    [ 1; 4; 10 ]

let test_dmr_does_work () =
  let report, _ = App_instance.run_runtime ~workers:8 (Dmr_app.speculative (dmr_small ())) in
  check Alcotest.bool "many refine tasks ran" true (report.Runtime.tasks_run > 10)

let prop_dmr_random =
  QCheck.Test.make ~name:"spec-dmr correct on random clouds" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let w = Dmr_app.workload_of_points (Agp_graph.Generator.points ~seed ~n:60 ~span:100.0) in
      let _, run = App_instance.run_runtime ~workers:6 (Dmr_app.speculative w) in
      run.App_instance.check () = Ok ())

(* --- LU --- *)

let lu_small () = Lu_app.sized_workload ~seed:41 ~nb:5 ~bs:4 ~density:0.3

let test_lu_sequential () =
  let _, run = App_instance.run_sequential (Lu_app.coordinative (lu_small ())) in
  check ok_result "residual" (Ok ()) (run.App_instance.check ())

let test_lu_runtime () =
  List.iter
    (fun workers ->
      let _, run = App_instance.run_runtime ~workers (Lu_app.coordinative (lu_small ())) in
      check ok_result (Printf.sprintf "workers=%d" workers) (Ok ()) (run.App_instance.check ()))
    [ 1; 4; 10 ]

let test_lu_coordination_overlaps () =
  (* With enough workers, countdown rules release independent block
     tasks out of order: clause resolutions must occur (not only
     otherwise paths). *)
  let report, _ = App_instance.run_runtime ~workers:12 (Lu_app.coordinative (lu_small ())) in
  let s = report.Runtime.stats in
  check Alcotest.bool "countdowns resolved" true (s.Engine.clause_resolutions > 0);
  check Alcotest.int "no squashes in coordinative mode" 0 (s.Engine.aborted + s.Engine.retried)

let prop_lu_random =
  QCheck.Test.make ~name:"coor-lu correct on random matrices" ~count:6
    QCheck.(pair (int_range 0 1000) (int_range 3 6))
    (fun (seed, nb) ->
      let w = Lu_app.sized_workload ~seed ~nb ~bs:3 ~density:0.35 in
      App_instance.check_both ~workers:8 (Lu_app.coordinative w) = Ok ())

(* --- multicore runtime (§4.4 pthread-style implementation) --- *)

let test_parallel_runtime_bfs () =
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph (Agp_graph.Generator.road ~seed:3 ~width:12 ~height:8) 0) in
  let run = app.App_instance.fresh () in
  let report =
    Agp_core.Parallel_runtime.run ~initial:run.App_instance.initial ~domains:4
      app.App_instance.spec run.App_instance.bindings run.App_instance.state
  in
  Alcotest.(check bool) "did work" true (report.Agp_core.Parallel_runtime.tasks_run > 100);
  check ok_result "levels valid" (Ok ()) (run.App_instance.check ())

let test_parallel_runtime_matches_sequential () =
  (* BFS levels are unique, so even a nondeterministic schedule must
     reproduce the sequential oracle's memory exactly (§4.1) *)
  let g = Agp_graph.Generator.random ~seed:19 ~n:60 ~m:150 in
  let app = Bfs_app.speculative (Bfs_app.workload_of_graph g 0) in
  let _, seq = App_instance.run_sequential app in
  let par = app.App_instance.fresh () in
  ignore
    (Agp_core.Parallel_runtime.run ~initial:par.App_instance.initial ~domains:4
       app.App_instance.spec par.App_instance.bindings par.App_instance.state);
  Alcotest.(check (list string)) "identical final state" []
    (Agp_core.State.diff seq.App_instance.state par.App_instance.state)

let test_parallel_runtime_lu () =
  let app = Lu_app.coordinative (lu_small ()) in
  let run = app.App_instance.fresh () in
  ignore
    (Agp_core.Parallel_runtime.run ~initial:run.App_instance.initial ~domains:3
       app.App_instance.spec run.App_instance.bindings run.App_instance.state);
  check ok_result "residual" (Ok ()) (run.App_instance.check ())

let test_parallel_runtime_single_domain () =
  let app = Sssp_app.speculative (sssp_small ()) in
  let run = app.App_instance.fresh () in
  ignore
    (Agp_core.Parallel_runtime.run ~initial:run.App_instance.initial ~domains:1
       app.App_instance.spec run.App_instance.bindings run.App_instance.state);
  check ok_result "distances" (Ok ()) (run.App_instance.check ())

let () =
  Alcotest.run "agp_apps"
    [
      ( "specs",
        [
          Alcotest.test_case "all validate" `Quick specs_validate;
          Alcotest.test_case "printable" `Quick specs_printable;
        ] );
      ( "sssp",
        [
          Alcotest.test_case "sequential" `Quick test_sssp_sequential;
          Alcotest.test_case "runtime" `Quick test_sssp_runtime;
          Alcotest.test_case "aborts dominated" `Quick test_sssp_aborts_dominated;
          qtest prop_sssp_random;
        ] );
      ( "mst",
        [
          Alcotest.test_case "sequential" `Quick test_mst_sequential;
          Alcotest.test_case "runtime" `Quick test_mst_runtime;
          Alcotest.test_case "retries on conflict" `Quick test_mst_retries;
          qtest prop_mst_random;
        ] );
      ( "dmr",
        [
          Alcotest.test_case "sequential" `Quick test_dmr_sequential;
          Alcotest.test_case "runtime" `Quick test_dmr_runtime;
          Alcotest.test_case "does work" `Quick test_dmr_does_work;
          qtest prop_dmr_random;
        ] );
      ( "lu",
        [
          Alcotest.test_case "sequential" `Quick test_lu_sequential;
          Alcotest.test_case "runtime" `Quick test_lu_runtime;
          Alcotest.test_case "coordination overlaps" `Quick test_lu_coordination_overlaps;
          qtest prop_lu_random;
        ] );
      ( "parallel_runtime",
        [
          Alcotest.test_case "bfs on domains" `Quick test_parallel_runtime_bfs;
          Alcotest.test_case "matches sequential" `Quick test_parallel_runtime_matches_sequential;
          Alcotest.test_case "lu on domains" `Quick test_parallel_runtime_lu;
          Alcotest.test_case "single domain" `Quick test_parallel_runtime_single_domain;
        ] );
    ]
