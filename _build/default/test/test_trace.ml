(* Tests for the §4.4 debugging tracer and the design-space explorer. *)

module Trace = Agp_core.Trace
module Explore = Agp_exp.Explore
module Workloads = Agp_exp.Workloads
module App_instance = Agp_apps.App_instance
open Agp_core

let check = Alcotest.check

let traced_bfs ?(workers = 4) () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:42 in
  let r = app.App_instance.fresh () in
  let t =
    Trace.run ~initial:r.App_instance.initial ~workers app.App_instance.spec
      r.App_instance.bindings r.App_instance.state
  in
  (app, r, t)

let test_trace_produces_valid_result () =
  let _, r, _ = traced_bfs () in
  check (Alcotest.result Alcotest.unit Alcotest.string) "traced run correct" (Ok ())
    (r.App_instance.check ())

let test_trace_records_lifecycle () =
  let _, _, t = traced_bfs () in
  let has p = List.exists (fun e -> p e.Trace.kind) t.Trace.entries in
  check Alcotest.bool "starts recorded" true (has (fun k -> k = Trace.Started));
  check Alcotest.bool "commits recorded" true (has (fun k -> k = Trace.Committed));
  check Alcotest.bool "aborts recorded" true (has (fun k -> k = Trace.Aborted));
  check Alcotest.bool "rendezvous blocks recorded" true
    (has (function Trace.Blocked_at _ -> true | _ -> false));
  check Alcotest.bool "ops recorded" true
    (has (function Trace.Executed _ -> true | _ -> false))

let test_trace_summary_consistent_with_stats () =
  let _, _, t = traced_bfs () in
  let stats = t.Trace.report.Runtime.stats in
  let commits = List.fold_left (fun acc (_, c, _, _, _) -> acc + c) 0 (Trace.summarize t) in
  let aborts = List.fold_left (fun acc (_, _, a, _, _) -> acc + a) 0 (Trace.summarize t) in
  check Alcotest.int "committed match engine stats" stats.Engine.committed commits;
  check Alcotest.int "aborted match engine stats" stats.Engine.aborted aborts

let test_trace_same_schedule_as_runtime () =
  (* tracing must not perturb the schedule: step counts agree with an
     untraced run at the same worker count *)
  let app = Workloads.spec_bfs Workloads.Small ~seed:42 in
  let _, _, t = traced_bfs ~workers:4 () in
  let r2 = app.App_instance.fresh () in
  let untraced =
    Runtime.run ~initial:r2.App_instance.initial ~workers:4 app.App_instance.spec
      r2.App_instance.bindings r2.App_instance.state
  in
  check Alcotest.int "same steps" untraced.Runtime.steps t.Trace.report.Runtime.steps;
  check Alcotest.int "same tasks" untraced.Runtime.tasks_run t.Trace.report.Runtime.tasks_run

let test_trace_timeline_renders () =
  let _, _, t = traced_bfs () in
  let s = Trace.render_timeline ~max_ticks:10 t in
  check Alcotest.bool "one row per worker" true
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)) = 4)

let test_trace_op_descriptors () =
  check Alcotest.string "load" "v <- arr" (Trace.op_descriptor (Spec.Load ("v", "arr", Spec.int 0)));
  check Alcotest.string "await" "await h" (Trace.op_descriptor (Spec.Await ("ok", "h")));
  check Alcotest.string "prim" "prim f" (Trace.op_descriptor (Spec.Prim ([], "f", [])))

let test_trace_entry_cap () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:42 in
  let r = app.App_instance.fresh () in
  let t =
    Trace.run ~initial:r.App_instance.initial ~workers:4 ~max_entries:50 app.App_instance.spec
      r.App_instance.bindings r.App_instance.state
  in
  check Alcotest.int "capped" 50 (List.length t.Trace.entries);
  check (Alcotest.result Alcotest.unit Alcotest.string) "execution still completes" (Ok ())
    (r.App_instance.check ())

(* --- explorer --- *)

let test_explore_lu () =
  let app = Workloads.coor_lu Workloads.Small ~seed:42 in
  let outcomes = Explore.sweep app in
  check Alcotest.int "all candidates evaluated" (List.length Explore.default_candidates)
    (List.length outcomes);
  match Explore.best outcomes with
  | None -> Alcotest.fail "no fitting configuration"
  | Some b ->
      check Alcotest.bool "best fits" true b.Explore.fits;
      List.iter
        (fun o -> if o.Explore.fits then Alcotest.(check bool) "best minimal" true (b.Explore.cycles <= o.Explore.cycles))
        outcomes

let test_explore_rejects_nothing_silently () =
  (* every candidate must appear in the output, fitting or not *)
  let app = Workloads.spec_bfs Workloads.Small ~seed:1 in
  let candidates =
    [ { Explore.lanes = 64; pipelines_per_set = 1; window_factor = 1 } ]
  in
  let outcomes = Explore.sweep ~candidates app in
  check Alcotest.int "one in, one out" 1 (List.length outcomes)

let test_explore_more_pipelines_more_alms () =
  let app = Workloads.spec_bfs Workloads.Small ~seed:1 in
  let candidates =
    [
      { Explore.lanes = 64; pipelines_per_set = 1; window_factor = 1 };
      { Explore.lanes = 64; pipelines_per_set = 8; window_factor = 1 };
    ]
  in
  match Explore.sweep ~candidates app with
  | [ small; big ] ->
      check Alcotest.bool "resource cost grows" true (big.Explore.alms > small.Explore.alms)
  | _ -> Alcotest.fail "expected two outcomes"

let () =
  Alcotest.run "agp_trace_explore"
    [
      ( "trace",
        [
          Alcotest.test_case "valid result" `Quick test_trace_produces_valid_result;
          Alcotest.test_case "lifecycle recorded" `Quick test_trace_records_lifecycle;
          Alcotest.test_case "summary matches stats" `Quick test_trace_summary_consistent_with_stats;
          Alcotest.test_case "schedule unperturbed" `Quick test_trace_same_schedule_as_runtime;
          Alcotest.test_case "timeline renders" `Quick test_trace_timeline_renders;
          Alcotest.test_case "op descriptors" `Quick test_trace_op_descriptors;
          Alcotest.test_case "entry cap" `Quick test_trace_entry_cap;
        ] );
      ( "explore",
        [
          Alcotest.test_case "lu sweep" `Slow test_explore_lu;
          Alcotest.test_case "complete output" `Quick test_explore_rejects_nothing_silently;
          Alcotest.test_case "alms monotone" `Quick test_explore_more_pipelines_more_alms;
        ] );
    ]
