(* Command-line driver: regenerate any of the paper's experiments, dump
   compiled dataflow graphs, or run a single application on a chosen
   platform model. *)

open Cmdliner
module Experiments = Agp_exp.Experiments
module Workloads = Agp_exp.Workloads
module Backend = Agp_backend.Backend

(* Exit codes: 0 success, 1 invalid result / usage error, 2 malformed
   diff input, 3 liveness failure (deadlock or step-limit) — typed
   separately so CI can tell a spec liveness bug from a crash. *)
let liveness_exit = 3

let scale_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Workloads.scale_of_string s) in
  let print fmt s = Format.fprintf fmt "%s" (Workloads.scale_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Workloads.Default
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Workload scale: small, medium, default, large or huge.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload generator seed.")

let fig9_cmd =
  let run scale seed =
    Experiments.print_fig9 (Experiments.fig9 ~scale ~seed ())
  in
  Cmd.v (Cmd.info "fig9" ~doc:"Figure 9: accelerator speedup over 1-core and 10-core software.")
    Term.(const run $ scale_arg $ seed_arg)

let fig10_cmd =
  (* this sweep simulates 24 accelerator runs, so its default scale is
     medium rather than the global default *)
  let fig10_scale_arg =
    let parse s = Result.map_error (fun e -> `Msg e) (Workloads.scale_of_string s) in
    let print fmt s = Format.fprintf fmt "%s" (Workloads.scale_name s) in
    Arg.(
      value
      & opt (conv (parse, print)) Workloads.Medium
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Workload scale: small, medium, default, large or huge (default: medium).")
  in
  let run scale seed = Experiments.print_fig10 (Experiments.fig10 ~scale ~seed ()) in
  Cmd.v (Cmd.info "fig10" ~doc:"Figure 10: QPI bandwidth sweep (speedup and pipeline utilization).")
    Term.(const run $ fig10_scale_arg $ seed_arg)

let table1_cmd =
  let run scale seed = Experiments.print_table1 (Experiments.table1 ~scale ~seed ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Table 1: OpenCL-HLS BFS vs generated SPEC-BFS and COOR-BFS.")
    Term.(const run $ scale_arg $ seed_arg)

let resources_cmd =
  let run () = Experiments.print_resources (Experiments.resources ()) in
  Cmd.v (Cmd.info "resources" ~doc:"Section 6.2: FPGA resource breakdown per accelerator.")
    Term.(const run $ const ())

let schedule_cmd =
  let run () = print_string (Experiments.schedule_diagram ()) in
  Cmd.v (Cmd.info "schedule" ~doc:"Figure 2(b): barrier vs dataflow schedule diagrams.")
    Term.(const run $ const ())

let app_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"One of: spec-bfs, coor-bfs, spec-sssp, spec-mst, spec-dmr, coor-lu.")

let find_app scale seed name = Workloads.find name scale ~seed

let dot_cmd =
  let run scale seed name =
    match find_app scale seed name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok app ->
        let g = Agp_dataflow.Bdfg.of_spec app.Agp_apps.App_instance.spec in
        print_string (Agp_dataflow.Bdfg.to_dot g)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Dump the compiled Boolean dataflow graph of an application (Graphviz).")
    Term.(const run $ scale_arg $ seed_arg $ app_arg)

let spec_cmd =
  let run scale seed name =
    match find_app scale seed name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok app -> Format.printf "%a@." Agp_core.Spec.pp app.Agp_apps.App_instance.spec
  in
  Cmd.v (Cmd.info "spec" ~doc:"Print an application's task/rule specification.")
    Term.(const run $ scale_arg $ seed_arg $ app_arg)

let amplify_cmd =
  let run scale seed =
    Agp_exp.Amplification.print (Agp_exp.Amplification.table ~scale ~seed ())
  in
  Cmd.v
    (Cmd.info "amplify"
       ~doc:
         "Work amplification of aggressive parallelization: activated vs. algorithmically \
          necessary tasks per benchmark (the flooding of §6.3).")
    Term.(const run $ scale_arg $ seed_arg)

let write_file ~what path contents =
  let oc =
    try open_out path
    with Sys_error e ->
      Printf.eprintf "cannot write %s: %s\n" what e;
      exit 1
  in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let explore_cmd =
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also export the sweep table as CSV to $(docv).")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write a machine-readable sweep report (JSON) to $(docv).")
  in
  let run scale seed name csv report =
    match find_app scale seed name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok app ->
        let outcomes = Agp_exp.Explore.sweep app in
        Agp_exp.Explore.print app outcomes;
        Option.iter
          (fun path ->
            write_file ~what:"sweep CSV" path (String.trim (Agp_exp.Explore.to_csv outcomes));
            Printf.printf "wrote %s\n" path)
          csv;
        Option.iter
          (fun path ->
            write_file ~what:"sweep report" path
              (Agp_obs.Report.to_string (Agp_exp.Explore.report app outcomes));
            Printf.printf "wrote %s\n" path)
          report
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Design-space exploration (the paper's future-work item): sweep rule lanes, pipeline \
          replication and window depth, rank by simulated cycles.")
    Term.(const run $ scale_arg $ seed_arg $ app_arg $ csv_arg $ report_arg)

let trace_cmd =
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Workers for the traced runtime.")
  in
  let ticks_arg =
    Arg.(value & opt int 40 & info [ "ticks" ] ~doc:"Scheduler ticks to render.")
  in
  let run scale seed name workers ticks =
    match find_app scale seed name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok app ->
        let r = app.Agp_apps.App_instance.fresh () in
        let t =
          Agp_core.Trace.run ~initial:r.Agp_apps.App_instance.initial ~workers
            app.Agp_apps.App_instance.spec r.Agp_apps.App_instance.bindings
            r.Agp_apps.App_instance.state
        in
        Printf.printf "timeline (first %d ticks; cells are task indices, ~ = rendezvous stall, * \
                       = squash):\n%s\n"
          ticks
          (Agp_core.Trace.render_timeline ~max_ticks:ticks t);
        List.iter
          (fun (set, committed, aborted, retried, blocks) ->
            Printf.printf "%-10s committed %-6d aborted %-6d retried %-6d rendezvous stalls %d\n"
              set committed aborted retried blocks)
          (Agp_core.Trace.summarize t)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Traced software-runtime execution (the debugging flow of §4.4): worker timeline and \
             per-set squash statistics.")
    Term.(const run $ scale_arg $ seed_arg $ app_arg $ workers_arg $ ticks_arg)

let run_cmd =
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Workers for the runtime backend / domains for the parallel backend.")
  in
  let backend_arg =
    Arg.(
      value
      & opt string "simulator"
      & info [ "backend"; "platform" ] ~docv:"B"
          ~doc:
            "Execution backend from the registry (list them with $(b,agp backends)): \
             sequential, runtime[:workers], parallel[:domains], simulator (alias: fpga), \
             cpu-1core, cpu-10core, opencl.")
  in
  let bw_arg =
    Arg.(
      value & opt float 1.0 & info [ "bandwidth" ] ~doc:"QPI bandwidth multiplier (simulator).")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Scheduler-tick budget for worker-pool backends (runtime[:workers]); exceeding it \
             is a liveness failure (exit 3).")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write a schema-versioned machine-readable run report (JSON) to $(docv) — the \
             artifact $(b,agp diff) compares.  Requires an obs-capable backend.")
  in
  let resolve_backend name ~workers ~bw ~max_steps =
    let name =
      match (name, workers) with
      | ("runtime" | "parallel"), Some n -> Printf.sprintf "%s:%d" name n
      | _, _ -> name
    in
    match Backend.find name with
    | Error _ as e -> e
    | Ok b ->
        let b =
          if b.Backend.name = "simulator" && bw <> 1.0 then
            Backend.simulator
              ~config:(Agp_hw.Config.scale_bandwidth Agp_hw.Config.default bw)
              ()
          else b
        in
        (match max_steps with
        | None -> Ok b
        | Some n -> Backend.with_max_steps b n)
  in
  let print_native = function
    | Backend.Stepper r ->
        if r.Agp_core.Semantics.steps > 0 then
          Printf.printf "  %d steps, peak %d running, peak %d parked, mean busy %.2f\n"
            r.Agp_core.Semantics.steps r.Agp_core.Semantics.max_concurrency
            r.Agp_core.Semantics.max_waiting r.Agp_core.Semantics.avg_busy;
        if r.Agp_core.Semantics.domains_used > 0 then
          Printf.printf "  %d domains used\n" r.Agp_core.Semantics.domains_used
    | Backend.Simulated r ->
        Printf.printf "  %d cycles, utilization %.1f%%, cache hit %.1f%%\n"
          r.Agp_hw.Accelerator.cycles
          (100.0 *. r.Agp_hw.Accelerator.utilization)
          (100.0 *. r.Agp_hw.Accelerator.mem_hit_rate)
    | Backend.Cpu r ->
        Printf.printf "  1-core %.3f ms / 10-core %.3f ms, %d ops, L1 hit %.1f%%\n"
          (r.Agp_baseline.Cpu_model.seconds_1core *. 1e3)
          (r.Agp_baseline.Cpu_model.seconds_10core *. 1e3)
          r.Agp_baseline.Cpu_model.ops
          (100.0 *. r.Agp_baseline.Cpu_model.l1_hit_rate)
    | Backend.Opencl r ->
        Printf.printf "  %d host rounds, %d kernel launches, %d bytes over the link\n"
          r.Agp_baseline.Opencl_model.rounds r.Agp_baseline.Opencl_model.kernel_launches
          r.Agp_baseline.Opencl_model.bytes_moved
  in
  let run scale seed name backend workers bw max_steps report_out =
    match find_app scale seed name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok app -> begin
        match resolve_backend backend ~workers ~bw ~max_steps with
        | Error e ->
            prerr_endline e;
            exit 1
        | Ok b -> begin
            if report_out <> None && not b.Backend.capabilities.Backend.obs_report then begin
              Printf.eprintf "backend %s cannot emit a run report (no obs capability)\n"
                b.Backend.name;
              exit 1
            end;
            match Backend.run ~obs:(report_out <> None) b app with
            | exception Backend.Unsupported { backend; app; reason } ->
                Printf.eprintf "%s is unsupported on backend %s: %s\n" app backend reason;
                exit 1
            | exception Agp_core.Runtime.Deadlock msg ->
                Printf.eprintf "liveness failure: %s\n" msg;
                exit liveness_exit
            | exception Agp_core.Runtime.Step_limit_exceeded n ->
                Printf.eprintf "liveness failure: step limit %d exceeded without quiescing\n" n;
                exit liveness_exit
            | res ->
                Printf.printf "%s on %s — %s\n" res.Backend.app_name b.Backend.name
                  b.Backend.summary;
                Option.iter (fun t -> Printf.printf "  %d tasks reached an outcome\n" t)
                  res.Backend.tasks_run;
                Option.iter (fun s -> Printf.printf "  time: %.3f ms\n" (s *. 1e3))
                  res.Backend.seconds;
                Option.iter
                  (fun (s : Agp_core.Engine.stats) ->
                    Printf.printf "  committed %d, aborted %d, retried %d\n"
                      s.Agp_core.Engine.committed s.Agp_core.Engine.aborted
                      s.Agp_core.Engine.retried)
                  res.Backend.engine_stats;
                print_native res.Backend.native;
                Option.iter
                  (fun path ->
                    match res.Backend.obs with
                    | Some doc ->
                        write_file ~what:"run report" path (Agp_obs.Report.to_string doc);
                        Printf.printf "wrote %s (schema v%d; diff two of these with `agp diff`)\n"
                          path Agp_obs.Report.schema_version
                    | None -> ())
                  report_out;
                (match res.Backend.check with
                | Ok () when b.Backend.capabilities.Backend.validates ->
                    print_endline "result: VALID (matches substrate reference)"
                | Ok () -> print_endline "result: n/a (timing model; no state executed)"
                | Error e ->
                    Printf.printf "result: INVALID (%s)\n" e;
                    exit 1)
          end
      end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one application on any registered backend and validate the result.  Exits 0 on a \
          valid run, 1 on an invalid result or usage error, 3 on a liveness failure (deadlock \
          or step-limit)."
       ~man:
         [
           `S Manpage.s_examples;
           `P "agp run spec-bfs --backend simulator --scale small --report r.json";
           `P "agp run spec-sssp --backend runtime:4";
           `P "agp run coor-lu --backend parallel --workers 2";
         ])
    Term.(
      const run $ scale_arg $ seed_arg $ app_arg $ backend_arg $ workers_arg $ bw_arg
      $ max_steps_arg $ report_arg)

let backends_cmd =
  let run () =
    let t =
      Agp_util.Table.create [ "name"; "timed"; "parallel"; "obs"; "validates"; "description" ]
    in
    let flag v = if v then "yes" else "-" in
    List.iter
      (fun (b : Backend.t) ->
        let c = b.Backend.capabilities in
        Agp_util.Table.add_row t
          [
            b.Backend.name;
            flag c.Backend.timed;
            flag c.Backend.parallel;
            flag c.Backend.obs_report;
            flag c.Backend.validates;
            b.Backend.summary;
          ])
      Backend.all;
    Agp_util.Table.print t;
    print_endline
      "parameterized forms: runtime:<workers>, parallel:<domains>; `fpga` aliases `simulator`"
  in
  Cmd.v
    (Cmd.info "backends"
       ~doc:"List the registered execution backends with their capability flags.")
    Term.(const run $ const ())

let observe_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the Chrome trace-event JSON.")
  in
  let bw_arg =
    Arg.(value & opt float 1.0 & info [ "bandwidth" ] ~doc:"QPI bandwidth multiplier.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write a schema-versioned machine-readable run report (JSON) to $(docv) — the \
             artifact $(b,agp diff) compares.")
  in
  let interval_arg =
    Arg.(
      value
      & opt int 256
      & info [ "interval" ] ~docv:"CYCLES" ~doc:"Timeline sampling interval in cycles.")
  in
  let timeline_csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline-csv" ] ~docv:"FILE"
          ~doc:"Also export the interval time series as CSV to $(docv).")
  in
  let run scale seed name bw out report_out interval timeline_csv =
    match find_app scale seed name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok app ->
        let open Agp_apps.App_instance in
        let module Obs = Agp_obs in
        let sink = Obs.Sink.collect () in
        let timeline = Obs.Timeline.create ~interval () in
        let config = Agp_hw.Config.scale_bandwidth Agp_hw.Config.default bw in
        let r = app.fresh () in
        let report =
          Agp_hw.Accelerator.run ~config ~sink ~timeline ~spec:app.spec ~bindings:r.bindings
            ~state:r.state ~initial:r.initial ()
        in
        begin
          match r.check () with
          | Ok () -> ()
          | Error e ->
              Printf.printf "result: INVALID (%s)\n" e;
              exit 1
        end;
        let events = Obs.Sink.events sink in
        write_file ~what:"trace" out (Obs.Chrome_trace.to_string ~trace_name:app.app_name events);
        Printf.printf "%s on FPGA model: %d cycles (%.3f ms), utilization %.1f%%\n" app.app_name
          report.Agp_hw.Accelerator.cycles
          (report.Agp_hw.Accelerator.seconds *. 1e3)
          (100.0 *. report.Agp_hw.Accelerator.utilization);
        Printf.printf "wrote %s (%d events) — load it in chrome://tracing or ui.perfetto.dev\n\n"
          out (List.length events);
        print_endline "stall attribution (pipeline-cycles per task set):";
        print_endline (Obs.Attribution.render report.Agp_hw.Accelerator.attribution);
        let spans, unfinished = Obs.Lifecycle.spans events in
        Printf.printf "task lifecycle (dispatch-to-retire percentiles, cycles; %d unretired):\n"
          unfinished;
        print_endline (Obs.Lifecycle.render (Obs.Lifecycle.summarize spans));
        let reg = Agp_hw.Accelerator.metrics_registry ~events report in
        Obs.Metrics.add (Obs.Metrics.counter reg "obs.events") (Obs.Sink.count sink);
        print_endline "metrics:";
        print_string (Obs.Metrics.to_text reg);
        Option.iter
          (fun path ->
            write_file ~what:"timeline CSV" path (String.trim (Obs.Timeline.to_csv timeline));
            Printf.printf "wrote %s (%d samples)\n" path (Obs.Timeline.sample_count timeline))
          timeline_csv;
        Option.iter
          (fun path ->
            let doc =
              Agp_hw.Accelerator.obs_report ~app:app.app_name ~events ~timeline ~config report
            in
            write_file ~what:"run report" path (Obs.Report.to_string doc);
            Printf.printf "wrote %s (schema v%d; diff two of these with `agp diff`)\n" path
              Obs.Report.schema_version)
          report_out
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:
         "Run one application on the cycle model with full observability: write a \
          Perfetto-loadable trace.json, print the stall-attribution, lifecycle and metrics \
          views, and optionally emit the machine-readable run report / timeline CSV.")
    Term.(
      const run $ scale_arg $ seed_arg $ app_arg $ bw_arg $ out_arg $ report_arg $ interval_arg
      $ timeline_csv_arg)

let diff_cmd =
  let file_a =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline run report (JSON).")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Current run report (JSON).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float 0.05
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:"Relative-change threshold below which a metric counts as unchanged.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the comparison as JSON instead of a table.")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Include unchanged metrics in the output.")
  in
  let run a b threshold json all =
    let module Obs = Agp_obs in
    let read path =
      let contents =
        try
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        with Sys_error e ->
          Printf.eprintf "cannot read %s: %s\n" path e;
          exit 2
      in
      match Obs.Report.of_string contents with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          exit 2
    in
    let ra = read a and rb = read b in
    if ra.Obs.Report.kind <> rb.Obs.Report.kind then
      Printf.eprintf "note: comparing different report kinds (%s vs %s)\n" ra.Obs.Report.kind
        rb.Obs.Report.kind;
    let result = Obs.Diff.compare ~threshold ra rb in
    if json then print_endline (Obs.Json.to_string (Obs.Diff.to_json ~all result))
    else print_string (Obs.Diff.render ~all result);
    exit (if Obs.Diff.regressed result then 1 else 0)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Structurally compare two run reports: flag metrics whose relative change exceeds the \
          threshold in the bad direction. Exits 0 when clean, 1 on regression, 2 on \
          malformed/unreadable input."
       ~man:
         [
           `S Manpage.s_examples;
           `P "agp observe spec-bfs --scale small --report base.json";
           `P "agp observe spec-bfs --scale small --bandwidth 0.5 --report slow.json";
           `P "agp diff base.json slow.json   # non-zero exit: cycles regressed";
         ])
    Term.(const run $ file_a $ file_b $ threshold_arg $ json_arg $ all_arg)

let version_cmd =
  let run () =
    Printf.printf "agp %s (serve protocol v%d, obs report schema v%d)\n"
      Agp_util.Version.version Agp_serve.Protocol.protocol_version
      Agp_obs.Report.schema_version
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the toolkit version plus the serve wire-protocol and obs report schema \
          versions — the triple a daemon and its clients compare during the hello handshake.")
    Term.(const run $ const ())

let addr_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Agp_serve.Server.addr_of_string s) in
  let print fmt a = Format.pp_print_string fmt (Agp_serve.Server.addr_to_string a) in
  Arg.(
    value
    & opt (conv (parse, print)) (Agp_serve.Server.Unix_path "/tmp/agp-serve.sock")
    & info [ "addr" ] ~docv:"ADDR"
        ~doc:
          "Daemon address: $(b,unix:PATH) (or any path containing /) for a Unix-domain \
           socket, $(b,HOST:PORT) or $(b,:PORT) for TCP.")

let serve_cmd =
  let module Serve = Agp_serve in
  let shards_arg =
    Arg.(value & opt int Serve.Scheduler.default_config.Serve.Scheduler.shards
         & info [ "shards" ] ~docv:"N" ~doc:"Worker shards executing requests.")
  in
  let batch_arg =
    Arg.(value & opt int Serve.Scheduler.default_config.Serve.Scheduler.max_batch
         & info [ "max-batch" ] ~docv:"N"
             ~doc:"Max compatible requests fused into one batch (shared workload build).")
  in
  let depth_arg =
    Arg.(value & opt int Serve.Admission.default_config.Serve.Admission.queue_depth
         & info [ "queue-depth" ] ~docv:"N" ~doc:"Bounded admission queue capacity.")
  in
  let watermark_arg =
    Arg.(value & opt (some int) None
         & info [ "shed-watermark" ] ~docv:"N"
             ~doc:"Queue depth past which new requests are shed (default: queue depth).")
  in
  let quota_arg =
    Arg.(value & opt int Serve.Admission.default_config.Serve.Admission.tenant_quota
         & info [ "tenant-quota" ] ~docv:"N" ~doc:"Max in-flight requests per tenant.")
  in
  let trace_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:
               "Capture per-request Chrome trace spans (queue/build/execute per request \
                id) and write $(i,DIR)/serve-trace.json when the daemon drains.")
  in
  let log_level_arg =
    Arg.(value & opt string "info"
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:
               "Structured NDJSON log threshold on stderr: debug, info, warn or error. \
                Lines carry the request id for correlation with traces and reports.")
  in
  let run addr shards max_batch queue_depth watermark tenant_quota trace_dir log_level =
    if shards < 1 || max_batch < 1 || queue_depth < 1 || tenant_quota < 1 then begin
      prerr_endline "serve: shards, max-batch, queue-depth and tenant-quota must be >= 1";
      exit 1
    end;
    let level =
      match Agp_obs.Log.level_of_string log_level with
      | Ok l -> l
      | Error e ->
          prerr_endline ("serve: " ^ e);
          exit 1
    in
    let log = Agp_obs.Log.create ~level ~clock:Unix.gettimeofday ~out:stderr () in
    let config =
      {
        Serve.Server.admission =
          {
            Serve.Admission.queue_depth;
            shed_watermark = Option.value ~default:queue_depth watermark;
            tenant_quota;
          };
        scheduler = { Serve.Scheduler.shards; max_batch };
      }
    in
    let server = Serve.Server.create ~config ~log ?trace_dir () in
    Agp_obs.Log.info log
      ~fields:
        [
          ("version", Agp_obs.Json.String Agp_util.Version.version);
          ("addr", Agp_obs.Json.String (Serve.Server.addr_to_string addr));
          ("shards", Agp_obs.Json.Int shards);
          ("queue_depth", Agp_obs.Json.Int queue_depth);
          ("tenant_quota", Agp_obs.Json.Int tenant_quota);
        ]
      "agp-serve starting";
    (match Serve.Server.listen server ~addr with
    | () -> ()
    | exception Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "serve: %s failed: %s\n" fn (Unix.error_message e);
        exit 1);
    let s = Serve.Server.stats server in
    Agp_obs.Log.info log
      ~fields:
        [
          ("completed", Agp_obs.Json.Int s.Serve.Protocol.completed);
          ("shed", Agp_obs.Json.Int s.Serve.Protocol.shed);
          ("errors", Agp_obs.Json.Int s.Serve.Protocol.errors);
        ]
      "agp-serve drained"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the always-on accelerator daemon: accept newline-delimited JSON run requests \
          over a Unix or TCP socket, batch compatible ones across a pool of worker shards, \
          shed typed Overloaded responses past the backpressure watermark, and stream back \
          per-request verdicts and obs run reports."
       ~man:
         [
           `S Manpage.s_examples;
           `P "agp serve --addr unix:/tmp/agp.sock --shards 4";
           `P "agp serve --addr :7421 --queue-depth 64 --shed-watermark 48";
           `P "agp serve --addr unix:/tmp/agp.sock --trace-dir traces --log-level debug";
           `P "echo '{\"type\":\"ping\"}' | nc -U /tmp/agp.sock";
         ])
    Term.(
      const run $ addr_arg $ shards_arg $ batch_arg $ depth_arg $ watermark_arg $ quota_arg
      $ trace_dir_arg $ log_level_arg)

let stats_cmd =
  let follow_arg =
    Arg.(value & flag
         & info [ "follow" ]
             ~doc:"Keep scraping: print a fresh snapshot every $(b,--interval) seconds.")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Delay between snapshots with $(b,--follow).")
  in
  let run addr follow interval =
    if interval <= 0.0 then begin
      prerr_endline "stats: interval must be positive";
      exit 1
    end;
    let fetch () =
      match Agp_serve.Loadgen.fetch_metrics addr with
      | Ok text ->
          print_string text;
          flush stdout
      | Error e ->
          prerr_endline ("stats: " ^ e);
          exit 1
    in
    fetch ();
    if follow then
      while true do
        Thread.delay interval;
        print_newline ();
        fetch ()
      done
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Scrape a running $(b,agp serve) daemon's live telemetry as Prometheus text \
          exposition: cumulative counters and histograms since boot plus rolling-window \
          p50/p90/p99 (last 60 s) for request latency, queueing and execution."
       ~man:
         [
           `S Manpage.s_examples;
           `P "agp stats --addr unix:/tmp/agp.sock";
           `P "agp stats --addr :7421 --follow --interval 1";
         ])
    Term.(const run $ addr_arg $ follow_arg $ interval_arg)

let loadgen_cmd =
  let module Serve = Agp_serve in
  let backend_name_arg =
    Arg.(value & opt string "simulator"
         & info [ "backend" ] ~docv:"NAME" ~doc:"Backend each request should run on.")
  in
  let tenant_arg =
    Arg.(value & opt string "loadgen"
         & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant name requests are accounted to.")
  in
  let obs_arg =
    Arg.(value & flag
         & info [ "obs" ] ~doc:"Request an embedded obs run report with each result.")
  in
  let rates_arg =
    Arg.(value & opt (list float) [ 25.0; 50.0; 100.0; 200.0 ]
         & info [ "rates" ] ~docv:"R1,R2,.."
             ~doc:"Open-loop offered loads (requests/sec) for the saturation sweep.")
  in
  let duration_arg =
    Arg.(value & opt float 2.0
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Time spent at each offered rate.")
  in
  let closed_arg =
    Arg.(value & flag
         & info [ "closed" ]
             ~doc:"Closed-loop mode: a fixed worker pool instead of paced arrivals.")
  in
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop mode: concurrent connections.")
  in
  let requests_arg =
    Arg.(value & opt int 50
         & info [ "requests" ] ~docv:"N" ~doc:"Closed-loop mode: requests per connection.")
  in
  let json_out_arg =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:
               "Write the sweep as a schema-versioned serve-saturation report — comparable \
                with $(b,agp diff) to gate serving-throughput regressions.")
  in
  let stop_arg =
    Arg.(value & flag
         & info [ "stop" ] ~doc:"Just ask the daemon to drain and shut down, then exit.")
  in
  let run addr scale seed app backend tenant obs rates duration closed clients requests
      json_out stop =
    let fail e =
      prerr_endline ("loadgen: " ^ e);
      exit 1
    in
    if stop then begin
      match Serve.Loadgen.shutdown addr with
      | Ok completed -> Printf.printf "daemon drained after %d completed requests\n" completed
      | Error e -> fail e
    end
    else begin
      let spec =
        {
          Serve.Loadgen.app;
          scale = Workloads.scale_name scale;
          seed;
          backend;
          tenant;
          obs;
        }
      in
      let summaries =
        if closed then begin
          match Serve.Loadgen.closed_loop ~spec ~addr ~clients ~requests () with
          | Ok s -> [ s ]
          | Error e -> fail e
        end
        else begin
          match Serve.Loadgen.saturation ~spec ~addr ~rates ~duration_s:duration () with
          | Ok ss -> ss
          | Error e -> fail e
        end
      in
      print_endline (Serve.Loadgen.render summaries);
      Option.iter
        (fun path ->
          let doc =
            Serve.Loadgen.report
              ~meta:
                [
                  ("app", spec.Serve.Loadgen.app);
                  ("scale", spec.Serve.Loadgen.scale);
                  ("backend", spec.Serve.Loadgen.backend);
                  ("mode", (if closed then "closed" else "open"));
                ]
              summaries
          in
          write_file ~what:"saturation report" path (Agp_obs.Report.to_string doc);
          Printf.printf "wrote %s (schema v%d; diff two of these with `agp diff`)\n" path
            Agp_obs.Report.schema_version)
        json_out;
      if List.exists (fun s -> s.Serve.Loadgen.lost > 0) summaries then begin
        prerr_endline "loadgen: some requests got no response before the drain deadline";
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running $(b,agp serve) daemon: open-loop saturation sweeps over offered \
          arrival rates (requests/sec, p50/p90/p99 latency, shed rate per rate) or a \
          closed-loop throughput probe, with an optional machine-readable report for \
          $(b,agp diff)."
       ~man:
         [
           `S Manpage.s_examples;
           `P "agp loadgen --addr unix:/tmp/agp.sock --rates 50,100,200 --duration 2";
           `P "agp loadgen --addr :7421 --closed --clients 8 --requests 100";
           `P "agp loadgen --addr unix:/tmp/agp.sock --stop";
         ])
    Term.(
      const run $ addr_arg $ scale_arg $ seed_arg
      $ Arg.(
          value & opt string "spec-bfs"
          & info [ "app" ] ~docv:"APP"
              ~doc:"Application each request should run (see $(b,agp spec)).")
      $ backend_name_arg $ tenant_arg $ obs_arg $ rates_arg $ duration_arg $ closed_arg
      $ clients_arg $ requests_arg $ json_out_arg $ stop_arg)

let () =
  let doc = "Aggressive pipelining of irregular applications — reproduction toolkit" in
  let main = Cmd.group (Cmd.info "agp" ~doc ~version:Agp_util.Version.version)
      [
        fig9_cmd;
        fig10_cmd;
        table1_cmd;
        resources_cmd;
        schedule_cmd;
        dot_cmd;
        spec_cmd;
        run_cmd;
        backends_cmd;
        observe_cmd;
        diff_cmd;
        explore_cmd;
        trace_cmd;
        amplify_cmd;
        serve_cmd;
        stats_cmd;
        loadgen_cmd;
        version_cmd;
      ]
  in
  exit (Cmd.eval main)
