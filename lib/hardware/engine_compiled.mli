(** Compiled cycle engine: the tree-walking {!Agp_core.Engine} +
    {!Accelerator} cycle loop fused into a bytecode dispatch loop over
    {!Agp_core.Opcode} op arrays.

    The spec is compiled once ({!Agp_core.Opcode.compile}); tasks are
    pooled mutable frames whose registers and payloads live in
    preallocated unboxed int/float arrays, task queues are rings, the
    priority queue is a flat binary heap, and per-cycle stall
    attribution accumulates in a flat int matrix — the steady-state
    loop allocates zero words per cycle.  Idle cycles are skipped by
    the same next-ready fast-forward wheel as the legacy loop.

    Semantics and timing are replicated exactly: a run produces the
    same final state, cycle count, engine statistics, attribution and
    event stream as the legacy engine (asserted by the conformance
    qcheck in [test/test_conformance.ml]). *)

type result = {
  r_cycles : int;
  r_active_op_cycles : int;
  r_peak_in_flight : int;
  r_total_stage_ops : int;
  r_minor_words : float;  (** minor-heap words allocated inside the cycle loop *)
  r_stats : Agp_core.Engine.stats;
  r_attr : Agp_obs.Attribution.t;
  r_mem : Memory.t;
}

val run :
  ?timeline:Agp_obs.Timeline.t ->
  cfg:Config.t ->
  sink:Agp_obs.Sink.t ->
  spec:Agp_core.Spec.t ->
  bindings:Agp_core.Spec.bindings ->
  state:Agp_core.State.t ->
  initial:(string * Agp_core.Value.t list) list ->
  unit ->
  result
(** Simulate to quiescence, mutating [state] exactly as {!Accelerator}
    (and the software runtimes) would.  The wrapper in {!Accelerator}
    turns the result into a full [report].
    @raise Failure on deadlock or divergence. *)
