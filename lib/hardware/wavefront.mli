(** Wavefront allocator (Becker & Dally, SC'09) — the arbiter the paper
    places between a multi-bank task queue's banks and the pipelines
    consuming from it (§5.2): each cycle it computes a conflict-free
    matching between requesting banks and free pipeline ports, with a
    rotating priority diagonal for fairness.

    This is the explicit component model behind the issue stage of
    {!Accelerator} (which abstracts it as "at most [queue_banks] pops
    per set per cycle"); it is exposed so the arbitration itself can be
    tested and its fairness characterized. *)

type t

val create : ?sink:Agp_obs.Sink.t -> banks:int -> ports:int -> unit -> t
(** [sink] (default {!Agp_obs.Sink.null}) receives one [Arb_grant]
    event per granted (bank, port) pair, timestamped with the
    allocation round (each {!allocate} call is one cycle). *)

val banks : t -> int

val ports : t -> int

val allocate : t -> requests:bool array array -> (int * int) list
(** [allocate t ~requests] computes one cycle's matching.
    [requests.(b).(p)] means bank [b] wants to deliver to port [p].
    Returns granted (bank, port) pairs — at most one grant per bank and
    per port — and rotates the priority diagonal.
    @raise Invalid_argument on a shape mismatch. *)

val allocate_uniform : t -> requesting:bool array -> (int * int) list
(** Common case: every requesting bank can feed any port. *)

val grant_counts : t -> int array
(** Total grants per bank since creation (for fairness checks). *)
