(* Compiled cycle engine: executes an {!Agp_core.Opcode.program} over
   pooled, preallocated mutable frames instead of tree-walking
   [Spec.op] lists with hashtable environments.

   The engine is cycle- and state-equivalent to running
   {!Agp_core.Engine} under the legacy [Accelerator] loop: same cycle
   count, same engine statistics, same memory traffic, same stall
   attribution and same observability event stream.  Equivalence is
   enforced by the conformance matrix (the [simulator:classic] backend
   keeps the tree-walking path alive as an oracle) and by a qcheck
   cycle-equivalence test.

   What makes it fast:
   - task bodies are flat op arrays dispatched by pc ([match code.(pc)]),
     no [List.nth]/[@] on every step;
   - expressions and rule conditions are postfix bytecode evaluated over
     preallocated scratch stacks (ints + floats + tags, no [Value.t]
     boxing on the hot path);
   - tasks, rule instances, queues, the uncommitted-order heap and the
     pipeline windows are pooled flat structures recycled through free
     lists, so the steady-state loop allocates no words per cycle;
   - time advances straight to the next ready timestamp (the event
     wheel): when every in-flight frame is waiting out memory latency
     the loop jumps to [min ready] instead of polling cycle by cycle. *)

module Spec = Agp_core.Spec
module Value = Agp_core.Value
module Index = Agp_core.Index
module State = Agp_core.State
module Opcode = Agp_core.Opcode
module Engine = Agp_core.Engine
module Binop = Agp_core.Binop
module Bdfg = Agp_dataflow.Bdfg
module Vec = Agp_util.Vec
module Sink = Agp_obs.Sink
module Event = Agp_obs.Event
module Attribution = Agp_obs.Attribution
module Timeline = Agp_obs.Timeline

(* value tags on the scratch stacks / frames *)
let tg_int = 0

let tg_float = 1

let tg_bool = 2

let tg_unbound = 3

(* task status codes, mirroring Engine.status *)
let s_pending = 1

let s_running = 2

let s_waiting = 3

let s_committed = 4

let s_squashed = 5

type ctask = {
  mutable tid : int;
  mutable set : int;
  mutable idx : int array; (* well-order index, width = max n_sets 1 *)
  mutable pay_i : int array;
  mutable pay_f : float array;
  mutable pay_tg : int array;
  mutable n_pay : int;
  reg_i : int array;
  reg_f : float array;
  reg_tg : int array; (* tg_unbound until written *)
  handles : cinst array; (* nil_inst = unallocated *)
  insts : cinst Vec.t; (* every instance this incarnation allocated *)
  mutable pc : int;
  mutable status : int;
  mutable await_dst : int;
  mutable await_inst : cinst; (* nil_inst = not awaiting *)
  mutable bcast : bool; (* fired its commit broadcast (first Emit) *)
  (* in-flight frame state (a task sits in at most one window) *)
  mutable fr_ready : int;
  mutable fr_ops : int;
}

and cinst = {
  mutable ri_rule : int;
  mutable ri_parent : ctask;
  ri_pi : int array;
  ri_pf : float array;
  ri_ptg : int array;
  mutable ri_np : int;
  mutable ri_counter : int;
  mutable ri_resolved : int; (* 0 = unresolved, 1 = false, 2 = true *)
  mutable ri_pos : int; (* slot in the live vec, -1 = not live *)
}

let rec nil_task =
  {
    tid = -1;
    set = -1;
    idx = [||];
    pay_i = [||];
    pay_f = [||];
    pay_tg = [||];
    n_pay = 0;
    reg_i = [||];
    reg_f = [||];
    reg_tg = [||];
    handles = [||];
    insts = Vec.create ();
    pc = 0;
    status = 0;
    await_dst = -1;
    await_inst = nil_inst;
    bcast = false;
    fr_ready = 0;
    fr_ops = 0;
  }

and nil_inst =
  {
    ri_rule = -1;
    ri_parent = nil_task;
    ri_pi = [||];
    ri_pf = [||];
    ri_ptg = [||];
    ri_np = 0;
    ri_counter = 0;
    ri_resolved = 0;
    ri_pos = -1;
  }

(* per-set pending queue: FIFO ring of task pointers with push_front for
   TLS-style retry re-activation *)
type ring = {
  mutable rd : ctask array;
  mutable rh : int;
  mutable rl : int;
}

let ring_create () = { rd = Array.make 8 nil_task; rh = 0; rl = 0 }

let ring_grow r =
  let cap = Array.length r.rd in
  let nd = Array.make (cap * 2) nil_task in
  for i = 0 to r.rl - 1 do
    nd.(i) <- r.rd.((r.rh + i) mod cap)
  done;
  r.rd <- nd;
  r.rh <- 0

let ring_push r x =
  if r.rl = Array.length r.rd then ring_grow r;
  r.rd.((r.rh + r.rl) mod Array.length r.rd) <- x;
  r.rl <- r.rl + 1

let ring_push_front r x =
  if r.rl = Array.length r.rd then ring_grow r;
  let cap = Array.length r.rd in
  r.rh <- (r.rh + cap - 1) mod cap;
  r.rd.(r.rh) <- x;
  r.rl <- r.rl + 1

let ring_pop r =
  let x = r.rd.(r.rh) in
  r.rd.(r.rh) <- nil_task;
  r.rh <- (r.rh + 1) mod Array.length r.rd;
  r.rl <- r.rl - 1;
  x

let ring_peek r = if r.rl = 0 then nil_task else r.rd.(r.rh)

(* state array resolved at engine creation *)
type adata =
  | A_int of int array
  | A_float of float array
  | A_missing

(* logged event for counted-rule scoreboard reconstruction; only
   populated when the program has counted rules *)
type lev = {
  le_kind : int; (* 0 = activated, 1 = reached *)
  le_label : int;
  le_set : int;
  le_idx : int array;
  le_i : int array;
  le_f : float array;
  le_tg : int array;
  le_n : int;
}

type pipe = {
  cp_set : int;
  cp_set_name : string;
  cp_id : int;
  cp_capacity : int;
  cp_stage_ops : int;
  mutable cp_win : ctask array; (* window in legacy list order, head at 0 *)
  mutable cp_n : int;
  mutable cp_stepped : bool;
}

type t = {
  prog : Opcode.program;
  st : State.t;
  cfg : Config.t;
  mem : Memory.t;
  sink : Sink.t;
  stats : Engine.stats;
  width : int;
  counters : int array; (* For_each stamps *)
  rings : ring array;
  mutable next_tid : int;
  mutable running : int;
  waiting : ctask Vec.t; (* append order = oldest first *)
  (* binary min-heap over (index row, task, tid) — replicates
     Agp_util.Heap's sift exactly so tie-breaking matches the legacy
     engine *)
  mutable h_idx : int array; (* flattened rows, width stride *)
  mutable h_task : ctask array;
  mutable h_tid : int array;
  mutable h_len : int;
  live : cinst Vec.t;
  snap : cinst Vec.t; (* iteration snapshot for event firing *)
  free_tasks : ctask Vec.t;
  free_insts : cinst Vec.t;
  mutable last_min_broadcast : int;
  log : lev Vec.t;
  prim_impls : Spec.prim_impl option array;
  prim_count : int array;
  prim_lat : int array; (* compute latency per prim *)
  expected_fns : (Value.t list -> int) option array; (* per rule *)
  arr_data : adata array;
  arr_base : int array;
  base_memo : (string, int) Hashtbl.t; (* prim-trace address bases *)
  (* eval scratch *)
  st_i : int array;
  st_f : float array;
  st_tg : int array;
  (* current event context for rule-condition evaluation *)
  mutable ev_i : int array;
  mutable ev_f : float array;
  mutable ev_tg : int array;
  mutable ev_n : int;
  mutable cx_earlier : bool;
  mutable cx_later : bool;
  (* emit / push / alloc argument scratch *)
  em_i : int array;
  em_f : float array;
  em_tg : int array;
  ar_i : int array;
  ar_f : float array;
  ar_tg : int array;
  resumed : ctask Vec.t;
  mutable step_lat : int;
}

(* --- index rows --- *)

(* top-level recursion: a local [let rec loop] closure would allocate
   on every call, and this is the hottest comparator in the engine *)
let rec idx_cmp_from (a : int array) (b : int array) n i =
  if i >= n then 0
  else begin
    let x = a.(i) and y = b.(i) in
    if x < y then -1 else if x > y then 1 else idx_cmp_from a b n (i + 1)
  end

let idx_cmp (a : int array) (b : int array) = idx_cmp_from a b (Array.length a) 0

(* --- value helpers replicating Interp/Value error strings ---

   The binop table itself and the cold raisers now live in
   {!Agp_core.Binop}, shared with the tree-walking [Interp] so the two
   evaluators cannot drift; the local tag constants above are the same
   encoding (asserted below) and stay literal so ocamlopt keeps
   propagating them as immediates in the hot tag checks. *)

let () =
  assert (
    tg_int = Binop.tg_int
    && tg_float = Binop.tg_float
    && tg_bool = Binop.tg_bool
    && tg_unbound = Binop.tg_unbound)

let vstr = Binop.vstr

(* cold raising helpers: callers check the tag inline so the hot path
   never passes a float across a function boundary (OCaml boxes float
   arguments of non-inlined calls, which was the engine's dominant
   steady-state allocation) *)
let bool_type_error = Binop.bool_type_error

let int_type_error = Binop.int_type_error

let truthy_type_error = Binop.truthy_type_error

let arith_error = Binop.arith_error

(* out-of-range CParam/CField probe: the clause does not match *)
exception Oor

(* int-typed max/min: the polymorphic [Stdlib.max] calls the generic
   comparison out-of-line on every use *)
let imax (a : int) b = if a >= b then a else b

let imin (a : int) b = if a <= b then a else b

(* evaluate postfix bytecode; the result lands in stack slot 0.
   [tk] supplies Param/Var frames; [inst] supplies rule params for
   condition code (pass nil_inst for task-body expressions). *)
(* valid CAM cell: negative ints are padding and never match *)
let cam_valid tg i = tg <> tg_int || i >= 0

(* any valid param tail value (from [p]) equal to any valid field tail
   value (from [f]); top-level recursion keeps this allocation-free *)
let rec overlap_row en (inst : cinst) p f =
  if f >= en.ev_n then false
  else if
    cam_valid en.ev_tg.(f) en.ev_i.(f)
    (* Value.equal semantics, inline: same constructor, same value
       (float NaN compares unequal) *)
    && inst.ri_ptg.(p) = en.ev_tg.(f)
    && (if inst.ri_ptg.(p) = tg_float then inst.ri_pf.(p) = en.ev_f.(f)
        else inst.ri_pi.(p) = en.ev_i.(f))
  then true
  else overlap_row en inst p (f + 1)

let rec overlap_scan en (inst : cinst) p f =
  if p >= inst.ri_np then false
  else if cam_valid inst.ri_ptg.(p) inst.ri_pi.(p) && overlap_row en inst p f then true
  else overlap_scan en inst (p + 1) f

(* the stack pointer is threaded as an argument (a [ref] here would
   allocate on every expression evaluation) *)
let rec eval_ops en (tk : ctask) (inst : cinst) (code : Opcode.eop array) n k sp =
  if k < n then
    let sp =
      match code.(k) with
      | Opcode.E_int v ->
          en.st_i.(sp) <- v;
          en.st_tg.(sp) <- tg_int;
          sp + 1
      | Opcode.E_float x ->
          en.st_f.(sp) <- x;
          en.st_tg.(sp) <- tg_float;
          sp + 1
      | Opcode.E_bool b ->
          en.st_i.(sp) <- (if b then 1 else 0);
          en.st_tg.(sp) <- tg_bool;
          sp + 1
      | Opcode.E_param i ->
          if i < 0 || i >= tk.n_pay then
            invalid_arg (Printf.sprintf "Interp: Param %d out of range" i);
          en.st_i.(sp) <- tk.pay_i.(i);
          en.st_f.(sp) <- tk.pay_f.(i);
          en.st_tg.(sp) <- tk.pay_tg.(i);
          sp + 1
      | Opcode.E_reg (r, name) ->
          if tk.reg_tg.(r) = tg_unbound then invalid_arg ("Interp: unbound variable " ^ name);
          en.st_i.(sp) <- tk.reg_i.(r);
          en.st_f.(sp) <- tk.reg_f.(r);
          en.st_tg.(sp) <- tk.reg_tg.(r);
          sp + 1
      | Opcode.E_binop op ->
          (* the shared semantics table (Agp_core.Binop): direct call on
             arrays + int slots, nothing boxed *)
          Binop.exec en.st_i en.st_f en.st_tg op (sp - 2) (sp - 1);
          sp - 1
      | Opcode.E_not ->
          let a = sp - 1 in
          if en.st_tg.(a) <> tg_bool then bool_type_error en.st_tg.(a) en.st_i.(a) en.st_f.(a);
          en.st_i.(a) <- (if en.st_i.(a) <> 0 then 0 else 1);
          en.st_tg.(a) <- tg_bool;
          sp
      | Opcode.E_neg ->
          let a = sp - 1 in
          if en.st_tg.(a) = tg_int then en.st_i.(a) <- -en.st_i.(a)
          else if en.st_tg.(a) = tg_float then en.st_f.(a) <- -.en.st_f.(a)
          else arith_error "negation";
          sp
      | Opcode.E_cparam i ->
          if i < 0 || i >= inst.ri_np then raise Oor;
          en.st_i.(sp) <- inst.ri_pi.(i);
          en.st_f.(sp) <- inst.ri_pf.(i);
          en.st_tg.(sp) <- inst.ri_ptg.(i);
          sp + 1
      | Opcode.E_cfield i ->
          if i < 0 || i >= en.ev_n then raise Oor;
          en.st_i.(sp) <- en.ev_i.(i);
          en.st_f.(sp) <- en.ev_f.(i);
          en.st_tg.(sp) <- en.ev_tg.(i);
          sp + 1
      | Opcode.E_earlier ->
          en.st_i.(sp) <- (if en.cx_earlier then 1 else 0);
          en.st_tg.(sp) <- tg_bool;
          sp + 1
      | Opcode.E_later ->
          en.st_i.(sp) <- (if en.cx_later then 1 else 0);
          en.st_tg.(sp) <- tg_bool;
          sp + 1
      | Opcode.E_overlap (p, f) ->
          en.st_i.(sp) <- (if overlap_scan en inst p f then 1 else 0);
          en.st_tg.(sp) <- tg_bool;
          sp + 1
    in
    eval_ops en tk inst code n (k + 1) sp

let eval en (tk : ctask) (inst : cinst) (code : Opcode.eop array) =
  eval_ops en tk inst code (Array.length code) 0 0

(* --- task / instance pools --- *)

let ensure_pay tk n =
  if Array.length tk.pay_i < n then begin
    tk.pay_i <- Array.make n 0;
    tk.pay_f <- Array.make n 0.0;
    tk.pay_tg <- Array.make n tg_int
  end

let new_task en ~set ~n_pay =
  let p = en.prog in
  let tk =
    if Vec.length en.free_tasks > 0 then Vec.pop en.free_tasks
    else
      {
        tid = 0;
        set = 0;
        idx = Array.make en.width 0;
        pay_i = Array.make (max p.Opcode.max_arity p.Opcode.max_push_args) 0;
        pay_f = Array.make (max p.Opcode.max_arity p.Opcode.max_push_args) 0.0;
        pay_tg = Array.make (max p.Opcode.max_arity p.Opcode.max_push_args) tg_int;
        n_pay = 0;
        reg_i = Array.make p.Opcode.max_regs 0;
        reg_f = Array.make p.Opcode.max_regs 0.0;
        reg_tg = Array.make p.Opcode.max_regs tg_unbound;
        handles = Array.make p.Opcode.max_handles nil_inst;
        insts = Vec.create ();
        pc = 0;
        status = s_pending;
        await_dst = -1;
        await_inst = nil_inst;
        bcast = false;
        fr_ready = 0;
        fr_ops = 0;
      }
  in
  tk.tid <- en.next_tid;
  en.next_tid <- en.next_tid + 1;
  tk.set <- set;
  ensure_pay tk n_pay;
  tk.n_pay <- n_pay;
  Array.fill tk.reg_tg 0 (Array.length tk.reg_tg) tg_unbound;
  Array.fill tk.handles 0 (Array.length tk.handles) nil_inst;
  Vec.clear tk.insts;
  tk.pc <- p.Opcode.entry.(set);
  tk.status <- s_pending;
  tk.await_dst <- -1;
  tk.await_inst <- nil_inst;
  tk.bcast <- false;
  tk.fr_ready <- 0;
  tk.fr_ops <- 0;
  tk

let new_inst en =
  if Vec.length en.free_insts > 0 then Vec.pop en.free_insts
  else
    {
      ri_rule = 0;
      ri_parent = nil_task;
      ri_pi = Array.make en.prog.Opcode.max_rule_params 0;
      ri_pf = Array.make en.prog.Opcode.max_rule_params 0.0;
      ri_ptg = Array.make en.prog.Opcode.max_rule_params tg_int;
      ri_np = 0;
      ri_counter = 0;
      ri_resolved = 0;
      ri_pos = -1;
    }

(* --- uncommitted-order heap (replicates Agp_util.Heap's sifts) --- *)

let heap_ensure en =
  let cap = Array.length en.h_task in
  if en.h_len = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nt = Array.make ncap nil_task and ni = Array.make (ncap * en.width) 0 in
    let nd = Array.make ncap 0 in
    Array.blit en.h_task 0 nt 0 cap;
    Array.blit en.h_idx 0 ni 0 (cap * en.width);
    Array.blit en.h_tid 0 nd 0 cap;
    en.h_task <- nt;
    en.h_idx <- ni;
    en.h_tid <- nd
  end

let rec heap_cmp_from (h : int array) bi bj w k =
  if k >= w then 0
  else begin
    let x = h.(bi + k) and y = h.(bj + k) in
    if x < y then -1 else if x > y then 1 else heap_cmp_from h bi bj w (k + 1)
  end

let heap_cmp en i j =
  let w = en.width in
  heap_cmp_from en.h_idx (i * w) (j * w) w 0

let heap_swap en i j =
  let w = en.width in
  let t = en.h_task.(i) in
  en.h_task.(i) <- en.h_task.(j);
  en.h_task.(j) <- t;
  let d = en.h_tid.(i) in
  en.h_tid.(i) <- en.h_tid.(j);
  en.h_tid.(j) <- d;
  for k = 0 to w - 1 do
    let x = en.h_idx.((i * w) + k) in
    en.h_idx.((i * w) + k) <- en.h_idx.((j * w) + k);
    en.h_idx.((j * w) + k) <- x
  done

let rec heap_sift_up en i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_cmp en i parent < 0 then begin
      heap_swap en i parent;
      heap_sift_up en parent
    end
  end

let rec heap_sift_down en i =
  let n = en.h_len in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < n && heap_cmp en l i < 0 then l else i in
  let s = if r < n && heap_cmp en r s < 0 then r else s in
  if s <> i then begin
    heap_swap en i s;
    heap_sift_down en s
  end

let heap_push en (tk : ctask) =
  heap_ensure en;
  let i = en.h_len in
  en.h_task.(i) <- tk;
  en.h_tid.(i) <- tk.tid;
  Array.blit tk.idx 0 en.h_idx (i * en.width) en.width;
  en.h_len <- en.h_len + 1;
  heap_sift_up en i

let heap_drop_top en =
  let last = en.h_len - 1 in
  if last > 0 then begin
    en.h_task.(0) <- en.h_task.(last);
    en.h_tid.(0) <- en.h_tid.(last);
    Array.blit en.h_idx (last * en.width) en.h_idx 0 en.width
  end;
  en.h_task.(last) <- nil_task;
  en.h_len <- last;
  if last > 0 then heap_sift_down en 0

(* lazy-deletion peek: the minimum uncommitted, pre-broadcast task.
   A recycled slot (tid mismatch) means the original task finished. *)
let rec min_uncommitted en =
  if en.h_len = 0 then nil_task
  else begin
    let tk = en.h_task.(0) in
    if
      tk.tid = en.h_tid.(0)
      && (tk.status = s_pending || tk.status = s_running || tk.status = s_waiting)
      && not tk.bcast
    then tk
    else begin
      heap_drop_top en;
      min_uncommitted en
    end
  end

(* --- rule resolution --- *)

let resolve en inst b =
  if inst.ri_resolved = 0 then begin
    inst.ri_resolved <- (if b then 2 else 1);
    if inst.ri_pos >= 0 then begin
      let last = Vec.pop en.live in
      if last != inst then begin
        Vec.set en.live inst.ri_pos last;
        last.ri_pos <- inst.ri_pos
      end;
      inst.ri_pos <- -1
    end
  end

let clause_matches (c : Opcode.cclause) ~kind ~set ~label =
  match c.Opcode.c_kind with
  | 0 -> kind = 0 && c.Opcode.c_set = set
  | 1 -> kind = 1 && c.Opcode.c_set = set && c.Opcode.c_label = label
  | _ -> false

(* evaluate a clause condition against the current event context;
   out-of-range probes make the clause not match, any other evaluation
   error propagates (matching Interp.eval_cond_strict) *)
let clause_holds en inst (c : Opcode.cclause) =
  match eval en nil_task inst c.Opcode.c_cond with
  | () ->
      if en.st_tg.(0) <> tg_bool then bool_type_error en.st_tg.(0) en.st_i.(0) en.st_f.(0);
      en.st_i.(0) <> 0
  | exception Oor -> false

let apply_clause en inst (c : Opcode.cclause) =
  if clause_holds en inst c then begin
    match c.Opcode.c_return with
    | Some b ->
        en.stats.Engine.clause_resolutions <- en.stats.Engine.clause_resolutions + 1;
        resolve en inst b
    | None ->
        inst.ri_counter <- inst.ri_counter - 1;
        if inst.ri_counter <= 0 then begin
          en.stats.Engine.clause_resolutions <- en.stats.Engine.clause_resolutions + 1;
          resolve en inst true
        end
  end

(* dispatch an event (kind 0 = activated, 1 = reached) to all live rule
   instances; the event-field context must already be set *)
let fire_event en ~kind ~set ~label ~(index : int array) ~source_tid =
  en.stats.Engine.events_fired <- en.stats.Engine.events_fired + 1;
  if en.prog.Opcode.has_counted then begin
    let n = en.ev_n in
    Vec.push en.log
      {
        le_kind = kind;
        le_label = label;
        le_set = set;
        le_idx = Array.copy index;
        le_i = Array.sub en.ev_i 0 n;
        le_f = Array.sub en.ev_f 0 n;
        le_tg = Array.sub en.ev_tg 0 n;
        le_n = n;
      }
  end;
  Vec.clear en.snap;
  for i = 0 to Vec.length en.live - 1 do
    Vec.push en.snap (Vec.get en.live i)
  done;
  for i = 0 to Vec.length en.snap - 1 do
    let inst = Vec.get en.snap i in
    if inst.ri_resolved = 0 && inst.ri_parent.tid <> source_tid then begin
      let cmp = idx_cmp index inst.ri_parent.idx in
      en.cx_earlier <- cmp < 0;
      en.cx_later <- cmp > 0;
      let cls = en.prog.Opcode.rules.(inst.ri_rule).Opcode.r_clauses in
      for k = 0 to Array.length cls - 1 do
        if inst.ri_resolved = 0 && clause_matches cls.(k) ~kind ~set ~label then
          apply_clause en inst cls.(k)
      done
    end
  done

let fire_min_changed en ~(index : int array) ~source_tid =
  en.stats.Engine.events_fired <- en.stats.Engine.events_fired + 1;
  Vec.clear en.snap;
  for i = 0 to Vec.length en.live - 1 do
    Vec.push en.snap (Vec.get en.live i)
  done;
  for i = 0 to Vec.length en.snap - 1 do
    let inst = Vec.get en.snap i in
    if inst.ri_resolved = 0 && inst.ri_parent.tid <> source_tid then begin
      let cmp = idx_cmp index inst.ri_parent.idx in
      en.cx_earlier <- cmp < 0;
      en.cx_later <- cmp > 0;
      let cls = en.prog.Opcode.rules.(inst.ri_rule).Opcode.r_clauses in
      for k = 0 to Array.length cls - 1 do
        if inst.ri_resolved = 0 && cls.(k).Opcode.c_kind = 2 then apply_clause en inst cls.(k)
      done
    end
  done

(* --- counted-rule allocation: replay the event log --- *)

let count_past_matches en rule_id inst (parent_idx : int array) =
  let count = ref 0 in
  let cls = en.prog.Opcode.rules.(rule_id).Opcode.r_clauses in
  Vec.iter
    (fun ev ->
      let cmp = idx_cmp ev.le_idx parent_idx in
      en.cx_earlier <- cmp < 0;
      en.cx_later <- cmp > 0;
      en.ev_i <- ev.le_i;
      en.ev_f <- ev.le_f;
      en.ev_tg <- ev.le_tg;
      en.ev_n <- ev.le_n;
      let hit = ref false in
      for k = 0 to Array.length cls - 1 do
        if
          (not !hit)
          && cls.(k).Opcode.c_return = None
          && clause_matches cls.(k) ~kind:ev.le_kind ~set:ev.le_set ~label:ev.le_label
          && clause_holds en inst cls.(k)
        then hit := true
      done;
      if !hit then incr count)
    en.log;
  !count

(* boxed view of an instance's params, for the expected-count binding *)
let boxed_params inst =
  let rec go i acc =
    if i < 0 then acc
    else begin
      let v =
        if inst.ri_ptg.(i) = tg_int then Value.Int inst.ri_pi.(i)
        else if inst.ri_ptg.(i) = tg_float then Value.Float inst.ri_pf.(i)
        else Value.Bool (inst.ri_pi.(i) <> 0)
      in
      go (i - 1) (v :: acc)
    end
  in
  go (inst.ri_np - 1) []

(* args already evaluated into ar_*; nargs of them *)
let alloc_rule en (tk : ctask) ~rule_id ~nargs =
  let r = en.prog.Opcode.rules.(rule_id) in
  let inst = new_inst en in
  inst.ri_rule <- rule_id;
  inst.ri_parent <- tk;
  Array.blit en.ar_i 0 inst.ri_pi 0 nargs;
  Array.blit en.ar_f 0 inst.ri_pf 0 nargs;
  Array.blit en.ar_tg 0 inst.ri_ptg 0 nargs;
  inst.ri_np <- nargs;
  inst.ri_resolved <- 0;
  inst.ri_pos <- -1;
  inst.ri_counter <-
    (if r.Opcode.r_counted then begin
       let expected =
         match en.expected_fns.(rule_id) with
         | Some f -> f (boxed_params inst)
         | None ->
             invalid_arg
               ("Engine: counted rule " ^ r.Opcode.r_name ^ " has no expected binding")
       in
       expected - count_past_matches en rule_id inst tk.idx
     end
     else 0);
  en.stats.Engine.rule_allocs <- en.stats.Engine.rule_allocs + 1;
  if r.Opcode.r_counted && inst.ri_counter <= 0 then inst.ri_resolved <- 2
  else begin
    inst.ri_pos <- Vec.length en.live;
    Vec.push en.live inst
  end;
  Vec.push tk.insts inst;
  inst

(* --- activation --- *)

let enqueue en (tk : ctask) ~front =
  let r = en.rings.(tk.set) in
  if front then ring_push_front r tk else ring_push r tk;
  heap_push en tk;
  en.stats.Engine.activated <- en.stats.Engine.activated + 1;
  (* activated event: fields are the task payload *)
  en.ev_i <- tk.pay_i;
  en.ev_f <- tk.pay_f;
  en.ev_tg <- tk.pay_tg;
  en.ev_n <- tk.n_pay;
  fire_event en ~kind:0 ~set:tk.set ~label:(-1) ~index:tk.idx ~source_tid:tk.tid

let stamp en slot =
  if en.prog.Opcode.set_for_each.(slot) then begin
    let c = en.counters.(slot) in
    en.counters.(slot) <- c + 1;
    c
  end
  else 0

(* payload already evaluated into ar_* *)
let do_push en ~(parent_idx : int array) ~set ~nargs =
  let tk = new_task en ~set ~n_pay:nargs in
  Array.blit en.ar_i 0 tk.pay_i 0 nargs;
  Array.blit en.ar_f 0 tk.pay_f 0 nargs;
  Array.blit en.ar_tg 0 tk.pay_tg 0 nargs;
  (* child index: parent prefix up to the slot, then the stamp *)
  Array.fill tk.idx 0 en.width 0;
  Array.blit parent_idx 0 tk.idx 0 set;
  tk.idx.(set) <- stamp en set;
  enqueue en tk ~front:false

let push_initial en set_name payload =
  let set =
    let names = en.prog.Opcode.set_names in
    let rec find i =
      if i >= Array.length names then invalid_arg ("Engine: unknown task set " ^ set_name)
      else if names.(i) = set_name then i
      else find (i + 1)
    in
    find 0
  in
  let n = List.length payload in
  let tk = new_task en ~set ~n_pay:n in
  List.iteri
    (fun i v ->
      match (v : Value.t) with
      | Value.Int x ->
          tk.pay_i.(i) <- x;
          tk.pay_tg.(i) <- tg_int
      | Value.Float x ->
          tk.pay_f.(i) <- x;
          tk.pay_tg.(i) <- tg_float
      | Value.Bool b ->
          tk.pay_i.(i) <- (if b then 1 else 0);
          tk.pay_tg.(i) <- tg_bool)
    payload;
  Array.fill tk.idx 0 en.width 0;
  tk.idx.(set) <- stamp en set;
  enqueue en tk ~front:false

(* --- queue views --- *)

let pending_count en = Array.fold_left (fun acc r -> acc + r.rl) 0 en.rings

let min_pending_head en =
  let best = ref nil_task in
  for i = 0 to Array.length en.rings - 1 do
    let h = ring_peek en.rings.(i) in
    if h != nil_task && (!best == nil_task || idx_cmp h.idx !best.idx < 0) then best := h
  done;
  !best

let uncommitted_remaining en =
  en.running > 0 || Vec.length en.waiting > 0 || pending_count en > 0

(* --- finishing --- *)

let vec_truncate v n =
  while Vec.length v > n do
    ignore (Vec.pop v)
  done

let waiting_remove en tk =
  let n = Vec.length en.waiting in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let w = Vec.get en.waiting i in
    if w != tk then begin
      Vec.set en.waiting !j w;
      incr j
    end
  done;
  vec_truncate en.waiting !j

let release_task_rules en tk =
  Vec.iter
    (fun inst ->
      if inst.ri_pos >= 0 then begin
        let last = Vec.pop en.live in
        if last != inst then begin
          Vec.set en.live inst.ri_pos last;
          last.ri_pos <- inst.ri_pos
        end;
        inst.ri_pos <- -1
      end;
      inst.ri_parent <- nil_task;
      Vec.push en.free_insts inst)
    tk.insts;
  Vec.clear tk.insts

(* outcome codes *)
let oc_commit = 0

let oc_abort = 1

let oc_retry = 2

let finish en (tk : ctask) outcome =
  if tk.status = s_running then en.running <- en.running - 1
  else if tk.status = s_waiting then waiting_remove en tk;
  release_task_rules en tk;
  if outcome = oc_commit then begin
    tk.status <- s_committed;
    en.stats.Engine.committed <- en.stats.Engine.committed + 1;
    Vec.push en.free_tasks tk
  end
  else if outcome = oc_abort then begin
    tk.status <- s_squashed;
    en.stats.Engine.aborted <- en.stats.Engine.aborted + 1;
    Vec.push en.free_tasks tk
  end
  else begin
    tk.status <- s_squashed;
    en.stats.Engine.retried <- en.stats.Engine.retried + 1;
    (* TLS-style squash and re-execute in place: same index and payload,
       re-activated at the front of its queue *)
    let again = new_task en ~set:tk.set ~n_pay:tk.n_pay in
    Array.blit tk.idx 0 again.idx 0 en.width;
    Array.blit tk.pay_i 0 again.pay_i 0 tk.n_pay;
    Array.blit tk.pay_f 0 again.pay_f 0 tk.n_pay;
    Array.blit tk.pay_tg 0 again.pay_tg 0 tk.n_pay;
    enqueue en again ~front:true;
    Vec.push en.free_tasks tk
  end

(* --- stepping (with fused op latency) --- *)

let rc_stepped = 0

let rc_blocked = 1

let rc_finished = 2 (* + outcome in en.step_lat's sibling below *)

(* stack-slot-0 coercions with the tag check inline (no float crosses a
   call boundary on the non-error path) *)
let stack0_int en =
  if en.st_tg.(0) = tg_int then en.st_i.(0)
  else int_type_error en.st_tg.(0) en.st_i.(0) en.st_f.(0)

let stack0_truthy en =
  if en.st_tg.(0) = tg_bool || en.st_tg.(0) = tg_int then en.st_i.(0) <> 0
  else truthy_type_error en.st_tg.(0) en.st_i.(0) en.st_f.(0)

let eval_args en tk (args : Opcode.eop array array) =
  let n = Array.length args in
  for i = 0 to n - 1 do
    eval en tk nil_inst args.(i);
    en.ar_i.(i) <- en.st_i.(0);
    en.ar_f.(i) <- en.st_f.(0);
    en.ar_tg.(i) <- en.st_tg.(0)
  done;
  n

let array_missing en arr = invalid_arg ("State: unknown array " ^ en.prog.Opcode.array_names.(arr))

let bounds_err en arr i len =
  invalid_arg
    (Printf.sprintf "State: %s[%d] out of bounds (length %d)" en.prog.Opcode.array_names.(arr) i
       len)

let base_of en name =
  match Hashtbl.find_opt en.base_memo name with
  | Some b -> b
  | None ->
      let b = State.address_of en.st name 0 in
      Hashtbl.add en.base_memo name b;
      b

(* burst the prim's traced accesses at mlp-wide waves (replicates
   Memory.access_burst ~dependent:false over the drained trace) *)
let prim_mem_latency en ~now =
  let mlp = max 1 en.cfg.Config.mlp in
  let wave_now = ref now and wave_max = ref now and k = ref 0 in
  State.iter_trace en.st (fun a ->
      if !k = mlp then begin
        wave_now := !wave_max;
        k := 0
      end;
      let base = base_of en a.State.array_name in
      let c =
        Memory.access en.mem ~now:!wave_now
          ~addr:(base + (8 * a.State.index))
          ~is_write:a.State.is_write
      in
      if c > !wave_max then wave_max := c;
      incr k);
  State.clear_trace en.st;
  !wave_max

(* step one op of [tk] at cycle [now].  Returns [rc_stepped] (with
   [en.step_lat] set), [rc_blocked], or [rc_finished + outcome code].
   Mirrors Engine.step: the commit-on-empty-continuation does not count
   as an executed op. *)
let step en (tk : ctask) ~now =
  match en.prog.Opcode.code.(tk.pc) with
  | Opcode.I_commit ->
      finish en tk oc_commit;
      rc_finished + oc_commit
  | op -> begin
      en.stats.Engine.ops_executed <- en.stats.Engine.ops_executed + 1;
      match op with
      | Opcode.I_commit -> assert false
      | Opcode.I_let { dst; e; next } ->
          eval en tk nil_inst e;
          tk.reg_i.(dst) <- en.st_i.(0);
          tk.reg_f.(dst) <- en.st_f.(0);
          tk.reg_tg.(dst) <- en.st_tg.(0);
          tk.pc <- next;
          en.step_lat <- 1;
          rc_stepped
      | Opcode.I_load { dst; arr; addr; next } ->
          eval en tk nil_inst addr;
          let i = stack0_int en in
          begin
            match en.arr_data.(arr) with
            | A_int a ->
                if i < 0 || i >= Array.length a then bounds_err en arr i (Array.length a);
                tk.reg_i.(dst) <- a.(i);
                tk.reg_tg.(dst) <- tg_int
            | A_float a ->
                if i < 0 || i >= Array.length a then bounds_err en arr i (Array.length a);
                tk.reg_f.(dst) <- a.(i);
                tk.reg_tg.(dst) <- tg_float
            | A_missing -> array_missing en arr
          end;
          let completion =
            Memory.access en.mem ~now ~addr:(en.arr_base.(arr) + (8 * i)) ~is_write:false
          in
          tk.pc <- next;
          en.step_lat <- imax 1 (completion - now);
          rc_stepped
      | Opcode.I_store { arr; addr; v; next } ->
          eval en tk nil_inst addr;
          let i = stack0_int en in
          eval en tk nil_inst v;
          let tg = en.st_tg.(0) in
          begin
            match en.arr_data.(arr) with
            | A_int a ->
                if tg <> tg_int then
                  invalid_arg
                    (Printf.sprintf "State: type mismatch writing %s to %s"
                       (vstr tg en.st_i.(0) en.st_f.(0))
                       en.prog.Opcode.array_names.(arr));
                if i < 0 || i >= Array.length a then bounds_err en arr i (Array.length a);
                a.(i) <- en.st_i.(0)
            | A_float a ->
                if tg = tg_bool then
                  invalid_arg
                    (Printf.sprintf "State: type mismatch writing %s to %s"
                       (vstr tg en.st_i.(0) en.st_f.(0))
                       en.prog.Opcode.array_names.(arr));
                if i < 0 || i >= Array.length a then bounds_err en arr i (Array.length a);
                a.(i) <- (if tg = tg_int then float_of_int en.st_i.(0) else en.st_f.(0))
            | A_missing -> array_missing en arr
          end;
          (* posted write: the task proceeds next cycle while the line
             transfer still occupies cache and link *)
          ignore (Memory.access en.mem ~now ~addr:(en.arr_base.(arr) + (8 * i)) ~is_write:true);
          tk.pc <- next;
          en.step_lat <- 1;
          rc_stepped
      | Opcode.I_push { set; args; next } ->
          let n = eval_args en tk args in
          do_push en ~parent_idx:tk.idx ~set ~nargs:n;
          tk.pc <- next;
          en.step_lat <- 1;
          rc_stepped
      | Opcode.I_push_iter { set; lo; hi; ivar; args; next } ->
          eval en tk nil_inst lo;
          let lo_v = stack0_int en in
          eval en tk nil_inst hi;
          let hi_v = stack0_int en in
          for i = lo_v to hi_v - 1 do
            tk.reg_i.(ivar) <- i;
            tk.reg_tg.(ivar) <- tg_int;
            let n = eval_args en tk args in
            do_push en ~parent_idx:tk.idx ~set ~nargs:n
          done;
          tk.pc <- next;
          en.step_lat <- imax 1 (hi_v - lo_v);
          rc_stepped
      | Opcode.I_alloc { handle; rule; args; next; site = _ } ->
          let n = eval_args en tk args in
          let inst = alloc_rule en tk ~rule_id:rule ~nargs:n in
          tk.handles.(handle) <- inst;
          tk.pc <- next;
          en.step_lat <- 1;
          rc_stepped
      | Opcode.I_await { dst; handle; handle_name; next } -> begin
          let inst = tk.handles.(handle) in
          if inst == nil_inst then
            invalid_arg ("Engine: Await on unallocated handle " ^ handle_name);
          if inst.ri_resolved <> 0 then begin
            tk.reg_i.(dst) <- (if inst.ri_resolved = 2 then 1 else 0);
            tk.reg_tg.(dst) <- tg_bool;
            tk.pc <- next;
            en.step_lat <- 1;
            rc_stepped
          end
          else begin
            tk.status <- s_waiting;
            tk.await_dst <- dst;
            tk.await_inst <- inst;
            en.running <- en.running - 1;
            Vec.push en.waiting tk;
            rc_blocked
          end
        end
      | Opcode.I_emit { label; args; next } ->
          let n = Array.length args in
          for i = 0 to n - 1 do
            eval en tk nil_inst args.(i);
            en.em_i.(i) <- en.st_i.(0);
            en.em_f.(i) <- en.st_f.(0);
            en.em_tg.(i) <- en.st_tg.(0)
          done;
          en.ev_i <- en.em_i;
          en.ev_f <- en.em_f;
          en.ev_tg <- en.em_tg;
          en.ev_n <- n;
          fire_event en ~kind:1 ~set:tk.set ~label ~index:tk.idx ~source_tid:tk.tid;
          tk.bcast <- true;
          tk.pc <- next;
          en.step_lat <- 1;
          rc_stepped
      | Opcode.I_if { c; then_pc; else_pc } ->
          eval en tk nil_inst c;
          tk.pc <- (if stack0_truthy en then then_pc else else_pc);
          en.step_lat <- 1;
          rc_stepped
      | Opcode.I_abort ->
          finish en tk oc_abort;
          rc_finished + oc_abort
      | Opcode.I_retry ->
          finish en tk oc_retry;
          rc_finished + oc_retry
      | Opcode.I_prim { dsts; prim; name; args; next } -> begin
          match en.prim_impls.(prim) with
          | None -> invalid_arg ("Engine: unbound prim " ^ name)
          | Some impl ->
              en.prim_count.(prim) <- en.prim_count.(prim) + 1;
              let boxed =
                Array.to_list
                  (Array.map
                     (fun e ->
                       eval en tk nil_inst e;
                       if en.st_tg.(0) = tg_int then Value.Int en.st_i.(0)
                       else if en.st_tg.(0) = tg_float then Value.Float en.st_f.(0)
                       else Value.Bool (en.st_i.(0) <> 0))
                     args)
              in
              let results =
                impl { Spec.state = en.st; Spec.task_index = Index.of_array tk.idx } boxed
              in
              let nr = List.length results and nd = Array.length dsts in
              if nr <> nd then
                invalid_arg
                  (Printf.sprintf "Engine: prim %s returned %d values, expected %d" name nr nd);
              List.iteri
                (fun i (v : Value.t) ->
                  let d = dsts.(i) in
                  match v with
                  | Value.Int x ->
                      tk.reg_i.(d) <- x;
                      tk.reg_tg.(d) <- tg_int
                  | Value.Float x ->
                      tk.reg_f.(d) <- x;
                      tk.reg_tg.(d) <- tg_float
                  | Value.Bool b ->
                      tk.reg_i.(d) <- (if b then 1 else 0);
                      tk.reg_tg.(d) <- tg_bool)
                results;
              let compute = en.prim_lat.(prim) in
              let completion = prim_mem_latency en ~now in
              tk.pc <- next;
              en.step_lat <- imax compute (completion - now);
              rc_stepped
        end
    end

(* --- minimum resolution --- *)

let resolve_pending en =
  (* 1. broadcast a change of the minimum uncommitted task *)
  let mu0 = min_uncommitted en in
  if mu0 != nil_task && mu0.tid <> en.last_min_broadcast then begin
    en.last_min_broadcast <- mu0.tid;
    en.ev_i <- mu0.pay_i;
    en.ev_f <- mu0.pay_f;
    en.ev_tg <- mu0.pay_tg;
    en.ev_n <- mu0.n_pay;
    fire_min_changed en ~index:mu0.idx ~source_tid:mu0.tid
  end;
  (* 2. fire otherwise clauses for minimal waiting parents *)
  let mu = min_uncommitted en in
  let mw = ref nil_task in
  for i = 0 to Vec.length en.waiting - 1 do
    let w = Vec.get en.waiting i in
    if !mw == nil_task || idx_cmp w.idx !mw.idx < 0 then mw := w
  done;
  for i = 0 to Vec.length en.waiting - 1 do
    let w = Vec.get en.waiting i in
    let inst = w.await_inst in
    if inst != nil_inst && inst.ri_resolved = 0 then begin
      let rule = en.prog.Opcode.rules.(inst.ri_rule) in
      let minimal =
        if rule.Opcode.r_min_waiting then !mw == nil_task || idx_cmp w.idx !mw.idx = 0
        else mu == nil_task || idx_cmp w.idx mu.idx = 0
      in
      if minimal then begin
        en.stats.Engine.otherwise_fired <- en.stats.Engine.otherwise_fired + 1;
        resolve en inst rule.Opcode.r_otherwise
      end
    end
  done

(* wake every waiting task whose rule resolved, in ascending index
   order (stable w.r.t. the legacy newest-first waiting order); the
   woken tasks are left in [en.resumed] *)
let resume_ready en =
  Vec.clear en.resumed;
  let n = Vec.length en.waiting in
  for i = n - 1 downto 0 do
    let w = Vec.get en.waiting i in
    let inst = w.await_inst in
    if inst == nil_inst || inst.ri_resolved <> 0 then Vec.push en.resumed w
  done;
  let j = ref 0 in
  for i = 0 to n - 1 do
    let w = Vec.get en.waiting i in
    let inst = w.await_inst in
    if inst != nil_inst && inst.ri_resolved = 0 then begin
      Vec.set en.waiting !j w;
      incr j
    end
  done;
  vec_truncate en.waiting !j;
  let m = Vec.length en.resumed in
  for i = 1 to m - 1 do
    let x = Vec.get en.resumed i in
    let k = ref (i - 1) in
    while !k >= 0 && idx_cmp (Vec.get en.resumed !k).idx x.idx > 0 do
      Vec.set en.resumed (!k + 1) (Vec.get en.resumed !k);
      decr k
    done;
    Vec.set en.resumed (!k + 1) x
  done;
  for i = 0 to m - 1 do
    let w = Vec.get en.resumed i in
    let inst = w.await_inst in
    if inst != nil_inst then begin
      w.reg_i.(w.await_dst) <- (if inst.ri_resolved = 2 then 1 else 0);
      w.reg_tg.(w.await_dst) <- tg_bool;
      match en.prog.Opcode.code.(w.pc) with
      | Opcode.I_await { next; _ } -> w.pc <- next
      | _ -> assert false
    end;
    w.await_inst <- nil_inst;
    w.await_dst <- -1;
    w.status <- s_running;
    en.running <- en.running + 1
  done

let deadlocked en =
  en.running = 0
  && pending_count en = 0
  && Vec.length en.waiting > 0
  && begin
       resolve_pending en;
       let all_stuck = ref true in
       Vec.iter
         (fun w ->
           let inst = w.await_inst in
           if inst == nil_inst || inst.ri_resolved <> 0 then all_stuck := false)
         en.waiting;
       !all_stuck
     end

(* --- construction --- *)

let create ~cfg ~sink spec bindings st =
  begin
    match Spec.validate spec with
    | Ok () -> ()
    | Error es -> invalid_arg ("Engine.create: invalid spec: " ^ String.concat "; " es)
  end;
  let prog = Opcode.compile spec in
  let width = max prog.Opcode.n_sets 1 in
  let arr_data =
    Array.map
      (fun name ->
        if State.has_array st name then begin
          match State.int_array st name with
          | a -> A_int a
          | exception Invalid_argument _ -> A_float (State.float_array st name)
        end
        else A_missing)
      prog.Opcode.array_names
  in
  let arr_base =
    Array.map
      (fun name -> if State.has_array st name then State.address_of st name 0 else 0)
      prog.Opcode.array_names
  in
  let ar_cap = max 1 (max prog.Opcode.max_push_args prog.Opcode.max_rule_params) in
  let em_i = Array.make prog.Opcode.max_event_fields 0 in
  let em_f = Array.make prog.Opcode.max_event_fields 0.0 in
  let em_tg = Array.make prog.Opcode.max_event_fields tg_int in
  {
    prog;
    st;
    cfg;
    mem = Memory.create ~sink cfg;
    sink;
    stats =
      {
        Engine.activated = 0;
        committed = 0;
        aborted = 0;
        retried = 0;
        events_fired = 0;
        otherwise_fired = 0;
        clause_resolutions = 0;
        ops_executed = 0;
        rule_allocs = 0;
      };
    width;
    counters = Array.make (max prog.Opcode.n_sets 1) 0;
    rings = Array.init (max prog.Opcode.n_sets 1) (fun _ -> ring_create ());
    next_tid = 0;
    running = 0;
    waiting = Vec.create ();
    h_idx = Array.make (8 * width) 0;
    h_task = Array.make 8 nil_task;
    h_tid = Array.make 8 0;
    h_len = 0;
    live = Vec.create ();
    snap = Vec.create ();
    free_tasks = Vec.create ();
    free_insts = Vec.create ();
    last_min_broadcast = -1;
    log = Vec.create ();
    prim_impls =
      Array.map (fun name -> List.assoc_opt name bindings.Spec.prims) prog.Opcode.prim_names;
    prim_count = Array.make (max 1 (Array.length prog.Opcode.prim_names)) 0;
    prim_lat =
      Array.map
        (fun name ->
          match List.assoc_opt name cfg.Config.prim_latency with
          | Some l -> l
          | None -> 4)
        prog.Opcode.prim_names;
    expected_fns =
      Array.map
        (fun (r : Opcode.crule) -> List.assoc_opt r.Opcode.r_name bindings.Spec.expected)
        prog.Opcode.rules;
    arr_data;
    arr_base;
    base_memo = Hashtbl.create 16;
    st_i = Array.make prog.Opcode.max_stack 0;
    st_f = Array.make prog.Opcode.max_stack 0.0;
    st_tg = Array.make prog.Opcode.max_stack tg_int;
    ev_i = em_i;
    ev_f = em_f;
    ev_tg = em_tg;
    ev_n = 0;
    cx_earlier = false;
    cx_later = false;
    em_i;
    em_f;
    em_tg;
    ar_i = Array.make ar_cap 0;
    ar_f = Array.make ar_cap 0.0;
    ar_tg = Array.make ar_cap tg_int;
    resumed = Vec.create ();
    step_lat = 1;
  }

(* --- the cycle loop --- *)

type result = {
  r_cycles : int;
  r_active_op_cycles : int;
  r_peak_in_flight : int;
  r_total_stage_ops : int;
  r_minor_words : float;  (** minor-heap words allocated inside the cycle loop *)
  r_stats : Engine.stats;
  r_attr : Attribution.t;
  r_mem : Memory.t;
}

let pipe_prepend p tk =
  if p.cp_n = Array.length p.cp_win then begin
    let nw = Array.make (max 8 (2 * p.cp_n)) nil_task in
    Array.blit p.cp_win 0 nw 0 p.cp_n;
    p.cp_win <- nw
  end;
  Array.blit p.cp_win 0 p.cp_win 1 p.cp_n;
  p.cp_win.(0) <- tk;
  p.cp_n <- p.cp_n + 1

(* attribution bucket codes inside the flat matrix *)
let b_busy = 0

let b_mem = 1

let b_rdv = 2

let b_queue = 3

let b_squash = 4

let b_idle = 5

let run ?timeline ~cfg ~sink ~spec ~bindings ~state ~initial () =
  let graph = Bdfg.of_spec spec in
  let en = create ~cfg ~sink spec bindings state in
  let prog = en.prog in
  let n_sets = prog.Opcode.n_sets in
  State.set_tracing state true;
  List.iter (fun (set, payload) -> push_initial en set payload) initial;
  State.clear_trace state;
  let next_pipe = ref 0 in
  let pipes =
    List.concat_map
      (fun (ts : Spec.task_set) ->
        let set_name = ts.Spec.ts_name in
        let slot = Spec.task_set_slot spec set_name in
        let stage_ops = Bdfg.stage_count graph set_name in
        let capacity = max 4 (stage_ops * cfg.Config.window_factor) in
        List.init (Config.pipeline_count cfg set_name) (fun _ ->
            let pipe_id = !next_pipe in
            incr next_pipe;
            {
              cp_set = slot;
              cp_set_name = set_name;
              cp_id = pipe_id;
              cp_capacity = capacity;
              cp_stage_ops = stage_ops;
              cp_win = Array.make (capacity + 4) nil_task;
              cp_n = 0;
              cp_stepped = false;
            }))
      spec.Spec.task_sets
    |> Array.of_list
  in
  let n_pipes = Array.length pipes in
  let first_pipe = Array.make (max n_sets 1) (-1) in
  Array.iter (fun p -> if first_pipe.(p.cp_set) < 0 then first_pipe.(p.cp_set) <- p.cp_id) pipes;
  let total_stage_ops = Array.fold_left (fun acc p -> acc + p.cp_stage_ops) 0 pipes in
  begin
    match timeline with
    | Some tl -> Timeline.start tl ~total_stage_ops ~bytes_per_cycle:(Config.bytes_per_cycle cfg)
    | None -> ()
  end;
  let instrumented = Sink.enabled sink in
  let matrix = Array.make (max 1 (n_sets * 6)) 0 in
  let charge set b n = matrix.((set * 6) + b) <- matrix.((set * 6) + b) + n in
  let sq_set = Vec.create () and sq_ops = Vec.create () in
  let pops_left = Array.make (max n_sets 1) 0 in
  let waiting_sets = Array.make (max n_sets 1) false in
  let scratch = Vec.create () in
  let cycle = ref 0 in
  let active_op_cycles = ref 0 in
  let peak_in_flight = ref 0 in
  let in_flight_count () = Array.fold_left (fun acc p -> acc + p.cp_n) 0 pipes in
  let pop_from set =
    let r = en.rings.(set) in
    if r.rl = 0 then nil_task
    else begin
      let tk = ring_pop r in
      tk.status <- s_running;
      en.running <- en.running + 1;
      tk
    end
  in
  (* the allocator reserves a priority lane for the minimum uncommitted
     task (the liveness argument of §4.2.1 under finite rule lanes) *)
  let must_stall_alloc tk =
    Vec.length en.live >= cfg.Config.rule_lanes
    &&
    let mu = min_uncommitted en in
    mu != nil_task && idx_cmp tk.idx mu.idx <> 0
  in
  let place_resumed ~now =
    let m = Vec.length en.resumed in
    for i = 0 to m - 1 do
      let w = Vec.get en.resumed i in
      let best = ref (-1) in
      for pi = 0 to n_pipes - 1 do
        let p = pipes.(pi) in
        if p.cp_set = w.set && (!best < 0 || p.cp_n < pipes.(!best).cp_n) then best := pi
      done;
      if !best < 0 then failwith "Accelerator.run: no pipeline for resumed task";
      let p = pipes.(!best) in
      if instrumented then begin
        Sink.emit sink ~ts:now (Event.Rendezvous_resume { set = p.cp_set_name; tid = w.tid });
        Sink.emit sink ~ts:(now + 1)
          (Event.Task_dispatch { set = p.cp_set_name; pipe = p.cp_id; tid = w.tid })
      end;
      w.fr_ready <- now + 1;
      w.fr_ops <- 0;
      pipe_prepend p w
    done
  in
  let guard = ref 0 in
  (* hoisted per-cycle scratch: a [ref] inside the loop body would
     allocate every iteration *)
  let any_finish = ref false in
  let next_ready = ref max_int in
  let in_window = ref false in
  let minor_start = Gc.minor_words () in
  while uncommitted_remaining en do
    incr guard;
    if !guard > 50_000_000 then failwith "Accelerator.run: cycle budget exceeded";
    let now = !cycle in
    (* 1. issue: each pipeline may accept one task per cycle, capped by
       queue bank bandwidth per set *)
    Array.fill pops_left 0 (Array.length pops_left) cfg.Config.queue_banks;
    for pi = 0 to n_pipes - 1 do
      let p = pipes.(pi) in
      let left = pops_left.(p.cp_set) in
      if p.cp_n >= p.cp_capacity then begin
        if instrumented && pending_count en > 0 then
          Sink.emit sink ~ts:now (Event.Queue_full { set = p.cp_set_name; pipe = p.cp_id })
      end
      else if left > 0 then begin
        let tk = pop_from p.cp_set in
        if tk != nil_task then begin
          pops_left.(p.cp_set) <- left - 1;
          if instrumented then
            Sink.emit sink ~ts:now
              (Event.Task_dispatch { set = p.cp_set_name; pipe = p.cp_id; tid = tk.tid });
          tk.fr_ready <- now;
          tk.fr_ops <- 0;
          pipe_prepend p tk
        end
      end
    done;
    (* priority admission: the globally minimum task must always reach
       the rule engines, even through a full window *)
    begin
      let head = min_pending_head en in
      let mu = min_uncommitted en in
      if head != nil_task && mu != nil_task && idx_cmp head.idx mu.idx = 0 then begin
        in_window := false;
        for pi = 0 to n_pipes - 1 do
          let p = pipes.(pi) in
          for i = 0 to p.cp_n - 1 do
            if p.cp_win.(i).tid = head.tid then in_window := true
          done
        done;
        if not !in_window then begin
          let tk = pop_from head.set in
          if tk != nil_task then begin
            let p = pipes.(first_pipe.(tk.set)) in
            if instrumented then
              Sink.emit sink ~ts:now
                (Event.Task_dispatch { set = p.cp_set_name; pipe = p.cp_id; tid = tk.tid });
            tk.fr_ready <- now;
            tk.fr_ops <- 0;
            pipe_prepend p tk
          end
        end
      end
    end;
    peak_in_flight := imax !peak_in_flight (in_flight_count ());
    (* 2. execute one op for every ready in-flight task *)
    any_finish := false;
    for pi = 0 to n_pipes - 1 do
      let p = pipes.(pi) in
      Vec.clear scratch;
      let old_n = p.cp_n in
      for i = 0 to old_n - 1 do
        let f = p.cp_win.(i) in
        if f.fr_ready > now then Vec.push scratch f
        else begin
          match prog.Opcode.code.(f.pc) with
          | Opcode.I_alloc _ when must_stall_alloc f ->
              (* stall at the rule-engine allocator *)
              f.fr_ready <- now + 1;
              Vec.push scratch f
          | _ -> begin
              let tid = f.tid in
              let rc = step en f ~now in
              if rc = rc_stepped then begin
                incr active_op_cycles;
                p.cp_stepped <- true;
                f.fr_ops <- f.fr_ops + 1;
                f.fr_ready <- now + en.step_lat;
                Vec.push scratch f
              end
              else if rc = rc_blocked then begin
                incr active_op_cycles;
                p.cp_stepped <- true;
                f.fr_ops <- f.fr_ops + 1;
                if instrumented then
                  Sink.emit sink ~ts:now
                    (Event.Rendezvous_park { set = p.cp_set_name; pipe = p.cp_id; tid });
                any_finish := true
              end
              else begin
                let outcome = rc - rc_finished in
                incr active_op_cycles;
                p.cp_stepped <- true;
                if outcome <> oc_commit then begin
                  Vec.push sq_set p.cp_set;
                  Vec.push sq_ops (f.fr_ops + 1)
                end;
                if instrumented then
                  Sink.emit sink ~ts:now
                    (Event.Task_finish
                       {
                         set = p.cp_set_name;
                         pipe = p.cp_id;
                         tid;
                         outcome =
                           (if outcome = oc_commit then Event.Commit
                            else if outcome = oc_abort then Event.Abort
                            else Event.Retry);
                       });
                any_finish := true
              end
            end
        end
      done;
      (* the legacy loop rebuilds the window by consing survivors in
         visit order: the new window is their reverse *)
      let ns = Vec.length scratch in
      for i = 0 to ns - 1 do
        p.cp_win.(i) <- Vec.get scratch (ns - 1 - i)
      done;
      for i = ns to old_n - 1 do
        p.cp_win.(i) <- nil_task
      done;
      p.cp_n <- ns
    done;
    if !any_finish then resolve_pending en;
    (* 3. wake resolved rendezvous back into their pipelines *)
    resume_ready en;
    let n_resumed = Vec.length en.resumed in
    place_resumed ~now;
    (* 4. advance time: fast-forward to the next ready timestamp when
       everything in flight is waiting out latency (the event wheel) *)
    next_ready := max_int;
    for pi = 0 to n_pipes - 1 do
      let p = pipes.(pi) in
      for i = 0 to p.cp_n - 1 do
        if p.cp_win.(i).fr_ready < !next_ready then next_ready := p.cp_win.(i).fr_ready
      done
    done;
    (* manual loop: [Array.exists] allocates a closure per call *)
    let have_room = ref false in
    for pi = 0 to n_pipes - 1 do
      if pipes.(pi).cp_n < pipes.(pi).cp_capacity then have_room := true
    done;
    let can_issue = pending_count en > 0 && !have_room in
    let next =
      if can_issue || n_resumed > 0 then now + 1
      else if !next_ready < max_int then imax (now + 1) !next_ready
      else now + 1
    in
    (* stall attribution: charge each pipeline exactly (next - now)
       cycles so the buckets decompose cycles x pipelines *)
    let dt = next - now in
    Array.fill waiting_sets 0 (Array.length waiting_sets) false;
    for i = 0 to Vec.length en.waiting - 1 do
      waiting_sets.((Vec.get en.waiting i).set) <- true
    done;
    let pending_now = pending_count en in
    for pi = 0 to n_pipes - 1 do
      let p = pipes.(pi) in
      let cls =
        if p.cp_stepped then b_busy
        else if p.cp_n > 0 then b_mem
        else if waiting_sets.(p.cp_set) then b_rdv
        else if pending_now > 0 && pops_left.(p.cp_set) = 0 then b_queue
        else b_idle
      in
      charge p.cp_set cls 1;
      if dt > 1 then begin
        let wait_cls =
          if p.cp_n > 0 then b_mem else if waiting_sets.(p.cp_set) then b_rdv else b_idle
        in
        charge p.cp_set wait_cls (dt - 1)
      end;
      p.cp_stepped <- false
    done;
    (* squash reclassification, newest first (the legacy list is built
       by consing); clamp to the busy balance accrued so far *)
    for i = Vec.length sq_set - 1 downto 0 do
      let set = Vec.get sq_set i and ops = Vec.get sq_ops i in
      let moved = imin ops matrix.((set * 6) + b_busy) in
      matrix.((set * 6) + b_busy) <- matrix.((set * 6) + b_busy) - moved;
      matrix.((set * 6) + b_squash) <- matrix.((set * 6) + b_squash) + moved
    done;
    Vec.clear sq_set;
    Vec.clear sq_ops;
    (* deadlock detection *)
    if
      (not can_issue)
      && !next_ready = max_int
      && n_resumed = 0
      && uncommitted_remaining en
    then begin
      resolve_pending en;
      resume_ready en;
      if Vec.length en.resumed = 0 then begin
        if deadlocked en then failwith "Accelerator.run: deadlock in rule resolution"
      end
      else place_resumed ~now
    end;
    begin
      match timeline with
      | Some tl when Timeline.due tl ~upto:next ->
          let mst = Memory.stats en.mem in
          Timeline.tick tl ~upto:next
            {
              Timeline.in_flight = in_flight_count ();
              pending = pending_count en;
              active_ops = !active_op_cycles;
              mem_hits = mst.Memory.hits;
              mem_misses = mst.Memory.misses;
              link_bytes = mst.Memory.bytes_over_link;
            }
      | Some _ | None -> ()
    end;
    cycle := next
  done;
  let minor_words = Gc.minor_words () -. minor_start in
  State.set_tracing state false;
  begin
    match timeline with
    | Some tl ->
        let mst = Memory.stats en.mem in
        Timeline.finish tl ~cycles:!cycle
          {
            Timeline.in_flight = in_flight_count ();
            pending = pending_count en;
            active_ops = !active_op_cycles;
            mem_hits = mst.Memory.hits;
            mem_misses = mst.Memory.misses;
            link_bytes = mst.Memory.bytes_over_link;
          }
    | None -> ()
  end;
  (* replay the flat attribution matrix into the shared Attribution.t
     (sets in pipeline order = first-charge order of the legacy loop) *)
  let attr = Attribution.create () in
  let seen = Array.make (max n_sets 1) false in
  Array.iter
    (fun p ->
      if not seen.(p.cp_set) then begin
        seen.(p.cp_set) <- true;
        List.iteri
          (fun b bucket -> Attribution.charge attr ~set:p.cp_set_name bucket matrix.((p.cp_set * 6) + b))
          Attribution.buckets
      end)
    pipes;
  {
    r_cycles = !cycle;
    r_active_op_cycles = !active_op_cycles;
    r_peak_in_flight = !peak_in_flight;
    r_total_stage_ops = total_stage_ops;
    r_minor_words = minor_words;
    r_stats = en.stats;
    r_attr = attr;
    r_mem = en.mem;
  }
