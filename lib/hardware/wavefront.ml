type t = {
  n_banks : int;
  n_ports : int;
  mutable diagonal : int; (* rotating priority *)
  counts : int array;
  sink : Agp_obs.Sink.t;
  mutable now : int; (* one allocation round per cycle *)
}

let create ?(sink = Agp_obs.Sink.null) ~banks ~ports () =
  if banks <= 0 || ports <= 0 then invalid_arg "Wavefront.create: sizes must be positive";
  { n_banks = banks; n_ports = ports; diagonal = 0; counts = Array.make banks 0; sink; now = 0 }

let banks t = t.n_banks

let ports t = t.n_ports

let allocate t ~requests =
  if Array.length requests <> t.n_banks then invalid_arg "Wavefront.allocate: bank mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> t.n_ports then invalid_arg "Wavefront.allocate: port mismatch")
    requests;
  let bank_free = Array.make t.n_banks true in
  let port_free = Array.make t.n_ports true in
  let grants = ref [] in
  (* Sweep the wavefronts: cells (b, p) with (b + p) mod n on the same
     wavefront are conflict-free by construction, so each wavefront can
     grant in parallel; starting from the rotating diagonal gives
     round-robin fairness. *)
  let n = max t.n_banks t.n_ports in
  for wave = 0 to n - 1 do
    let d = (t.diagonal + wave) mod n in
    for b = 0 to t.n_banks - 1 do
      let p = (d - b + (n * 2)) mod n in
      if p < t.n_ports && bank_free.(b) && port_free.(p) && requests.(b).(p) then begin
        bank_free.(b) <- false;
        port_free.(p) <- false;
        t.counts.(b) <- t.counts.(b) + 1;
        grants := (b, p) :: !grants
      end
    done
  done;
  t.diagonal <- (t.diagonal + 1) mod n;
  let grants = List.rev !grants in
  if Agp_obs.Sink.enabled t.sink then
    List.iter
      (fun (bank, port) ->
        Agp_obs.Sink.emit t.sink ~ts:t.now (Agp_obs.Event.Arb_grant { bank; port }))
      grants;
  t.now <- t.now + 1;
  grants

let allocate_uniform t ~requesting =
  if Array.length requesting <> t.n_banks then
    invalid_arg "Wavefront.allocate_uniform: bank mismatch";
  let requests =
    Array.map (fun want -> Array.make t.n_ports want) requesting
  in
  allocate t ~requests

let grant_counts t = Array.copy t.counts
