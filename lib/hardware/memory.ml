type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable misses : int;
  mutable bytes_over_link : int;
}

type t = {
  cfg : Config.t;
  tags : int array; (* -1 = invalid; direct mapped *)
  n_lines : int;
  line_bytes : int;
  hit_latency : int;
  miss_latency : int;
  line_time : float; (* link occupancy of one line transfer, cycles *)
  link_busy_until : float array; (* one unboxed cell: the QPI token bucket *)
  st : stats;
  sink : Agp_obs.Sink.t;
}

let create ?(sink = Agp_obs.Sink.null) (cfg : Config.t) =
  let n_lines = cfg.Config.cache_bytes / cfg.Config.line_bytes in
  {
    cfg;
    tags = Array.make n_lines (-1);
    n_lines;
    line_bytes = cfg.Config.line_bytes;
    hit_latency = cfg.Config.hit_latency;
    miss_latency = cfg.Config.miss_latency;
    line_time = float_of_int cfg.Config.line_bytes /. Config.bytes_per_cycle cfg;
    link_busy_until = Array.make 1 0.0;
    st = { reads = 0; writes = 0; hits = 0; misses = 0; bytes_over_link = 0 };
    sink;
  }

let access t ~now ~addr ~is_write =
  let st = t.st in
  if is_write then st.writes <- st.writes + 1 else st.reads <- st.reads + 1;
  let line = addr / t.line_bytes in
  let slot = line mod t.n_lines in
  if t.tags.(slot) = line then begin
    st.hits <- st.hits + 1;
    if Agp_obs.Sink.enabled t.sink then
      Agp_obs.Sink.emit t.sink ~ts:now (Agp_obs.Event.Cache_access { addr; is_write; hit = true });
    now + t.hit_latency
  end
  else begin
    st.misses <- st.misses + 1;
    t.tags.(slot) <- line;
    (* wait for a link slot, then the round trip ([Float.max] would box
       both arguments; the comparison keeps everything unboxed) *)
    let now_f = float_of_int now in
    let busy = t.link_busy_until.(0) in
    let start = if now_f >= busy then now_f else busy in
    t.link_busy_until.(0) <- start +. t.line_time;
    st.bytes_over_link <- st.bytes_over_link + t.line_bytes;
    let completion = int_of_float (Float.ceil (start +. t.line_time)) + t.miss_latency in
    if Agp_obs.Sink.enabled t.sink then begin
      Agp_obs.Sink.emit t.sink ~ts:now (Agp_obs.Event.Cache_access { addr; is_write; hit = false });
      Agp_obs.Sink.emit t.sink ~ts:now
        (Agp_obs.Event.Link_transfer
           { bytes = t.line_bytes; start = int_of_float start; finish = completion })
    end;
    completion
  end

let access_burst t ~now ~addrs ~dependent =
  match addrs with
  | [] -> now
  | addrs ->
      if dependent then
        List.fold_left (fun when_ (addr, is_write) -> access t ~now:when_ ~addr ~is_write) now addrs
      else begin
        (* issue mlp at a time; each wave starts when the previous wave
           completes *)
        let mlp = max 1 t.cfg.Config.mlp in
        let rec waves now = function
          | [] -> now
          | rest ->
              let rec take k acc = function
                | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
                | tl -> (List.rev acc, tl)
              in
              let wave, tl = take mlp [] rest in
              let completion =
                List.fold_left
                  (fun worst (addr, is_write) -> max worst (access t ~now ~addr ~is_write))
                  now wave
              in
              waves completion tl
        in
        waves now addrs
      end

let stats t = t.st

let hit_rate t =
  let total = t.st.hits + t.st.misses in
  if total = 0 then 1.0 else float_of_int t.st.hits /. float_of_int total

let reset_stats t =
  let st = t.st in
  st.reads <- 0;
  st.writes <- 0;
  st.hits <- 0;
  st.misses <- 0;
  st.bytes_over_link <- 0;
  t.link_busy_until.(0) <- 0.0
