(** The problem-independent memory subsystem of §5.2: a direct-mapped
    on-FPGA cache (HARP's CCI cache) in front of a bandwidth-limited
    QPI link to host DRAM.

    The model is cycle-accurate at the request level: hits cost the
    fixed hit latency; misses wait for a link slot (a token bucket at
    the configured GB/s) plus the round-trip latency.  It is the
    bottleneck the paper identifies, and the component scaled by the
    Fig. 10 bandwidth sweep. *)

type t

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable misses : int;
  mutable bytes_over_link : int;
}

val create : ?sink:Agp_obs.Sink.t -> Config.t -> t
(** [sink] (default {!Agp_obs.Sink.null}) receives a [Cache_access]
    event per request and a [Link_transfer] per miss, timestamped at
    the request's issue cycle. *)

val access : t -> now:int -> addr:int -> is_write:bool -> int
(** Completion cycle of a single request issued at [now]. *)

val access_burst : t -> now:int -> addrs:(int * bool) list -> dependent:bool -> int
(** Completion of a multi-access kernel burst.  [dependent] chains the
    requests (pointer chase); otherwise they issue [Config.mlp] at a
    time. *)

val stats : t -> stats

val hit_rate : t -> float

val reset_stats : t -> unit
