module Engine = Agp_core.Engine
module Spec = Agp_core.Spec
module State = Agp_core.State
module Bdfg = Agp_dataflow.Bdfg
module Sink = Agp_obs.Sink
module Event = Agp_obs.Event
module Attribution = Agp_obs.Attribution
module Timeline = Agp_obs.Timeline
module Lifecycle = Agp_obs.Lifecycle
module Metrics = Agp_obs.Metrics
module Json = Agp_obs.Json
module Report = Agp_obs.Report

type in_flight = {
  mutable ready : int;
  mutable ops_done : int; (* stage occupancies consumed by this activation *)
  tsk : Engine.task;
}

type pipeline = {
  set_name : string;
  pipe_id : int; (* global row id, for event identity *)
  capacity : int;
  stage_ops : int;
  mutable window : in_flight list;
  mutable stepped : bool; (* advanced at least one op this cycle *)
}

type engine =
  | Legacy
  | Compiled

type report = {
  cycles : int;
  seconds : float;
  utilization : float;
  wall_seconds : float;
  sim_cycles_per_sec : float;
  minor_words_per_cycle : float;
  engine_stats : Agp_core.Engine.stats;
  mem_reads : int;
  mem_writes : int;
  mem_hit_rate : float;
  bytes_over_link : int;
  peak_in_flight : int;
  pipelines : (string * int) list;
  attribution : Attribution.t;
}

let prim_compute_latency (cfg : Config.t) name =
  match List.assoc_opt name cfg.Config.prim_latency with
  | Some l -> l
  | None -> 4

(* Latency of the op the engine just executed, judged from its kind and
   the addresses it touched. *)
let op_latency cfg mem state ~now ~op ~activated_delta =
  let trace = State.drain_trace state in
  let addrs =
    List.map
      (fun a -> (State.address_of state a.State.array_name a.State.index, a.State.is_write))
      trace
  in
  match (op : Spec.op) with
  | Spec.Let _ | Spec.Emit _ | Spec.If _ | Spec.Push _ | Spec.Alloc _ | Spec.Await _
  | Spec.Abort | Spec.Retry ->
      1
  | Spec.Push_iter _ -> max 1 activated_delta
  | Spec.Store _ ->
      (* posted write: the task proceeds next cycle while the line
         transfer still occupies cache and link (deep write buffer) *)
      ignore (Memory.access_burst mem ~now ~addrs ~dependent:true);
      1
  | Spec.Load _ ->
      let completion = Memory.access_burst mem ~now ~addrs ~dependent:true in
      max 1 (completion - now)
  | Spec.Prim (_, name, _) ->
      let compute = prim_compute_latency cfg name in
      let completion = Memory.access_burst mem ~now ~addrs ~dependent:false in
      max compute (completion - now)

let event_outcome = function
  | Engine.Committed_task -> Event.Commit
  | Engine.Aborted_task -> Event.Abort
  | Engine.Retried_task -> Event.Retry

let run_legacy ~cfg ~sink ?timeline ~spec ~bindings ~state ~initial () =
  let wall_start = Unix.gettimeofday () in
  let graph = Bdfg.of_spec spec in
  let eng = Engine.create spec bindings state in
  (* set_slot -> name once, instead of List.nth per cycle *)
  let set_names =
    Array.of_list (List.map (fun ts -> ts.Spec.ts_name) spec.Spec.task_sets)
  in
  let mem = Memory.create ~sink cfg in
  State.set_tracing state true;
  List.iter (fun (set, payload) -> Engine.push_initial eng set payload) initial;
  (* initial pushes may touch no memory but could fire events; clear any
     stray trace *)
  ignore (State.drain_trace state);
  let next_pipe = ref 0 in
  let pipes =
    List.concat_map
      (fun ts ->
        let set = ts.Spec.ts_name in
        let stage_ops = Bdfg.stage_count graph set in
        List.init (Config.pipeline_count cfg set) (fun _ ->
            let pipe_id = !next_pipe in
            incr next_pipe;
            {
              set_name = set;
              pipe_id;
              capacity = max 4 (stage_ops * cfg.Config.window_factor);
              stage_ops;
              window = [];
              stepped = false;
            }))
      spec.Spec.task_sets
    |> Array.of_list
  in
  let total_stage_ops = Array.fold_left (fun acc p -> acc + p.stage_ops) 0 pipes in
  begin
    match timeline with
    | Some tl ->
        Timeline.start tl ~total_stage_ops ~bytes_per_cycle:(Config.bytes_per_cycle cfg)
    | None -> ()
  end;
  let attr = Attribution.create () in
  let instrumented = Sink.enabled sink in
  let squashes = ref [] in
  let cycle = ref 0 in
  let active_op_cycles = ref 0 in
  let peak_in_flight = ref 0 in
  let in_flight_count () = Array.fold_left (fun acc p -> acc + List.length p.window) 0 pipes in
  (* The allocator reserves a priority lane for the minimum uncommitted
     task: it can always enter a rule engine, reach its rendezvous and
     fire its otherwise clause — the liveness argument of §4.2.1 under
     finite lanes. *)
  let must_stall_alloc tsk =
    Engine.live_rule_count eng >= cfg.Config.rule_lanes
    &&
    match Engine.min_uncommitted_index eng with
    | Some m -> Agp_core.Index.compare tsk.Engine.index m <> 0
    | None -> false
  in
  let guard = ref 0 in
  let minor_start = Gc.minor_words () in
  while Engine.uncommitted_remaining eng do
    incr guard;
    if !guard > 50_000_000 then failwith "Accelerator.run: cycle budget exceeded";
    let now = !cycle in
    (* 1. issue: each pipeline may accept one task per cycle, capped by
       queue bank bandwidth per set *)
    let pops_left = Hashtbl.create 4 in
    Array.iter
      (fun p ->
        if not (Hashtbl.mem pops_left p.set_name) then
          Hashtbl.add pops_left p.set_name cfg.Config.queue_banks)
      pipes;
    Array.iter
      (fun p ->
        let left = Hashtbl.find pops_left p.set_name in
        if List.length p.window >= p.capacity then begin
          if instrumented && Engine.pending_count eng > 0 then
            Sink.emit sink ~ts:now (Event.Queue_full { set = p.set_name; pipe = p.pipe_id })
        end
        else if left > 0 then begin
          match Engine.pop_task eng p.set_name with
          | Some tsk ->
              Hashtbl.replace pops_left p.set_name (left - 1);
              if instrumented then
                Sink.emit sink ~ts:now
                  (Event.Task_dispatch
                     { set = p.set_name; pipe = p.pipe_id; tid = tsk.Engine.tid });
              p.window <- { ready = now; ops_done = 0; tsk } :: p.window
          | None -> ()
        end)
      pipes;
    (* priority admission: the globally minimum task must always reach
       the rule engines, or lane exhaustion can starve the otherwise
       paths — admit it even into a full window (the squash/re-execute
       slot of a TLS pipeline) *)
    begin
      match (Engine.min_pending_head eng, Engine.min_uncommitted_index eng) with
      | Some head, Some m when Agp_core.Index.compare head.Engine.index m = 0 ->
          let set = set_names.(head.Engine.set_slot) in
          let in_window =
            Array.exists
              (fun p -> List.exists (fun f -> f.tsk.Engine.tid = head.Engine.tid) p.window)
              pipes
          in
          if not in_window then begin
            match Engine.pop_task eng set with
            | Some tsk ->
                let p = Array.to_list pipes |> List.find (fun p -> p.set_name = set) in
                if instrumented then
                  Sink.emit sink ~ts:now
                    (Event.Task_dispatch { set; pipe = p.pipe_id; tid = tsk.Engine.tid });
                p.window <- { ready = now; ops_done = 0; tsk } :: p.window
            | None -> ()
          end
      | (Some _ | None), (Some _ | None) -> ()
    end;
    peak_in_flight := max !peak_in_flight (in_flight_count ());
    (* 2. execute one op for every ready in-flight task *)
    let any_finish = ref false in
    Array.iter
      (fun p ->
        let survivors = ref [] in
        List.iter
          (fun f ->
            if f.ready > now then survivors := f :: !survivors
            else begin
              match f.tsk.Engine.cont with
              | Spec.Alloc _ :: _ when must_stall_alloc f.tsk ->
                  (* stall at the rule-engine allocator *)
                  f.ready <- now + 1;
                  survivors := f :: !survivors
              | ops -> begin
                  let op = List.nth_opt ops 0 in
                  let activated_before = (Engine.stats eng).Engine.activated in
                  match Engine.step eng f.tsk with
                  | Engine.Stepped ->
                      incr active_op_cycles;
                      p.stepped <- true;
                      f.ops_done <- f.ops_done + 1;
                      let delta = (Engine.stats eng).Engine.activated - activated_before in
                      let lat =
                        match op with
                        | Some op ->
                            op_latency cfg mem state ~now ~op ~activated_delta:delta
                        | None -> 1
                      in
                      f.ready <- now + lat;
                      survivors := f :: !survivors
                  | Engine.Blocked ->
                      (* parked in a rule lane at the rendezvous *)
                      incr active_op_cycles;
                      p.stepped <- true;
                      f.ops_done <- f.ops_done + 1;
                      if instrumented then
                        Sink.emit sink ~ts:now
                          (Event.Rendezvous_park
                             { set = p.set_name; pipe = p.pipe_id; tid = f.tsk.Engine.tid });
                      any_finish := true
                  | Engine.Finished outcome ->
                      incr active_op_cycles;
                      p.stepped <- true;
                      f.ops_done <- f.ops_done + 1;
                      begin
                        match outcome with
                        | Engine.Aborted_task | Engine.Retried_task ->
                            squashes := (p.set_name, f.ops_done) :: !squashes
                        | Engine.Committed_task -> ()
                      end;
                      if instrumented then
                        Sink.emit sink ~ts:now
                          (Event.Task_finish
                             {
                               set = p.set_name;
                               pipe = p.pipe_id;
                               tid = f.tsk.Engine.tid;
                               outcome = event_outcome outcome;
                             });
                      any_finish := true
                end
            end)
          p.window;
        p.window <- !survivors)
      pipes;
    if !any_finish then Engine.resolve_pending eng;
    (* 3. wake resolved rendezvous back into their pipelines *)
    let place_resumed tasks =
      List.iter
        (fun tsk ->
          let set = set_names.(tsk.Engine.set_slot) in
          let best = ref None in
          Array.iter
            (fun p ->
              if p.set_name = set then
                match !best with
                | None -> best := Some p
                | Some b -> if List.length p.window < List.length b.window then best := Some p)
            pipes;
          match !best with
          | Some p ->
              if instrumented then begin
                Sink.emit sink ~ts:now (Event.Rendezvous_resume { set; tid = tsk.Engine.tid });
                Sink.emit sink ~ts:(now + 1)
                  (Event.Task_dispatch { set; pipe = p.pipe_id; tid = tsk.Engine.tid })
              end;
              p.window <- { ready = now + 1; ops_done = 0; tsk } :: p.window
          | None -> failwith "Accelerator.run: no pipeline for resumed task")
        tasks
    in
    let resumed = Engine.resume_ready eng in
    place_resumed resumed;
    (* 4. advance time: fast-forward to the next event when everything
       in flight is waiting on latency *)
    let next_ready =
      Array.fold_left
        (fun acc p -> List.fold_left (fun acc f -> min acc f.ready) acc p.window)
        max_int pipes
    in
    let can_issue =
      Engine.pending_count eng > 0
      && Array.exists (fun p -> List.length p.window < p.capacity) pipes
    in
    let next =
      if can_issue || resumed <> [] then now + 1
      else if next_ready < max_int then max (now + 1) next_ready
      else now + 1
    in
    (* stall attribution: charge each pipeline exactly (next - now)
       cycles, so the buckets always decompose cycles x pipelines *)
    let dt = next - now in
    let waiting_sets =
      lazy
        (let tbl = Hashtbl.create 4 in
         List.iter
           (fun (w : Engine.task) -> Hashtbl.replace tbl set_names.(w.Engine.set_slot) ())
           (Engine.waiting_tasks eng);
         tbl)
    in
    let set_waiting s = Hashtbl.mem (Lazy.force waiting_sets) s in
    let pending_now = Engine.pending_count eng in
    Array.iter
      (fun p ->
        let cls =
          if p.stepped then Attribution.Busy
          else if p.window <> [] then Attribution.Mem_stall
          else if set_waiting p.set_name then Attribution.Rendezvous_stall
          else if pending_now > 0 && Hashtbl.find pops_left p.set_name = 0 then
            Attribution.Queue_full
          else Attribution.Idle
        in
        Attribution.charge attr ~set:p.set_name cls 1;
        if dt > 1 then begin
          (* fast-forwarded cycles: nothing issues or executes *)
          let wait_cls =
            if p.window <> [] then Attribution.Mem_stall
            else if set_waiting p.set_name then Attribution.Rendezvous_stall
            else Attribution.Idle
          in
          Attribution.charge attr ~set:p.set_name wait_cls (dt - 1)
        end;
        p.stepped <- false)
      pipes;
    List.iter
      (fun (set, ops) ->
        ignore
          (Attribution.reclassify attr ~set ~src:Attribution.Busy ~dst:Attribution.Squash_waste
             ops))
      !squashes;
    squashes := [];
    (* deadlock detection: nothing in flight, nothing pending, only
       waiting tasks whose rules cannot resolve *)
    if
      (not can_issue)
      && next_ready = max_int
      && resumed = []
      && Engine.uncommitted_remaining eng
    then begin
      Engine.resolve_pending eng;
      match Engine.resume_ready eng with
      | [] ->
          if Engine.deadlocked eng then failwith "Accelerator.run: deadlock in rule resolution"
      | woken -> place_resumed woken
    end;
    begin
      match timeline with
      | Some tl when Timeline.due tl ~upto:next ->
          let mst = Memory.stats mem in
          Timeline.tick tl ~upto:next
            {
              Timeline.in_flight = in_flight_count ();
              pending = Engine.pending_count eng;
              active_ops = !active_op_cycles;
              mem_hits = mst.Memory.hits;
              mem_misses = mst.Memory.misses;
              link_bytes = mst.Memory.bytes_over_link;
            }
      | Some _ | None -> ()
    end;
    cycle := next
  done;
  let minor_words = Gc.minor_words () -. minor_start in
  State.set_tracing state false;
  begin
    match timeline with
    | Some tl ->
        let mst = Memory.stats mem in
        Timeline.finish tl ~cycles:!cycle
          {
            Timeline.in_flight = in_flight_count ();
            pending = Engine.pending_count eng;
            active_ops = !active_op_cycles;
            mem_hits = mst.Memory.hits;
            mem_misses = mst.Memory.misses;
            link_bytes = mst.Memory.bytes_over_link;
          }
    | None -> ()
  end;
  let st = Memory.stats mem in
  (* simulator throughput: host wall clock, not simulated time — the
     signal the CI ratchet and the cost-model calibration consume *)
  let wall_seconds = Float.max 1e-9 (Unix.gettimeofday () -. wall_start) in
  {
    cycles = !cycle;
    seconds = Config.cycles_to_seconds cfg !cycle;
    wall_seconds;
    sim_cycles_per_sec = float_of_int !cycle /. wall_seconds;
    minor_words_per_cycle =
      (if !cycle = 0 then 0.0 else minor_words /. float_of_int !cycle);
    utilization =
      (if !cycle = 0 || total_stage_ops = 0 then 0.0
       else float_of_int !active_op_cycles /. float_of_int (!cycle * total_stage_ops));
    engine_stats = Engine.stats eng;
    mem_reads = st.Memory.reads;
    mem_writes = st.Memory.writes;
    mem_hit_rate = Memory.hit_rate mem;
    bytes_over_link = st.Memory.bytes_over_link;
    peak_in_flight = !peak_in_flight;
    pipelines =
      List.map (fun ts -> (ts.Spec.ts_name, Config.pipeline_count cfg ts.Spec.ts_name))
        spec.Spec.task_sets;
    attribution = attr;
  }

let run_compiled ~cfg ~sink ?timeline ~spec ~bindings ~state ~initial () =
  let wall_start = Unix.gettimeofday () in
  let r = Engine_compiled.run ?timeline ~cfg ~sink ~spec ~bindings ~state ~initial () in
  let wall_seconds = Float.max 1e-9 (Unix.gettimeofday () -. wall_start) in
  let st = Memory.stats r.Engine_compiled.r_mem in
  let cycles = r.Engine_compiled.r_cycles in
  {
    cycles;
    seconds = Config.cycles_to_seconds cfg cycles;
    wall_seconds;
    sim_cycles_per_sec = float_of_int cycles /. wall_seconds;
    minor_words_per_cycle =
      (if cycles = 0 then 0.0
       else r.Engine_compiled.r_minor_words /. float_of_int cycles);
    utilization =
      (if cycles = 0 || r.Engine_compiled.r_total_stage_ops = 0 then 0.0
       else
         float_of_int r.Engine_compiled.r_active_op_cycles
         /. float_of_int (cycles * r.Engine_compiled.r_total_stage_ops));
    engine_stats = r.Engine_compiled.r_stats;
    mem_reads = st.Memory.reads;
    mem_writes = st.Memory.writes;
    mem_hit_rate = Memory.hit_rate r.Engine_compiled.r_mem;
    bytes_over_link = st.Memory.bytes_over_link;
    peak_in_flight = r.Engine_compiled.r_peak_in_flight;
    pipelines =
      List.map (fun ts -> (ts.Spec.ts_name, Config.pipeline_count cfg ts.Spec.ts_name))
        spec.Spec.task_sets;
    attribution = r.Engine_compiled.r_attr;
  }

let run ?(engine = Compiled) ?(config = Config.default) ?(auto_size = true) ?(sink = Sink.null)
    ?timeline ~spec ~bindings ~state ~initial () =
  let cfg =
    if config.Config.pipelines = [] && auto_size then
      Config.with_pipelines config (Resource.heuristic_pipelines spec ~max_per_set:8)
    else config
  in
  match engine with
  | Legacy -> run_legacy ~cfg ~sink ?timeline ~spec ~bindings ~state ~initial ()
  | Compiled -> run_compiled ~cfg ~sink ?timeline ~spec ~bindings ~state ~initial ()

let config_json (cfg : Config.t) =
  [
    ("clock_mhz", Json.Float cfg.Config.clock_mhz);
    ("cache_bytes", Json.Int cfg.Config.cache_bytes);
    ("line_bytes", Json.Int cfg.Config.line_bytes);
    ("hit_latency", Json.Int cfg.Config.hit_latency);
    ("miss_latency", Json.Int cfg.Config.miss_latency);
    ("qpi_gbps", Json.Float cfg.Config.qpi_gbps);
    ("rule_lanes", Json.Int cfg.Config.rule_lanes);
    ("mlp", Json.Int cfg.Config.mlp);
    ("queue_banks", Json.Int cfg.Config.queue_banks);
    ("window_factor", Json.Int cfg.Config.window_factor);
    ("pipelines", Json.Obj (List.map (fun (set, n) -> (set, Json.Int n)) cfg.Config.pipelines));
  ]

let attribution_json attr =
  let summary = Attribution.summary attr in
  Json.Obj
    (List.map
       (fun (set, bs) ->
         (set, Json.Obj (List.map (fun (b, n) -> (Attribution.bucket_name b, Json.Int n)) bs)))
       (Attribution.per_set attr)
    @ [
        ( "summary",
          Json.Obj
            [
              ("busy_frac", Json.Float summary.Attribution.busy_frac);
              ("mem_stall_frac", Json.Float summary.Attribution.mem_frac);
              ("rdv_stall_frac", Json.Float summary.Attribution.rendezvous_frac);
              ("queue_full_frac", Json.Float summary.Attribution.queue_frac);
              ("squash_frac", Json.Float summary.Attribution.squash_frac);
              ("idle_frac", Json.Float summary.Attribution.idle_frac);
            ] );
      ])

let metrics_registry ?events (r : report) =
  let reg = Metrics.create () in
  let c name v = Metrics.add (Metrics.counter reg name) v in
  let g name v = Metrics.set (Metrics.gauge reg name) v in
  let es = r.engine_stats in
  c "accel.cycles" r.cycles;
  c "tasks.activated" es.Engine.activated;
  c "tasks.committed" es.Engine.committed;
  c "tasks.aborted" es.Engine.aborted;
  c "tasks.retried" es.Engine.retried;
  c "tasks.ops_executed" es.Engine.ops_executed;
  c "mem.reads" r.mem_reads;
  c "mem.writes" r.mem_writes;
  c "mem.bytes_over_link" r.bytes_over_link;
  c "accel.peak_in_flight" r.peak_in_flight;
  g "accel.seconds" r.seconds;
  g "accel.utilization" r.utilization;
  (* accel.wall_seconds deliberately stays out of the registry: it is
     host noise and the "seconds" diff token would gate it downward.
     The throughput form carries its own higher-is-better token. *)
  g "accel.sim_cycles_per_sec" r.sim_cycles_per_sec;
  g "accel.minor_words_per_cycle" r.minor_words_per_cycle;
  g "mem.hit_rate" r.mem_hit_rate;
  begin
    match events with
    | None -> ()
    | Some evs ->
        let spans, _ = Lifecycle.spans evs in
        ignore (Lifecycle.histogram reg ~name:"task.lifetime.cycles" spans)
  end;
  reg

let obs_report ?(app = "unknown") ?events ?timeline ~config (r : report) =
  let lifecycle =
    match events with
    | None -> []
    | Some evs ->
        let spans, unfinished = Lifecycle.spans evs in
        [
          ( "lifecycle",
            Json.Obj
              (("unfinished", Json.Int unfinished)
              :: [ ("sets", Lifecycle.to_json (Lifecycle.summarize spans)) ]) );
        ]
  in
  let timeline_section =
    match timeline with
    | None -> []
    | Some tl ->
        [
          ( "timeline",
            Json.Obj
              [
                ("summary", Timeline.summary_json tl);
                ( "samples",
                  match Timeline.to_json tl with
                  | Json.Obj kvs -> Option.value ~default:Json.Null (List.assoc_opt "samples" kvs)
                  | _ -> Json.Null );
              ] );
        ]
  in
  Report.v ~kind:"accelerator-run" ~app ~meta:(config_json config)
    ~sections:
      ([
         ("metrics", Metrics.to_json (metrics_registry ?events r));
         ("attribution", attribution_json r.attribution);
       ]
      @ lifecycle @ timeline_section)
    ()
