(** Cycle-level model of the generalized synthesized accelerator
    (Fig. 7): replicated task pipelines per task set, multi-bank task
    queues, shared rule engines, and the cache/QPI memory subsystem.

    The simulator wraps the semantic {!Agp_core.Engine} — the very same
    transition system the software runtimes use — and charges time
    around each operation: loads and stores travel through
    {!Memory}, data-dependent spawners occupy their stage once per
    emitted token, prims occupy their stage for a configured kernel
    latency plus their access burst, rendezvous park the task in a rule
    lane until resolution.  Because semantics and timing are strictly
    separated, every accelerated run is validated with the same checks
    as the software runs.

    The simulator is observable: pass a {!Agp_obs.Sink} to capture the
    structured event stream (task dispatch/finish, rendezvous
    park/resume, queue backpressure, cache and link traffic — see
    {!Agp_obs.Event}), and every run returns a per-cycle stall
    {!Agp_obs.Attribution} in its report.  With the default null sink
    the instrumentation reduces to predicted-false branches, and the
    simulated timing is identical either way (the observer never
    perturbs the model). *)

type engine =
  | Legacy  (** tree-walking {!Agp_core.Engine} stepped per cycle *)
  | Compiled  (** {!Engine_compiled}: op-array dispatch, pooled frames *)

type report = {
  cycles : int;
  seconds : float;
  utilization : float;
      (** mean active primitive operations over total instantiated
          primitive operations (the Fig. 10 metric) *)
  wall_seconds : float;  (** host wall-clock time spent simulating *)
  sim_cycles_per_sec : float;
      (** simulator throughput ([cycles / wall_seconds]) — the
          higher-is-better signal the CI ratchet gates on *)
  minor_words_per_cycle : float;
      (** minor-heap words allocated per simulated cycle inside the
          cycle loop — the lower-is-better gate on the compiled
          engine's zero-allocation claim *)
  engine_stats : Agp_core.Engine.stats;
  mem_reads : int;
  mem_writes : int;
  mem_hit_rate : float;
  bytes_over_link : int;
  peak_in_flight : int;
  pipelines : (string * int) list;  (** replication actually used *)
  attribution : Agp_obs.Attribution.t;
      (** where the pipeline-cycles went: per task set, buckets sum to
          [cycles x pipelines of that set] *)
}

val run :
  ?engine:engine ->
  ?config:Config.t ->
  ?auto_size:bool ->
  ?sink:Agp_obs.Sink.t ->
  ?timeline:Agp_obs.Timeline.t ->
  spec:Agp_core.Spec.t ->
  bindings:Agp_core.Spec.bindings ->
  state:Agp_core.State.t ->
  initial:(string * Agp_core.Value.t list) list ->
  unit ->
  report
(** Simulate to quiescence, mutating [state] exactly as the software
    runtimes would.  [engine] (default {!Compiled}) picks the cycle
    engine; both produce identical cycles, state, statistics,
    attribution and event streams (asserted by the conformance
    harness), differing only in wall-clock speed.  With [auto_size]
    (default true) the pipeline replication is chosen by
    {!Resource.heuristic_pipelines} when the configuration leaves it
    empty.  [sink] (default {!Agp_obs.Sink.null}) captures the event
    stream; it is also threaded into the internal {!Memory}.
    [timeline] (default absent) receives interval samples of
    utilization / occupancy / cache / link activity; the sampler only
    reads counters, so a sampled run's report is identical to an
    unsampled one.
    @raise Failure on deadlock or divergence. *)

val metrics_registry :
  ?events:(int * Agp_obs.Event.t) list -> report -> Agp_obs.Metrics.registry
(** The canonical metrics view of a completed run: counters
    ([accel.cycles], [tasks.*], [mem.*]), gauges ([accel.utilization],
    [accel.seconds], [mem.hit_rate]) and, when the captured event
    stream is supplied, a [task.lifetime.cycles] latency histogram. *)

val obs_report :
  ?app:string ->
  ?events:(int * Agp_obs.Event.t) list ->
  ?timeline:Agp_obs.Timeline.t ->
  config:Config.t ->
  report ->
  Agp_obs.Report.t
(** Assemble the schema-versioned machine-readable run report
    ({!Agp_obs.Report}): configuration as meta, the
    {!metrics_registry} dump, the stall-attribution table (raw
    pipeline-cycles per set plus global fractions), and — when the
    corresponding capture is supplied — per-task-set lifecycle
    percentiles ({!Agp_obs.Lifecycle}) and the timeline summary +
    samples ({!Agp_obs.Timeline}). *)
