(** Spec → flat op-array compiler for the compiled cycle engine.

    Task-set bodies compile into one shared instruction array indexed
    by pc; every instruction embeds the pc of its continuation, so
    executing a task is a `match code.(pc)` dispatch with no list
    traversal.  Expressions and rule conditions become postfix bytecode
    evaluated over preallocated scratch stacks.  Variables, handles,
    state arrays, event labels and prim names are all interned to dense
    integer ids so the engine's hot state can live in flat int arrays.

    The compiler changes representation only: evaluation semantics
    (numeric promotion, division checks, error strings, out-of-range
    clause probes) are replicated by the engine so that compiled
    execution is cycle- and state-equivalent to {!Engine}. *)

type eop =
  | E_int of int
  | E_float of float
  | E_bool of bool
  | E_param of int  (** task payload field *)
  | E_reg of int * string  (** register slot; name kept for the unbound error *)
  | E_binop of Spec.binop
  | E_not
  | E_neg
  | E_cparam of int  (** rule-instance param (out-of-range aborts the clause) *)
  | E_cfield of int  (** event field (out-of-range aborts the clause) *)
  | E_earlier
  | E_later
  | E_overlap of int * int

type inst =
  | I_let of { dst : int; e : eop array; next : int }
  | I_load of { dst : int; arr : int; addr : eop array; next : int }
  | I_store of { arr : int; addr : eop array; v : eop array; next : int }
  | I_push of { set : int; args : eop array array; next : int }
  | I_push_iter of {
      set : int;
      lo : eop array;
      hi : eop array;
      ivar : int;
      args : eop array array;
      next : int;
    }
  | I_alloc of { site : int; handle : int; rule : int; args : eop array array; next : int }
  | I_await of { dst : int; handle : int; handle_name : string; next : int }
  | I_emit of { label : int; args : eop array array; next : int }
  | I_if of { c : eop array; then_pc : int; else_pc : int }
  | I_abort
  | I_retry
  | I_prim of { dsts : int array; prim : int; name : string; args : eop array array; next : int }
  | I_commit  (** empty continuation: the task commits *)

type cclause = {
  c_kind : int;  (** 0 = activated(set), 1 = reached(set,label), 2 = min_changed *)
  c_set : int;  (** source task-set slot, -1 for min_changed *)
  c_label : int;  (** label id for reached, -1 otherwise *)
  c_cond : eop array;
  c_return : bool option;  (** None = Decrement *)
}

type crule = {
  r_name : string;
  r_nparams : int;
  r_clauses : cclause array;
  r_otherwise : bool;
  r_min_waiting : bool;  (** otherwise scope is [Min_waiting] *)
  r_counted : bool;
  r_has_decrement : bool;
}

type program = {
  code : inst array;
  entry : int array;  (** per task-set slot *)
  n_sets : int;
  set_names : string array;
  set_for_each : bool array;
  set_arity : int array;
  max_arity : int;
  max_regs : int;
  max_handles : int;
  n_sites : int;  (** static Alloc sites across all sets *)
  rules : crule array;
  labels : string array;
  array_names : string array;  (** state arrays referenced by Load/Store *)
  prim_names : string array;
  max_stack : int;  (** expression scratch-stack depth *)
  max_push_args : int;
  max_rule_params : int;  (** widest Alloc argument list *)
  max_event_fields : int;  (** widest event field vector (payloads + emits) *)
  has_counted : bool;
}

val compile : Spec.t -> program
(** Compile a validated spec.  @raise Invalid_argument on an Alloc of a
    rule the spec does not define (also caught by {!Spec.validate}). *)
