type env = (string, Value.t) Hashtbl.t

let arith_error = Binop.arith_error

(* One semantics for every evaluator: the tree-walker adapts boxed
   [Value.t]s into {!Binop}'s tagged-slot representation and delegates.
   The per-call scratch is three 2-element arrays — this path was never
   allocation-sensitive (the compiled engine calls {!Binop.exec} on its
   own preallocated stacks). *)
let eval_binop (op : Spec.binop) (a : Value.t) (b : Value.t) : Value.t =
  let st_i = Array.make 2 0 in
  let st_f = Array.make 2 0.0 in
  let st_tg = Array.make 2 Binop.tg_int in
  let put k (v : Value.t) =
    match v with
    | Value.Int n ->
        st_i.(k) <- n;
        st_tg.(k) <- Binop.tg_int
    | Value.Float x ->
        st_f.(k) <- x;
        st_tg.(k) <- Binop.tg_float
    | Value.Bool b ->
        st_i.(k) <- (if b then 1 else 0);
        st_tg.(k) <- Binop.tg_bool
  in
  put 0 a;
  put 1 b;
  Binop.exec st_i st_f st_tg op 0 1;
  if st_tg.(0) = Binop.tg_int then Value.Int st_i.(0)
  else if st_tg.(0) = Binop.tg_float then Value.Float st_f.(0)
  else Value.Bool (st_i.(0) <> 0)

let rec eval_expr env payload (e : Spec.expr) : Value.t =
  match e with
  | Const v -> v
  | Param i ->
      if i < 0 || i >= Array.length payload then
        invalid_arg (Printf.sprintf "Interp: Param %d out of range" i)
      else payload.(i)
  | Var name -> begin
      match Hashtbl.find_opt env name with
      | Some v -> v
      | None -> invalid_arg ("Interp: unbound variable " ^ name)
    end
  | Binop (op, a, b) ->
      (* left operand first, matching the compiled engine's postfix
         order — observable when both operands raise *)
      let va = eval_expr env payload a in
      let vb = eval_expr env payload b in
      eval_binop op va vb
  | Not e -> Value.Bool (not (Value.to_bool (eval_expr env payload e)))
  | Neg e -> begin
      match eval_expr env payload e with
      | Value.Int n -> Value.Int (-n)
      | Value.Float x -> Value.Float (-.x)
      | Value.Bool _ -> arith_error "negation"
    end

(* A sentinel for out-of-range param/field probes in variadic rules:
   comparisons against it are always false, overlap handles lengths
   itself. *)
exception Out_of_range

let rec eval_cond_value ~params ~fields (c : Spec.cond) : Value.t =
  match c with
  | CConst b -> Value.Bool b
  | CParam i -> if i < 0 || i >= Array.length params then raise Out_of_range else params.(i)
  | CField i -> if i < 0 || i >= Array.length fields then raise Out_of_range else fields.(i)
  | CEarlier | CLater -> assert false (* replaced before reaching here *)
  | CBinop (op, a, b) ->
      let va = eval_cond_value ~params ~fields a in
      let vb = eval_cond_value ~params ~fields b in
      eval_binop op va vb
  | CNot c -> Value.Bool (not (Value.to_bool (eval_cond_value ~params ~fields c)))
  | COverlap (p, f) ->
      let tail arr from =
        if from >= Array.length arr then []
        else Array.to_list (Array.sub arr from (Array.length arr - from))
      in
      (* Negative integers are padding in fixed-width signatures (the
         invalid bit of a CAM entry) and never match. *)
      let valid = function
        | Value.Int n -> n >= 0
        | Value.Float _ | Value.Bool _ -> true
      in
      let ps = List.filter valid (tail params p) and fs = List.filter valid (tail fields f) in
      Value.Bool (List.exists (fun x -> List.exists (Value.equal x) fs) ps)

let eval_cond_strict ~params ~fields ~earlier ~later c =
  (* Substitute the order relations, then evaluate; any out-of-range
     probe makes the whole clause not match. *)
  let rec subst (c : Spec.cond) : Spec.cond =
    match c with
    | CEarlier -> CConst earlier
    | CLater -> CConst later
    | CBinop (op, a, b) -> CBinop (op, subst a, subst b)
    | CNot c -> CNot (subst c)
    | (CConst _ | CParam _ | CField _ | COverlap _) as c -> c
  in
  match eval_cond_value ~params ~fields (subst c) with
  | v -> Value.to_bool v
  | exception Out_of_range -> false

let eval_cond ~params ~fields ~event_earlier c =
  eval_cond_strict ~params ~fields ~earlier:event_earlier ~later:false c
