type event_kind =
  | Started
  | Executed of string
  | Blocked_at of string
  | Resumed of bool
  | Committed
  | Aborted
  | Retried

type entry = {
  tick : int;
  worker : int;
  tid : int;
  set_name : string;
  index : string;
  kind : event_kind;
}

type t = {
  entries : entry list;
  report : Runtime.report;
}

let op_descriptor (op : Spec.op) =
  match op with
  | Spec.Let (v, _) -> "let " ^ v
  | Spec.Load (v, arr, _) -> Printf.sprintf "%s <- %s" v arr
  | Spec.Store (arr, _, _) -> "store " ^ arr
  | Spec.Push (set, _) -> "push " ^ set
  | Spec.Push_iter (set, _, _, _, _) -> "spawn* " ^ set
  | Spec.Alloc (_, rule, _) -> "alloc " ^ rule
  | Spec.Await (_, h) -> "await " ^ h
  | Spec.Emit (l, _) -> "emit " ^ l
  | Spec.If (_, _, _) -> "switch"
  | Spec.Abort -> "abort"
  | Spec.Retry -> "retry"
  | Spec.Prim (_, name, _) -> "prim " ^ name

(* Tracing is the {!Semantics.pipelined} interpretation plus recording
   hooks: the scheduler is the very loop [Runtime.run] uses, so a
   traced execution has the same schedule as an untraced one by
   construction, not by keeping two copies of the loop in sync. *)
let run ?(initial = []) ?(workers = 4) ?(max_entries = 100_000) sp bindings st =
  let entries = ref [] in
  let n_entries = ref 0 in
  let set_name slot = (List.nth sp.Spec.task_sets slot).Spec.ts_name in
  let record tick worker (task : Engine.task) kind =
    if !n_entries < max_entries then begin
      incr n_entries;
      entries :=
        {
          tick;
          worker;
          tid = task.Engine.tid;
          set_name = set_name task.Engine.set_slot;
          index = Index.to_string task.Engine.index;
          kind;
        }
        :: !entries
    end
  in
  let hooks =
    {
      Semantics.on_event =
        (fun ~tick ~worker task ev ->
          match ev with
          | Semantics.Acquired -> record tick worker task Started
          | Semantics.Resumed ->
              (* the rendezvous verdict the wake bound into the frame *)
              let verdict =
                match Hashtbl.find_opt task.Engine.env "ok" with
                | Some (Value.Bool b) -> b
                | Some _ | None -> true
              in
              record tick worker task (Resumed verdict)
          | Semantics.Executed op -> record tick worker task (Executed (op_descriptor op))
          | Semantics.Blocked_on h -> record tick worker task (Blocked_at h)
          | Semantics.Finished outcome ->
              record tick worker task
                (match outcome with
                | Engine.Committed_task -> Committed
                | Engine.Aborted_task -> Aborted
                | Engine.Retried_task -> Retried));
    }
  in
  let interp =
    Semantics.with_descr
      (Semantics.with_hooks (Semantics.pipelined ~workers ~max_steps:50_000_000 ()) hooks)
      "Trace.run"
  in
  let r = Semantics.run ~initial interp sp bindings st in
  let report : Runtime.report =
    {
      Runtime.tasks_run = r.Semantics.tasks_run;
      steps = r.Semantics.steps;
      max_concurrency = r.Semantics.max_concurrency;
      max_waiting = r.Semantics.max_waiting;
      avg_busy = r.Semantics.avg_busy;
      stats = r.Semantics.stats;
      prim_counts = r.Semantics.prim_counts;
    }
  in
  { entries = List.rev !entries; report }

let render_timeline ?(max_ticks = 60) t =
  let workers =
    1 + List.fold_left (fun acc e -> max acc e.worker) 0 t.entries
  in
  let buf = Buffer.create 1024 in
  let cell_of w tick =
    let here = List.filter (fun e -> e.worker = w && e.tick = tick) t.entries in
    match List.rev here with
    | [] -> "."
    | e :: _ -> begin
        match e.kind with
        | Aborted | Retried -> "*"
        | Blocked_at _ -> "~"
        | Started | Executed _ | Resumed _ | Committed -> e.index
      end
  in
  for w = 0 to workers - 1 do
    Buffer.add_string buf (Printf.sprintf "w%d: " w);
    for tick = 1 to max_ticks do
      Buffer.add_string buf (Printf.sprintf "%-8s" (cell_of w tick))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let summarize t =
  let sets = List.sort_uniq compare (List.map (fun e -> e.set_name) t.entries) in
  List.map
    (fun set ->
      let of_kind p = List.length (List.filter (fun e -> e.set_name = set && p e.kind) t.entries) in
      ( set,
        of_kind (fun k -> k = Committed),
        of_kind (fun k -> k = Aborted),
        of_kind (fun k -> k = Retried),
        of_kind (function Blocked_at _ -> true | _ -> false) ))
    sets
