(** The aggressive software runtime of §4.4: a fixed pool of abstract
    workers executes active tasks concurrently (deterministic
    op-by-op interleaving), while rules watch the event stream and the
    minimum-task broadcasts to forward, squash or release tasks.

    Whether the resulting schedule is speculative or coordinative is a
    property of the specification's rules, not of this runtime — both
    paradigms of §4.2 run on the same machinery, as in the paper.

    Tasks blocked at a rendezvous are parked off-worker (a worker is a
    pipeline, not an OS thread), so the minimum task always makes
    progress and the [otherwise] exit paths guarantee liveness. *)

exception Deadlock of string
(** Liveness failure of the {e specification}: nothing ran, nothing can
    be woken, and the engine confirms a rule lacks a viable exit path.
    Typed (rather than [Failure]) so harnesses and the CLI can
    distinguish a liveness bug from an ordinary crash. *)

exception Step_limit_exceeded of int
(** The scheduler ran the given number of ticks without quiescing —
    the spec is diverging (or the budget is too small for the
    workload).  The payload is the exhausted budget. *)

type report = {
  tasks_run : int;  (** tasks that reached an outcome (incl. squashes) *)
  steps : int;  (** scheduler ticks — a proxy for parallel makespan *)
  max_concurrency : int;  (** peak simultaneously-running tasks *)
  max_waiting : int;  (** peak parked tasks *)
  avg_busy : float;  (** mean busy workers per tick (parallel efficiency) *)
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

val run :
  ?initial:(string * Value.t list) list ->
  ?workers:int ->
  ?max_steps:int ->
  Spec.t ->
  Spec.bindings ->
  State.t ->
  report
(** [run ~initial ~workers spec bindings state] executes to quiescence
    with the given worker count (default 8), mutating [state].
    @raise Deadlock on a rule without a viable exit path.
    @raise Step_limit_exceeded when [max_steps] (default 100 million)
    is exceeded. *)
