(* The sequential reference substrate: Definition 4.3's minimum-first
   schedule, now expressed as the {!Semantics.oracle} interpretation.
   This module only adapts the report shape; the loop lives in
   {!Semantics}. *)

type report = {
  tasks_run : int;
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

let run ?(initial = []) ?(max_tasks = 10_000_000) sp bindings st =
  let r = Semantics.run ~initial (Semantics.oracle ~max_tasks ()) sp bindings st in
  {
    tasks_run = r.Semantics.tasks_run;
    stats = r.Semantics.stats;
    prim_counts = r.Semantics.prim_counts;
  }
