type report = {
  tasks_run : int;
  domains_used : int;
  stats : Engine.stats;
}

let run ?(initial = []) ?domains sp bindings st =
  let n_domains =
    match domains with
    | Some n -> max 1 n
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  let eng = Engine.create sp bindings st in
  List.iter (fun (set, payload) -> Engine.push_initial eng set payload) initial;
  let lock = Mutex.create () in
  let resumable : Engine.task Queue.t = Queue.create () in
  let tasks_run = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  (* Each domain repeatedly: take the lock, acquire a task (resumed
     first), run it op-by-op under the lock until it blocks or
     finishes, then release.  Holding the lock across a whole task
     slice keeps engine invariants simple; parallelism across domains
     comes from the slices interleaving at block/finish boundaries and
     from the OS overlapping the lock-free tails. *)
  let worker () =
    let idle_spins = ref 0 in
    let running = ref true in
    while !running && Atomic.get failure = None do
      Mutex.lock lock;
      let task =
        if not (Queue.is_empty resumable) then Some (Queue.pop resumable)
        else Engine.pop_any eng
      in
      begin
        match task with
        | Some task -> begin
            idle_spins := 0;
            let rec slice () =
              match Engine.step eng task with
              | Engine.Stepped -> slice ()
              | Engine.Blocked ->
                  Engine.resolve_pending eng;
                  List.iter (fun t -> Queue.push t resumable) (Engine.resume_ready eng)
              | Engine.Finished _ ->
                  Atomic.incr tasks_run;
                  Engine.resolve_pending eng;
                  List.iter (fun t -> Queue.push t resumable) (Engine.resume_ready eng)
            in
            (try slice () with e -> Atomic.set failure (Some e))
          end
        | None ->
            if not (Engine.uncommitted_remaining eng) then running := false
            else begin
              (* nothing runnable here: give the minimum-task machinery
                 a chance, then back off *)
              Engine.resolve_pending eng;
              List.iter (fun t -> Queue.push t resumable) (Engine.resume_ready eng);
              incr idle_spins;
              if !idle_spins > 1_000_000 then begin
                if Engine.deadlocked eng then
                  Atomic.set failure
                    (Some (Runtime.Deadlock "Parallel_runtime.run: deadlock in rule resolution"))
              end
            end
      end;
      Mutex.unlock lock;
      if task = None then Domain.cpu_relax ()
    done
  in
  let spawned = List.init (n_domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  begin
    match Atomic.get failure with
    | Some e -> raise e
    | None -> ()
  end;
  { tasks_run = Atomic.get tasks_run; domains_used = n_domains; stats = Engine.stats eng }
