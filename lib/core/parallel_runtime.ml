(* The domain-parallel substrate, now expressed as the
   {!Semantics.multicore} interpretation: OCaml 5 domains over the
   shared engine, one lock, resumed tasks first.  The loop lives in
   {!Semantics}; this module only adapts the report shape.  Liveness
   failures surface as [Runtime.Deadlock] (the shared constructor). *)

type report = {
  tasks_run : int;
  domains_used : int;
  stats : Engine.stats;
}

let run ?(initial = []) ?domains sp bindings st =
  let r = Semantics.run ~initial (Semantics.multicore ?domains ()) sp bindings st in
  {
    tasks_run = r.Semantics.tasks_run;
    domains_used = r.Semantics.domains_used;
    stats = r.Semantics.stats;
  }
