(** The single binary-operator semantics table.

    Every evaluator — the tree-walking {!Interp}, and the compiled
    cycle engine's postfix bytecode — executes {!Spec.binop}s through
    {!exec}, so numeric promotion, the comparison total order, the
    short-circuit boolean connectives and every error string are
    defined exactly once and cannot drift between substrates.

    Values are represented as the compiled engine represents them: a
    tag ({!tg_int} / {!tg_float} / {!tg_bool}) plus an int slot and a
    float slot in parallel scratch arrays, which keeps {!exec}
    allocation-free (floats never cross a call boundary as arguments,
    so nothing is boxed on the hot path). *)

val tg_int : int
val tg_float : int
val tg_bool : int

val tg_unbound : int
(** Not a value tag: marks an unwritten register/frame slot in the
    compiled engine.  {!exec} never sees it. *)

val exec : int array -> float array -> int array -> Spec.binop -> int -> int -> unit
(** [exec st_i st_f st_tg op a b] combines slot [a] and slot [b] of the
    scratch arrays and writes the result (value and tag) back into slot
    [a].  Semantics and error strings of the §4 expression language:
    [Div]/[Rem] by integer zero raise [Invalid_argument] ("division by
    zero" / "modulo by zero"), boolean operands of arithmetic raise
    [Invalid_argument] ("bad operands for ..."), comparisons use the
    float total order (NaN via [compare]), [And]/[Or] short-circuit and
    type-check like [Value.to_bool]. *)

(** {1 Shared cold-path raisers}

    Error helpers over the same (tag, int, float) representation, used
    by the evaluators for the unary cases ([Not], [Neg], truthiness and
    int coercions) so their messages match [Value]'s. *)

val vstr : int -> int -> float -> string
(** Render a tagged slot the way [Value.to_string] would. *)

val bool_type_error : int -> int -> float -> 'a
val int_type_error : int -> int -> float -> 'a
val truthy_type_error : int -> int -> float -> 'a

val arith_error : string -> 'a
(** [arith_error what] raises [Invalid_argument "Interp: bad operands
    for <what>"]. *)

val icompare : int -> int -> int
(** Monomorphic int compare (the polymorphic [Stdlib.compare] calls the
    generic comparison out-of-line on every use). *)
