(** A genuinely multicore implementation of the abstraction, per the
    §4.4 implementation menu ("a thread pool and conditional variables
    can be used to implement in Pthread"): OCaml 5 domains stand in for
    pthreads, with the shared semantic {!Engine} guarded by one lock —
    the engine transitions serialize (they are the "runtime system" of
    aggressive parallelization) while [Prim] kernels and the domains'
    scheduling run truly in parallel.

    Unlike {!Runtime}, the schedule is nondeterministic: correctness is
    asserted through the §4.1 equivalence criterion (the final state
    must match the sequential oracle for result-deterministic
    applications) rather than through reproducible step counts. *)

type report = {
  tasks_run : int;
  domains_used : int;
  stats : Engine.stats;
}

val run :
  ?initial:(string * Value.t list) list ->
  ?domains:int ->
  Spec.t ->
  Spec.bindings ->
  State.t ->
  report
(** [run spec bindings state] executes to quiescence on [domains]
    domains (default: min 4 of the recommended domain count).
    @raise Runtime.Deadlock on a rule without a viable exit path. *)
