(** One semantics, many interpretations.

    The small-step ECA-rule stepper lives in {!Engine}; this module is
    the {e single} driver loop around it, parameterized over an
    {!interpretation} record.  What used to be five hand-written
    substrate loops — [Sequential], [Runtime], [Parallel_runtime],
    [Trace] capture, [Cpu_model] instrumentation — are now one of three
    scheduling {!policy}s plus optional effect {!hooks}:

    - {!oracle} — always run the minimum active task to completion
      (Definition 4.3's well-order; the conformance reference).
    - {!pipelined} — a fixed pool of abstract workers, one operation per
      busy worker per tick; the aggressive software runtime of §4.4.
    - {!multicore} — OCaml 5 domains over the shared engine.

    Adding a substrate means building a record, not writing a loop: the
    tracer is [pipelined] plus recording hooks, the CPU timing model is
    [oracle]/[pipelined] plus counting hooks, and a test-only
    interpretation is a few lines (see the conformance suite). *)

(** Typed liveness failures.  These are the {e same} exception
    constructors as [Runtime.Deadlock] / [Runtime.Step_limit_exceeded]
    (rebound there), so existing handlers and the CLI's exit-code
    mapping work unchanged whichever name they match on. *)

exception Deadlock of string

exception Step_limit_exceeded of int

(** {1 Effect hooks} *)

(** One lifecycle transition of one task under the stepper. *)
type step_event =
  | Acquired  (** scheduled for the first time, or re-popped fresh *)
  | Resumed  (** woken from a rendezvous and rescheduled *)
  | Executed of Spec.op  (** one operation retired *)
  | Blocked_on of string  (** parked awaiting the named handle *)
  | Finished of Engine.outcome  (** frame completed *)

type hooks = {
  on_event : tick:int -> worker:int -> Engine.task -> step_event -> unit;
      (** [tick] is the policy's time unit (scheduler tick for
          {!pipelined}, global transition count otherwise); [worker]
          the abstract worker / domain id.  Under {!multicore} hooks
          fire holding the engine lock — keep them short. *)
}

val null_hooks : hooks

(** {1 Interpretations} *)

type policy =
  | Min_first of { max_tasks : int }
      (** run the minimum active task to completion, repeat *)
  | Workers of { workers : int; max_steps : int }
      (** deterministic worker-pool interleaving, one op per busy
          worker per tick *)
  | Domains of { domains : int option }
      (** OCaml 5 domains; [None] picks [min 4 recommended] *)

type interpretation = {
  descr : string;  (** prefix for error messages, e.g. ["Runtime.run"] *)
  policy : policy;
  hooks : hooks;
}

type report = {
  tasks_run : int;
  steps : int;  (** scheduler ticks ({!pipelined}) or transitions *)
  max_concurrency : int;  (** peak busy workers (0 under {!multicore}) *)
  max_waiting : int;  (** peak parked tasks (0 outside {!pipelined}) *)
  avg_busy : float;  (** mean busy workers per tick *)
  domains_used : int;  (** 0 outside {!multicore} *)
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

val oracle : ?max_tasks:int -> unit -> interpretation
(** Sequential minimum-first reference. Default budget 10_000_000
    tasks; exceeding it raises [Failure]. *)

val pipelined : ?workers:int -> ?max_steps:int -> unit -> interpretation
(** Worker-pool runtime. Defaults: 8 workers, 100_000_000 steps.
    Raises {!Step_limit_exceeded} past the budget and {!Deadlock} when
    no task can make progress. *)

val multicore : ?domains:int -> unit -> interpretation
(** Domain-parallel runtime. Raises {!Deadlock} (from the losing
    domain, re-raised on the caller) on rule-resolution deadlock. *)

val with_hooks : interpretation -> hooks -> interpretation

val with_descr : interpretation -> string -> interpretation

val run :
  ?initial:(string * Value.t list) list ->
  interpretation ->
  Spec.t ->
  Spec.bindings ->
  State.t ->
  report
(** [run interp spec bindings state] builds an engine, pushes the
    initial tasks, and drives it to completion under [interp]'s policy,
    firing [interp]'s hooks at every transition. *)
