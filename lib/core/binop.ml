(* The single binary-operator semantics table, shared by every
   evaluator in the repo.

   Both the tree-walking interpreter ({!Interp.eval_binop}) and the
   compiled cycle engine's postfix bytecode evaluator
   (Agp_hw.Engine_compiled) execute binops through {!exec}, so the
   numeric-promotion rules, the comparison total order, the
   short-circuit boolean connectives and every error string are defined
   exactly once.  Conformance between the substrates is therefore
   structural, not a property the differential harness has to re-check
   per operator.

   The representation is the compiled engine's: a value is a (tag,
   int-slot, float-slot) triple spread across three parallel scratch
   arrays.  This keeps the hot path allocation-free — the arrays are
   passed by reference and floats never cross a function boundary as
   arguments (OCaml boxes float arguments of non-inlined calls), which
   is what the compiled engine's minor-words-per-cycle gate measures.
   The tree-walker pays a tiny per-call scratch to adapt [Value.t]s;
   that path was never allocation-sensitive. *)

(* value tags on the scratch stacks / frames *)
let tg_int = 0

let tg_float = 1

let tg_bool = 2

let tg_unbound = 3

let vstr tg i f =
  if tg = tg_int then string_of_int i
  else if tg = tg_float then Printf.sprintf "%g" f
  else if i <> 0 then "true"
  else "false"

(* cold raising helpers: callers check the tag inline so the hot path
   never passes a float across a function boundary *)
let bool_type_error tg i f = invalid_arg ("Value.to_bool: " ^ vstr tg i f)

let int_type_error tg i f = invalid_arg ("Value.to_int: " ^ vstr tg i f)

let truthy_type_error tg i f = invalid_arg ("Value.truthy: " ^ vstr tg i f)

let arith_error op = invalid_arg ("Interp: bad operands for " ^ op)

let icompare (x : int) y = if x < y then -1 else if x > y then 1 else 0

(* binop over slots [a] (result) and [b] of the scratch arrays;
   promotion rules and error strings are the semantics of §4's
   expression language.  Written as one flat match — no local closures,
   so compiled-engine clause and expression evaluation allocates
   nothing here. *)
let exec (st_i : int array) (st_f : float array) (st_tg : int array) (op : Spec.binop) a b =
  let ti = st_tg.(a) and tj = st_tg.(b) in
  match op with
  | Spec.Add | Spec.Sub | Spec.Mul | Spec.Div | Spec.Rem | Spec.Min | Spec.Max ->
      if op = Spec.Rem then begin
        if ti = tg_int && tj = tg_int then begin
          if st_i.(b) = 0 then invalid_arg "Interp: modulo by zero"
          else begin
            st_i.(a) <- st_i.(a) mod st_i.(b);
            st_tg.(a) <- tg_int
          end
        end
        else arith_error "rem"
      end
      else if op = Spec.Div && tj = tg_int && st_i.(b) = 0 then
        invalid_arg "Interp: division by zero"
      else if op = Spec.Div && tj = tg_bool then arith_error "division"
      else if ti = tg_int && tj = tg_int then begin
        let x = st_i.(a) and y = st_i.(b) in
        st_i.(a) <-
          (match op with
          | Spec.Add -> x + y
          | Spec.Sub -> x - y
          | Spec.Mul -> x * y
          | Spec.Div -> x / y
          | Spec.Min -> if x <= y then x else y
          | _ -> if x >= y then x else y);
        st_tg.(a) <- tg_int
      end
      else if ti = tg_bool || tj = tg_bool then arith_error "arithmetic"
      else begin
        let x = if ti = tg_int then float_of_int st_i.(a) else st_f.(a) in
        let y = if tj = tg_int then float_of_int st_i.(b) else st_f.(b) in
        st_f.(a) <-
          (match op with
          | Spec.Add -> x +. y
          | Spec.Sub -> x -. y
          | Spec.Mul -> x *. y
          | Spec.Div -> x /. y
          | Spec.Min -> if x <= y then x else y
          | _ -> if x >= y then x else y);
        st_tg.(a) <- tg_float
      end
  | Spec.Eq | Spec.Ne | Spec.Lt | Spec.Le | Spec.Gt | Spec.Ge ->
      let c =
        if ti = tg_bool && tj = tg_bool then
          icompare (if st_i.(a) <> 0 then 1 else 0) (if st_i.(b) <> 0 then 1 else 0)
        else if ti = tg_bool || tj = tg_bool then arith_error "comparison"
        else if ti = tg_int && tj = tg_int then icompare st_i.(a) st_i.(b)
        else begin
          (* total-order float compare, inline: [compare] only on the
             NaN path so nothing is boxed in steady state *)
          let x = if ti = tg_int then float_of_int st_i.(a) else st_f.(a) in
          let y = if tj = tg_int then float_of_int st_i.(b) else st_f.(b) in
          if x < y then -1 else if x > y then 1 else if x = y then 0 else compare x y
        end
      in
      let v =
        match op with
        | Spec.Eq -> c = 0
        | Spec.Ne -> c <> 0
        | Spec.Lt -> c < 0
        | Spec.Le -> c <= 0
        | Spec.Gt -> c > 0
        | _ -> c >= 0
      in
      st_i.(a) <- (if v then 1 else 0);
      st_tg.(a) <- tg_bool
  | Spec.And ->
      if ti <> tg_bool then bool_type_error ti st_i.(a) st_f.(a);
      let v =
        st_i.(a) <> 0
        &&
        if tj <> tg_bool then bool_type_error tj st_i.(b) st_f.(b)
        else st_i.(b) <> 0
      in
      st_i.(a) <- (if v then 1 else 0);
      st_tg.(a) <- tg_bool
  | Spec.Or ->
      if ti <> tg_bool then bool_type_error ti st_i.(a) st_f.(a);
      let v =
        st_i.(a) <> 0
        ||
        if tj <> tg_bool then bool_type_error tj st_i.(b) st_f.(b)
        else st_i.(b) <> 0
      in
      st_i.(a) <- (if v then 1 else 0);
      st_tg.(a) <- tg_bool
