(* The aggressive software runtime (§4.4), now expressed as the
   {!Semantics.pipelined} interpretation: a fixed pool of abstract
   workers, one operation per busy worker per tick, resumed tasks
   taking slot priority.  The loop lives in {!Semantics}; this module
   re-exports the typed liveness exceptions (same constructors, so
   existing [Runtime.Deadlock] handlers keep matching) and adapts the
   report shape. *)

exception Deadlock = Semantics.Deadlock

exception Step_limit_exceeded = Semantics.Step_limit_exceeded

type report = {
  tasks_run : int;
  steps : int;
  max_concurrency : int;
  max_waiting : int;
  avg_busy : float;
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

let run ?(initial = []) ?(workers = 8) ?(max_steps = 100_000_000) sp bindings st =
  let r =
    Semantics.run ~initial (Semantics.pipelined ~workers ~max_steps ()) sp bindings st
  in
  {
    tasks_run = r.Semantics.tasks_run;
    steps = r.Semantics.steps;
    max_concurrency = r.Semantics.max_concurrency;
    max_waiting = r.Semantics.max_waiting;
    avg_busy = r.Semantics.avg_busy;
    stats = r.Semantics.stats;
    prim_counts = r.Semantics.prim_counts;
  }
