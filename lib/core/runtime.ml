exception Deadlock of string

exception Step_limit_exceeded of int

let () =
  Printexc.register_printer (function
    | Deadlock msg -> Some (Printf.sprintf "Agp_core.Runtime.Deadlock(%S)" msg)
    | Step_limit_exceeded n -> Some (Printf.sprintf "Agp_core.Runtime.Step_limit_exceeded(%d)" n)
    | _ -> None)

type report = {
  tasks_run : int;
  steps : int;
  max_concurrency : int;
  max_waiting : int;
  avg_busy : float;
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

let run ?(initial = []) ?(workers = 8) ?(max_steps = 100_000_000) sp bindings st =
  if workers < 1 then invalid_arg "Runtime.run: workers must be positive";
  let eng = Engine.create sp bindings st in
  List.iter (fun (set, payload) -> Engine.push_initial eng set payload) initial;
  let slots : Engine.task option array = Array.make workers None in
  let resumable = Queue.create () in
  let tasks_run = ref 0 in
  let steps = ref 0 in
  let max_concurrency = ref 0 in
  let total_busy = ref 0 in
  let max_waiting = ref 0 in
  let occupied () = Array.fold_left (fun n s -> if s = None then n else n + 1) 0 slots in
  while Engine.uncommitted_remaining eng do
    incr steps;
    if !steps > max_steps then raise (Step_limit_exceeded max_steps);
    (* Fill idle workers: resumed tasks take priority over fresh pops
       (they are already deep in the pipeline). *)
    let progressed = ref false in
    for w = 0 to workers - 1 do
      if slots.(w) = None then begin
        if not (Queue.is_empty resumable) then slots.(w) <- Some (Queue.pop resumable)
        else slots.(w) <- Engine.pop_any eng
      end
    done;
    let busy_now = occupied () in
    total_busy := !total_busy + busy_now;
    max_concurrency := max !max_concurrency busy_now;
    (* One operation per busy worker per tick. *)
    for w = 0 to workers - 1 do
      match slots.(w) with
      | None -> ()
      | Some task -> begin
          match Engine.step eng task with
          | Engine.Stepped -> progressed := true
          | Engine.Blocked ->
              progressed := true;
              slots.(w) <- None;
              Engine.resolve_pending eng
          | Engine.Finished _ ->
              progressed := true;
              incr tasks_run;
              slots.(w) <- None;
              Engine.resolve_pending eng
        end
    done;
    max_waiting := max !max_waiting (List.length (Engine.waiting_tasks eng));
    (* Wake tasks whose rendezvous resolved. *)
    List.iter (fun task -> Queue.push task resumable) (Engine.resume_ready eng);
    if (not !progressed) && Queue.is_empty resumable then begin
      (* Nothing ran and nothing woke: either only parked tasks remain
         (give the minimum-task machinery a chance) or the spec is
         deadlocked. *)
      Engine.resolve_pending eng;
      let woke = Engine.resume_ready eng in
      List.iter (fun task -> Queue.push task resumable) woke;
      if woke = [] && Engine.deadlocked eng then
        raise (Deadlock "Runtime.run: deadlock — a rule lacks a viable exit path")
    end
  done;
  {
    tasks_run = !tasks_run;
    steps = !steps;
    max_concurrency = !max_concurrency;
    max_waiting = !max_waiting;
    avg_busy =
      (if !steps = 0 then 0.0 else float_of_int !total_busy /. float_of_int !steps);
    stats = Engine.stats eng;
    prim_counts = Engine.prim_counts eng;
  }
