module Vec = Agp_util.Vec

type data =
  | Ints of int array
  | Floats of float array

type access = {
  array_name : string;
  index : int;
  is_write : bool;
}

type t = {
  arrays : (string, data) Hashtbl.t;
  order : string Vec.t; (* registration order, for layout and diffing *)
  mutable tracing : bool;
  trace : access Vec.t;
}

let create () =
  { arrays = Hashtbl.create 16; order = Vec.create (); tracing = false; trace = Vec.create () }

let add t name data =
  if Hashtbl.mem t.arrays name then invalid_arg ("State: duplicate array " ^ name);
  Hashtbl.add t.arrays name data;
  Vec.push t.order name

let add_int_array t name a = add t name (Ints a)

let add_float_array t name a = add t name (Floats a)

let has_array t name = Hashtbl.mem t.arrays name

let find t name =
  match Hashtbl.find_opt t.arrays name with
  | Some d -> d
  | None -> invalid_arg ("State: unknown array " ^ name)

let array_length t name =
  match find t name with
  | Ints a -> Array.length a
  | Floats a -> Array.length a

let record t name index is_write =
  if t.tracing then Vec.push t.trace { array_name = name; index; is_write }

let check_bounds name len index =
  if index < 0 || index >= len then
    invalid_arg (Printf.sprintf "State: %s[%d] out of bounds (length %d)" name index len)

let read t name index =
  record t name index false;
  match find t name with
  | Ints a ->
      check_bounds name (Array.length a) index;
      Value.Int a.(index)
  | Floats a ->
      check_bounds name (Array.length a) index;
      Value.Float a.(index)

let write t name index v =
  record t name index true;
  match (find t name, v) with
  | Ints a, Value.Int n ->
      check_bounds name (Array.length a) index;
      a.(index) <- n
  | Floats a, Value.Float x ->
      check_bounds name (Array.length a) index;
      a.(index) <- x
  | Floats a, Value.Int n ->
      check_bounds name (Array.length a) index;
      a.(index) <- float_of_int n
  | Ints _, (Value.Float _ | Value.Bool _) | Floats _, Value.Bool _ ->
      invalid_arg
        (Printf.sprintf "State: type mismatch writing %s to %s" (Value.to_string v) name)

let touch t name index is_write = record t name index is_write

let int_array t name =
  match find t name with
  | Ints a -> a
  | Floats _ -> invalid_arg ("State: " ^ name ^ " is not an int array")

let float_array t name =
  match find t name with
  | Floats a -> a
  | Ints _ -> invalid_arg ("State: " ^ name ^ " is not a float array")

let set_tracing t b = t.tracing <- b

let drain_trace t =
  let out = Vec.to_list t.trace in
  Vec.clear t.trace;
  out

let iter_trace t f = Vec.iter f t.trace

let clear_trace t = Vec.clear t.trace

let address_of t name index =
  (* Arrays occupy consecutive 8-byte-per-element ranges in
     registration order. *)
  let base = ref 0 in
  let found = ref None in
  Vec.iter
    (fun n ->
      if !found = None then begin
        if n = name then found := Some !base
        else base := !base + (8 * array_length t n)
      end)
    t.order;
  match !found with
  | Some b -> b + (8 * index)
  | None -> invalid_arg ("State.address_of: unknown array " ^ name)

let snapshot t =
  let s = create () in
  Vec.iter
    (fun name ->
      match find t name with
      | Ints a -> add_int_array s name (Array.copy a)
      | Floats a -> add_float_array s name (Array.copy a))
    t.order;
  s

let equal_content a b =
  let names t = Vec.to_list t.order in
  names a = names b
  && List.for_all
       (fun name ->
         match (find a name, find b name) with
         | Ints x, Ints y -> x = y
         | Floats x, Floats y -> x = y
         | Ints _, Floats _ | Floats _, Ints _ -> false)
       (names a)

let diff a b =
  let out = ref [] in
  let say fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let names t = Vec.to_list t.order in
  if names a <> names b then say "array sets differ";
  List.iter
    (fun name ->
      if Hashtbl.mem b.arrays name then begin
        match (find a name, find b name) with
        | Ints x, Ints y ->
            if Array.length x <> Array.length y then say "%s: length differs" name
            else
              Array.iteri (fun i v -> if v <> y.(i) then say "%s[%d]: %d vs %d" name i v y.(i)) x
        | Floats x, Floats y ->
            if Array.length x <> Array.length y then say "%s: length differs" name
            else
              Array.iteri
                (fun i v -> if v <> y.(i) then say "%s[%d]: %g vs %g" name i v y.(i))
                x
        | Ints _, Floats _ | Floats _, Ints _ -> say "%s: kind differs" name
      end)
    (names a);
  List.rev !out
