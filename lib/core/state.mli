(** Program state Σ: named memory arrays plus an optional access trace.

    Both software runtimes and the hardware simulator execute task
    bodies against this structure; the simulator additionally drains the
    access trace to charge loads/stores through the modelled cache and
    QPI link.  Addresses are (array, element-index) pairs; the
    {!address_of} map gives each array a disjoint byte range so traces
    can be replayed against a flat cache model. *)

type t

type access = {
  array_name : string;
  index : int;
  is_write : bool;
}

val create : unit -> t

val add_int_array : t -> string -> int array -> unit
(** Register an integer array under a name (the array is shared, not
    copied — substrates keep mutating visibility).
    @raise Invalid_argument on duplicate names. *)

val add_float_array : t -> string -> float array -> unit

val has_array : t -> string -> bool

val array_length : t -> string -> int

val read : t -> string -> int -> Value.t
(** Traced bounds-checked load. *)

val write : t -> string -> int -> Value.t -> unit
(** Traced bounds-checked store; value kind must match the array. *)

val touch : t -> string -> int -> bool -> unit
(** Record a synthetic access (used by [Prim] implementations whose data
    structures live outside Σ, e.g. the DMR mesh) without moving data. *)

val int_array : t -> string -> int array
(** Direct handle for result extraction (untraced). *)

val float_array : t -> string -> float array

val set_tracing : t -> bool -> unit
(** Tracing starts disabled. *)

val drain_trace : t -> access list
(** Return and clear accumulated accesses (oldest first). *)

val iter_trace : t -> (access -> unit) -> unit
(** Visit accumulated accesses oldest-first without draining or
    allocating; pair with {!clear_trace}. *)

val clear_trace : t -> unit
(** Drop accumulated accesses. *)

val address_of : t -> string -> int -> int
(** Flat byte address of an element: arrays are laid out consecutively
    in registration order, 8 bytes per element. *)

val snapshot : t -> t
(** Deep copy (trace not copied, tracing off). *)

val equal_content : t -> t -> bool
(** Same arrays with same contents (trace ignored). *)

val diff : t -> t -> string list
(** Human-readable differences, for test failure messages. *)
