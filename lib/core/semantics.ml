(* One semantics, many interpretations.

   The small-step ECA-rule semantics lives in {!Engine}; what used to
   distinguish Sequential / Runtime / Parallel_runtime / Trace /
   Cpu_model was five hand-written driver loops around it, each free to
   drift.  This module is the single driver, parameterized over an
   {!interpretation} record: a {!policy} (which scheduling discipline
   feeds tasks to the stepper) plus {!hooks} (effect observers fired at
   every lifecycle transition).  A substrate is now a record, not a
   reimplementation — the legacy modules are thin adapters over {!run},
   and a new backend (tracing, profiling, counting, future cost-model
   evaluators) is an interpretation record away. *)

(* Typed liveness failures.  Historically these were born in [Runtime]
   and the whole repo matches on [Runtime.Deadlock] /
   [Runtime.Step_limit_exceeded]; [Runtime] now re-exports these very
   constructors (OCaml exception rebinding), so both names are the same
   exception and every existing handler keeps working. *)
exception Deadlock of string

exception Step_limit_exceeded of int

let () =
  Printexc.register_printer (function
    | Deadlock msg -> Some (Printf.sprintf "Agp_core.Runtime.Deadlock(%S)" msg)
    | Step_limit_exceeded n -> Some (Printf.sprintf "Agp_core.Runtime.Step_limit_exceeded(%d)" n)
    | _ -> None)

type step_event =
  | Acquired
  | Resumed
  | Executed of Spec.op
  | Blocked_on of string
  | Finished of Engine.outcome

type hooks = { on_event : tick:int -> worker:int -> Engine.task -> step_event -> unit }

let null_hooks = { on_event = (fun ~tick:_ ~worker:_ _ _ -> ()) }

type policy =
  | Min_first of { max_tasks : int }
  | Workers of { workers : int; max_steps : int }
  | Domains of { domains : int option }

type interpretation = {
  descr : string;
  policy : policy;
  hooks : hooks;
}

type report = {
  tasks_run : int;
  steps : int;
  max_concurrency : int;
  max_waiting : int;
  avg_busy : float;
  domains_used : int;
  stats : Engine.stats;
  prim_counts : (string * int) list;
}

let oracle ?(max_tasks = 10_000_000) () =
  { descr = "Sequential.run"; policy = Min_first { max_tasks }; hooks = null_hooks }

let pipelined ?(workers = 8) ?(max_steps = 100_000_000) () =
  { descr = "Runtime.run"; policy = Workers { workers; max_steps }; hooks = null_hooks }

let multicore ?domains () =
  { descr = "Parallel_runtime.run"; policy = Domains { domains }; hooks = null_hooks }

let with_hooks interp hooks = { interp with hooks }

let with_descr interp descr = { interp with descr }

let head_op (task : Engine.task) =
  match task.Engine.cont with
  | op :: _ -> Some op
  | [] -> None

let blocked_handle head =
  match head with
  | Some (Spec.Await (_, h)) -> h
  | _ -> ""

(* --- Min_first: Definition 4.3, always run the minimum active task.
   Structurally Engine.run_to_completion + the legacy Sequential loop,
   with hooks at every transition. *)
let run_min_first ~descr ~max_tasks ~hooks eng =
  let tasks_run = ref 0 in
  let op_count = ref 0 in
  let fire task ev = hooks.on_event ~tick:!op_count ~worker:0 task ev in
  let drive (task : Engine.task) =
    let rec go () =
      let head = head_op task in
      match Engine.step eng task with
      | Engine.Stepped ->
          incr op_count;
          (match head with Some op -> fire task (Executed op) | None -> ());
          go ()
      | Engine.Finished outcome ->
          incr op_count;
          fire task (Finished outcome);
          Engine.resolve_pending eng
      | Engine.Blocked -> begin
          incr op_count;
          fire task (Blocked_on (blocked_handle head));
          Engine.resolve_pending eng;
          match Engine.resume_ready eng with
          | [] ->
              failwith
                (Printf.sprintf "Engine: sequential deadlock at task %s of set %d"
                   (Index.to_string task.Engine.index) task.Engine.set_slot)
          | woke ->
              (* the running task is minimal, so it is what wakes *)
              List.iter (fun t -> fire t Resumed) woke;
              go ()
        end
    in
    go ()
  in
  let rec loop () =
    if !tasks_run > max_tasks then failwith (descr ^ ": task budget exceeded");
    match Engine.pop_min eng with
    | None -> ()
    | Some task ->
        incr tasks_run;
        fire task Acquired;
        drive task;
        loop ()
  in
  loop ();
  {
    tasks_run = !tasks_run;
    steps = !op_count;
    max_concurrency = (if !tasks_run > 0 then 1 else 0);
    max_waiting = 0;
    avg_busy = (if !op_count > 0 then 1.0 else 0.0);
    domains_used = 0;
    stats = Engine.stats eng;
    prim_counts = Engine.prim_counts eng;
  }

(* --- Workers: the aggressive software runtime of §4.4.  A fixed pool
   of abstract workers, deterministic op-by-op interleaving; resumed
   tasks take slot priority over fresh pops (they are already deep in
   the pipeline).  Trace capture is this policy plus recording hooks —
   the hooks fire at exactly the points the legacy tracer recorded, so
   a traced run keeps the same schedule as an untraced one. *)
let run_workers ~descr ~workers ~max_steps ~hooks eng =
  if workers < 1 then invalid_arg (descr ^ ": workers must be positive");
  let slots : Engine.task option array = Array.make workers None in
  let resumable = Queue.create () in
  let tasks_run = ref 0 in
  let steps = ref 0 in
  let max_concurrency = ref 0 in
  let total_busy = ref 0 in
  let max_waiting = ref 0 in
  let fire w task ev = hooks.on_event ~tick:!steps ~worker:w task ev in
  let occupied () = Array.fold_left (fun n s -> if s = None then n else n + 1) 0 slots in
  while Engine.uncommitted_remaining eng do
    incr steps;
    if !steps > max_steps then raise (Step_limit_exceeded max_steps);
    let progressed = ref false in
    for w = 0 to workers - 1 do
      if slots.(w) = None then begin
        if not (Queue.is_empty resumable) then begin
          let task = Queue.pop resumable in
          fire w task Resumed;
          slots.(w) <- Some task
        end
        else
          match Engine.pop_any eng with
          | Some task ->
              fire w task Acquired;
              slots.(w) <- Some task
          | None -> ()
      end
    done;
    let busy_now = occupied () in
    total_busy := !total_busy + busy_now;
    max_concurrency := max !max_concurrency busy_now;
    (* One operation per busy worker per tick. *)
    for w = 0 to workers - 1 do
      match slots.(w) with
      | None -> ()
      | Some task -> begin
          let head = head_op task in
          match Engine.step eng task with
          | Engine.Stepped ->
              progressed := true;
              (match head with Some op -> fire w task (Executed op) | None -> ())
          | Engine.Blocked ->
              progressed := true;
              fire w task (Blocked_on (blocked_handle head));
              slots.(w) <- None;
              Engine.resolve_pending eng
          | Engine.Finished outcome ->
              progressed := true;
              incr tasks_run;
              fire w task (Finished outcome);
              slots.(w) <- None;
              Engine.resolve_pending eng
        end
    done;
    max_waiting := max !max_waiting (List.length (Engine.waiting_tasks eng));
    (* Wake tasks whose rendezvous resolved. *)
    List.iter (fun task -> Queue.push task resumable) (Engine.resume_ready eng);
    if (not !progressed) && Queue.is_empty resumable then begin
      (* Nothing ran and nothing woke: either only parked tasks remain
         (give the minimum-task machinery a chance) or the spec is
         deadlocked. *)
      Engine.resolve_pending eng;
      let woke = Engine.resume_ready eng in
      List.iter (fun task -> Queue.push task resumable) woke;
      if woke = [] && Engine.deadlocked eng then
        raise (Deadlock (descr ^ ": deadlock — a rule lacks a viable exit path"))
    end
  done;
  {
    tasks_run = !tasks_run;
    steps = !steps;
    max_concurrency = !max_concurrency;
    max_waiting = !max_waiting;
    avg_busy =
      (if !steps = 0 then 0.0 else float_of_int !total_busy /. float_of_int !steps);
    domains_used = 0;
    stats = Engine.stats eng;
    prim_counts = Engine.prim_counts eng;
  }

(* --- Domains: genuinely multicore, OCaml 5 domains over the shared
   engine guarded by one lock.  Each domain repeatedly: take the lock,
   acquire a task (resumed first), run it op-by-op under the lock until
   it blocks or finishes, then release.  Holding the lock across a
   whole task slice keeps engine invariants simple; parallelism across
   domains comes from the slices interleaving at block/finish
   boundaries and from the OS overlapping the lock-free tails.  Hooks
   fire under the lock; [tick] is a global transition counter and
   [worker] the domain number, so counting/profiling interpretations
   observe a coherent stream even though the schedule is
   nondeterministic. *)
let run_domains ~descr ~domains ~hooks eng =
  let n_domains =
    match domains with
    | Some n -> max 1 n
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  let lock = Mutex.create () in
  let resumable : Engine.task Queue.t = Queue.create () in
  let tasks_run = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let ticks = ref 0 (* mutated under the lock only *) in
  let worker wid () =
    let fire task ev =
      incr ticks;
      hooks.on_event ~tick:!ticks ~worker:wid task ev
    in
    let idle_spins = ref 0 in
    let running = ref true in
    while !running && Atomic.get failure = None do
      Mutex.lock lock;
      let task =
        if not (Queue.is_empty resumable) then Some (Queue.pop resumable, true)
        else
          match Engine.pop_any eng with
          | Some t -> Some (t, false)
          | None -> None
      in
      begin
        match task with
        | Some (task, resumed) -> begin
            idle_spins := 0;
            fire task (if resumed then Resumed else Acquired);
            let rec slice () =
              let head = head_op task in
              match Engine.step eng task with
              | Engine.Stepped ->
                  (match head with Some op -> fire task (Executed op) | None -> ());
                  slice ()
              | Engine.Blocked ->
                  fire task (Blocked_on (blocked_handle head));
                  Engine.resolve_pending eng;
                  List.iter (fun t -> Queue.push t resumable) (Engine.resume_ready eng)
              | Engine.Finished outcome ->
                  fire task (Finished outcome);
                  Atomic.incr tasks_run;
                  Engine.resolve_pending eng;
                  List.iter (fun t -> Queue.push t resumable) (Engine.resume_ready eng)
            in
            (try slice () with e -> Atomic.set failure (Some e))
          end
        | None ->
            if not (Engine.uncommitted_remaining eng) then running := false
            else begin
              (* nothing runnable here: give the minimum-task machinery
                 a chance, then back off *)
              Engine.resolve_pending eng;
              List.iter (fun t -> Queue.push t resumable) (Engine.resume_ready eng);
              incr idle_spins;
              if !idle_spins > 1_000_000 then begin
                if Engine.deadlocked eng then
                  Atomic.set failure (Some (Deadlock (descr ^ ": deadlock in rule resolution")))
              end
            end
      end;
      Mutex.unlock lock;
      if task = None then Domain.cpu_relax ()
    done
  in
  let spawned = List.init (n_domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  begin
    match Atomic.get failure with
    | Some e -> raise e
    | None -> ()
  end;
  {
    tasks_run = Atomic.get tasks_run;
    steps = !ticks;
    max_concurrency = 0;
    max_waiting = 0;
    avg_busy = 0.0;
    domains_used = n_domains;
    stats = Engine.stats eng;
    prim_counts = Engine.prim_counts eng;
  }

let run ?(initial = []) interp sp bindings st =
  let eng = Engine.create sp bindings st in
  List.iter (fun (set, payload) -> Engine.push_initial eng set payload) initial;
  match interp.policy with
  | Min_first { max_tasks } ->
      run_min_first ~descr:interp.descr ~max_tasks ~hooks:interp.hooks eng
  | Workers { workers; max_steps } ->
      run_workers ~descr:interp.descr ~workers ~max_steps ~hooks:interp.hooks eng
  | Domains { domains } -> run_domains ~descr:interp.descr ~domains ~hooks:interp.hooks eng
