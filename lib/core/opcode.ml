(* Spec -> flat op-array compiler for the compiled cycle engine.

   Task-set bodies become one shared instruction array indexed by pc;
   every instruction carries the pc of its continuation, so executing a
   task is a tight `match code.(pc)` dispatch with no list traversal and
   no sharing of `Spec.op` structure.  Expressions and rule conditions
   compile to postfix bytecode evaluated over preallocated scratch
   stacks (the bytecode-interpreter idiom: op arrays + mutable frames,
   no tree-walking).

   The compiler only restructures data — all evaluation semantics
   (numeric promotion, error strings, out-of-range clause probes) are
   replicated exactly by the engine so that the compiled engine is
   cycle- and state-equivalent to the tree-walking one. *)

(* Postfix expression bytecode.  E_param/E_reg appear only in task-body
   expressions; E_cparam/E_cfield/E_earlier/E_later/E_overlap only in
   rule conditions.  One evaluator handles both. *)
type eop =
  | E_int of int
  | E_float of float
  | E_bool of bool
  | E_param of int (* task payload field *)
  | E_reg of int * string (* register slot; name kept for the unbound error *)
  | E_binop of Spec.binop
  | E_not
  | E_neg
  | E_cparam of int (* rule-instance param (out-of-range aborts the clause) *)
  | E_cfield of int (* event field (out-of-range aborts the clause) *)
  | E_earlier
  | E_later
  | E_overlap of int * int

type inst =
  | I_let of { dst : int; e : eop array; next : int }
  | I_load of { dst : int; arr : int; addr : eop array; next : int }
  | I_store of { arr : int; addr : eop array; v : eop array; next : int }
  | I_push of { set : int; args : eop array array; next : int }
  | I_push_iter of {
      set : int;
      lo : eop array;
      hi : eop array;
      ivar : int;
      args : eop array array;
      next : int;
    }
  | I_alloc of { site : int; handle : int; rule : int; args : eop array array; next : int }
  | I_await of { dst : int; handle : int; handle_name : string; next : int }
  | I_emit of { label : int; args : eop array array; next : int }
  | I_if of { c : eop array; then_pc : int; else_pc : int }
  | I_abort
  | I_retry
  | I_prim of { dsts : int array; prim : int; name : string; args : eop array array; next : int }
  | I_commit (* empty continuation: the task commits *)

type cclause = {
  (* 0 = activated(set), 1 = reached(set,label), 2 = min_changed *)
  c_kind : int;
  c_set : int; (* source task-set slot, -1 for min_changed *)
  c_label : int; (* label id for reached, -1 otherwise *)
  c_cond : eop array;
  c_return : bool option; (* None = Decrement *)
}

type crule = {
  r_name : string;
  r_nparams : int;
  r_clauses : cclause array;
  r_otherwise : bool;
  r_min_waiting : bool; (* otherwise scope *)
  r_counted : bool;
  r_has_decrement : bool;
}

type program = {
  code : inst array;
  entry : int array; (* per task-set slot *)
  n_sets : int;
  set_names : string array;
  set_for_each : bool array;
  set_arity : int array;
  max_arity : int;
  max_regs : int;
  max_handles : int;
  n_sites : int; (* static Alloc sites across all sets *)
  rules : crule array;
  labels : string array;
  array_names : string array; (* state arrays referenced by Load/Store *)
  prim_names : string array;
  max_stack : int; (* expression scratch-stack depth *)
  max_push_args : int;
  max_rule_params : int; (* widest Alloc argument list *)
  max_event_fields : int; (* widest event field vector (payloads + emits) *)
  has_counted : bool;
}

(* --- interning --- *)

type 'a interner = {
  mutable names : string list; (* reverse order *)
  tbl : (string, int) Hashtbl.t;
}

let interner () = { names = []; tbl = Hashtbl.create 8 }

let intern t name =
  match Hashtbl.find_opt t.tbl name with
  | Some i -> i
  | None ->
      let i = Hashtbl.length t.tbl in
      Hashtbl.add t.tbl name i;
      t.names <- name :: t.names;
      i

let interned t = Array.of_list (List.rev t.names)

(* --- compilation --- *)

let compile (spec : Spec.t) : program =
  let sets = Array.of_list spec.Spec.task_sets in
  let n_sets = Array.length sets in
  let set_slot name = Spec.task_set_slot spec name in
  let arrays = interner () in
  let labels = interner () in
  let prims = interner () in
  let code = ref [] in
  let n_code = ref 0 in
  let emit inst =
    code := inst :: !code;
    incr n_code;
    !n_code - 1
  in
  let commit_pc = emit I_commit in
  assert (commit_pc = 0);
  let max_stack = ref 1 in
  let max_push_args = ref 0 in
  let max_rule_params = ref 0 in
  let n_sites = ref 0 in
  (* expression -> postfix, tracking stack depth *)
  let compile_expr regs e =
    let out = ref [] in
    let rec go depth (e : Spec.expr) =
      let d1 =
        match e with
        | Spec.Const (Value.Int n) ->
            out := E_int n :: !out;
            depth + 1
        | Spec.Const (Value.Float x) ->
            out := E_float x :: !out;
            depth + 1
        | Spec.Const (Value.Bool b) ->
            out := E_bool b :: !out;
            depth + 1
        | Spec.Param i ->
            out := E_param i :: !out;
            depth + 1
        | Spec.Var name ->
            out := E_reg (intern regs name, name) :: !out;
            depth + 1
        | Spec.Binop (op, a, b) ->
            let da = go depth a in
            let _db = go da b in
            out := E_binop op :: !out;
            da
        | Spec.Not e ->
            let d = go depth e in
            out := E_not :: !out;
            d
        | Spec.Neg e ->
            let d = go depth e in
            out := E_neg :: !out;
            d
      in
      if d1 > !max_stack then max_stack := d1;
      d1
    in
    ignore (go 0 e);
    Array.of_list (List.rev !out)
  in
  let compile_exprs regs es =
    let a = Array.of_list (List.map (compile_expr regs) es) in
    if Array.length a > !max_push_args then max_push_args := Array.length a;
    a
  in
  (* per-set register and handle allocation happens while compiling the
     body: first occurrence (read or write) claims the slot *)
  let max_regs = ref 0 and max_handles = ref 0 in
  let compile_body (ts : Spec.task_set) =
    let regs = interner () in
    let handles = interner () in
    let rec seq ops ~next =
      match ops with
      | [] -> next
      | op :: rest ->
          let next = seq rest ~next in
          let pc =
            match (op : Spec.op) with
            | Spec.Let (v, e) ->
                let e = compile_expr regs e in
                emit (I_let { dst = intern regs v; e; next })
            | Spec.Load (v, arr, addr) ->
                let addr = compile_expr regs addr in
                emit (I_load { dst = intern regs v; arr = intern arrays arr; addr; next })
            | Spec.Store (arr, addr, v) ->
                let addr = compile_expr regs addr in
                let v = compile_expr regs v in
                emit (I_store { arr = intern arrays arr; addr; v; next })
            | Spec.Push (set, payload) ->
                emit (I_push { set = set_slot set; args = compile_exprs regs payload; next })
            | Spec.Push_iter (set, lo, hi, ivar, payload) ->
                let lo = compile_expr regs lo and hi = compile_expr regs hi in
                let ivar = intern regs ivar in
                emit
                  (I_push_iter
                     { set = set_slot set; lo; hi; ivar; args = compile_exprs regs payload; next })
            | Spec.Alloc (handle, rule_name, params) ->
                let rule =
                  let rec find i = function
                    | [] -> invalid_arg ("Opcode: unknown rule " ^ rule_name)
                    | (r : Spec.rule) :: _ when r.Spec.rule_name = rule_name -> i
                    | _ :: rest -> find (i + 1) rest
                  in
                  find 0 spec.Spec.rules
                in
                let site = !n_sites in
                incr n_sites;
                if List.length params > !max_rule_params then
                  max_rule_params := List.length params;
                emit
                  (I_alloc
                     {
                       site;
                       handle = intern handles handle;
                       rule;
                       args = compile_exprs regs params;
                       next;
                     })
            | Spec.Await (dst, handle) ->
                emit
                  (I_await
                     { dst = intern regs dst; handle = intern handles handle; handle_name = handle; next })
            | Spec.Emit (label, fields) ->
                emit (I_emit { label = intern labels label; args = compile_exprs regs fields; next })
            | Spec.If (c, a, b) ->
                let c = compile_expr regs c in
                let else_pc = seq b ~next in
                let then_pc = seq a ~next in
                emit (I_if { c; then_pc; else_pc })
            | Spec.Abort -> emit I_abort
            | Spec.Retry -> emit I_retry
            | Spec.Prim (dsts, name, args) ->
                emit
                  (I_prim
                     {
                       dsts = Array.of_list (List.map (intern regs) dsts);
                       prim = intern prims name;
                       name;
                       args = compile_exprs regs args;
                       next;
                     })
          in
          pc
    in
    let entry = seq ts.Spec.body ~next:commit_pc in
    if Hashtbl.length regs.tbl > !max_regs then max_regs := Hashtbl.length regs.tbl;
    if Hashtbl.length handles.tbl > !max_handles then max_handles := Hashtbl.length handles.tbl;
    entry
  in
  let entry = Array.map compile_body sets in
  (* rules: conditions compile against the same postfix machine *)
  let compile_cond c =
    let out = ref [] in
    let rec go depth (c : Spec.cond) =
      let d1 =
        match c with
        | Spec.CConst b ->
            out := E_bool b :: !out;
            depth + 1
        | Spec.CParam i ->
            out := E_cparam i :: !out;
            depth + 1
        | Spec.CField i ->
            out := E_cfield i :: !out;
            depth + 1
        | Spec.CEarlier ->
            out := E_earlier :: !out;
            depth + 1
        | Spec.CLater ->
            out := E_later :: !out;
            depth + 1
        | Spec.CBinop (op, a, b) ->
            let da = go depth a in
            let _db = go da b in
            out := E_binop op :: !out;
            da
        | Spec.CNot c ->
            let d = go depth c in
            out := E_not :: !out;
            d
        | Spec.COverlap (p, f) ->
            out := E_overlap (p, f) :: !out;
            depth + 1
      in
      if d1 > !max_stack then max_stack := d1;
      d1
    in
    ignore (go 0 c);
    Array.of_list (List.rev !out)
  in
  let rules =
    Array.of_list
      (List.map
         (fun (r : Spec.rule) ->
           let clauses =
             Array.of_list
               (List.map
                  (fun (c : Spec.clause) ->
                    let c_kind, c_set, c_label =
                      match c.Spec.on with
                      | Spec.On_activated s -> (0, set_slot s, -1)
                      | Spec.On_reached (s, l) -> (1, set_slot s, intern labels l)
                      | Spec.On_min_changed -> (2, -1, -1)
                    in
                    {
                      c_kind;
                      c_set;
                      c_label;
                      c_cond = compile_cond c.Spec.condition;
                      c_return =
                        (match c.Spec.action with
                        | Spec.Return_bool b -> Some b
                        | Spec.Decrement -> None);
                    })
                  r.Spec.clauses)
           in
           {
             r_name = r.Spec.rule_name;
             r_nparams = r.Spec.n_params;
             r_clauses = clauses;
             r_otherwise = r.Spec.otherwise;
             r_min_waiting = (r.Spec.scope = Spec.Min_waiting);
             r_counted = r.Spec.counted;
             r_has_decrement =
               Array.exists (fun c -> c.c_return = None) clauses;
           })
         spec.Spec.rules)
  in
  let set_arity = Array.map (fun ts -> ts.Spec.arity) sets in
  let max_arity = Array.fold_left max 1 set_arity in
  let max_event_fields =
    let m = ref max_arity in
    Array.iter
      (function
        | I_emit { args; _ } -> if Array.length args > !m then m := Array.length args
        | _ -> ())
      (Array.of_list !code);
    !m
  in
  {
    code = Array.of_list (List.rev !code);
    entry;
    n_sets;
    set_names = Array.map (fun ts -> ts.Spec.ts_name) sets;
    set_for_each = Array.map (fun ts -> ts.Spec.ts_order = Spec.For_each) sets;
    set_arity;
    max_arity;
    max_regs = max 1 !max_regs;
    max_handles = max 1 !max_handles;
    n_sites = !n_sites;
    rules;
    labels = interned labels;
    array_names = interned arrays;
    prim_names = interned prims;
    max_stack = !max_stack + 1;
    max_push_args = !max_push_args;
    max_rule_params = max 1 !max_rule_params;
    max_event_fields = max 1 max_event_fields;
    has_counted = List.exists (fun (r : Spec.rule) -> r.Spec.counted) spec.Spec.rules;
  }
