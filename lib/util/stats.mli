(** Small statistics helpers for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for the empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation.
    @raise Invalid_argument on an empty array. *)

val percentile_nearest : float array -> float -> float
(** [percentile_nearest xs p] with [p] in [\[0,100\]], nearest-rank
    (no interpolation): the smallest element such that at least p% of
    the samples are [<=] it.  Total: returns 0 for the empty array, the
    single element for n = 1, and the maximum for any high percentile at
    small n (e.g. p99 of two samples is the larger one). *)

val minimum : float array -> float

val maximum : float array -> float

val sum : float array -> float

type running
(** Online accumulator (Welford). *)

val running : unit -> running

val observe : running -> float -> unit

val running_count : running -> int

val running_mean : running -> float

val running_stddev : running -> float
