(** The compiled-in toolkit version.

    Printed by [agp version] / [agp --version] and exchanged in the
    [Agp_serve] hello handshake, alongside the obs report schema version
    and the serve protocol version, so daemon and client can check
    compatibility before any work is admitted. *)

val version : string
