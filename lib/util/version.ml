(* Bumped once per shipped change set; `agp version` pairs it with the
   obs report schema version and the serve protocol version so a daemon
   and a client can tell at handshake time whether they match. *)
let version = "0.6.0"
