let sum = Array.fold_left ( +. ) 0.0

let mean xs = if Array.length xs = 0 then 0.0 else sum xs /. float_of_int (Array.length xs)

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (var /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile_nearest xs p =
  let n = Array.length xs in
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile_nearest: p out of range";
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    (* nearest-rank: rank = ceil(p/100 * n), 1-based; clamp into [1, n] so
       p = 0 returns the minimum and p = 100 (or any tiny n) the maximum *)
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    sorted.(rank - 1)
  end

let minimum xs = Array.fold_left min xs.(0) xs

let maximum xs = Array.fold_left max xs.(0) xs

type running = {
  mutable count : int;
  mutable m : float;
  mutable s : float;
}

let running () = { count = 0; m = 0.0; s = 0.0 }

let observe r x =
  r.count <- r.count + 1;
  let delta = x -. r.m in
  r.m <- r.m +. (delta /. float_of_int r.count);
  r.s <- r.s +. (delta *. (x -. r.m))

let running_count r = r.count

let running_mean r = r.m

let running_stddev r =
  if r.count < 2 then 0.0 else sqrt (r.s /. float_of_int r.count)
