(** Interval time-series profiler: every [interval] simulated cycles,
    snapshot pipeline utilization, window/queue occupancy, cache hit
    rate and QPI link usage into a row, so phase behaviour (the BFS
    wavefront ramp-up, the LU tail) is visible instead of being
    averaged away into one end-of-run number.

    The sampler is a passive reader: the producer (the accelerator
    simulator) pushes cumulative counter snapshots at cycle-advance
    time and the timeline differentiates them per window.  It never
    writes back into the model, so a sampled run is bit-identical to an
    unsampled one (asserted in [test/test_obs.ml]).

    Sample placement: one sample at every multiple of [interval] up to
    the run length, plus a final partial sample when the run does not
    end on a boundary — exactly [ceil (cycles / interval)] samples.
    Cycles skipped by the simulator's fast-forward produce samples with
    zero activity, which is what those windows were. *)

type probe = {
  in_flight : int;  (** tasks in pipeline windows right now *)
  pending : int;  (** tasks waiting in task queues right now *)
  active_ops : int;  (** cumulative executed stage-operations *)
  mem_hits : int;  (** cumulative cache hits *)
  mem_misses : int;  (** cumulative cache misses *)
  link_bytes : int;  (** cumulative bytes over the QPI link *)
}

type sample = {
  s_cycle : int;  (** window end (the boundary the sample was taken at) *)
  s_in_flight : int;
  s_pending : int;
  s_utilization : float;  (** window's executed ops / (window cycles x stage ops) *)
  s_hit_rate : float;  (** window's hits / accesses; 1.0 when no accesses *)
  s_link_bytes : int;  (** bytes transferred in this window *)
  s_link_util : float;  (** window bytes / (bytes-per-cycle x window cycles) *)
}

type t

val create : ?interval:int -> unit -> t
(** Default interval 256 cycles.
    @raise Invalid_argument when [interval <= 0]. *)

val interval : t -> int

val start : t -> total_stage_ops:int -> bytes_per_cycle:float -> unit
(** Called by the producer once per run with the normalization
    constants; resets any previously captured samples. *)

val due : t -> upto:int -> bool
(** True when advancing to [upto] crosses the next boundary — lets the
    producer skip building a {!probe} on the common no-sample cycle. *)

val tick : t -> upto:int -> probe -> unit
(** Record a sample for every boundary in [(last, upto]] using the
    given cumulative snapshot (a fast-forward crossing several
    boundaries yields several zero-activity windows). *)

val finish : t -> cycles:int -> probe -> unit
(** Final call at run end: emits any remaining boundary samples plus
    the trailing partial window. *)

val samples : t -> sample list
(** Oldest first. *)

val sample_count : t -> int

val to_csv : t -> string
(** Header + one row per sample:
    [cycle,in_flight,pending,utilization,cache_hit_rate,link_bytes,link_util]. *)

val to_json : t -> Json.t
(** [{"interval"; "samples": [...]}] with one object per sample. *)

val summary_json : t -> Json.t
(** Scalar reduction (peaks and means) for embedding in a run report
    without the full series. *)
