(** Structural comparison of two {!Report}s — the regression gate.

    Both reports are flattened to dotted numeric leaves
    ({!Report.flatten}); leaves present in both are compared by
    relative change against a threshold, and the metric's naming
    decides what a change {e means}: keys carrying tokens like
    [cycles], [seconds], [stall], [wait], [p99] regress when they grow;
    keys carrying [utilization], [hit_rate], [busy], [speedup] regress
    when they shrink; everything else (task counts, configuration
    scalars) is informational and never gates.  Added/removed keys are
    informational too — schema evolution is not a performance
    regression. *)

type direction =
  | Lower_better
  | Higher_better
  | Informational

val direction_of : string -> direction
(** Classify a flattened key by its tokens ([Higher_better] tokens
    win). *)

type status =
  | Unchanged  (** within threshold *)
  | Changed  (** beyond threshold, informational key *)
  | Regressed  (** beyond threshold in the bad direction *)
  | Improved  (** beyond threshold in the good direction *)
  | Added  (** only in the current report *)
  | Removed  (** only in the baseline report *)

val status_name : status -> string

type entry = {
  key : string;
  baseline : float option;
  current : float option;
  rel_change : float option;  (** (current - baseline) / |baseline| *)
  status : status;
}

type result = {
  entries : entry list;  (** baseline order, then added keys *)
  regressions : int;
  improvements : int;
  changes : int;  (** informational: changed + added + removed *)
}

val compare : ?threshold:float -> Report.t -> Report.t -> result
(** [compare baseline current] with a relative threshold (default
    0.05 = 5%).  Comparing a report against itself yields zero
    regressions and zero changes.
    @raise Invalid_argument on a negative threshold. *)

val regressed : result -> bool

val render : ?all:bool -> result -> string
(** Human table of non-[Unchanged] entries ([all] includes unchanged
    ones) plus a one-line summary. *)

val to_json : ?all:bool -> result -> Json.t
