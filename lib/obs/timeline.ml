type probe = {
  in_flight : int;
  pending : int;
  active_ops : int;
  mem_hits : int;
  mem_misses : int;
  link_bytes : int;
}

let zero_probe =
  { in_flight = 0; pending = 0; active_ops = 0; mem_hits = 0; mem_misses = 0; link_bytes = 0 }

type sample = {
  s_cycle : int;
  s_in_flight : int;
  s_pending : int;
  s_utilization : float;
  s_hit_rate : float;
  s_link_bytes : int;
  s_link_util : float;
}

type t = {
  interval : int;
  mutable total_stage_ops : int;
  mutable bytes_per_cycle : float;
  mutable last_cycle : int;
  mutable next_boundary : int;
  mutable prev : probe;
  mutable rev_samples : sample list;
  mutable n_samples : int;
}

let create ?(interval = 256) () =
  if interval <= 0 then invalid_arg "Timeline.create: interval must be positive";
  {
    interval;
    total_stage_ops = 0;
    bytes_per_cycle = 0.0;
    last_cycle = 0;
    next_boundary = interval;
    prev = zero_probe;
    rev_samples = [];
    n_samples = 0;
  }

let interval t = t.interval

let start t ~total_stage_ops ~bytes_per_cycle =
  t.total_stage_ops <- total_stage_ops;
  t.bytes_per_cycle <- bytes_per_cycle;
  t.last_cycle <- 0;
  t.next_boundary <- t.interval;
  t.prev <- zero_probe;
  t.rev_samples <- [];
  t.n_samples <- 0

let due t ~upto = upto >= t.next_boundary

let record_at t ~cycle p =
  let dt = cycle - t.last_cycle in
  let d_ops = p.active_ops - t.prev.active_ops in
  let d_hits = p.mem_hits - t.prev.mem_hits in
  let d_misses = p.mem_misses - t.prev.mem_misses in
  let d_bytes = p.link_bytes - t.prev.link_bytes in
  let utilization =
    if dt <= 0 || t.total_stage_ops = 0 then 0.0
    else float_of_int d_ops /. float_of_int (dt * t.total_stage_ops)
  in
  let accesses = d_hits + d_misses in
  let hit_rate = if accesses = 0 then 1.0 else float_of_int d_hits /. float_of_int accesses in
  let link_util =
    if dt <= 0 || t.bytes_per_cycle <= 0.0 then 0.0
    else float_of_int d_bytes /. (t.bytes_per_cycle *. float_of_int dt)
  in
  t.rev_samples <-
    {
      s_cycle = cycle;
      s_in_flight = p.in_flight;
      s_pending = p.pending;
      s_utilization = utilization;
      s_hit_rate = hit_rate;
      s_link_bytes = d_bytes;
      s_link_util = link_util;
    }
    :: t.rev_samples;
  t.n_samples <- t.n_samples + 1;
  t.last_cycle <- cycle;
  t.prev <- p

let tick t ~upto p =
  while t.next_boundary <= upto do
    record_at t ~cycle:t.next_boundary p;
    t.next_boundary <- t.next_boundary + t.interval
  done

let finish t ~cycles p =
  tick t ~upto:cycles p;
  if cycles > t.last_cycle then record_at t ~cycle:cycles p

let samples t = List.rev t.rev_samples

let sample_count t = t.n_samples

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "cycle,in_flight,pending,utilization,cache_hit_rate,link_bytes,link_util\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%.6f,%.6f,%d,%.6f\n" s.s_cycle s.s_in_flight s.s_pending
           s.s_utilization s.s_hit_rate s.s_link_bytes s.s_link_util))
    (samples t);
  Buffer.contents buf

let sample_json s =
  Json.Obj
    [
      ("cycle", Json.Int s.s_cycle);
      ("in_flight", Json.Int s.s_in_flight);
      ("pending", Json.Int s.s_pending);
      ("utilization", Json.Float s.s_utilization);
      ("cache_hit_rate", Json.Float s.s_hit_rate);
      ("link_bytes", Json.Int s.s_link_bytes);
      ("link_util", Json.Float s.s_link_util);
    ]

let to_json t =
  Json.Obj
    [
      ("interval", Json.Int t.interval);
      ("samples", Json.List (List.map sample_json (samples t)));
    ]

let summary_json t =
  let ss = samples t in
  let n = List.length ss in
  let maxi f = List.fold_left (fun acc s -> max acc (f s)) 0 ss in
  let meanf f =
    if n = 0 then 0.0 else List.fold_left (fun acc s -> acc +. f s) 0.0 ss /. float_of_int n
  in
  Json.Obj
    [
      ("interval", Json.Int t.interval);
      ("samples", Json.Int n);
      ("peak_in_flight", Json.Int (maxi (fun s -> s.s_in_flight)));
      ("peak_pending", Json.Int (maxi (fun s -> s.s_pending)));
      ("mean_utilization", Json.Float (meanf (fun s -> s.s_utilization)));
      ("mean_hit_rate", Json.Float (meanf (fun s -> s.s_hit_rate)));
      ("mean_link_util", Json.Float (meanf (fun s -> s.s_link_util)));
      ("total_link_bytes", Json.Int (List.fold_left (fun acc s -> acc + s.s_link_bytes) 0 ss));
    ]
