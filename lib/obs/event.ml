type outcome =
  | Commit
  | Abort
  | Retry

type t =
  | Task_dispatch of { set : string; pipe : int; tid : int }
  | Task_finish of { set : string; pipe : int; tid : int; outcome : outcome }
  | Rendezvous_park of { set : string; pipe : int; tid : int }
  | Rendezvous_resume of { set : string; tid : int }
  | Queue_full of { set : string; pipe : int }
  | Cache_access of { addr : int; is_write : bool; hit : bool }
  | Link_transfer of { bytes : int; start : int; finish : int }
  | Arb_grant of { bank : int; port : int }

let outcome_name = function
  | Commit -> "commit"
  | Abort -> "abort"
  | Retry -> "retry"

let kind = function
  | Task_dispatch _ -> "task_dispatch"
  | Task_finish _ -> "task_finish"
  | Rendezvous_park _ -> "rendezvous_park"
  | Rendezvous_resume _ -> "rendezvous_resume"
  | Queue_full _ -> "queue_full"
  | Cache_access _ -> "cache_access"
  | Link_transfer _ -> "link_transfer"
  | Arb_grant _ -> "arb_grant"
