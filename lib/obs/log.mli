(** Leveled structured logging as NDJSON, with request-id correlation.

    Every emitted line is one JSON object:
    [{"ts":<epoch s>,"level":"info","msg":"...","req":"r12",...}] —
    [req] carries the serve request id so daemon log lines join against
    per-request trace spans and {!Span} phase records.  Lines are
    written under a mutex and flushed whole, so concurrent shard
    threads never interleave partial lines.

    The clock is injected at {!create} (serve passes
    [Unix.gettimeofday]); agp_obs itself stays wall-clock free. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

val level_name : level -> string

val level_of_string : string -> (level, string) result
(** Case-insensitive; accepts ["warning"] for [Warn]. *)

type t

val create : ?level:level -> clock:(unit -> float) -> out:out_channel -> unit -> t
(** Logger writing NDJSON to [out] (default threshold [Info]). *)

val null : t
(** Drops everything; the default for library callers not given a
    logger. *)

val set_level : t -> level -> unit

val level : t -> level

val enabled : t -> level -> bool
(** False for {!null} and for levels below the threshold — guard
    expensive field construction with this. *)

val log : t -> level -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit
(** Emit one line.  [fields] shadowing the envelope keys
    ([ts]/[level]/[msg]/[req]) are dropped. *)

val debug : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit

val info : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit

val warn : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit

val error : t -> ?req:string -> ?fields:(string * Json.t) list -> string -> unit
