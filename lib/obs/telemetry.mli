(** Live telemetry surface: a {!Metrics.registry} plus a set of
    {!Window} rolling histograms, rendered as Prometheus text
    exposition.

    The registry carries cumulative since-boot series (counters,
    gauges, fixed-bucket histograms); windows carry "right now" series
    (sliding p50/p90/p99 over the last N seconds).  [agp serve] holds
    one [Telemetry.t] and answers the [metrics] protocol request — and
    the [agp stats] verb — with {!to_prometheus}. *)

type t

val create : ?registry:Metrics.registry -> unit -> t
(** Fresh surface; pass [?registry] to expose an existing registry. *)

val registry : t -> Metrics.registry

val window : t -> ?max_samples:int -> span_s:float -> string -> Window.t
(** Find-or-create a rolling window by name (thread-safe).
    @raise Invalid_argument if re-asked with a different span. *)

val windows : t -> Window.t list
(** Creation order. *)

val sanitize : string -> string
(** Map a registry name to a legal Prometheus metric name
    ([\[a-zA-Z_:\]\[a-zA-Z0-9_:\]*]): illegal characters become ['_']
    (so ["serve.queue_ms"] renders as [serve_queue_ms]). *)

val to_prometheus : t -> now:float -> string
(** Text exposition (v0.0.4 format): counters and gauges as single
    samples, registry histograms as cumulative [_bucket{le="..."}] /
    [_sum] / [_count] series, windows as summaries with
    [quantile="0.5"/"0.9"/"0.99"] labels (lifetime [_count]) plus
    [<name>_window_rate_per_sec] and [<name>_window_max] gauges.  Each
    series is preceded by its [# TYPE] line. *)

val to_json : t -> now:float -> Json.t
(** [{"metrics": ..., "windows": {name: summary, ...}}]. *)
