module E = Event

let pid_pipelines = 1

let pid_rules = 2

let pid_memory = 3

let pid_arbiter = 4

let to_json ?(trace_name = "agp") events =
  let events = List.stable_sort (fun (a, _) (b, _) -> compare a b) events in
  let max_ts =
    List.fold_left
      (fun acc (ts, ev) ->
        let t =
          match ev with
          | E.Link_transfer { finish; _ } -> max ts finish
          | _ -> ts
        in
        max acc t)
      0 events
  in
  (* stable thread ids: sorted component names, numbered from 1 *)
  let pipe_rows = Hashtbl.create 16 in
  let set_rows = Hashtbl.create 8 in
  let bank_rows = Hashtbl.create 8 in
  let any_memory = ref false in
  List.iter
    (fun (_, ev) ->
      match ev with
      | E.Task_dispatch { set; pipe; _ }
      | E.Task_finish { set; pipe; _ }
      | E.Rendezvous_park { set; pipe; _ }
      | E.Queue_full { set; pipe } ->
          Hashtbl.replace pipe_rows (set, pipe) ();
          Hashtbl.replace set_rows set ()
      | E.Rendezvous_resume { set; _ } -> Hashtbl.replace set_rows set ()
      | E.Arb_grant { bank; _ } -> Hashtbl.replace bank_rows bank ()
      | E.Cache_access _ | E.Link_transfer _ -> any_memory := true)
    events;
  let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  let pipe_list = sorted_keys pipe_rows in
  let set_list = sorted_keys set_rows in
  let bank_list = sorted_keys bank_rows in
  let index_of lst = List.mapi (fun i k -> (k, i + 1)) lst in
  let pipe_tid_tbl = index_of pipe_list in
  let set_tid_tbl = index_of set_list in
  let bank_tid_tbl = index_of bank_list in
  let pipe_tid k = List.assoc k pipe_tid_tbl in
  let set_tid k = List.assoc k set_tid_tbl in
  let bank_tid k = List.assoc k bank_tid_tbl in
  let out = ref [] in
  let push ts json = out := (ts, json) :: !out in
  let span ~name ~ts ~dur ~pid ~tid ~args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "X");
        ("ts", Json.Int ts);
        ("dur", Json.Int dur);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  let instant ~name ~ts ~pid ~tid ~args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "i");
        ("ts", Json.Int ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("s", Json.String "t");
        ("args", Json.Obj args);
      ]
  in
  (* pipeline occupancy spans: dispatch .. finish/park/redispatch *)
  let open_spans = Hashtbl.create 64 in
  let close_span tid ts reason =
    match Hashtbl.find_opt open_spans tid with
    | None -> ()
    | Some (t0, set, pipe) ->
        Hashtbl.remove open_spans tid;
        push t0
          (span ~name:set ~ts:t0
             ~dur:(max 0 (ts - t0))
             ~pid:pid_pipelines ~tid:(pipe_tid (set, pipe))
             ~args:[ ("task", Json.Int tid); ("end", Json.String reason) ])
  in
  let open_parks = Hashtbl.create 64 in
  List.iter
    (fun (ts, ev) ->
      match ev with
      | E.Task_dispatch { set; pipe; tid } ->
          close_span tid ts "redispatch";
          Hashtbl.replace open_spans tid (ts, set, pipe)
      | E.Task_finish { tid; outcome; _ } -> close_span tid ts (E.outcome_name outcome)
      | E.Rendezvous_park { set; tid; _ } ->
          close_span tid ts "park";
          Hashtbl.replace open_parks tid (ts, set)
      | E.Rendezvous_resume { tid; _ } -> begin
          match Hashtbl.find_opt open_parks tid with
          | None -> ()
          | Some (t0, set) ->
              Hashtbl.remove open_parks tid;
              push t0
                (span ~name:"rendezvous" ~ts:t0
                   ~dur:(max 0 (ts - t0))
                   ~pid:pid_rules ~tid:(set_tid set)
                   ~args:[ ("task", Json.Int tid) ])
        end
      | E.Queue_full { set; pipe } ->
          push ts
            (instant ~name:"queue-full" ~ts ~pid:pid_pipelines ~tid:(pipe_tid (set, pipe)) ~args:[])
      | E.Link_transfer { bytes; start; finish } ->
          push start
            (span ~name:"line" ~ts:start
               ~dur:(max 0 (finish - start))
               ~pid:pid_memory ~tid:1
               ~args:[ ("bytes", Json.Int bytes) ])
      | E.Cache_access _ -> () (* folded into counter samples below *)
      | E.Arb_grant { bank; port } ->
          push ts
            (instant ~name:"grant" ~ts ~pid:pid_arbiter ~tid:(bank_tid bank)
               ~args:[ ("port", Json.Int port) ]))
    events;
  (* deterministically close whatever is still open *)
  let leftovers tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  List.iter (fun (tid, _) -> close_span tid max_ts "open") (leftovers open_spans);
  List.iter
    (fun (tid, (t0, set)) ->
      push t0
        (span ~name:"rendezvous" ~ts:t0
           ~dur:(max 0 (max_ts - t0))
           ~pid:pid_rules ~tid:(set_tid set)
           ~args:[ ("task", Json.Int tid); ("end", Json.String "open") ]))
    (leftovers open_parks);
  (* cumulative cache hit/miss counters, one sample per distinct ts *)
  let hits = ref 0 and misses = ref 0 in
  let pending = ref None in
  let flush_counter () =
    match !pending with
    | None -> ()
    | Some t ->
        pending := None;
        push t
          (Json.Obj
             [
               ("name", Json.String "cache");
               ("ph", Json.String "C");
               ("ts", Json.Int t);
               ("pid", Json.Int pid_memory);
               ("tid", Json.Int 0);
               ("args", Json.Obj [ ("hits", Json.Int !hits); ("misses", Json.Int !misses) ]);
             ])
  in
  List.iter
    (fun (ts, ev) ->
      match ev with
      | E.Cache_access { hit; _ } ->
          begin
            match !pending with
            | Some t when t <> ts -> flush_counter ()
            | Some _ | None -> ()
          end;
          if hit then incr hits else incr misses;
          pending := Some ts
      | _ -> ())
    events;
  flush_counter ();
  (* metadata: names for every process and thread row in use *)
  let meta = ref [] in
  let md ?tid ~pid name value =
    meta :=
      Json.Obj
        ([ ("name", Json.String name); ("ph", Json.String "M"); ("ts", Json.Int 0);
           ("pid", Json.Int pid) ]
        @ (match tid with
          | Some t -> [ ("tid", Json.Int t) ]
          | None -> [])
        @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])
      :: !meta
  in
  if bank_list <> [] then begin
    List.iter
      (fun bank -> md ~tid:(bank_tid bank) ~pid:pid_arbiter "thread_name"
          (Printf.sprintf "bank %d" bank))
      (List.rev bank_list);
    md ~pid:pid_arbiter "process_name" "wavefront arbiter"
  end;
  if !any_memory then begin
    md ~tid:1 ~pid:pid_memory "thread_name" "qpi-link";
    md ~pid:pid_memory "process_name" "memory"
  end;
  if set_list <> [] then begin
    List.iter
      (fun set -> md ~tid:(set_tid set) ~pid:pid_rules "thread_name" set)
      (List.rev set_list);
    md ~pid:pid_rules "process_name" "rule engines"
  end;
  if pipe_list <> [] then begin
    List.iter
      (fun ((set, pipe) as k) ->
        md ~tid:(pipe_tid k) ~pid:pid_pipelines "thread_name"
          (Printf.sprintf "%s/%d" set pipe))
      (List.rev pipe_list);
    md ~pid:pid_pipelines "process_name" "task pipelines"
  end;
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !out) in
  Json.Obj
    [
      ("traceEvents", Json.List (!meta @ List.map snd sorted));
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj [ ("name", Json.String trace_name); ("maxCycle", Json.Int max_ts) ] );
    ]

let to_string ?trace_name events = Json.to_string (to_json ?trace_name events)

(* --- wall-clock request traces (serve daemon) --- *)

type request_span = {
  rs_phase : string;
  rs_start_us : int;
  rs_dur_us : int;
  rs_args : (string * Json.t) list;
}

type request_trace = {
  rt_id : string;
  rt_spans : request_span list;
}

let requests_to_json ?(trace_name = "agp-serve") requests =
  (* one row per request: its queue/build/execute spans are sequential,
     so each row nests cleanly no matter how requests overlap in time *)
  let md ?tid ~pid name value =
    Json.Obj
      ([ ("name", Json.String name); ("ph", Json.String "M"); ("ts", Json.Int 0);
         ("pid", Json.Int pid) ]
      @ (match tid with
        | Some t -> [ ("tid", Json.Int t) ]
        | None -> [])
      @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])
  in
  let meta =
    md ~pid:1 "process_name" "serve requests"
    :: List.mapi (fun i rt -> md ~tid:(i + 1) ~pid:1 "thread_name" rt.rt_id) requests
  in
  let spans =
    List.concat
      (List.mapi
         (fun i rt ->
           List.map
             (fun rs ->
               ( rs.rs_start_us,
                 Json.Obj
                   [
                     ("name", Json.String rs.rs_phase);
                     ("ph", Json.String "X");
                     ("ts", Json.Int rs.rs_start_us);
                     ("dur", Json.Int (max 0 rs.rs_dur_us));
                     ("pid", Json.Int 1);
                     ("tid", Json.Int (i + 1));
                     ("cat", Json.String "request");
                     ("args", Json.Obj (("request", Json.String rt.rt_id) :: rs.rs_args));
                   ] ))
             rt.rt_spans)
         requests)
  in
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) spans in
  let max_ts =
    List.fold_left
      (fun acc rt ->
        List.fold_left (fun acc rs -> max acc (rs.rs_start_us + max 0 rs.rs_dur_us)) acc rt.rt_spans)
      0 requests
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map snd sorted));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("name", Json.String trace_name);
            ("requests", Json.Int (List.length requests));
            ("maxTsUs", Json.Int max_ts);
          ] );
    ]
