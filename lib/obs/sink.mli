(** Event sinks: where instrumented components send {!Event.t}s.

    Three flavours:
    - {!null} drops everything and reports itself disabled, so
      instrumentation sites can guard on {!enabled} and cost one branch
      when observation is off;
    - {!ring} keeps the most recent [capacity] events (older ones are
      overwritten and counted as {!dropped}) — bounded capture for
      always-on monitoring;
    - {!collect} keeps every event — full capture for trace export.

    Producers must emit with non-decreasing [ts] per component, but the
    merged stream is not globally sorted (the memory model timestamps
    requests at their issue time, which can run ahead of the simulated
    cycle); exporters sort. *)

type t

val null : t

val ring : capacity:int -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val collect : unit -> t

val enabled : t -> bool
(** [false] only for {!null}.  Guard event construction with this so a
    disabled run allocates nothing. *)

val emit : t -> ts:int -> Event.t -> unit

val events : t -> (int * Event.t) list
(** Captured [(ts, event)] pairs, oldest first (for a ring, the
    surviving window). *)

val count : t -> int
(** Total events ever emitted (including ones a ring overwrote). *)

val dropped : t -> int
(** Events lost to ring overwrite; 0 for other sinks. *)

val clear : t -> unit
