(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Converts a captured [(cycle, event)] stream into the Trace Event
    Format: one process row group per component class and one thread
    row per component instance, all with stable ids derived from sorted
    component names (so two exports of the same events are bitwise
    identical):

    - pid 1 "task pipelines": one row per (set, pipeline); complete
      ["X"] spans from dispatch to finish/park, instant queue-full
      marks;
    - pid 2 "rule engines": one row per task set; ["X"] spans from
      rendezvous park to resume;
    - pid 3 "memory": QPI line transfers as ["X"] spans on the link
      row, cumulative hit/miss totals as ["C"] counter samples;
    - pid 4 "wavefront arbiter": instant grant marks per bank.

    Timestamps are simulator cycles written into the [ts]/[dur] fields
    (microseconds as far as the viewer is concerned — relative shape is
    what matters).  Events are emitted sorted by [ts], metadata first. *)

val to_json : ?trace_name:string -> (int * Event.t) list -> Json.t
(** Spans still open when the stream ends are closed at the maximum
    observed timestamp with [args.end = "open"]. *)

val to_string : ?trace_name:string -> (int * Event.t) list -> string
(** [Json.to_string] of {!to_json}. *)

(** {2 Wall-clock request traces}

    The serve daemon records per-request phase spans (queue, build,
    execute) in microseconds of wall time rather than simulator cycles;
    the same Trace Event Format applies, with one process row group
    ("serve requests") and one thread row per request, named by its
    request id — so slices within a row are always properly nested no
    matter how requests overlap across the daemon. *)

type request_span = {
  rs_phase : string;  (** slice name, e.g. ["queue"] *)
  rs_start_us : int;  (** microseconds since the trace epoch *)
  rs_dur_us : int;  (** clamped to [>= 0] on export *)
  rs_args : (string * Json.t) list;
}

type request_trace = {
  rt_id : string;  (** request id (becomes the row name) *)
  rt_spans : request_span list;
}

val requests_to_json : ?trace_name:string -> request_trace list -> Json.t
(** Complete ["X"] slices sorted by start time, metadata first; every
    slice carries [cat = "request"] and an [args.request] id so it
    joins against [Obs.Log] lines and {!Span} phase records. *)
