(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Converts a captured [(cycle, event)] stream into the Trace Event
    Format: one process row group per component class and one thread
    row per component instance, all with stable ids derived from sorted
    component names (so two exports of the same events are bitwise
    identical):

    - pid 1 "task pipelines": one row per (set, pipeline); complete
      ["X"] spans from dispatch to finish/park, instant queue-full
      marks;
    - pid 2 "rule engines": one row per task set; ["X"] spans from
      rendezvous park to resume;
    - pid 3 "memory": QPI line transfers as ["X"] spans on the link
      row, cumulative hit/miss totals as ["C"] counter samples;
    - pid 4 "wavefront arbiter": instant grant marks per bank.

    Timestamps are simulator cycles written into the [ts]/[dur] fields
    (microseconds as far as the viewer is concerned — relative shape is
    what matters).  Events are emitted sorted by [ts], metadata first. *)

val to_json : ?trace_name:string -> (int * Event.t) list -> Json.t
(** Spans still open when the stream ends are closed at the maximum
    observed timestamp with [args.end = "open"]. *)

val to_string : ?trace_name:string -> (int * Event.t) list -> string
(** [Json.to_string] of {!to_json}. *)
