(* v2: accelerator runs gained wall-clock throughput
   (metrics.accel.sim_cycles_per_sec); v1 documents remain readable
   since the envelope itself is unchanged. *)
let schema_version = 2

let min_readable_version = 1

type t = {
  kind : string;
  app : string;
  meta : (string * Json.t) list;
  sections : (string * Json.t) list;
}

let v ~kind ~app ?(meta = []) ?(sections = []) () = { kind; app; meta; sections }

let reserved = [ "schema_version"; "kind"; "app"; "meta" ]

let to_json t =
  Json.Obj
    (("schema_version", Json.Int schema_version)
    :: ("kind", Json.String t.kind)
    :: ("app", Json.String t.app)
    :: ("meta", Json.Obj t.meta)
    :: t.sections)

let to_string t = Json.to_string (to_json t)

let of_json j =
  match j with
  | Json.Obj kvs -> begin
      match Json.member "schema_version" j with
      | Some (Json.Int ver) when ver >= min_readable_version && ver <= schema_version -> begin
          match (Json.member "kind" j, Json.member "app" j) with
          | Some (Json.String kind), Some (Json.String app) ->
              let meta =
                match Json.member "meta" j with
                | Some (Json.Obj m) -> m
                | Some _ | None -> []
              in
              let sections = List.filter (fun (k, _) -> not (List.mem k reserved)) kvs in
              Ok { kind; app; meta; sections }
          | _, _ -> Error "report: missing or non-string \"kind\"/\"app\""
        end
      | Some (Json.Int ver) ->
          Error
            (Printf.sprintf
               "report: unsupported schema_version %d (this tool reads versions %d..%d)" ver
               min_readable_version schema_version)
      | Some _ -> Error "report: schema_version is not an integer"
      | None -> Error "report: missing \"schema_version\" (not a run report?)"
    end
  | _ -> Error "report: top level is not a JSON object"

let of_string s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> of_json j

let flatten t =
  let out = ref [] in
  let rec go prefix j =
    match j with
    | Json.Int i -> out := (prefix, float_of_int i) :: !out
    | Json.Float f -> out := (prefix, f) :: !out
    | Json.Obj kvs ->
        List.iter (fun (k, v) -> go (if prefix = "" then k else prefix ^ "." ^ k) v) kvs
    | Json.List _ | Json.String _ | Json.Bool _ | Json.Null ->
        (* lists (bucket arrays, raw sample series) are deliberately
           opaque to flattening: diffing them element-wise is noise *)
        ()
  in
  List.iter (fun (k, v) -> go ("meta." ^ k) v) t.meta;
  List.iter (fun (k, v) -> go k v) t.sections;
  List.rev !out
