module Table = Agp_util.Table

type bucket =
  | Busy
  | Mem_stall
  | Rendezvous_stall
  | Queue_full
  | Squash_waste
  | Idle

let buckets = [ Busy; Mem_stall; Rendezvous_stall; Queue_full; Squash_waste; Idle ]

let bucket_index = function
  | Busy -> 0
  | Mem_stall -> 1
  | Rendezvous_stall -> 2
  | Queue_full -> 3
  | Squash_waste -> 4
  | Idle -> 5

let bucket_name = function
  | Busy -> "busy"
  | Mem_stall -> "mem-stall"
  | Rendezvous_stall -> "rdv-stall"
  | Queue_full -> "queue-full"
  | Squash_waste -> "squash-waste"
  | Idle -> "idle"

type t = {
  tbl : (string, int array) Hashtbl.t;
  mutable order : string list; (* reverse first-charge order *)
}

let create () = { tbl = Hashtbl.create 4; order = [] }

let row t set =
  match Hashtbl.find_opt t.tbl set with
  | Some r -> r
  | None ->
      let r = Array.make (List.length buckets) 0 in
      Hashtbl.add t.tbl set r;
      t.order <- set :: t.order;
      r

let charge t ~set bucket n =
  if n < 0 then invalid_arg "Attribution.charge: negative amount";
  let r = row t set in
  let i = bucket_index bucket in
  r.(i) <- r.(i) + n

let reclassify t ~set ~src ~dst n =
  if n < 0 then invalid_arg "Attribution.reclassify: negative amount";
  let r = row t set in
  let si = bucket_index src and di = bucket_index dst in
  let moved = min n r.(si) in
  r.(si) <- r.(si) - moved;
  r.(di) <- r.(di) + moved;
  moved

let get t ~set bucket =
  match Hashtbl.find_opt t.tbl set with
  | None -> 0
  | Some r -> r.(bucket_index bucket)

let sets t = List.rev t.order

let per_set t =
  List.map
    (fun set ->
      let r = Hashtbl.find t.tbl set in
      (set, List.map (fun b -> (b, r.(bucket_index b))) buckets))
    (sets t)

let set_total t ~set =
  match Hashtbl.find_opt t.tbl set with
  | None -> 0
  | Some r -> Array.fold_left ( + ) 0 r

let total t = List.fold_left (fun acc set -> acc + set_total t ~set) 0 (sets t)

let equal a b =
  let pa = per_set a and pb = per_set b in
  List.length pa = List.length pb && List.for_all2 ( = ) pa pb

type summary = {
  busy_frac : float;
  mem_frac : float;
  rendezvous_frac : float;
  queue_frac : float;
  squash_frac : float;
  idle_frac : float;
}

let summary t =
  let tot = total t in
  let frac b =
    if tot = 0 then 0.0
    else
      float_of_int (List.fold_left (fun acc set -> acc + get t ~set b) 0 (sets t))
      /. float_of_int tot
  in
  {
    busy_frac = frac Busy;
    mem_frac = frac Mem_stall;
    rendezvous_frac = frac Rendezvous_stall;
    queue_frac = frac Queue_full;
    squash_frac = frac Squash_waste;
    idle_frac = frac Idle;
  }

let dominant_stall s =
  List.fold_left
    (fun (bn, bf) (n, f) -> if f > bf then (n, f) else (bn, bf))
    (bucket_name Mem_stall, s.mem_frac)
    [
      (bucket_name Rendezvous_stall, s.rendezvous_frac);
      (bucket_name Queue_full, s.queue_frac);
      (bucket_name Squash_waste, s.squash_frac);
      (bucket_name Idle, s.idle_frac);
    ]

let render t =
  let tbl = Table.create ("task set" :: "pipe-cycles" :: List.map bucket_name buckets) in
  let cell n tot =
    if tot = 0 then string_of_int n
    else Printf.sprintf "%d (%.1f%%)" n (100.0 *. float_of_int n /. float_of_int tot)
  in
  List.iter
    (fun (set, bs) ->
      let tot = set_total t ~set in
      Table.add_row tbl
        (set :: string_of_int tot :: List.map (fun (_, n) -> cell n tot) bs))
    (per_set t);
  let grand = total t in
  Table.add_row tbl
    ("TOTAL" :: string_of_int grand
    :: List.map
         (fun b -> cell (List.fold_left (fun acc set -> acc + get t ~set b) 0 (sets t)) grand)
         buckets);
  Table.render tbl
