(** The structured event taxonomy of the hardware simulator.

    One constructor per observable micro-architectural happening; the
    producer stamps each event with a cycle timestamp when it emits into
    a {!Sink}.  Events carry enough identity ([set], [pipe], [tid]) for
    an exporter to reconstruct per-row timelines. *)

type outcome =
  | Commit
  | Abort
  | Retry

type t =
  | Task_dispatch of { set : string; pipe : int; tid : int }
      (** a task entered a pipeline's reorder window (fresh issue or
          rendezvous wake-up) *)
  | Task_finish of { set : string; pipe : int; tid : int; outcome : outcome }
      (** the task left the pipeline by committing, aborting or being
          retried *)
  | Rendezvous_park of { set : string; pipe : int; tid : int }
      (** the task reached its rendezvous and parked in a rule lane *)
  | Rendezvous_resume of { set : string; tid : int }
      (** the parked task's rule resolved; it re-enters a pipeline next
          cycle *)
  | Queue_full of { set : string; pipe : int }
      (** backpressure: tasks were pending but this pipeline could not
          accept one this cycle *)
  | Cache_access of { addr : int; is_write : bool; hit : bool }
  | Link_transfer of { bytes : int; start : int; finish : int }
      (** a cache line crossing the QPI link, including any wait for a
          link slot ([start] may exceed the issue cycle) *)
  | Arb_grant of { bank : int; port : int }
      (** wavefront allocator grant (standalone {!Agp_hw.Wavefront}
          instrumentation) *)

val outcome_name : outcome -> string

val kind : t -> string
(** Stable snake_case tag, e.g. ["task_dispatch"] — the name used in
    metrics and trace output. *)
