(** Task-lifecycle spans: reduce the accelerator's dispatch / park /
    resume / finish event stream to one span per task activation,
    decomposed into the four places a task's wall-clock goes —
    queue-wait (resumed but waiting to re-enter a pipeline), execute
    (occupying a pipeline window), rendezvous-wait (parked in a rule
    lane) and squash-redo (execute time of activations that aborted or
    retried, i.e. wasted work).

    The decomposition is exact: for every span,
    [queue_wait + execute + rdv_wait + squash_redo = retired -
    dispatched] — asserted in [test/test_obs.ml].  Retries allocate a
    fresh task id, so each span describes one activation and a finish
    is terminal. *)

type span = {
  sp_set : string;
  sp_tid : int;
  sp_dispatched : int;  (** first dispatch cycle *)
  sp_retired : int;  (** finish cycle *)
  sp_queue_wait : int;
  sp_execute : int;
  sp_rdv_wait : int;
  sp_squash_redo : int;
  sp_outcome : Event.outcome;
}

val spans : (int * Event.t) list -> span list * int
(** Build spans from a captured [(ts, event)] stream (as returned by
    {!Sink.events}); non-task events are ignored.  Returns completed
    spans in retirement order plus the number of activations that never
    finished (dispatched but still in flight when capture stopped). *)

type set_stats = {
  ls_set : string;
  ls_tasks : int;
  ls_commits : int;
  ls_squashes : int;  (** aborted + retried activations *)
  ls_p50 : float;  (** percentiles of dispatch-to-retire latency,
                       exact (over the raw durations, via
                       {!Agp_util.Stats.percentile}) *)
  ls_p90 : float;
  ls_p99 : float;
  ls_mean : float;
  ls_max : float;
  ls_queue_wait : int;  (** phase totals, summed over the set's spans *)
  ls_execute : int;
  ls_rdv_wait : int;
  ls_squash_redo : int;
}

val summarize : span list -> set_stats list
(** Per-task-set reduction, sets in first-retirement order. *)

val histogram : Metrics.registry -> name:string -> span list -> Metrics.histogram
(** Register (or find) a latency histogram under [name] and feed every
    span's dispatch-to-retire duration into it. *)

val to_json : set_stats list -> Json.t
(** Object keyed by task set. *)

val render : set_stats list -> string
(** Aligned table, one row per task set. *)
