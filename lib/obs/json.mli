(** Minimal JSON tree, printer and parser.

    The observability subsystem has to emit machine-readable artifacts
    (Chrome trace files, metrics dumps) and the test suite has to check
    they are well-formed, without pulling a JSON dependency into the
    build.  This module is deliberately small: ASCII-oriented strings
    (a [\u....] escape above 127 is folded to ['?'] on parse), ints and
    floats kept distinct, objects as association lists in insertion
    order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val parse : string -> (t, string) result
(** Strict parse of a complete document; trailing garbage is an error.
    Numbers without [.], [e] or [E] come back as [Int].  Error messages
    carry the failure's line and column plus a caret-annotated context
    window, so malformed user-supplied input (e.g. a hand-edited run
    report handed to [agp diff]) points at the offending byte. *)

type located_error = {
  err_line : int;  (** 1-based *)
  err_col : int;  (** 1-based *)
  err_reason : string;  (** bare message, no position or context *)
  err_rendered : string;  (** the full human-facing message of {!parse} *)
}

val parse_located : string -> (t, located_error) result
(** {!parse} with the failure position exposed as data, for callers that
    forward it in a structured form (the serve wire protocol replies to
    a malformed request line with the line/column of the parse error). *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] elsewhere. *)

val to_int : t -> int option

val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_list : t -> t list option

val to_str : t -> string option
