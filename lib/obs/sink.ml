module Vec = Agp_util.Vec

type ring = {
  cap : int;
  data : (int * Event.t) option array;
  mutable len : int;
  mutable next : int; (* slot the next event lands in *)
  mutable total : int;
}

type t =
  | Null
  | Ring of ring
  | Collect of (int * Event.t) Vec.t

let null = Null

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  Ring { cap = capacity; data = Array.make capacity None; len = 0; next = 0; total = 0 }

let collect () = Collect (Vec.create ())

let enabled = function
  | Null -> false
  | Ring _ | Collect _ -> true

let emit t ~ts ev =
  match t with
  | Null -> ()
  | Ring r ->
      r.data.(r.next) <- Some (ts, ev);
      r.next <- (r.next + 1) mod r.cap;
      if r.len < r.cap then r.len <- r.len + 1;
      r.total <- r.total + 1
  | Collect v -> Vec.push v (ts, ev)

let events = function
  | Null -> []
  | Ring r ->
      List.init r.len (fun k ->
          match r.data.((r.next - r.len + k + r.cap) mod r.cap) with
          | Some e -> e
          | None -> assert false)
  | Collect v -> Vec.to_list v

let count = function
  | Null -> 0
  | Ring r -> r.total
  | Collect v -> Vec.length v

let dropped = function
  | Null | Collect _ -> 0
  | Ring r -> r.total - r.len

let clear = function
  | Null -> ()
  | Ring r ->
      Array.fill r.data 0 r.cap None;
      r.len <- 0;
      r.next <- 0;
      r.total <- 0
  | Collect v -> Vec.clear v
