module Table = Agp_util.Table

type direction =
  | Lower_better
  | Higher_better
  | Informational

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Keyed by naming convention: report emitters use these tokens
   consistently, and anything unrecognized only informs, never gates. *)
(* higher_tokens is matched first, so "cycles_per_sec" wins over the
   "cycles" lower-token it contains: sim_cycles_per_sec is a throughput
   ratchet, raw cycle counts still gate downward. *)
let higher_tokens =
  [ "utilization"; "hit_rate"; "busy"; "speedup"; "rps"; "throughput"; "cycles_per_sec" ]

let lower_tokens =
  [
    "cycles"; "seconds"; "stall"; "squash"; "abort"; "retried"; "wait"; "miss";
    "bytes_over_link"; "p50"; "p90"; "p99"; "latency"; "idle"; "queue-full"; "queue_full"; "redo";
    "shed"; "minor_words";
  ]

let direction_of key =
  let k = String.lowercase_ascii key in
  if List.exists (fun tok -> contains ~sub:tok k) higher_tokens then Higher_better
  else if List.exists (fun tok -> contains ~sub:tok k) lower_tokens then Lower_better
  else Informational

type status =
  | Unchanged
  | Changed
  | Regressed
  | Improved
  | Added
  | Removed

let status_name = function
  | Unchanged -> "unchanged"
  | Changed -> "changed"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Added -> "added"
  | Removed -> "removed"

type entry = {
  key : string;
  baseline : float option;
  current : float option;
  rel_change : float option;
  status : status;
}

type result = {
  entries : entry list;
  regressions : int;
  improvements : int;
  changes : int;
}

let compare ?(threshold = 0.05) a b =
  if threshold < 0.0 then invalid_arg "Diff.compare: negative threshold";
  let fa = Report.flatten a and fb = Report.flatten b in
  let tb = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) fb;
  let seen = Hashtbl.create 64 in
  let matched =
    List.map
      (fun (k, va) ->
        Hashtbl.replace seen k ();
        match Hashtbl.find_opt tb k with
        | None -> { key = k; baseline = Some va; current = None; rel_change = None; status = Removed }
        | Some vb ->
            let rel =
              if va = vb then 0.0
              else (vb -. va) /. Float.max (Float.abs va) 1e-12
            in
            let status =
              if Float.abs rel <= threshold then Unchanged
              else
                match direction_of k with
                | Informational -> Changed
                | Lower_better -> if rel > 0.0 then Regressed else Improved
                | Higher_better -> if rel < 0.0 then Regressed else Improved
            in
            { key = k; baseline = Some va; current = Some vb; rel_change = Some rel; status })
      fa
  in
  let added =
    List.filter_map
      (fun (k, vb) ->
        if Hashtbl.mem seen k then None
        else Some { key = k; baseline = None; current = Some vb; rel_change = None; status = Added })
      fb
  in
  let entries = matched @ added in
  let count st = List.length (List.filter (fun e -> e.status = st) entries) in
  {
    entries;
    regressions = count Regressed;
    improvements = count Improved;
    changes = count Changed + count Added + count Removed;
  }

let regressed r = r.regressions > 0

let fnum = Printf.sprintf "%g"

let render ?(all = false) r =
  let buf = Buffer.create 512 in
  let interesting = List.filter (fun e -> e.status <> Unchanged) r.entries in
  let shown = if all then r.entries else interesting in
  if shown = [] then Buffer.add_string buf "reports identical within threshold\n"
  else begin
    let t = Table.create [ "metric"; "baseline"; "current"; "change"; "status" ] in
    List.iter
      (fun e ->
        let cell = function
          | Some v -> fnum v
          | None -> "-"
        in
        let change =
          match e.rel_change with
          | Some rel -> Printf.sprintf "%+.1f%%" (100.0 *. rel)
          | None -> "-"
        in
        Table.add_row t [ e.key; cell e.baseline; cell e.current; change; status_name e.status ])
      shown;
    Buffer.add_string buf (Table.render t);
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf
    (Printf.sprintf "%d metrics compared: %d regressed, %d improved, %d informational changes\n"
       (List.length r.entries) r.regressions r.improvements r.changes);
  Buffer.contents buf

let entry_json e =
  Json.Obj
    [
      ("key", Json.String e.key);
      ( "baseline",
        match e.baseline with
        | Some v -> Json.Float v
        | None -> Json.Null );
      ( "current",
        match e.current with
        | Some v -> Json.Float v
        | None -> Json.Null );
      ( "rel_change",
        match e.rel_change with
        | Some v -> Json.Float v
        | None -> Json.Null );
      ("status", Json.String (status_name e.status));
    ]

let to_json ?(all = false) r =
  let entries = if all then r.entries else List.filter (fun e -> e.status <> Unchanged) r.entries in
  Json.Obj
    [
      ("compared", Json.Int (List.length r.entries));
      ("regressions", Json.Int r.regressions);
      ("improvements", Json.Int r.improvements);
      ("changes", Json.Int r.changes);
      ("entries", Json.List (List.map entry_json entries));
    ]
