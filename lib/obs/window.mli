(** Rolling-window percentiles: p50/p90/p99 over the last N seconds of
    observations rather than over the whole process lifetime.

    Cumulative histograms ({!Metrics.histogram}) answer "how has this
    daemon behaved since boot"; a window answers "how is it behaving
    right now", which is what live dashboards and admission decisions
    need.  Samples are timestamped on entry and pruned lazily; the
    caller supplies the clock, so the module has no wall-clock
    dependency and window behaviour is exactly reproducible in tests.

    All operations are thread-safe (shard threads observe concurrently
    while a scrape summarizes). *)

type t

val create : ?max_samples:int -> span_s:float -> string -> t
(** [create ~span_s name] makes a window keeping samples from the last
    [span_s] seconds.  At most [max_samples] (default 65536) live
    samples are kept: under overload the oldest is dropped and counted
    in [s_dropped] rather than growing without bound.
    @raise Invalid_argument if [span_s <= 0] or [max_samples < 1]. *)

val name : t -> string

val span_s : t -> float

val observe : t -> now:float -> float -> unit
(** [observe t ~now v] records sample [v] at time [now] (seconds, any
    monotone-enough epoch — serve passes [Unix.gettimeofday]). *)

type summary = {
  s_name : string;
  s_span_s : float;
  s_count : int;  (** live samples inside the window *)
  s_lifetime : int;  (** observations ever, incl. expired and dropped *)
  s_dropped : int;  (** live samples evicted by the [max_samples] cap *)
  s_rate_per_sec : float;  (** [s_count / s_span_s] — arrival rate *)
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

val summary : t -> now:float -> summary
(** Prune to [now] and summarize.  Percentiles are nearest-rank
    ({!Agp_util.Stats.percentile_nearest}): total on the empty window
    (all zeros) and p99 equals the max at small sample counts. *)

val summary_json : summary -> Json.t
