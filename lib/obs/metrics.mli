(** Cheap named metrics: counters, gauges and fixed-bucket histograms
    behind a registry, with text and JSON rendering.

    Updates are single field writes so instrumentation can stay in hot
    simulator paths.  A registry hands out at most one metric per name
    (re-asking returns the same instance) and remembers insertion order
    for stable rendering. *)

type counter

type gauge

type histogram

type registry

val create : unit -> registry

val counter : registry -> string -> counter
(** Find-or-create.  @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val gauge : registry -> string -> gauge

val histogram : registry -> string -> buckets:int array -> histogram
(** [buckets] are strictly increasing inclusive upper bounds; one
    overflow bucket is added.  Re-asking with different bounds raises.
    @raise Invalid_argument on empty or non-increasing bounds. *)

val incr : counter -> unit

val add : counter -> int -> unit

val count : counter -> int

val set : gauge -> float -> unit

val value : gauge -> float

val observe : histogram -> int -> unit
(** Record one sample into its bucket (last bucket catches overflow). *)

val bucket_counts : histogram -> (int option * int) list
(** [(Some bound, n)] per configured bucket, then [(None, n)] for
    overflow. *)

val sample_count : histogram -> int

val sample_sum : histogram -> int

val percentile : histogram -> float -> float
(** [percentile h p] estimates the [p]-th percentile ([p] in
    [\[0,100\]]) from the bucket counts, interpolating linearly inside
    the bucket the rank falls in (lower edge 0 for the first bucket).
    Ranks landing in the overflow bucket clamp to the last configured
    bound — a histogram only knows its samples up to its bounds.
    Total on an empty histogram: returns 0.0 (scrape paths must never
    raise on a registry that has not observed anything yet).
    @raise Invalid_argument on [p] out of range. *)

type exported =
  | Counter_value of string * int
  | Gauge_value of string * float
  | Histogram_value of string * histogram

val export : registry -> exported list
(** Read-only view of every metric in insertion order, for exposition
    layers ({!Telemetry}) that render a whole registry. *)

val to_text : registry -> string
(** One line per metric, insertion order.  Non-empty histograms include
    estimated p50/p90/p99. *)

val to_json : registry -> Json.t
(** Object keyed by metric name; counters as ints, gauges as floats,
    histograms as [{"count";"sum";"p50";"p90";"p99";"buckets":
    [{"le","n"}...]}] (percentiles omitted when empty) where the
    overflow bucket's ["le"] is [null]. *)
