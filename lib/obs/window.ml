(* Rolling-window sample store: percentiles over the last [span_s]
   seconds of observations, not over the whole process lifetime.  The
   clock is always passed in by the caller — agp_obs stays wall-clock
   free, so windows are exactly reproducible in tests. *)

module Stats = Agp_util.Stats

type t = {
  w_name : string;
  span_s : float;
  max_samples : int;
  mutex : Mutex.t;
  (* newest-first (at, value); pruned lazily on observe/summary *)
  mutable samples : (float * float) list;
  mutable n : int;
  mutable lifetime : int;
  mutable dropped : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create ?(max_samples = 65536) ~span_s name =
  if span_s <= 0.0 then invalid_arg "Window.create: span_s must be positive";
  if max_samples < 1 then invalid_arg "Window.create: max_samples must be >= 1";
  {
    w_name = name;
    span_s;
    max_samples;
    mutex = Mutex.create ();
    samples = [];
    n = 0;
    lifetime = 0;
    dropped = 0;
  }

let name t = t.w_name

let span_s t = t.span_s

(* drop samples older than [now - span_s]; the list is newest-first so
   everything after the first stale element is stale too *)
let prune t ~now =
  let horizon = now -. t.span_s in
  let rec keep acc kept = function
    | [] -> (List.rev acc, kept)
    | (at, _) :: _ when at < horizon -> (List.rev acc, kept)
    | s :: rest -> keep (s :: acc) (kept + 1) rest
  in
  let live, kept = keep [] 0 t.samples in
  t.samples <- live;
  t.n <- kept

let observe t ~now v =
  locked t (fun () ->
      prune t ~now;
      t.lifetime <- t.lifetime + 1;
      if t.n >= t.max_samples then begin
        (* cap memory under overload: drop the oldest live sample *)
        let rec drop_last = function
          | [] | [ _ ] -> []
          | s :: rest -> s :: drop_last rest
        in
        t.samples <- drop_last t.samples;
        t.dropped <- t.dropped + 1
      end
      else t.n <- t.n + 1;
      t.samples <- (now, v) :: t.samples)

type summary = {
  s_name : string;
  s_span_s : float;
  s_count : int;
  s_lifetime : int;
  s_dropped : int;
  s_rate_per_sec : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

let summary t ~now =
  locked t (fun () ->
      prune t ~now;
      let vs = Array.of_list (List.map snd t.samples) in
      let n = Array.length vs in
      let pct p = Stats.percentile_nearest vs p in
      {
        s_name = t.w_name;
        s_span_s = t.span_s;
        s_count = n;
        s_lifetime = t.lifetime;
        s_dropped = t.dropped;
        s_rate_per_sec = float_of_int n /. t.span_s;
        s_mean = Stats.mean vs;
        s_p50 = pct 50.0;
        s_p90 = pct 90.0;
        s_p99 = pct 99.0;
        s_max = (if n = 0 then 0.0 else Stats.maximum vs);
      })

let summary_json s =
  Json.Obj
    [
      ("window_s", Json.Float s.s_span_s);
      ("count", Json.Int s.s_count);
      ("lifetime", Json.Int s.s_lifetime);
      ("dropped", Json.Int s.s_dropped);
      ("rate_per_sec", Json.Float s.s_rate_per_sec);
      ("mean", Json.Float s.s_mean);
      ("p50", Json.Float s.s_p50);
      ("p90", Json.Float s.s_p90);
      ("p99", Json.Float s.s_p99);
      ("max", Json.Float s.s_max);
    ]
