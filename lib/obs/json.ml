type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* keep a decimal point so the value parses back as Float *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

type located_error = {
  err_line : int;
  err_col : int;
  err_reason : string;
  err_rendered : string;
}

exception Parse_error of int * string

(* Failure messages carry line/column plus a one-line context window
   with a caret, so a user pointed at a malformed report file can find
   the byte that broke it. *)
let locate_error s pos msg =
  let n = String.length s in
  let pos = min pos n in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if s.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  let col = pos - !bol + 1 in
  let ctx_start = max !bol (pos - 30) in
  let ctx_end = min n (pos + 30) in
  let ctx =
    String.map
      (fun c -> if c = '\n' || c = '\r' || c = '\t' then ' ' else c)
      (String.sub s ctx_start (ctx_end - ctx_start))
  in
  let caret = String.make (pos - ctx_start) ' ' ^ "^" in
  {
    err_line = !line;
    err_col = col;
    err_reason = msg;
    err_rendered =
      Printf.sprintf "%s at line %d, column %d\n  %s\n  %s" msg !line col ctx caret;
  }

let parse_located s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      &&
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' -> true
      | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          incr pos;
          begin
            match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                begin
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
                  | Some _ -> Buffer.add_char buf '?'
                  | None -> fail "malformed \\u escape"
                end
            | _ -> fail "unknown escape"
          end;
          go ()
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> begin
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "malformed number"
      end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) -> Error (locate_error s p msg)

let parse s = Result.map_error (fun e -> e.err_rendered) (parse_located s)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list = function
  | List xs -> Some xs
  | _ -> None

let to_str = function
  | String s -> Some s
  | _ -> None
