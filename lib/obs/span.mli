(** Request-level wall-clock spans.

    {!Lifecycle} decomposes a single accelerator run into per-task
    cycle-level spans; this module is its counterpart one layer up, for
    the always-on service ([Agp_serve]): each request's wall-clock is
    attributed to named phases (queue-wait behind admission, workload
    build, substrate execution, ...) as millisecond durations, and
    reduced to per-phase count/mean/p50/p90/p99/max summaries that the
    server reports in its [stats] reply.

    A collector is concurrency-safe: worker shards record into the same
    {!t} from many threads. *)

type summary = {
  sp_phase : string;
  sp_count : int;
  sp_mean_ms : float;
  sp_p50_ms : float;  (** exact percentiles over the raw durations,
                          via {!Agp_util.Stats.percentile} *)
  sp_p90_ms : float;
  sp_p99_ms : float;
  sp_max_ms : float;
}

type t

val create : unit -> t

val record : t -> phase:string -> float -> unit
(** Record one duration (milliseconds) under [phase]. *)

val count : t -> phase:string -> int
(** Durations recorded so far under [phase] (0 for an unknown phase). *)

val summarize : t -> summary list
(** Per-phase reduction, phases in first-recorded order. *)

val mean_ms : t -> phase:string -> float option
(** Mean of a single phase without summarizing the rest; [None] when the
    phase has no samples (the server's retry-after hint reads this). *)

val to_json : summary list -> Json.t
(** Object keyed by phase:
    [{"<phase>": {"count":n,"mean_ms":..,"p50_ms":..,...}, ...}]. *)

val of_json : Json.t -> (summary list, string) result
(** Inverse of {!to_json}; the serve protocol round-trips span summaries
    through the stats reply. *)

val render : summary list -> string
(** Aligned table, one row per phase. *)
