(* Live telemetry surface: one metrics registry plus a set of rolling
   windows, rendered as Prometheus text exposition (v0.0.4).  The
   registry answers "since boot", the windows answer "right now". *)

type t = {
  registry : Metrics.registry;
  mutex : Mutex.t;
  mutable windows : Window.t list; (* reverse creation order *)
}

let create ?registry () =
  {
    registry = (match registry with Some r -> r | None -> Metrics.create ());
    mutex = Mutex.create ();
    windows = [];
  }

let registry t = t.registry

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let window t ?max_samples ~span_s name =
  locked t (fun () ->
      match List.find_opt (fun w -> Window.name w = name) t.windows with
      | Some w ->
          if Window.span_s w <> span_s then
            invalid_arg
              (Printf.sprintf "Telemetry.window: %S re-registered with different span" name);
          w
      | None ->
          let w = Window.create ?max_samples ~span_s name in
          t.windows <- w :: t.windows;
          w)

let windows t = locked t (fun () -> List.rev t.windows)

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Registry names
   use dots ("serve.requests_total"); map anything illegal to '_'. *)
let sanitize name =
  let ok i c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
    | '0' .. '9' -> i > 0
    | _ -> false
  in
  String.mapi (fun i c -> if ok i c then c else '_') name

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let add_metric buf m =
  match m with
  | Metrics.Counter_value (name, count) ->
      let n = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n count)
  | Metrics.Gauge_value (name, v) ->
      let n = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (fnum v))
  | Metrics.Histogram_value (name, h) ->
      let n = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      (* registry buckets are per-bucket counts; Prometheus buckets are
         cumulative and always end with le="+Inf" *)
      let cum = ref 0 in
      List.iter
        (fun (bound, c) ->
          cum := !cum + c;
          let le =
            match bound with
            | Some b -> string_of_int b
            | None -> "+Inf"
          in
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cum))
        (Metrics.bucket_counts h);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n (Metrics.sample_sum h));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Metrics.sample_count h))

let add_window buf ~now w =
  let s = Window.summary w ~now in
  let n = sanitize s.Window.s_name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
  List.iter
    (fun (q, v) ->
      Buffer.add_string buf (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (fnum v)))
    [ ("0.5", s.Window.s_p50); ("0.9", s.Window.s_p90); ("0.99", s.Window.s_p99) ];
  Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.Window.s_lifetime);
  Buffer.add_string buf
    (Printf.sprintf "# TYPE %s_window_rate_per_sec gauge\n%s_window_rate_per_sec %s\n" n n
       (fnum s.Window.s_rate_per_sec));
  Buffer.add_string buf
    (Printf.sprintf "# TYPE %s_window_max gauge\n%s_window_max %s\n" n n (fnum s.Window.s_max))

let to_prometheus t ~now =
  let buf = Buffer.create 1024 in
  List.iter (add_metric buf) (Metrics.export t.registry);
  List.iter (add_window buf ~now) (windows t);
  Buffer.contents buf

let to_json t ~now =
  Json.Obj
    [
      ("metrics", Metrics.to_json t.registry);
      ( "windows",
        Json.Obj
          (List.map
             (fun w -> (Window.name w, Window.summary_json (Window.summary w ~now)))
             (windows t)) );
    ]
