module Stats = Agp_util.Stats
module Table = Agp_util.Table

type span = {
  sp_set : string;
  sp_tid : int;
  sp_dispatched : int;
  sp_retired : int;
  sp_queue_wait : int;
  sp_execute : int;
  sp_rdv_wait : int;
  sp_squash_redo : int;
  sp_outcome : Event.outcome;
}

(* A task id moves through: dispatched into a pipeline window, possibly
   parked at a rendezvous (then resumed into a queue and re-dispatched),
   and finally finished with an outcome.  Retries allocate a fresh tid,
   so a finish is always terminal for its tid. *)
type phase =
  | In_pipe of int
  | Parked of int
  | Queued of int

type building = {
  b_set : string;
  b_first : int;
  mutable b_phase : phase;
  mutable b_queue : int;
  mutable b_exec : int;
  mutable b_rdv : int;
}

let spans events =
  let tbl = Hashtbl.create 256 in
  let out = ref [] in
  List.iter
    (fun (ts, ev) ->
      match ev with
      | Event.Task_dispatch { set; tid; _ } -> begin
          match Hashtbl.find_opt tbl tid with
          | None ->
              Hashtbl.add tbl tid
                { b_set = set; b_first = ts; b_phase = In_pipe ts; b_queue = 0; b_exec = 0; b_rdv = 0 }
          | Some b -> begin
              match b.b_phase with
              | Queued q ->
                  b.b_queue <- b.b_queue + (ts - q);
                  b.b_phase <- In_pipe ts
              | In_pipe _ | Parked _ ->
                  (* defensive: a re-dispatch without a resume should not
                     happen; restart the execute segment *)
                  b.b_phase <- In_pipe ts
            end
        end
      | Event.Rendezvous_park { tid; _ } -> begin
          match Hashtbl.find_opt tbl tid with
          | Some ({ b_phase = In_pipe since; _ } as b) ->
              b.b_exec <- b.b_exec + (ts - since);
              b.b_phase <- Parked ts
          | Some _ | None -> ()
        end
      | Event.Rendezvous_resume { tid; _ } -> begin
          match Hashtbl.find_opt tbl tid with
          | Some ({ b_phase = Parked since; _ } as b) ->
              b.b_rdv <- b.b_rdv + (ts - since);
              b.b_phase <- Queued ts
          | Some _ | None -> ()
        end
      | Event.Task_finish { tid; outcome; _ } -> begin
          match Hashtbl.find_opt tbl tid with
          | None -> ()
          | Some b ->
              Hashtbl.remove tbl tid;
              let exec =
                match b.b_phase with
                | In_pipe since -> b.b_exec + (ts - since)
                | Parked _ | Queued _ -> b.b_exec
              in
              (* a squashed activation's pipeline occupancy was wasted
                 work: the whole execute time is redo, not progress *)
              let execute, squash_redo =
                match outcome with
                | Event.Commit -> (exec, 0)
                | Event.Abort | Event.Retry -> (0, exec)
              in
              out :=
                {
                  sp_set = b.b_set;
                  sp_tid = tid;
                  sp_dispatched = b.b_first;
                  sp_retired = ts;
                  sp_queue_wait = b.b_queue;
                  sp_execute = execute;
                  sp_rdv_wait = b.b_rdv;
                  sp_squash_redo = squash_redo;
                  sp_outcome = outcome;
                }
                :: !out
        end
      | Event.Queue_full _ | Event.Cache_access _ | Event.Link_transfer _ | Event.Arb_grant _ ->
          ())
    events;
  (List.rev !out, Hashtbl.length tbl)

type set_stats = {
  ls_set : string;
  ls_tasks : int;
  ls_commits : int;
  ls_squashes : int;
  ls_p50 : float;
  ls_p90 : float;
  ls_p99 : float;
  ls_mean : float;
  ls_max : float;
  ls_queue_wait : int;
  ls_execute : int;
  ls_rdv_wait : int;
  ls_squash_redo : int;
}

let summarize spans =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let rows =
        match Hashtbl.find_opt tbl sp.sp_set with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add tbl sp.sp_set l;
            order := sp.sp_set :: !order;
            l
      in
      rows := sp :: !rows)
    spans;
  List.rev_map
    (fun set ->
      let rows = List.rev !(Hashtbl.find tbl set) in
      let durations =
        Array.of_list (List.map (fun sp -> float_of_int (sp.sp_retired - sp.sp_dispatched)) rows)
      in
      let total f = List.fold_left (fun acc sp -> acc + f sp) 0 rows in
      {
        ls_set = set;
        ls_tasks = List.length rows;
        ls_commits =
          List.length (List.filter (fun sp -> sp.sp_outcome = Event.Commit) rows);
        ls_squashes =
          List.length (List.filter (fun sp -> sp.sp_outcome <> Event.Commit) rows);
        ls_p50 = Stats.percentile durations 50.0;
        ls_p90 = Stats.percentile durations 90.0;
        ls_p99 = Stats.percentile durations 99.0;
        ls_mean = Stats.mean durations;
        ls_max = Stats.maximum durations;
        ls_queue_wait = total (fun sp -> sp.sp_queue_wait);
        ls_execute = total (fun sp -> sp.sp_execute);
        ls_rdv_wait = total (fun sp -> sp.sp_rdv_wait);
        ls_squash_redo = total (fun sp -> sp.sp_squash_redo);
      })
    !order
  |> List.rev

let histogram reg ~name spans =
  let h =
    Metrics.histogram reg name ~buckets:[| 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384 |]
  in
  List.iter (fun sp -> Metrics.observe h (sp.sp_retired - sp.sp_dispatched)) spans;
  h

let to_json stats =
  Json.Obj
    (List.map
       (fun s ->
         ( s.ls_set,
           Json.Obj
             [
               ("tasks", Json.Int s.ls_tasks);
               ("commits", Json.Int s.ls_commits);
               ("squashes", Json.Int s.ls_squashes);
               ("p50", Json.Float s.ls_p50);
               ("p90", Json.Float s.ls_p90);
               ("p99", Json.Float s.ls_p99);
               ("mean", Json.Float s.ls_mean);
               ("max", Json.Float s.ls_max);
               ("queue_wait", Json.Int s.ls_queue_wait);
               ("execute", Json.Int s.ls_execute);
               ("rdv_wait", Json.Int s.ls_rdv_wait);
               ("squash_redo", Json.Int s.ls_squash_redo);
             ] ))
       stats)

let render stats =
  let t =
    Table.create
      [
        "task set"; "tasks"; "commits"; "squashes"; "p50"; "p90"; "p99"; "mean";
        "queue-wait"; "execute"; "rdv-wait"; "squash-redo";
      ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.ls_set;
          string_of_int s.ls_tasks;
          string_of_int s.ls_commits;
          string_of_int s.ls_squashes;
          Printf.sprintf "%.0f" s.ls_p50;
          Printf.sprintf "%.0f" s.ls_p90;
          Printf.sprintf "%.0f" s.ls_p99;
          Printf.sprintf "%.1f" s.ls_mean;
          string_of_int s.ls_queue_wait;
          string_of_int s.ls_execute;
          string_of_int s.ls_rdv_wait;
          string_of_int s.ls_squash_redo;
        ])
    stats;
  Table.render t
