(* Leveled structured logging as NDJSON: one JSON object per line, a
   fixed envelope (ts/level/msg, plus req for request correlation) and
   free-form extra fields.  The clock is injected so agp_obs keeps no
   wall-clock dependency and log tests are deterministic. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | _ -> Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s)

type t = {
  mutable threshold : level;
  clock : unit -> float;
  out : out_channel option; (* None = the null logger *)
  mutex : Mutex.t;
}

let create ?(level = Info) ~clock ~out () =
  { threshold = level; clock; out = Some out; mutex = Mutex.create () }

let null = { threshold = Error; clock = (fun () -> 0.0); out = None; mutex = Mutex.create () }

let set_level t l = t.threshold <- l

let level t = t.threshold

let enabled t l = t.out <> None && severity l >= severity t.threshold

let reserved = [ "ts"; "level"; "msg"; "req" ]

let log t l ?req ?(fields = []) msg =
  if enabled t l then
    match t.out with
    | None -> ()
    | Some out ->
        let fields = List.filter (fun (k, _) -> not (List.mem k reserved)) fields in
        let doc =
          Json.Obj
            (("ts", Json.Float (t.clock ()))
            :: ("level", Json.String (level_name l))
            :: ("msg", Json.String msg)
            :: ((match req with
                | Some id -> [ ("req", Json.String id) ]
                | None -> [])
               @ fields))
        in
        let line = Json.to_string doc in
        Mutex.lock t.mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.mutex)
          (fun () ->
            output_string out line;
            output_char out '\n';
            flush out)

let debug t ?req ?fields msg = log t Debug ?req ?fields msg

let info t ?req ?fields msg = log t Info ?req ?fields msg

let warn t ?req ?fields msg = log t Warn ?req ?fields msg

let error t ?req ?fields msg = log t Error ?req ?fields msg
