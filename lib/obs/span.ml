module Stats = Agp_util.Stats

type summary = {
  sp_phase : string;
  sp_count : int;
  sp_mean_ms : float;
  sp_p50_ms : float;
  sp_p90_ms : float;
  sp_p99_ms : float;
  sp_max_ms : float;
}

(* Phases in first-recorded order; each phase accumulates raw durations
   (newest first) so percentiles are exact, not histogram estimates.
   Request counts are bounded by admission, so the raw series stays
   small relative to the work it describes. *)
type phase_cell = { name : string; mutable samples : float list; mutable n : int }

type t = { mutex : Mutex.t; mutable phases : phase_cell list (* reverse order *) }

let create () = { mutex = Mutex.create (); phases = [] }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_cell t phase = List.find_opt (fun c -> c.name = phase) t.phases

let record t ~phase ms =
  locked t (fun () ->
      match find_cell t phase with
      | Some c ->
          c.samples <- ms :: c.samples;
          c.n <- c.n + 1
      | None -> t.phases <- { name = phase; samples = [ ms ]; n = 1 } :: t.phases)

let count t ~phase =
  locked t (fun () ->
      match find_cell t phase with
      | Some c -> c.n
      | None -> 0)

let summarize_cell c =
  let xs = Array.of_list c.samples in
  {
    sp_phase = c.name;
    sp_count = c.n;
    sp_mean_ms = Stats.mean xs;
    sp_p50_ms = Stats.percentile xs 50.0;
    sp_p90_ms = Stats.percentile xs 90.0;
    sp_p99_ms = Stats.percentile xs 99.0;
    sp_max_ms = Stats.maximum xs;
  }

let summarize t =
  locked t (fun () -> List.rev_map summarize_cell t.phases)

let mean_ms t ~phase =
  locked t (fun () ->
      match find_cell t phase with
      | Some c when c.n > 0 -> Some (Stats.mean (Array.of_list c.samples))
      | Some _ | None -> None)

let to_json summaries =
  Json.Obj
    (List.map
       (fun s ->
         ( s.sp_phase,
           Json.Obj
             [
               ("count", Json.Int s.sp_count);
               ("mean_ms", Json.Float s.sp_mean_ms);
               ("p50_ms", Json.Float s.sp_p50_ms);
               ("p90_ms", Json.Float s.sp_p90_ms);
               ("p99_ms", Json.Float s.sp_p99_ms);
               ("max_ms", Json.Float s.sp_max_ms);
             ] ))
       summaries)

let of_json j =
  match j with
  | Json.Obj kvs ->
      let cell (phase, v) =
        let num k =
          match Option.bind (Json.member k v) Json.to_float with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "span %S: missing numeric %S" phase k)
        in
        let ( let* ) = Result.bind in
        let* n =
          match Option.bind (Json.member "count" v) Json.to_int with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "span %S: missing integer \"count\"" phase)
        in
        let* mean = num "mean_ms" in
        let* p50 = num "p50_ms" in
        let* p90 = num "p90_ms" in
        let* p99 = num "p99_ms" in
        let* mx = num "max_ms" in
        Ok
          {
            sp_phase = phase;
            sp_count = n;
            sp_mean_ms = mean;
            sp_p50_ms = p50;
            sp_p90_ms = p90;
            sp_p99_ms = p99;
            sp_max_ms = mx;
          }
      in
      List.fold_left
        (fun acc kv ->
          match (acc, cell kv) with
          | Error _, _ -> acc
          | Ok xs, Ok s -> Ok (s :: xs)
          | Ok _, (Error _ as e) -> e)
        (Ok []) kvs
      |> Result.map List.rev
  | _ -> Error "spans: expected an object keyed by phase"

let render summaries =
  let t =
    Agp_util.Table.create [ "phase"; "count"; "mean ms"; "p50"; "p90"; "p99"; "max" ]
  in
  List.iter
    (fun s ->
      Agp_util.Table.add_row t
        [
          s.sp_phase;
          string_of_int s.sp_count;
          Printf.sprintf "%.2f" s.sp_mean_ms;
          Printf.sprintf "%.2f" s.sp_p50_ms;
          Printf.sprintf "%.2f" s.sp_p90_ms;
          Printf.sprintf "%.2f" s.sp_p99_ms;
          Printf.sprintf "%.2f" s.sp_max_ms;
        ])
    summaries;
  Agp_util.Table.render t
