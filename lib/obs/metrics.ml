type counter = {
  c_name : string;
  mutable c_count : int;
}

type gauge = {
  g_name : string;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  bounds : int array; (* strictly increasing inclusive upper bounds *)
  buckets : int array; (* length bounds + 1; last is overflow *)
  mutable h_sum : int;
  mutable h_count : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : metric list; (* reverse insertion order *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let register reg name make =
  match Hashtbl.find_opt reg.tbl name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add reg.tbl name m;
      reg.order <- m :: reg.order;
      m

let kind_error name want =
  invalid_arg (Printf.sprintf "Metrics: %S is already registered and is not a %s" name want)

let counter reg name =
  match register reg name (fun () -> Counter { c_name = name; c_count = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_error name "counter"

let gauge reg name =
  match register reg name (fun () -> Gauge { g_name = name; g_value = 0.0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_error name "gauge"

let histogram reg name ~buckets =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    buckets;
  let make () =
    Histogram
      {
        h_name = name;
        bounds = Array.copy buckets;
        buckets = Array.make (Array.length buckets + 1) 0;
        h_sum = 0;
        h_count = 0;
      }
  in
  match register reg name make with
  | Histogram h ->
      if h.bounds <> buckets then
        invalid_arg (Printf.sprintf "Metrics.histogram: %S re-registered with different bounds" name);
      h
  | Counter _ | Gauge _ -> kind_error name "histogram"

let incr c = c.c_count <- c.c_count + 1

let add c n = c.c_count <- c.c_count + n

let count c = c.c_count

let set g v = g.g_value <- v

let value g = g.g_value

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n then n else if v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_count <- h.h_count + 1

let bucket_counts h =
  let configured =
    Array.to_list (Array.mapi (fun i b -> (Some b, h.buckets.(i))) h.bounds)
  in
  configured @ [ (None, h.buckets.(Array.length h.bounds)) ]

let sample_count h = h.h_count

let sample_sum h = h.h_sum

let percentile h p =
  if p < 0.0 || p > 100.0 then invalid_arg "Metrics.percentile: p out of range";
  if h.h_count = 0 then 0.0
  else
  let target = p /. 100.0 *. float_of_int h.h_count in
  let nb = Array.length h.bounds in
  let rec go i cum =
    if i > nb then float_of_int h.bounds.(nb - 1)
    else begin
      let in_bucket = h.buckets.(i) in
      let cum' = cum + in_bucket in
      if in_bucket > 0 && float_of_int cum' >= target then
        if i = nb then (* overflow bucket has no upper bound: clamp *)
          float_of_int h.bounds.(nb - 1)
        else begin
          let lo = if i = 0 then 0.0 else float_of_int h.bounds.(i - 1) in
          let hi = float_of_int h.bounds.(i) in
          lo +. ((hi -. lo) *. ((target -. float_of_int cum) /. float_of_int in_bucket))
        end
      else go (i + 1) cum'
    end
  in
  go 0 0

let metrics reg = List.rev reg.order

type exported =
  | Counter_value of string * int
  | Gauge_value of string * float
  | Histogram_value of string * histogram

let export reg =
  List.map
    (fun m ->
      match m with
      | Counter c -> Counter_value (c.c_name, c.c_count)
      | Gauge g -> Gauge_value (g.g_name, g.g_value)
      | Histogram h -> Histogram_value (h.h_name, h))
    (metrics reg)

let to_text reg =
  let buf = Buffer.create 256 in
  List.iter
    (fun m ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "counter   %-32s %d\n" c.c_name c.c_count)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "gauge     %-32s %g\n" g.g_name g.g_value)
      | Histogram h ->
          let mean =
            if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count
          in
          let pcts =
            if h.h_count = 0 then ""
            else
              Printf.sprintf " p50=%.1f p90=%.1f p99=%.1f" (percentile h 50.0) (percentile h 90.0)
                (percentile h 99.0)
          in
          Buffer.add_string buf
            (Printf.sprintf "histogram %-32s count=%d sum=%d mean=%.1f%s" h.h_name h.h_count
               h.h_sum mean pcts);
          List.iter
            (fun (bound, n) ->
              if n > 0 then
                match bound with
                | Some b -> Buffer.add_string buf (Printf.sprintf " [<=%d: %d]" b n)
                | None -> Buffer.add_string buf (Printf.sprintf " [overflow: %d]" n))
            (bucket_counts h);
          Buffer.add_char buf '\n')
    (metrics reg);
  Buffer.contents buf

let to_json reg =
  Json.Obj
    (List.map
       (fun m ->
         match m with
         | Counter c -> (c.c_name, Json.Int c.c_count)
         | Gauge g -> (g.g_name, Json.Float g.g_value)
         | Histogram h ->
             ( h.h_name,
               Json.Obj
                 ([
                    ("count", Json.Int h.h_count);
                    ("sum", Json.Int h.h_sum);
                  ]
                 @ (if h.h_count = 0 then []
                    else
                      [
                        ("p50", Json.Float (percentile h 50.0));
                        ("p90", Json.Float (percentile h 90.0));
                        ("p99", Json.Float (percentile h 99.0));
                      ])
                 @ [
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (bound, n) ->
                            Json.Obj
                              [
                                ( "le",
                                  match bound with
                                  | Some b -> Json.Int b
                                  | None -> Json.Null );
                                ("n", Json.Int n);
                              ])
                          (bucket_counts h)) );
                 ] )))
       (metrics reg))
