(** Schema-versioned machine-readable run reports.

    A report is the JSON artifact a run leaves behind — configuration,
    metrics, stall attribution, lifecycle percentiles, timeline summary
    — so that runs can be archived, plotted and structurally compared
    ({!Diff}) instead of scraped from stdout.

    Layout (version {!schema_version}):
    {v
    { "schema_version": 2,
      "kind": "accelerator-run" | "explore-sweep" | "bench",
      "app": "<application or harness name>",
      "meta": { ...configuration scalars... },
      "<section>": { ... }, ...
    }
    v}

    Every key except the four reserved ones is a section; section order
    is preserved, so emit → parse → re-emit is bit-identical (asserted
    in [test/test_obs.ml]). *)

val schema_version : int
(** Version written by {!to_json}.  v2 added wall-clock throughput
    ([metrics.accel.sim_cycles_per_sec]) to accelerator-run reports. *)

val min_readable_version : int
(** Oldest version {!of_json} still accepts (the envelope has not
    changed shape, so v1 artifacts remain diffable). *)

type t = {
  kind : string;
  app : string;
  meta : (string * Json.t) list;
  sections : (string * Json.t) list;
}

val v :
  kind:string ->
  app:string ->
  ?meta:(string * Json.t) list ->
  ?sections:(string * Json.t) list ->
  unit ->
  t

val to_json : t -> Json.t

val to_string : t -> string
(** Compact JSON. *)

val of_json : Json.t -> (t, string) result
(** Validates the envelope: rejects non-objects, a missing or
    non-integer schema_version, a version this reader does not
    understand, and missing kind/app. *)

val of_string : string -> (t, string) result
(** {!Json.parse} (with positioned errors) then {!of_json}. *)

val flatten : t -> (string * float) list
(** Every numeric leaf of meta + sections as a dotted path, document
    order — the input to {!Diff.compare}.  Lists are skipped (bucket
    arrays and raw sample series are not meaningfully diffable
    per-element). *)
