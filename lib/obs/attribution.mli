(** Per-cycle stall attribution: where do the pipeline-cycles go?

    Every (pipeline, cycle) pair of a simulated run is charged to
    exactly one bucket, so per task set (and in total) the buckets sum
    to [cycles x pipelines] — the invariant that makes the breakdown a
    decomposition rather than a collection of overlapping counters.

    Bucket semantics (priority order, as classified by the simulator):
    - {!Busy}: at least one in-flight task advanced an operation in the
      pipeline this cycle;
    - {!Mem_stall}: tasks are in flight but all are waiting out
      operation latency (dominated by cache misses and the QPI link);
    - {!Rendezvous_stall}: the window is empty while tasks of the set
      sit parked in rule lanes;
    - {!Queue_full}: the window is empty, tasks are pending, but queue
      bank bandwidth was exhausted this cycle;
    - {!Squash_waste}: busy cycles retroactively reclassified because
      the task that consumed them was aborted or retried (clamped so
      the sum invariant holds; squashes of already-parked tasks are not
      chargeable and stay in {!Busy});
    - {!Idle}: nothing to do — the set has no pending, in-flight or
      parked work. *)

type bucket =
  | Busy
  | Mem_stall
  | Rendezvous_stall
  | Queue_full
  | Squash_waste
  | Idle

val buckets : bucket list
(** All six, in rendering order. *)

val bucket_name : bucket -> string

type t

val create : unit -> t

val charge : t -> set:string -> bucket -> int -> unit
(** Add [n] pipeline-cycles ([n >= 0]) to a bucket of a task set. *)

val reclassify : t -> set:string -> src:bucket -> dst:bucket -> int -> int
(** Move up to [n] cycles between buckets of one set, clamped to the
    source's balance; returns the amount actually moved. *)

val get : t -> set:string -> bucket -> int

val per_set : t -> (string * (bucket * int) list) list
(** Sets in first-charge order, each with all six buckets. *)

val set_total : t -> set:string -> int

val total : t -> int
(** Sum over all sets and buckets — equals [cycles x total pipelines]
    for a completed simulation. *)

val equal : t -> t -> bool

type summary = {
  busy_frac : float;
  mem_frac : float;
  rendezvous_frac : float;
  queue_frac : float;
  squash_frac : float;
  idle_frac : float;
}

val summary : t -> summary
(** Fractions of {!total} (all zero for an empty attribution). *)

val dominant_stall : summary -> string * float
(** The largest non-busy bucket, as [(name, fraction)]. *)

val render : t -> string
(** Aligned table: one row per set plus a totals row, each bucket as
    ["cycles (share%)"]. *)
