(** Trace-driven timing model of the software baselines (§6.3): the
    aggressively-parallelized reference implementations on an Intel
    Xeon E5-2680 v2 (10 cores, 2.8 GHz, ~60 GB/s DRAM).

    The sequential (1-core) time replays the sequential oracle's
    operation and memory-access profile through a CPU cache hierarchy;
    the 10-core time uses the aggressive software runtime's measured
    makespan (scheduler ticks with 10 workers) — the same semantics the
    FPGA runs — plus per-task runtime overheads typical of software
    speculation (cf. Kulkarni et al. PLDI'07, Cascaval et al. 2008).

    Absolute constants are calibrated, not measured (no Xeon in the
    loop); EXPERIMENTS.md documents the calibration.  What the model
    preserves is the first-order structure: work volume, memory
    boundedness, available parallelism and synchronization. *)

type params = {
  freq_ghz : float;  (** 2.8 *)
  cycles_per_op : float;  (** CPU cycles per abstract task-body op (3) *)
  l1_bytes : int;
  l1_latency : int;
  llc_bytes : int;
  llc_latency : int;
  dram_latency : int;  (** cycles *)
  dram_gbps : float;  (** 60 *)
  stall_overlap : float;  (** fraction of memory stalls not hidden (0.5) *)
  task_overhead_seq : float;
      (** runtime cycles per task, 1-core (300 ≈ 107 ns — the
          speculation/worklist bookkeeping of the referenced software
          systems) *)
  task_overhead_par : float;  (** runtime cycles per task, 10-core (500) *)
  cores : int;  (** 10 *)
}

val default_params : params

type report = {
  seconds_1core : float;
  seconds_10core : float;
  tasks : int;
  ops : int;
  mem_ops : int;
      (** loads + stores retired on the profiled sequential run,
          counted through {!Agp_core.Semantics.hooks} — the model is an
          effect-hook interpretation of the shared stepper *)
  accesses : int;
  l1_hit_rate : float;
  parallel_steps : int;  (** 10-worker makespan in scheduler ticks *)
}

val run : ?params:params -> Agp_apps.App_instance.t -> report
(** Executes the app once sequentially (profiled) and once on the
    10-worker aggressive runtime (for the makespan), on fresh
    instances. *)
