module State = Agp_core.State
module Engine = Agp_core.Engine
module Semantics = Agp_core.Semantics
module App_instance = Agp_apps.App_instance

type params = {
  freq_ghz : float;
  cycles_per_op : float;
  l1_bytes : int;
  l1_latency : int;
  llc_bytes : int;
  llc_latency : int;
  dram_latency : int;
  dram_gbps : float;
  stall_overlap : float;
  task_overhead_seq : float;
  task_overhead_par : float;
  cores : int;
}

let default_params =
  {
    freq_ghz = 2.8;
    cycles_per_op = 3.0;
    l1_bytes = 32 * 1024;
    l1_latency = 4;
    llc_bytes = 25 * 1024 * 1024;
    llc_latency = 32;
    dram_latency = 200;
    dram_gbps = 60.0;
    stall_overlap = 0.5;
    task_overhead_seq = 300.0;
    task_overhead_par = 500.0;
    cores = 10;
  }

type report = {
  seconds_1core : float;
  seconds_10core : float;
  tasks : int;
  ops : int;
  mem_ops : int;
  accesses : int;
  l1_hit_rate : float;
  parallel_steps : int;
}

(* Two-level set-associative-ish cache replay (direct-mapped per level
   is adequate for an average stall estimate). *)
type cache_replay = {
  mutable l1_hits : int;
  mutable llc_hits : int;
  mutable dram : int;
  l1 : int array;
  llc : int array;
}

let replay_access p c addr =
  let line = addr / 64 in
  let l1_slot = line mod (p.l1_bytes / 64) in
  let llc_slot = line mod (p.llc_bytes / 64) in
  if c.l1.(l1_slot) = line then c.l1_hits <- c.l1_hits + 1
  else begin
    c.l1.(l1_slot) <- line;
    if c.llc.(llc_slot) = line then c.llc_hits <- c.llc_hits + 1
    else begin
      c.llc.(llc_slot) <- line;
      c.dram <- c.dram + 1
    end
  end

(* The timing model is an effect-hook interpretation of the shared
   stepper: it watches the operation stream through {!Semantics.hooks}
   (here counting memory operations retired) while the address trace
   for cache replay comes from {!State} tracing — addresses are a
   state-layer concern, not a scheduling one. *)
let mem_counting_hooks counter =
  {
    Semantics.on_event =
      (fun ~tick:_ ~worker:_ _ ev ->
        match ev with
        | Semantics.Executed (Agp_core.Spec.Load _ | Agp_core.Spec.Store _) -> incr counter
        | _ -> ());
  }

let run ?(params = default_params) (app : App_instance.t) =
  let p = params in
  (* --- sequential profiled run: the oracle interpretation --- *)
  let seq = app.App_instance.fresh () in
  State.set_tracing seq.App_instance.state true;
  let mem_ops = ref 0 in
  let seq_report =
    Semantics.run ~initial:seq.App_instance.initial
      (Semantics.with_hooks (Semantics.oracle ()) (mem_counting_hooks mem_ops))
      app.App_instance.spec seq.App_instance.bindings seq.App_instance.state
  in
  let trace = State.drain_trace seq.App_instance.state in
  State.set_tracing seq.App_instance.state false;
  let c =
    {
      l1_hits = 0;
      llc_hits = 0;
      dram = 0;
      l1 = Array.make (p.l1_bytes / 64) (-1);
      llc = Array.make (p.llc_bytes / 64) (-1);
    }
  in
  List.iter
    (fun a ->
      replay_access p c (State.address_of seq.App_instance.state a.State.array_name a.State.index))
    trace;
  let accesses = List.length trace in
  let stats = seq_report.Semantics.stats in
  let ops = stats.Engine.ops_executed in
  let tasks = stats.Engine.committed + stats.Engine.aborted + stats.Engine.retried in
  let stall_cycles =
    float_of_int c.l1_hits *. float_of_int p.l1_latency
    +. float_of_int c.llc_hits *. float_of_int p.llc_latency
    +. float_of_int c.dram
       *. (float_of_int p.dram_latency
          +. (64.0 /. (p.dram_gbps /. p.freq_ghz)) (* line transfer in cycles *))
  in
  (* problem-specific kernel arithmetic at the referenced software's
     per-core throughput *)
  let kernel_cost counts =
    List.fold_left
      (fun acc (name, count) ->
        match List.assoc_opt name app.App_instance.kernel_flops with
        | Some flops ->
            acc +. (float_of_int (count * flops) /. app.App_instance.cpu_flops_per_cycle)
        | None -> acc)
      0.0 counts
  in
  let kernel_cycles = kernel_cost seq_report.Semantics.prim_counts in
  let seq_cycles =
    (float_of_int ops *. p.cycles_per_op)
    +. (stall_cycles *. p.stall_overlap)
    +. kernel_cycles
    +. (float_of_int (tasks * app.App_instance.sw_task_overhead))
  in
  let seconds_1core = seq_cycles /. (p.freq_ghz *. 1.0e9) in
  (* --- 10-core run: the pipelined interpretation gives the makespan --- *)
  let par = app.App_instance.fresh () in
  let par_report =
    Semantics.run ~initial:par.App_instance.initial
      (Semantics.pipelined ~workers:p.cores ())
      app.App_instance.spec par.App_instance.bindings par.App_instance.state
  in
  let par_stats = par_report.Semantics.stats in
  let par_tasks =
    par_stats.Engine.committed + par_stats.Engine.aborted + par_stats.Engine.retried
  in
  let avg_stall_per_op =
    if ops = 0 then 0.0 else stall_cycles *. p.stall_overlap /. float_of_int ops
  in
  let par_kernel_cycles = kernel_cost par_report.Semantics.prim_counts in
  (* each scheduler tick advances every busy core by one op; kernel
     arithmetic spreads across the cores that the dependence structure
     actually keeps busy (measured by the runtime) *)
  let busy = Float.max 1.0 par_report.Semantics.avg_busy in
  let par_cycles =
    (float_of_int par_report.Semantics.steps *. (p.cycles_per_op +. avg_stall_per_op))
    +. (par_kernel_cycles /. Float.min busy (float_of_int p.cores))
    +. (float_of_int par_tasks
       *. (1.7 *. float_of_int app.App_instance.sw_task_overhead)
       /. float_of_int p.cores)
  in
  let seconds_10core = par_cycles /. (p.freq_ghz *. 1.0e9) in
  {
    seconds_1core;
    seconds_10core;
    tasks;
    ops;
    mem_ops = !mem_ops;
    accesses;
    l1_hit_rate =
      (if accesses = 0 then 1.0 else float_of_int c.l1_hits /. float_of_int accesses);
    parallel_steps = par_report.Semantics.steps;
  }
