open Agp_core
module Csr = Agp_graph.Csr
module Sssp = Agp_graph.Sssp

type workload = {
  graph : Csr.t;
  root : int;
}

let default_workload ~seed =
  { graph = Agp_graph.Generator.road ~seed ~width:30 ~height:20; root = 0 }

let workload_of_graph graph root = { graph; root }

let spec_speculative : Spec.t =
  let open Spec in
  {
    spec_name = "spec-sssp";
    task_sets =
      [
        {
          ts_name = "relax";
          ts_order = For_each;
          arity = 2;
          (* payload: [edge_index; base_distance] — propose
             base + weight for the edge head *)
          body =
            [
              Load ("w", "col", Param 0);
              Load ("wt", "weight", Param 0);
              Let ("cand", Binop (Add, Param 1, Var "wt"));
              Alloc ("h", "dist_guard", [ Var "w"; Var "cand" ]);
              Load ("cur", "dist", Var "w");
              (* the adjacency bounds are hoisted above the rendezvous:
                 they do not depend on the rule outcome, so the pipeline
                 prefetches them speculatively and the post-commit tail
                 stays off the global commit chain *)
              Load ("lo", "row_ptr", Var "w");
              Load ("hi", "row_ptr", Binop (Add, Var "w", int 1));
              If
                ( Binop (Lt, Var "cand", Var "cur"),
                  [
                    Await ("ok", "h");
                    If
                      ( Var "ok",
                        [
                          Emit ("commit_dist", [ Var "w"; Var "cand" ]);
                          Store ("dist", Var "w", Var "cand");
                          Push_iter ("relax", Var "lo", Var "hi", "e", [ Var "e"; Var "cand" ]);
                        ],
                        [ Abort ] );
                  ],
                  [ Abort ] );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "dist_guard";
          n_params = 2;
          clauses =
            [
              {
                (* any committed distance to my vertex that is at least
                   as good as my candidate dominates me *)
                on = On_reached ("relax", "commit_dist");
                condition =
                  CBinop
                    (And, CBinop (Eq, CField 0, CParam 0), CBinop (Le, CField 1, CParam 1));
                action = Return_bool false;
              };
            ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = false;
        };
      ];
  }

let make_run (w : workload) =
  let g = w.graph in
  let state = State.create () in
  State.add_int_array state "row_ptr" (Array.copy g.Csr.row_ptr);
  State.add_int_array state "col" (Array.copy g.Csr.col);
  State.add_int_array state "weight" (Array.copy g.Csr.weight);
  let dist = Array.make g.Csr.n Sssp.unreachable in
  dist.(w.root) <- 0;
  State.add_int_array state "dist" dist;
  let initial =
    (* host seeds one relax per out-edge of the root *)
    let lo = g.Csr.row_ptr.(w.root) and hi = g.Csr.row_ptr.(w.root + 1) in
    List.init (hi - lo) (fun i -> ("relax", [ Value.Int (lo + i); Value.Int 0 ]))
  in
  let check () =
    let got = State.int_array state "dist" in
    match Sssp.check_distances g w.root got with
    | Error _ as e -> e
    | Ok () ->
        let reference = Sssp.dijkstra g w.root in
        if got = reference then Ok ()
        else Error "distances pass the certificate but differ from Dijkstra"
  in
  { App_instance.state; bindings = Spec.no_bindings; initial; check }

let speculative w =
  {
    App_instance.app_name = "SPEC-SSSP";
    spec = spec_speculative;
    fresh = (fun () -> make_run w);
    kernel_flops = [];
    fpga_ilp = 8;
    sw_task_overhead = 300;
    cpu_flops_per_cycle = 4.0;
    fpga_mlp = 4;
    graph_source = Some (w.graph, w.root);
  }
