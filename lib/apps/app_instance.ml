type run = {
  state : Agp_core.State.t;
  bindings : Agp_core.Spec.bindings;
  initial : (string * Agp_core.Value.t list) list;
  check : unit -> (unit, string) result;
}

type t = {
  app_name : string;
  spec : Agp_core.Spec.t;
  fresh : unit -> run;
  kernel_flops : (string * int) list;
  fpga_ilp : int;
  sw_task_overhead : int;
  cpu_flops_per_cycle : float;
  fpga_mlp : int;
  graph_source : (Agp_graph.Csr.t * int) option;
}

let run_sequential t =
  let r = t.fresh () in
  let report = Agp_core.Sequential.run ~initial:r.initial t.spec r.bindings r.state in
  (report, r)

let run_runtime ?workers t =
  let r = t.fresh () in
  let report = Agp_core.Runtime.run ~initial:r.initial ?workers t.spec r.bindings r.state in
  (report, r)

let check_both ?workers t =
  (* Both modes always execute and both checks always run, so a double
     fault surfaces as both failure messages rather than only the
     first. *)
  let label mode = Result.map_error (fun e -> mode ^ ": " ^ e) in
  let _, seq = run_sequential t in
  let _, par = run_runtime ?workers t in
  match (label "sequential" (seq.check ()), label "runtime" (par.check ())) with
  | Ok (), Ok () -> Ok ()
  | Error a, Error b -> Error (a ^ "; " ^ b)
  | (Error _ as e), Ok () | Ok (), (Error _ as e) -> e
