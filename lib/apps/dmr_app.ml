open Agp_core
module Mesh = Agp_geometry.Mesh
module Delaunay = Agp_geometry.Delaunay
module Refinement = Agp_geometry.Refinement

type workload = { points : (float * float) array }

let default_workload ~seed = { points = Agp_graph.Generator.points ~seed ~n:250 ~span:100.0 }

let workload_of_points points = { points }

let cavity_signature_width = 16

let cavity_vars = List.init cavity_signature_width (fun i -> Printf.sprintf "c%d" i)

let spec_speculative : Spec.t =
  let open Spec in
  let sig_vars = List.map (fun v -> Var v) ("ov" :: cavity_vars) in
  {
    spec_name = "spec-dmr";
    task_sets =
      [
        {
          ts_name = "refine";
          ts_order = For_each;
          arity = 1;
          (* payload: [spawn_slot]; spawn.(slot) is the triangle id *)
          body =
            [
              Load ("tri", "spawn", Param 0);
              Prim ([ "bad" ], "dmr_check", [ Var "tri" ]);
              If
                ( Var "bad",
                  [
                    Prim ("ov" :: cavity_vars, "dmr_cavity", [ Var "tri" ]);
                    Alloc ("h", "cavity_guard", sig_vars);
                    Await ("ok", "h");
                    If
                      ( Var "ok",
                        [
                          Emit ("commit_cavity", sig_vars);
                          Prim ([ "okc"; "stale"; "start"; "count" ], "dmr_commit", [ Var "tri" ]);
                          If
                            ( Var "okc",
                              [
                                If
                                  ( Binop (Gt, Var "count", int 0),
                                    [
                                      Push_iter
                                        ( "refine",
                                          Var "start",
                                          Binop (Add, Var "start", Var "count"),
                                          "i",
                                          [ Var "i" ] );
                                    ],
                                    [] );
                              ],
                              [ If (Var "stale", [ Retry ], [ Abort ]) ] );
                        ],
                        [ Retry ] );
                  ],
                  [ Abort ] );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "cavity_guard";
          n_params = -1;
          clauses =
            [
              {
                (* an earlier task committing an overlapping cavity (or
                   either side overflowing its signature) invalidates us *)
                on = On_reached ("refine", "commit_cavity");
                condition =
                  CBinop
                    ( And,
                      CEarlier,
                      CBinop
                        ( Or,
                          COverlap (1, 1),
                          CBinop
                            ( Or,
                              CBinop (Eq, CParam 0, CConst true),
                              CBinop (Eq, CField 0, CConst true) ) ) );
                action = Return_bool false;
              };
            ];
          otherwise = true;
          scope = Min_waiting;
          counted = false;
        };
      ];
  }

let make_run (w : workload) =
  let t = Delaunay.triangulate w.points in
  let cfg = Refinement.default_config in
  let state = State.create () in
  let spawn_capacity = 200_000 in
  let spawn = Array.make spawn_capacity (-1) in
  let initial_bad = Refinement.bad_triangles cfg t in
  List.iteri (fun i tri -> spawn.(i) <- tri) initial_bad;
  let cursor = ref (List.length initial_bad) in
  State.add_int_array state "spawn" spawn;
  (* Synthetic triangle-record addresses so the memory system sees the
     irregular walk over the mesh arena: one 8-word record per triangle
     slot (the array is registered last, so indices beyond its nominal
     length still map to unique flat addresses). *)
  State.add_int_array state "tri_data" (Array.make 1 0);
  let touch_tri (ctx : Spec.prim_ctx) tri is_write =
    State.touch ctx.Spec.state "tri_data" (8 * tri) is_write
  in
  (* Per-task cavity stash, keyed by the task's well-order index (stable
     across nothing — a Retry re-executes with the same index and simply
     overwrites its stale entry). *)
  let stash : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  let check_prim ctx args =
    let tri = Value.to_int (List.hd args) in
    touch_tri ctx tri false;
    [ Value.Bool (Refinement.is_bad cfg t tri) ]
  in
  let cavity_prim (ctx : Spec.prim_ctx) args =
    let tri = Value.to_int (List.hd args) in
    let center = Mesh.circumcenter t.Delaunay.mesh tri in
    let cavity =
      match Delaunay.locate t.Delaunay.mesh ~hint:tri center with
      | Some start -> Delaunay.cavity_of t.Delaunay.mesh ~start center
      | None -> [ tri ]
    in
    List.iter (fun c -> touch_tri ctx c false) cavity;
    Hashtbl.replace stash (Index.to_string ctx.Spec.task_index) cavity;
    let overflow = List.length cavity > cavity_signature_width in
    let padded =
      List.init cavity_signature_width (fun i ->
          match List.nth_opt cavity i with
          | Some c -> Value.Int c
          | None -> Value.Int (-1))
    in
    Value.Bool overflow :: padded
  in
  let commit_prim (ctx : Spec.prim_ctx) args =
    let tri = Value.to_int (List.hd args) in
    let key = Index.to_string ctx.Spec.task_index in
    let recorded = Option.value ~default:[] (Hashtbl.find_opt stash key) in
    let fail ~stale = [ Value.Bool false; Value.Bool stale; Value.Int 0; Value.Int 0 ] in
    if not (Refinement.is_bad cfg t tri) then
      (* someone else's cavity consumed or improved our triangle *)
      fail ~stale:false
    else if not (List.for_all (fun c -> Mesh.alive t.Delaunay.mesh c) recorded) then
      (* our footprint went stale while we waited: recompute and retry *)
      fail ~stale:true
    else begin
      match Refinement.refine_one cfg t tri with
      | None -> fail ~stale:false
      | Some step ->
          List.iter (fun c -> touch_tri ctx c true) step.Refinement.killed;
          List.iter (fun c -> touch_tri ctx c true) step.Refinement.created;
          let start = !cursor in
          List.iter
            (fun nb ->
              if !cursor >= spawn_capacity then failwith "dmr: spawn buffer overflow";
              spawn.(!cursor) <- nb;
              State.touch ctx.Spec.state "spawn" !cursor true;
              incr cursor)
            step.Refinement.new_bad;
          [
            Value.Bool true;
            Value.Bool false;
            Value.Int start;
            Value.Int (List.length step.Refinement.new_bad);
          ]
    end
  in
  let bindings : Spec.bindings =
    {
      prims =
        [ ("dmr_check", check_prim); ("dmr_cavity", cavity_prim); ("dmr_commit", commit_prim) ];
      expected = [];
    }
  in
  let initial = List.init (List.length initial_bad) (fun i -> ("refine", [ Value.Int i ])) in
  let check () =
    match Mesh.validate t.Delaunay.mesh with
    | Error e -> Error ("mesh invalid: " ^ e)
    | Ok () -> begin
        match Refinement.bad_triangles cfg t with
        | [] -> Ok ()
        | bad -> Error (Printf.sprintf "%d bad triangles remain" (List.length bad))
      end
  in
  { App_instance.state; bindings; initial; check }

let speculative w =
  {
    App_instance.app_name = "SPEC-DMR";
    spec = spec_speculative;
    fresh = (fun () -> make_run w);
    (* geometric predicates: in-circle tests over the cavity walk and
       the full retriangulation with adjacency rebuild *)
    kernel_flops = [ ("dmr_check", 200); ("dmr_cavity", 4000); ("dmr_commit", 12000) ];
    fpga_ilp = 8;
    sw_task_overhead = 400;
    cpu_flops_per_cycle = 4.0;
    fpga_mlp = 4;
    graph_source = None;
  }
