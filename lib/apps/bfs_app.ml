open Agp_core
module Csr = Agp_graph.Csr
module Bfs = Agp_graph.Bfs

type workload = {
  graph : Csr.t;
  root : int;
}

let default_workload ~seed =
  { graph = Agp_graph.Generator.road ~seed ~width:40 ~height:25; root = 0 }

let workload_of_graph graph root = { graph; root }

let inf = Bfs.infinity_level

(* Shared [visit] body: re-validate that our level is still current
   (squashes flooded duplicates), then spawn one update per out-edge.
   Payload: [vertex; assign_level] — neighbours of [vertex] get
   [assign_level]; [vertex] itself sits at [assign_level - 1]. *)
let visit_expand =
  let open Spec in
  [
    Load ("cur", "level", Param 0);
    If
      ( Binop (Eq, Var "cur", Binop (Sub, Param 1, int 1)),
        [
          Load ("lo", "row_ptr", Param 0);
          Load ("hi", "row_ptr", Binop (Add, Param 0, int 1));
          Push_iter ("update", Var "lo", Var "hi", "e", [ Var "e"; Param 1 ]);
        ],
        [ Abort ] );
  ]

(* SPEC-BFS: the update guards its level write with a speculative rule
   allocated BEFORE the load (closing the missed-event window), exactly
   as §4.2.2 prescribes. *)
let spec_speculative : Spec.t =
  let open Spec in
  {
    spec_name = "spec-bfs";
    task_sets =
      [
        { ts_name = "visit"; ts_order = For_each; arity = 2; body = visit_expand };
        {
          ts_name = "update";
          ts_order = For_all;
          arity = 2;
          (* payload: [edge_index; assign_level] *)
          body =
            [
              Load ("w", "col", Param 0);
              Alloc ("h", "level_guard", [ Var "w" ]);
              Load ("cur", "level", Var "w");
              If
                ( Binop (Eq, Var "cur", int inf),
                  [
                    Await ("ok", "h");
                    If
                      ( Var "ok",
                        [
                          Emit ("commit_level", [ Var "w" ]);
                          Store ("level", Var "w", Param 1);
                          Push ("visit", [ Var "w"; Binop (Add, Param 1, int 1) ]);
                        ],
                        [ Abort ] );
                  ],
                  [ Abort ] );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "level_guard";
          n_params = 1;
          clauses =
            [
              {
                on = On_reached ("update", "commit_level");
                condition = CBinop (And, CEarlier, CBinop (Eq, CField 0, CParam 0));
                action = Return_bool false;
              };
            ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = false;
        };
      ];
  }

(* COOR-BFS: visits rendezvous immediately and are released in level
   waves by the minimum-task broadcast; updates run unguarded because
   same-level writes are benign (they write identical values). *)
let spec_coordinative : Spec.t =
  let open Spec in
  {
    spec_name = "coor-bfs";
    task_sets =
      [
        {
          ts_name = "visit";
          ts_order = For_each;
          arity = 2;
          body =
            [ Alloc ("h", "level_release", [ Param 1 ]); Await ("ok", "h") ] @ visit_expand;
        };
        {
          ts_name = "update";
          ts_order = For_all;
          arity = 2;
          body =
            [
              Load ("w", "col", Param 0);
              Load ("cur", "level", Var "w");
              If
                ( Binop (Eq, Var "cur", int inf),
                  [
                    Store ("level", Var "w", Param 1);
                    Push ("visit", [ Var "w"; Binop (Add, Param 1, int 1) ]);
                  ],
                  [ Abort ] );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "level_release";
          n_params = 1;
          clauses =
            [
              {
                (* release when the minimum task's level reaches ours;
                   both task sets carry the level in payload slot 1 *)
                on = On_min_changed;
                condition = CBinop (Ge, CField 1, CParam 0);
                action = Return_bool true;
              };
            ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = false;
        };
      ];
  }

let make_run (w : workload) =
  let g = w.graph in
  let state = State.create () in
  State.add_int_array state "row_ptr" (Array.copy g.Csr.row_ptr);
  State.add_int_array state "col" (Array.copy g.Csr.col);
  let level = Array.make g.Csr.n inf in
  level.(w.root) <- 0;
  State.add_int_array state "level" level;
  let check () =
    let got = State.int_array state "level" in
    Bfs.check_levels g w.root got
  in
  {
    App_instance.state;
    bindings = Spec.no_bindings;
    initial = [ ("visit", [ Value.Int w.root; Value.Int 1 ]) ];
    check;
  }

let speculative w =
  {
    App_instance.app_name = "SPEC-BFS";
    spec = spec_speculative;
    fresh = (fun () -> make_run w);
    kernel_flops = [];
    fpga_ilp = 8;
    sw_task_overhead = 60;
    cpu_flops_per_cycle = 4.0;
    fpga_mlp = 4;
    graph_source = Some (w.graph, w.root);
  }

let coordinative w =
  {
    App_instance.app_name = "COOR-BFS";
    spec = spec_coordinative;
    fresh = (fun () -> make_run w);
    kernel_flops = [];
    fpga_ilp = 8;
    sw_task_overhead = 30;
    cpu_flops_per_cycle = 4.0;
    fpga_mlp = 4;
    graph_source = Some (w.graph, w.root);
  }
