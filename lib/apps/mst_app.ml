open Agp_core
module Csr = Agp_graph.Csr
module Mst = Agp_graph.Mst
module Union_find = Agp_util.Union_find

type workload = { graph : Csr.t }

let default_workload ~seed = { graph = Agp_graph.Generator.random ~seed ~n:400 ~m:1200 }

let workload_of_graph graph = { graph }

let spec_speculative : Spec.t =
  let open Spec in
  {
    spec_name = "spec-mst";
    task_sets =
      [
        {
          ts_name = "addedge";
          ts_order = For_each;
          arity = 1;
          (* payload: [rank] into the weight-sorted edge arrays *)
          body =
            [
              Load ("u", "ea", Param 0);
              Load ("v", "eb", Param 0);
              Alloc ("h", "edge_guard", [ Var "u"; Var "v" ]);
              Prim ([ "ru" ], "mst_find", [ Var "u" ]);
              Prim ([ "rv" ], "mst_find", [ Var "v" ]);
              If
                ( Binop (Ne, Var "ru", Var "rv"),
                  [
                    Await ("ok", "h");
                    If
                      ( Var "ok",
                        [
                          Emit ("commit_edge", [ Var "u"; Var "v" ]);
                          Prim ([ "added" ], "mst_union", [ Var "u"; Var "v" ]);
                          If (Var "added", [ Store ("mst_flag", Param 0, int 1) ], []);
                        ],
                        [ Retry ] );
                  ],
                  [ Abort ] );
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "edge_guard";
          n_params = 2;
          clauses =
            [
              {
                (* an earlier committing edge touching either of my
                   endpoints invalidates my root lookup *)
                on = On_reached ("addedge", "commit_edge");
                condition =
                  CBinop
                    ( And,
                      CEarlier,
                      CBinop
                        ( Or,
                          CBinop
                            (Or, CBinop (Eq, CField 0, CParam 0), CBinop (Eq, CField 0, CParam 1)),
                          CBinop
                            (Or, CBinop (Eq, CField 1, CParam 0), CBinop (Eq, CField 1, CParam 1))
                        ) );
                action = Return_bool false;
              };
            ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = false;
        };
      ];
  }

let make_run (w : workload) =
  let g = w.graph in
  let edges = Mst.sorted_edges g in
  let n_edges = Array.length edges in
  let state = State.create () in
  State.add_int_array state "ea" (Array.map (fun (u, _, _) -> u) edges);
  State.add_int_array state "eb" (Array.map (fun (_, v, _) -> v) edges);
  State.add_int_array state "ew" (Array.map (fun (_, _, wt) -> wt) edges);
  State.add_int_array state "uf_parent" (Array.init g.Csr.n (fun i -> i));
  State.add_int_array state "mst_flag" (Array.make (max n_edges 1) 0);
  (* The union-find forest is a side structure owned by the prims; the
     Σ array "uf_parent" exists to give the pointer chase realistic
     addresses via [touch]. *)
  let uf = Union_find.create g.Csr.n in
  let find_prim (ctx : Spec.prim_ctx) args =
    let x = Value.to_int (List.hd args) in
    let root, trace = Union_find.find_trace uf x in
    List.iter (fun slot -> State.touch ctx.Spec.state "uf_parent" slot false) trace;
    [ Value.Int root ]
  in
  let union_prim (ctx : Spec.prim_ctx) args =
    match List.map Value.to_int args with
    | [ u; v ] ->
        let added = Union_find.union uf u v in
        State.touch ctx.Spec.state "uf_parent" u true;
        State.touch ctx.Spec.state "uf_parent" v true;
        [ Value.Bool added ]
    | _ -> invalid_arg "mst_union: bad arity"
  in
  let bindings : Spec.bindings =
    { prims = [ ("mst_find", find_prim); ("mst_union", union_prim) ]; expected = [] }
  in
  let initial = List.init n_edges (fun r -> ("addedge", [ Value.Int r ])) in
  let check () =
    let flags = State.int_array state "mst_flag" in
    let chosen = ref [] in
    Array.iteri (fun r f -> if f = 1 then chosen := edges.(r) :: !chosen) flags;
    let weight = List.fold_left (fun acc (_, _, wt) -> acc + wt) 0 !chosen in
    let reference = Mst.kruskal g in
    Mst.check g
      { Mst.edges = List.rev !chosen; weight; components = reference.Mst.components }
  in
  { App_instance.state; bindings; initial; check }

let speculative w =
  {
    App_instance.app_name = "SPEC-MST";
    spec = spec_speculative;
    fresh = (fun () -> make_run w);
    (* pointer-chase bookkeeping around each find/union *)
    kernel_flops = [ ("mst_find", 24); ("mst_union", 16) ];
    fpga_ilp = 8;
    sw_task_overhead = 400;
    cpu_flops_per_cycle = 4.0;
    fpga_mlp = 4;
    (* MST has no distinguished root; 0 serves the graph-shaped baselines *)
    graph_source = Some (w.graph, 0);
  }
