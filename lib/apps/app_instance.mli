(** Uniform packaging of a benchmark application: its specification,
    plus a factory producing fresh runnable instances (program state,
    execution-time bindings, initial host-injected tasks, and a
    correctness check against the substrate reference). *)

type run = {
  state : Agp_core.State.t;
  bindings : Agp_core.Spec.bindings;
  initial : (string * Agp_core.Value.t list) list;
  check : unit -> (unit, string) result;
      (** validate the final state (and any side structures captured by
          the bindings) against the substrate's reference answer *)
}

type t = {
  app_name : string;  (** e.g. ["SPEC-BFS"] *)
  spec : Agp_core.Spec.t;
  fresh : unit -> run;
      (** a new, independent instance of the same workload (bindings and
          side structures are not shared across runs) *)
  kernel_flops : (string * int) list;
      (** arithmetic work per [Prim] invocation, used by both platform
          models: the FPGA charges [flops / fpga_ilp] pipeline cycles,
          the CPU charges [flops / 4] core cycles (SIMD+OoO) *)
  fpga_ilp : int;
      (** spatial parallelism of the synthesized kernel datapath: 8 for
          irregular pointer kernels, ~48 for systolic dense blocks *)
  sw_task_overhead : int;
      (** per-task scheduling/bookkeeping cycles of the referenced
          software system (lean PBFS-style worklists ~30-60; heavyweight
          speculation ~300-400) — the 10-core model scales it by 1.7 for
          contention *)
  cpu_flops_per_cycle : float;
      (** kernel arithmetic throughput of the referenced software
          per core: 4.0 for SIMD-friendly code, ~1.5 for the scalar C
          of BOTS sparselu *)
  fpga_mlp : int;
      (** outstanding memory requests of a kernel's access burst: 4 for
          pointer-chasing kernels, ~32 for streaming block fetches *)
  graph_source : (Agp_graph.Csr.t * int) option;
      (** the CSR graph and root the workload was built from, when the
          substrate is a graph — baselines that model kernel iteration
          over a graph (the AOCL-BFS round model of Table 1) read it;
          [None] for mesh/matrix substrates *)
}

val run_sequential : t -> Agp_core.Sequential.report * run
(** Fresh instance, sequential execution, no check.  This and
    {!run_runtime} are the primitive per-substrate hooks; new call
    sites should go through the uniform [Agp_backend.Backend] registry,
    which wraps them. *)

val run_runtime : ?workers:int -> t -> Agp_core.Runtime.report * run
(** Fresh instance, aggressive runtime execution (see
    {!run_sequential} on preferring [Agp_backend.Backend]). *)

val check_both : ?workers:int -> t -> (unit, string) result
(** Run sequentially and aggressively on fresh instances and apply both
    checks; errors are labelled with the failing mode.  Both executions
    and both checks always run — a double fault reports both modes,
    joined with ["; "], instead of hiding the second behind the
    first. *)
