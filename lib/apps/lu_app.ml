open Agp_core
module Block_matrix = Agp_sparse.Block_matrix
module Sparse_lu = Agp_sparse.Sparse_lu
module Dense_block = Agp_sparse.Dense_block

type workload = { matrix : Block_matrix.t }

let default_workload ~seed =
  { matrix = Block_matrix.random_sparse ~seed ~nb:8 ~bs:8 ~density:0.3 }

let sized_workload ~seed ~nb ~bs ~density =
  { matrix = Block_matrix.random_sparse ~seed ~nb ~bs ~density }

let spec_coordinative : Spec.t =
  let open Spec in
  {
    spec_name = "coor-lu";
    task_sets =
      [
        {
          ts_name = "lutask";
          ts_order = For_each;
          arity = 13;
          body =
            [
              (* rank + the three read blocks form the rule parameters *)
              Alloc
                ( "h",
                  "deps_ready",
                  [ Param 4; Param 5; Param 6; Param 7; Param 8; Param 9; Param 10 ] );
              Await ("ok", "h");
              Prim ([], "lu_kernel", [ Param 0; Param 1; Param 2; Param 3 ]);
              Emit ("block_done", [ Param 11; Param 12 ]);
            ];
        };
      ];
    rules =
      [
        {
          rule_name = "deps_ready";
          n_params = 7;
          clauses =
            [
              {
                (* an earlier task finished writing one of my read
                   blocks: fields (wi, wj) against my three read pairs *)
                on = On_reached ("lutask", "block_done");
                condition =
                  CBinop
                    ( And,
                      CEarlier,
                      CBinop
                        ( Or,
                          CBinop
                            ( And,
                              CBinop (Eq, CField 0, CParam 1),
                              CBinop (Eq, CField 1, CParam 2) ),
                          CBinop
                            ( Or,
                              CBinop
                                ( And,
                                  CBinop (Eq, CField 0, CParam 3),
                                  CBinop (Eq, CField 1, CParam 4) ),
                              CBinop
                                ( And,
                                  CBinop (Eq, CField 0, CParam 5),
                                  CBinop (Eq, CField 1, CParam 6) ) ) ) );
                action = Decrement;
              };
            ];
          otherwise = true;
          scope = Min_uncommitted;
          counted = true;
        };
      ];
  }

let kind_of_task = function
  | Sparse_lu.Lu0 _ -> 0
  | Sparse_lu.Fwd _ -> 1
  | Sparse_lu.Bdiv _ -> 2
  | Sparse_lu.Bmod _ -> 3

let fields_of_task task =
  (* (kind, k, i, j), read blocks (padded) and written block *)
  match task with
  | Sparse_lu.Lu0 k -> ((0, k, -1, -1), [ (k, k) ], (k, k))
  | Sparse_lu.Fwd (k, j) -> ((1, k, -1, j), [ (k, k); (k, j) ], (k, j))
  | Sparse_lu.Bdiv (i, k) -> ((2, k, i, -1), [ (k, k); (i, k) ], (i, k))
  | Sparse_lu.Bmod (i, j, k) -> ((3, k, i, j), [ (i, k); (k, j); (i, j) ], (i, j))

let payload_of_task rank task =
  let (kind, k, i, j), reads, (wi, wj) = fields_of_task task in
  ignore kind;
  let padded_reads =
    let r = reads @ List.init (3 - List.length reads) (fun _ -> (-1, -1)) in
    List.concat_map (fun (a, b) -> [ a; b ]) r
  in
  List.map
    (fun n -> Value.Int n)
    ([ kind_of_task task; k; i; j; rank ] @ padded_reads @ [ wi; wj ])

let make_run (w : workload) =
  let original = w.matrix in
  let m = Block_matrix.copy original in
  let nb = m.Block_matrix.nb and bs = m.Block_matrix.bs in
  let tasks = Sparse_lu.tasks m in
  let ranked = List.mapi (fun r task -> (r, task)) tasks in
  let state = State.create () in
  (* Σ mirror of the block grid for realistic addresses: one word per
     matrix element, touched block-wise by the kernel prim. *)
  State.add_float_array state "blocks" (Array.make (nb * nb * bs * bs) 0.0);
  let touch_block (ctx : Spec.prim_ctx) bi bj is_write =
    (* charge one access per cache-line-sized chunk of the block *)
    let base = ((bi * nb) + bj) * bs * bs in
    let step = 8 in
    let k = ref 0 in
    while !k < bs * bs do
      State.touch ctx.Spec.state "blocks" (base + !k) is_write;
      k := !k + step
    done
  in
  let kernel_prim (ctx : Spec.prim_ctx) args =
    match List.map Value.to_int args with
    | [ kind; k; i; j ] ->
        let task =
          match kind with
          | 0 -> Sparse_lu.Lu0 k
          | 1 -> Sparse_lu.Fwd (k, j)
          | 2 -> Sparse_lu.Bdiv (i, k)
          | 3 -> Sparse_lu.Bmod (i, j, k)
          | _ -> invalid_arg "lu_kernel: bad kind"
        in
        let _, reads, (wi, wj) = fields_of_task task in
        List.iter (fun (bi, bj) -> if bi >= 0 then touch_block ctx bi bj false) reads;
        Sparse_lu.run_task m task;
        touch_block ctx wi wj true;
        []
    | _ -> invalid_arg "lu_kernel: bad arity"
  in
  (* Expected dependence counts from the static task list: for params
     [rank; r0i; r0j; r1i; r1j; r2i; r2j], the number of earlier tasks
     writing one of the read blocks. *)
  let expected params =
    match List.map Value.to_int params with
    | rank :: pairs ->
        let reads =
          let rec group = function
            | a :: b :: rest -> (a, b) :: group rest
            | _ -> []
          in
          List.filter (fun (a, _) -> a >= 0) (group pairs)
        in
        List.length
          (List.filter
             (fun (r, task) ->
               r < rank
               &&
               let _, _, write = fields_of_task task in
               List.mem write reads)
             ranked)
    | [] -> invalid_arg "deps_ready: no params"
  in
  let bindings : Spec.bindings =
    { prims = [ ("lu_kernel", kernel_prim) ]; expected = [ ("deps_ready", expected) ] }
  in
  let initial = List.map (fun (r, task) -> ("lutask", payload_of_task r task)) ranked in
  let check () =
    (* full reconstruction is O(nb³·bs³); sample for large matrices *)
    let r =
      if nb <= 8 then Sparse_lu.residual ~original ~factored:m
      else Sparse_lu.sampled_residual ~seed:7 ~samples:32 ~original ~factored:m
    in
    if r < 1e-7 then Ok () else Error (Printf.sprintf "LU residual too large: %g" r)
  in
  { App_instance.state; bindings; initial; check }

let coordinative w =
  let bs = w.matrix.Block_matrix.bs in
  {
    App_instance.app_name = "COOR-LU";
    spec = spec_coordinative;
    fresh = (fun () -> make_run w);
    (* dense block kernels: ~2·bs³ fused multiply-adds (bmod bound),
       mapped onto a systolic array retiring ~48 MACs per cycle *)
    kernel_flops = [ ("lu_kernel", 2 * bs * bs * bs) ];
    fpga_ilp = 48;
    sw_task_overhead = 200;
    cpu_flops_per_cycle = 4.0;
    fpga_mlp = 32;
    graph_source = None;
  }
