(** Synthetic graph workload generators.

    The paper evaluates BFS/SSSP on the DIMACS USA road network and the
    other kernels on their original inputs.  These generators produce
    laptop-scale graphs with the structural properties that drive the
    published results (see DESIGN.md, substitution table). *)

val road : seed:int -> width:int -> height:int -> Csr.t
(** Planar road-network stand-in: a [width] x [height] grid where each
    node connects to its right/down neighbours, a fraction of diagonal
    shortcuts, and a small fraction of deleted edges (keeping the grid
    connected).  High diameter, degree 2-4, weights 1-10 — the regime in
    which level-synchronized BFS pays one round per level. *)

val grid : seed:int -> width:int -> height:int -> Csr.t
(** Paper-scale road-network stand-in: the full [width] x [height]
    grid (degree <= 4, diameter [width+height-2], symmetric weights
    1-10) assembled directly into CSR arrays — no intermediate edge
    list, so multi-million-node graphs build in O(n) words.  Used by
    the [large]/[huge] workload scales. *)

val random : seed:int -> n:int -> m:int -> Csr.t
(** Erdős–Rényi-style multigraph-free random graph with [m] undirected
    edges and weights 1-100.  The whole graph is always connected via a
    spanning backbone. *)

val rmat : seed:int -> scale:int -> edge_factor:int -> Csr.t
(** R-MAT power-law graph with [2^scale] vertices and
    [edge_factor * 2^scale] undirected edges (a=0.57 b=0.19 c=0.19),
    connected via a spanning backbone; weights 1-100. *)

val points : seed:int -> n:int -> span:float -> (float * float) array
(** [n] uniformly random 2-D points in [\[0,span\)]² for the DMR
    workload. *)
