module Rng = Agp_util.Rng

let road ~seed ~width ~height =
  let rng = Rng.create seed in
  let n = width * height in
  let id x y = (y * width) + x in
  let edges = ref [] in
  let add u v w = edges := (u, v, w) :: !edges in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let w () = Rng.int_in rng 1 10 in
      (* Keep the leftmost column and bottom row intact so the grid stays
         connected even when other edges are dropped. *)
      if x + 1 < width && (y = 0 || not (Rng.chance rng 0.08)) then
        add (id x y) (id (x + 1) y) (w ());
      if y + 1 < height && (x = 0 || not (Rng.chance rng 0.08)) then
        add (id x y) (id x (y + 1)) (w ());
      if x + 1 < width && y + 1 < height && Rng.chance rng 0.05 then
        add (id x y) (id (x + 1) (y + 1)) (Rng.int_in rng 2 14)
    done
  done;
  Csr.of_edges ~n !edges

(* Paper-scale road-network stand-in: a full 2-D grid (degree <= 4,
   diameter width+height-2), built straight into CSR arrays — no edge
   lists, so multi-million-node graphs materialize in O(n) words.
   Weights are drawn once per undirected edge, keeping the graph
   symmetric like {!road}. *)
let grid ~seed ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Generator.grid: empty grid";
  let rng = Rng.create seed in
  let n = width * height in
  let id x y = (y * width) + x in
  (* one weight per undirected edge: hw for (x,y)-(x+1,y), vw for
     (x,y)-(x,y+1) *)
  let hw = Array.make (max 1 (n - height)) 0 in
  let vw = Array.make (max 1 (n - width)) 0 in
  for i = 0 to Array.length hw - 1 do
    hw.(i) <- Rng.int_in rng 1 10
  done;
  for i = 0 to Array.length vw - 1 do
    vw.(i) <- Rng.int_in rng 1 10
  done;
  let h_edge x y = hw.((y * (width - 1)) + x) in
  let v_edge x y = vw.((y * width) + x) in
  let row_ptr = Array.make (n + 1) 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let d =
        (if x > 0 then 1 else 0)
        + (if x + 1 < width then 1 else 0)
        + (if y > 0 then 1 else 0)
        + if y + 1 < height then 1 else 0
      in
      row_ptr.(id x y + 1) <- d
    done
  done;
  for v = 0 to n - 1 do
    row_ptr.(v + 1) <- row_ptr.(v + 1) + row_ptr.(v)
  done;
  let m = row_ptr.(n) in
  let col = Array.make (max m 1) 0 in
  let weight = Array.make (max m 1) 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let v = id x y in
      let slot = ref row_ptr.(v) in
      let put dst w =
        col.(!slot) <- dst;
        weight.(!slot) <- w;
        incr slot
      in
      (* ascending target ids, matching Csr.of_edges determinism *)
      if y > 0 then put (id x (y - 1)) (v_edge x (y - 1));
      if x > 0 then put (id (x - 1) y) (h_edge (x - 1) y);
      if x + 1 < width then put (id (x + 1) y) (h_edge x y);
      if y + 1 < height then put (id x (y + 1)) (v_edge x y)
    done
  done;
  { Csr.n; m; row_ptr; col; weight }

let spanning_backbone rng n =
  (* A random spanning tree: connect each vertex i>0 to a random earlier
     vertex, guaranteeing connectivity. *)
  let edges = ref [] in
  for v = 1 to n - 1 do
    let u = Rng.int rng v in
    edges := (u, v, Rng.int_in rng 1 100) :: !edges
  done;
  !edges

let dedup_edges n edges =
  let seen = Hashtbl.create (List.length edges) in
  List.filter
    (fun (u, v, _) ->
      let key = (min u v * n) + max u v in
      if u = v || Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    edges

let random ~seed ~n ~m =
  let rng = Rng.create seed in
  let backbone = spanning_backbone rng n in
  let extra = ref [] in
  let want = max 0 (m - List.length backbone) in
  (* Oversample then dedup; good enough for sparse graphs. *)
  for _ = 1 to want * 2 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then extra := (u, v, Rng.int_in rng 1 100) :: !extra
  done;
  let all = dedup_edges n (backbone @ !extra) in
  let truncated =
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | e :: rest -> e :: take (k - 1) rest
    in
    take m all
  in
  Csr.of_edges ~n truncated

let rmat ~seed ~scale ~edge_factor =
  let rng = Rng.create seed in
  let n = 1 lsl scale in
  let target = edge_factor * n in
  let a = 0.57 and b = 0.19 and c = 0.19 in
  let sample () =
    let u = ref 0 and v = ref 0 in
    for bit = scale - 1 downto 0 do
      let r = Rng.float rng 1.0 in
      if r < a then ()
      else if r < a +. b then v := !v lor (1 lsl bit)
      else if r < a +. b +. c then u := !u lor (1 lsl bit)
      else begin
        u := !u lor (1 lsl bit);
        v := !v lor (1 lsl bit)
      end
    done;
    (!u, !v)
  in
  let backbone = spanning_backbone rng n in
  let extra = ref [] in
  for _ = 1 to target * 2 do
    let u, v = sample () in
    if u <> v then extra := (u, v, Rng.int_in rng 1 100) :: !extra
  done;
  let all = dedup_edges n (backbone @ !extra) in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: rest -> e :: take (k - 1) rest
  in
  Csr.of_edges ~n (take target all)

let points ~seed ~n ~span =
  let rng = Rng.create seed in
  Array.init n (fun _ -> (Rng.float rng span, Rng.float rng span))
