module App_instance = Agp_apps.App_instance
module Config = Agp_hw.Config
module Accelerator = Agp_hw.Accelerator
module Cpu_model = Agp_baseline.Cpu_model
module Opencl_model = Agp_baseline.Opencl_model
module Engine = Agp_core.Engine
module Semantics = Agp_core.Semantics

type capabilities = {
  timed : bool;
  parallel : bool;
  obs_report : bool;
  validates : bool;
}

type native =
  | Stepper of Semantics.report
  | Simulated of Accelerator.report
  | Cpu of Cpu_model.report
  | Opencl of Opencl_model.report

type run_result = {
  backend_name : string;
  app_name : string;
  check : (unit, string) result;
  seconds : float option;
  tasks_run : int option;
  engine_stats : Engine.stats option;
  obs : Agp_obs.Report.t option;
  native : native;
  final : App_instance.run option;
}

type t = {
  name : string;
  summary : string;
  capabilities : capabilities;
  supports : App_instance.t -> (unit, string) result;
  interp : Semantics.interpretation option;
  exec : obs:bool -> App_instance.t -> run_result;
}

exception Unsupported of { backend : string; app : string; reason : string }

let () =
  Printexc.register_printer (function
    | Unsupported { backend; app; reason } ->
        Some (Printf.sprintf "Agp_backend.Backend.Unsupported(%s on %s: %s)" app backend reason)
    | _ -> None)

let run ?(obs = false) ?request_id b (app : App_instance.t) =
  match b.supports app with
  | Error reason ->
      raise (Unsupported { backend = b.name; app = app.App_instance.app_name; reason })
  | Ok () -> begin
      let res = b.exec ~obs app in
      (* serve stamps the originating request id into the report meta so
         the archived artifact joins against trace spans and log lines *)
      match request_id with
      | None -> res
      | Some id ->
          {
            res with
            obs =
              Option.map
                (fun (r : Agp_obs.Report.t) ->
                  {
                    r with
                    Agp_obs.Report.meta =
                      r.Agp_obs.Report.meta @ [ ("request_id", Agp_obs.Json.String id) ];
                  })
                res.obs;
          }
    end

let supports_all (_ : App_instance.t) = Ok ()

let outcomes (s : Engine.stats) = s.Engine.committed + s.Engine.aborted + s.Engine.retried

(* --- the execution paths --- *)

(* A stepper backend is an interpretation record lifted into the
   registry: execution is always [Semantics.run] on a fresh instance —
   the record is the entire substrate definition.  The conformance
   suite exercises this with a throwaway counting interpretation to
   keep the claim honest. *)
let of_interpretation ~name ~summary
    ?(capabilities =
      { timed = false; parallel = true; obs_report = false; validates = true }) interp =
  {
    name;
    summary;
    capabilities;
    supports = supports_all;
    interp = Some interp;
    exec =
      (fun ~obs:_ app ->
        let r = app.App_instance.fresh () in
        let report =
          Semantics.run ~initial:r.App_instance.initial interp app.App_instance.spec
            r.App_instance.bindings r.App_instance.state
        in
        {
          backend_name = name;
          app_name = app.App_instance.app_name;
          check = r.App_instance.check ();
          seconds = None;
          tasks_run = Some report.Semantics.tasks_run;
          engine_stats = Some report.Semantics.stats;
          obs = None;
          native = Stepper report;
          final = Some r;
        });
  }

let sequential =
  of_interpretation ~name:"sequential"
    ~summary:
      "in-order oracle (Definition 4.3) — the semantics every other backend is judged against"
    ~capabilities:{ timed = false; parallel = false; obs_report = false; validates = true }
    (Semantics.oracle ())

let default_workers = 8

let runtime ?(workers = default_workers) ?max_steps () =
  let name =
    if workers = default_workers then "runtime" else Printf.sprintf "runtime:%d" workers
  in
  of_interpretation ~name
    ~summary:
      (Printf.sprintf "aggressive software runtime (§4.4), %d abstract workers" workers)
    (Semantics.pipelined ~workers ?max_steps ())

let parallel ?domains () =
  let name =
    match domains with
    | None -> "parallel"
    | Some n -> Printf.sprintf "parallel:%d" n
  in
  of_interpretation ~name
    ~summary:"genuinely multicore OCaml-5-domains runtime (§4.4's pthread option)"
    (Semantics.multicore ?domains ())

let with_max_steps b n =
  match b.interp with
  | Some i -> begin
      match i.Semantics.policy with
      | Semantics.Workers { workers; max_steps = _ } ->
          let interp = { i with Semantics.policy = Semantics.Workers { workers; max_steps = n } } in
          Ok (of_interpretation ~name:b.name ~summary:b.summary ~capabilities:b.capabilities interp)
      | Semantics.Min_first _ | Semantics.Domains _ ->
          Error (Printf.sprintf "backend %s has no step budget (not a worker-pool interpretation)" b.name)
    end
  | None ->
      Error (Printf.sprintf "backend %s has no step budget (not a stepper interpretation)" b.name)

let derive_config (app : App_instance.t) (base : Config.t) =
  {
    base with
    Config.mlp = app.App_instance.fpga_mlp;
    Config.prim_latency =
      List.map
        (fun (name, flops) -> (name, max 2 (flops / app.App_instance.fpga_ilp)))
        app.App_instance.kernel_flops;
  }

(* Event capture for obs reports is ring-bounded so paper-scale runs
   (millions of tasks) can stay observable without holding the whole
   event stream; lifecycle summaries tolerate a truncated prefix. *)
let obs_ring_capacity = 262_144

let simulator ?(engine = Accelerator.Compiled) ?(config = Config.default) ?(auto_size = true) ()
    =
  let name =
    match engine with
    | Accelerator.Compiled -> "simulator"
    | Accelerator.Legacy -> "simulator:classic"
  in
  let summary =
    match engine with
    | Accelerator.Compiled ->
        "cycle-level model of the synthesized accelerator (Fig. 7), compiled op-array engine"
    | Accelerator.Legacy ->
        "cycle-level model of the synthesized accelerator, legacy tree-walking engine"
  in
  {
    name;
    summary;
    capabilities = { timed = true; parallel = true; obs_report = true; validates = true };
    supports = supports_all;
    interp = None;
    exec =
      (fun ~obs app ->
        let config = derive_config app config in
        let r = app.App_instance.fresh () in
        let sink =
          if obs then Agp_obs.Sink.ring ~capacity:obs_ring_capacity else Agp_obs.Sink.null
        in
        let timeline = if obs then Some (Agp_obs.Timeline.create ~interval:256 ()) else None in
        let report =
          Accelerator.run ~engine ~config ~auto_size ~sink ?timeline
            ~spec:app.App_instance.spec ~bindings:r.App_instance.bindings
            ~state:r.App_instance.state ~initial:r.App_instance.initial ()
        in
        let obs_doc =
          if obs then
            let events = Agp_obs.Sink.events sink in
            Some
              (Accelerator.obs_report ~app:app.App_instance.app_name ~events ?timeline ~config
                 report)
          else None
        in
        {
          backend_name = name;
          app_name = app.App_instance.app_name;
          check = r.App_instance.check ();
          seconds = Some report.Accelerator.seconds;
          tasks_run = Some (outcomes report.Accelerator.engine_stats);
          engine_stats = Some report.Accelerator.engine_stats;
          obs = obs_doc;
          native = Simulated report;
          final = Some r;
        });
  }

let simulator_classic ?config ?auto_size () =
  simulator ~engine:Accelerator.Legacy ?config ?auto_size ()

let cpu_backend which =
  let name, summary, is_parallel =
    match which with
    | `One -> ("cpu-1core", "Xeon 1-core timing model (§6.3): profiled sequential replay", false)
    | `Ten ->
        ("cpu-10core", "Xeon 10-core timing model (§6.3): aggressive-runtime makespan", true)
  in
  {
    name;
    summary;
    capabilities = { timed = true; parallel = is_parallel; obs_report = false; validates = false };
    supports = supports_all;
    interp = None;
    exec =
      (fun ~obs:_ app ->
        let r = Cpu_model.run app in
        let seconds =
          match which with
          | `One -> r.Cpu_model.seconds_1core
          | `Ten -> r.Cpu_model.seconds_10core
        in
        {
          backend_name = name;
          app_name = app.App_instance.app_name;
          check = Ok ();
          seconds = Some seconds;
          tasks_run = Some r.Cpu_model.tasks;
          engine_stats = None;
          obs = None;
          native = Cpu r;
          final = None;
        });
  }

let cpu_1core = cpu_backend `One
let cpu_10core = cpu_backend `Ten

let opencl =
  {
    name = "opencl";
    summary = "round-based timing model of the Altera-OpenCL HLS baseline (Table 1)";
    capabilities = { timed = true; parallel = true; obs_report = false; validates = false };
    interp = None;
    supports =
      (fun app ->
        match app.App_instance.graph_source with
        | Some _ -> Ok ()
        | None ->
            Error
              (Printf.sprintf
                 "%s has no graph substrate (the AOCL model iterates BFS-style kernels over a \
                  CSR graph)"
                 app.App_instance.app_name));
    exec =
      (fun ~obs:_ app ->
        match app.App_instance.graph_source with
        | None ->
            raise
              (Unsupported
                 {
                   backend = "opencl";
                   app = app.App_instance.app_name;
                   reason = "no graph substrate";
                 })
        | Some (g, root) ->
            let r = Opencl_model.run_bfs g root in
            {
              backend_name = "opencl";
              app_name = app.App_instance.app_name;
              check = Ok ();
              seconds = Some r.Opencl_model.seconds;
              tasks_run = None;
              engine_stats = None;
              obs = None;
              native = Opencl r;
              final = None;
            });
  }

(* --- registry --- *)

(* The legacy tree-walking cycle engine is retired from the default
   registry: the compiled engine is cross-checked against the unified
   stepper oracle by the conformance matrix, and the engine-equivalence
   tests still drive [Accelerator.Legacy] directly.  One release of
   escape hatch: AGP_CLASSIC=1 puts [simulator:classic] back. *)
let classic_enabled = Sys.getenv_opt "AGP_CLASSIC" = Some "1"

let all =
  [ sequential; runtime (); parallel (); simulator () ]
  @ (if classic_enabled then [ simulator_classic () ] else [])
  @ [ cpu_1core; cpu_10core; opencl ]

let names = List.map (fun b -> b.name) all

(* Edit distance for the "did you mean" hint on a misspelled backend
   name; the candidate set is a handful of short names, so the O(nm)
   table is free. *)
let levenshtein a b =
  let n = String.length a and m = String.length b in
  let prev = Array.init (m + 1) Fun.id and cur = Array.make (m + 1) 0 in
  for i = 1 to n do
    cur.(0) <- i;
    for j = 1 to m do
      let subst = prev.(j - 1) + if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min subst (1 + min prev.(j) cur.(j - 1))
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  prev.(m)

let parameterized_form b =
  match b.name with
  | "runtime" -> Some "runtime:<workers>"
  | "parallel" -> Some "parallel:<domains>"
  | _ -> None

let unknown_backend_message name =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "unknown backend %S" name);
  let base = List.hd (String.split_on_char ':' name) in
  let candidates = "fpga" :: names in
  let best =
    List.fold_left
      (fun acc c ->
        let d = levenshtein (String.lowercase_ascii base) c in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (c, d))
      None candidates
  in
  (match best with
  | Some (c, d) when d <= max 2 (String.length base / 3) ->
      Buffer.add_string buf (Printf.sprintf " — did you mean %S?" c)
  | _ -> ());
  Buffer.add_string buf "\nregistered backends:\n";
  List.iter
    (fun b ->
      let form =
        match parameterized_form b with
        | Some f -> Printf.sprintf "%s (also %s)" b.name f
        | None -> b.name
      in
      Buffer.add_string buf (Printf.sprintf "  %-28s %s\n" form b.summary))
    all;
  Buffer.add_string buf "  fpga aliases simulator";
  Buffer.contents buf

let find name =
  let count what n =
    match int_of_string_opt n with
    | Some k when k > 0 -> Ok k
    | Some _ | None ->
        Error
          (Printf.sprintf "%s wants a positive count, got %S (e.g. %s:4)" what n what)
  in
  match String.split_on_char ':' name with
  | [ "sequential" ] -> Ok sequential
  | [ "runtime" ] -> Ok (runtime ())
  | [ "runtime"; n ] -> Result.map (fun workers -> runtime ~workers ()) (count "runtime" n)
  | [ "parallel" ] -> Ok (parallel ())
  | [ "parallel"; n ] -> Result.map (fun domains -> parallel ~domains ()) (count "parallel" n)
  | [ "simulator" ] | [ "fpga" ] | [ "simulator"; "compiled" ] -> Ok (simulator ())
  | [ "simulator"; "classic" ] ->
      if classic_enabled then Ok (simulator_classic ())
      else
        Error
          "simulator:classic is retired from the default registry (the compiled engine is \
           cross-checked against the sequential oracle by the conformance matrix).\n\
           Set AGP_CLASSIC=1 to re-enable it for one more release."
  | [ "cpu-1core" ] -> Ok cpu_1core
  | [ "cpu-10core" ] -> Ok cpu_10core
  | [ "opencl" ] -> Ok opencl
  | _ -> Error (unknown_backend_message name)

(* --- native accessors --- *)

let stepper_report r =
  match r.native with
  | Stepper s -> Some s
  | _ -> None

let simulated_report r =
  match r.native with
  | Simulated s -> Some s
  | _ -> None

let cpu_report r =
  match r.native with
  | Cpu c -> Some c
  | _ -> None

let opencl_report r =
  match r.native with
  | Opencl o -> Some o
  | _ -> None
