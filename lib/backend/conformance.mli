(** Differential conformance of backends against the sequential oracle.

    The §4.1 correctness criterion — a parallelized execution is
    correct exactly when its result is equivalent to the sequential
    one — becomes a registry-driven gate: for an app and a backend,
    {!check} runs the oracle and the backend on independent fresh
    instances and compares (a) the substrate verdicts ([check ()]) and
    (b), for result-deterministic apps, the final committed state
    word-for-word ({!Agp_core.State.diff}).

    Failures are typed so liveness bugs (deadlock, step-limit), result
    corruption, state divergence and plain crashes are distinguishable
    — the scattered per-experiment assertions of the test suite, made
    systematic over [Backend.all x apps]. *)

type failure =
  | Unsupported of string  (** backend cannot execute this app *)
  | Oracle_failed of string
      (** the sequential oracle itself failed its substrate check — the
          workload (not the backend) is broken *)
  | Check_failed of string  (** backend ran but its result is invalid *)
  | State_mismatch of string list
      (** substrate checks passed but the final state differs from the
          oracle's (only tested when [state_equiv] is requested) *)
  | Liveness of string  (** typed deadlock / step-limit from the runtime *)
  | Crash of string  (** any other exception *)

val failure_to_string : failure -> string

type row = {
  row_app : string;
  row_backend : string;
  outcome : (unit, failure) result;
}

val check :
  ?state_equiv:bool ->
  Backend.t ->
  Agp_apps.App_instance.t ->
  (unit, failure) result
(** One differential run.  [state_equiv] (default false) additionally
    requires bit-identical final state vs. the oracle — enable it only
    for apps whose answer is unique (BFS levels, SSSP distances);
    result-nondeterministic apps (DMR meshes, MST tie-breaks, LU float
    association) are covered by the substrate verdict alone. *)

val mutating : Backend.t list -> Backend.t list
(** The state-mutating subset ([capabilities.validates]) — the backends
    the differential property quantifies over. *)

val matrix_backends : unit -> Backend.t list
(** The canonical backends-under-test set, derived from [Backend.all]
    (every validating backend) plus pinned [parallel:1/2/4] instances.
    Registering a validating backend opts it into conformance
    automatically — there is no separate list to keep in sync. *)

val missing_from : row list -> Backend.t list
(** Validating backends of [Backend.all] that appear in no row — the
    CI assertion that nothing silently opted out of the matrix.  Empty
    on a complete run. *)

val matrix :
  ?state_equiv:(Agp_apps.App_instance.t -> bool) ->
  backends:Backend.t list ->
  Agp_apps.App_instance.t list ->
  row list
(** Every app x every given backend.  Unsupported pairs produce an
    [Error (Unsupported _)] row rather than being skipped silently. *)

val failing : row list -> row list
(** Rows whose outcome is an error, except [Unsupported] ones (a
    timing model honestly declining an app is not a conformance
    failure). *)

val render : row list -> string
(** Table: app x backend -> ok / failure summary. *)
