(** One first-class interface over every execution substrate.

    The paper's central promise is one specification, many substrates —
    debug in software, synthesize to FPGA.  A {!t} packages one
    substrate (the sequential oracle, the aggressive software runtime,
    the OCaml-5-domains runtime, the cycle-level accelerator simulator,
    or the CPU/OpenCL timing models) behind the single {!run} entry
    point, which returns a uniform {!run_result}: the final-state
    verdict, a timing figure in the shared timing universe, engine
    statistics, and (on request) a schema-versioned {!Agp_obs.Report}.

    The registry ({!all}, {!find}, {!names}) enumerates the substrates
    so that harnesses, the CLI and the bench iterate backends instead of
    hardcoding module calls — and so that a future backend (sharded,
    batched, remote) plugs in by adding one {!t} value.  Differential
    correctness over the registry lives in {!Conformance}. *)

type capabilities = {
  timed : bool;
      (** produces [seconds] in the shared timing universe (the
          simulator and the CPU/OpenCL models; the software runtimes
          report steps, not time) *)
  parallel : bool;  (** models or uses concurrent execution *)
  obs_report : bool;
      (** can emit a machine-readable {!Agp_obs.Report} when [run] is
          called with [~obs:true] *)
  validates : bool;
      (** state-mutating: executes the real semantics on a fresh
          instance, so [check] is a substrate verdict and [final] holds
          the executed instance.  Backends with [validates = false] are
          pure timing models; their [check] is vacuously [Ok]. *)
}

(** The substrate's native report, carried alongside the uniform fields
    as a typed escape hatch for substrate-specific views (stall
    attribution, cache hit rates, makespan steps, ...).  Every
    stepper-interpretation backend (sequential, runtime, parallel, and
    any {!of_interpretation} substrate) shares the [Stepper] shape —
    one semantics, one report. *)
type native =
  | Stepper of Agp_core.Semantics.report
  | Simulated of Agp_hw.Accelerator.report
  | Cpu of Agp_baseline.Cpu_model.report
  | Opencl of Agp_baseline.Opencl_model.report

type run_result = {
  backend_name : string;
  app_name : string;
  check : (unit, string) result;
      (** substrate verdict of the executed instance; vacuously [Ok]
          for pure timing models ([capabilities.validates = false]) *)
  seconds : float option;  (** shared timing universe; [None] if untimed *)
  tasks_run : int option;
      (** tasks that reached an outcome (committed + squashed), when
          the substrate counts tasks *)
  engine_stats : Agp_core.Engine.stats option;
  obs : Agp_obs.Report.t option;
      (** present when run with [~obs:true] on an [obs_report] backend *)
  native : native;
  final : Agp_apps.App_instance.run option;
      (** the executed instance (state + check), for differential
          comparison against the oracle; [None] for timing models *)
}

type t = {
  name : string;
  summary : string;
  capabilities : capabilities;
  supports : Agp_apps.App_instance.t -> (unit, string) result;
      (** whether this backend can execute the app (e.g. the AOCL model
          needs a graph substrate); call through {!run}, which checks *)
  interp : Agp_core.Semantics.interpretation option;
      (** for stepper backends, the interpretation record that {e is}
          the substrate — scheduling policy plus effect hooks; [None]
          for the simulator and the timing models *)
  exec : obs:bool -> Agp_apps.App_instance.t -> run_result;
      (** implementation hook — call {!run}, not this *)
}

exception Unsupported of { backend : string; app : string; reason : string }

val run : ?obs:bool -> ?request_id:string -> t -> Agp_apps.App_instance.t -> run_result
(** The single entry point: execute [app] on the backend, on a fresh
    instance.  [obs] (default false) asks obs-capable backends to
    capture the full event stream / timeline and attach a run report.
    [request_id] (set by the serve scheduler) is stamped into the
    report's meta as ["request_id"], correlating the archived artifact
    with the daemon's trace spans and log lines.
    @raise Unsupported when [supports] rejects the app.
    @raise Agp_core.Runtime.Deadlock and
    @raise Agp_core.Runtime.Step_limit_exceeded propagate from the
    substrate (liveness bugs, distinguishable from crashes). *)

(** {1 The registry} *)

val of_interpretation :
  name:string ->
  summary:string ->
  ?capabilities:capabilities ->
  Agp_core.Semantics.interpretation ->
  t
(** Lift an interpretation record into a registry backend: execution is
    [Semantics.run] on a fresh instance, the native report is
    [Stepper].  This is how {!sequential}, {!runtime} and {!parallel}
    are built — a new software substrate is a record, not a module.
    Default capabilities: untimed, parallel, no obs report,
    validating. *)

val sequential : t
(** The in-order oracle (Definition 4.3) every other backend is judged
    against — the {!Agp_core.Semantics.oracle} interpretation. *)

val runtime : ?workers:int -> ?max_steps:int -> unit -> t
(** The aggressive software runtime (§4.4) on [workers] abstract
    workers (default 8) — the {!Agp_core.Semantics.pipelined}
    interpretation.  Named ["runtime"], or ["runtime:N"] for a
    non-default count.  [max_steps] bounds the scheduler (default 1e8
    ticks); exceeding it raises [Agp_core.Runtime.Step_limit_exceeded]. *)

val parallel : ?domains:int -> unit -> t
(** The OCaml-5-domains runtime (§4.4's pthread option) — the
    {!Agp_core.Semantics.multicore} interpretation.  Named
    ["parallel"], or ["parallel:N"] for an explicit domain count. *)

val with_max_steps : t -> int -> (t, string) result
(** Rebuild a worker-pool backend with a different step budget (the
    CLI's [--max-steps]); [Error] for backends whose policy has no
    budget (the oracle, domains, the simulator, timing models). *)

val simulator :
  ?engine:Agp_hw.Accelerator.engine ->
  ?config:Agp_hw.Config.t ->
  ?auto_size:bool ->
  unit ->
  t
(** The cycle-level accelerator model (Fig. 7) on [config] (default
    {!Agp_hw.Config.default}), with {!derive_config} applied per app.
    [engine] (default [Compiled]) selects the cycle engine and the
    backend name: ["simulator"] for the compiled op-array engine,
    ["simulator:classic"] for the legacy tree-walking loop.
    [auto_size] as in {!Agp_hw.Accelerator.run}. *)

val simulator_classic : ?config:Agp_hw.Config.t -> ?auto_size:bool -> unit -> t
(** {!simulator} pinned to the legacy tree-walking engine.  Retired
    from the default registry (the compiled engine is cross-checked
    against the unified stepper oracle instead); [AGP_CLASSIC=1] in the
    environment re-registers it for one more release. *)

val cpu_1core : t
val cpu_10core : t
(** The Xeon timing models of §6.3 (both run the same
    {!Agp_baseline.Cpu_model} profile; they expose the 1-core and
    10-core figures respectively). *)

val opencl : t
(** The round-based AOCL-HLS timing model of Table 1; supports apps
    with a graph substrate ([graph_source]). *)

val all : t list
(** Default instances of every registered backend, in presentation
    order: sequential, runtime, parallel, simulator, cpu-1core,
    cpu-10core, opencl — plus simulator:classic when [AGP_CLASSIC=1]
    is set. *)

val classic_enabled : bool
(** Whether the [AGP_CLASSIC=1] escape hatch is active (read once at
    startup). *)

val names : string list

val find : string -> (t, string) result
(** Resolve a backend by name.  Accepts the registry names, ["fpga"]
    as an alias for ["simulator"], and parameterized forms
    ["runtime:<workers>"] / ["parallel:<domains>"].  The error for an
    unknown name is self-describing: it lists every registered backend
    with its summary and parameterized form, plus a "did you mean"
    suggestion for near-misses — [agp run] and the serve daemon print
    it verbatim. *)

val derive_config : Agp_apps.App_instance.t -> Agp_hw.Config.t -> Agp_hw.Config.t
(** Specialize a simulator configuration to an app: the kernel MLP
    burst width and the per-[Prim] pipeline latencies
    ([flops / fpga_ilp], floor 2) that synthesis would bake into the
    datapath.  Idempotent; preserves every other field (pipelines,
    lanes, bandwidth). *)

(** {1 Accessors for the native report} *)

val stepper_report : run_result -> Agp_core.Semantics.report option
val simulated_report : run_result -> Agp_hw.Accelerator.report option
val cpu_report : run_result -> Agp_baseline.Cpu_model.report option
val opencl_report : run_result -> Agp_baseline.Opencl_model.report option
