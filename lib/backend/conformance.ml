module App_instance = Agp_apps.App_instance
module State = Agp_core.State
module Runtime = Agp_core.Runtime

type failure =
  | Unsupported of string
  | Oracle_failed of string
  | Check_failed of string
  | State_mismatch of string list
  | Liveness of string
  | Crash of string

let failure_to_string = function
  | Unsupported r -> "unsupported: " ^ r
  | Oracle_failed e -> "oracle failed: " ^ e
  | Check_failed e -> "check failed: " ^ e
  | State_mismatch ds ->
      Printf.sprintf "state mismatch vs oracle (%d cells): %s" (List.length ds)
        (String.concat "; " (List.filteri (fun i _ -> i < 4) ds))
  | Liveness e -> "liveness: " ^ e
  | Crash e -> "crash: " ^ e

type row = {
  row_app : string;
  row_backend : string;
  outcome : (unit, failure) result;
}

let check ?(state_equiv = false) (b : Backend.t) (app : App_instance.t) =
  (* The oracle runs first, on its own fresh instance; its verdict
     anchors the comparison. *)
  match App_instance.run_sequential app with
  | exception e -> Error (Oracle_failed (Printexc.to_string e))
  | _, oracle -> begin
      match oracle.App_instance.check () with
      | Error e -> Error (Oracle_failed e)
      | Ok () -> begin
          match Backend.run b app with
          | exception Backend.Unsupported { reason; _ } -> Error (Unsupported reason)
          | exception Runtime.Deadlock msg -> Error (Liveness msg)
          | exception Runtime.Step_limit_exceeded n ->
              Error (Liveness (Printf.sprintf "step limit %d exceeded" n))
          | exception e -> Error (Crash (Printexc.to_string e))
          | res -> begin
              match res.Backend.check with
              | Error e -> Error (Check_failed e)
              | Ok () ->
                  if state_equiv then
                    match res.Backend.final with
                    | None -> Ok ()  (* timing model: no state to compare *)
                    | Some r -> begin
                        match State.diff oracle.App_instance.state r.App_instance.state with
                        | [] -> Ok ()
                        | ds -> Error (State_mismatch ds)
                      end
                  else Ok ()
            end
        end
    end

let mutating backends =
  List.filter (fun (b : Backend.t) -> b.Backend.capabilities.Backend.validates) backends

(* The matrix quantifies over the registry itself — every validating
   backend in [Backend.all], plus pinned domain counts for the
   nondeterministic substrate — so registering a backend opts it into
   conformance; there is no hand-maintained list to forget to update. *)
let matrix_backends () =
  mutating Backend.all
  @ [
      Backend.parallel ~domains:1 ();
      Backend.parallel ~domains:2 ();
      Backend.parallel ~domains:4 ();
    ]

let missing_from rows =
  let covered = List.sort_uniq compare (List.map (fun r -> r.row_backend) rows) in
  List.filter
    (fun (b : Backend.t) ->
      b.Backend.capabilities.Backend.validates && not (List.mem b.Backend.name covered))
    Backend.all

let matrix ?(state_equiv = fun _ -> false) ~backends apps =
  List.concat_map
    (fun (app : App_instance.t) ->
      List.map
        (fun (b : Backend.t) ->
          {
            row_app = app.App_instance.app_name;
            row_backend = b.Backend.name;
            outcome = check ~state_equiv:(state_equiv app) b app;
          })
        backends)
    apps

let failing rows =
  List.filter
    (fun r ->
      match r.outcome with
      | Ok () | Error (Unsupported _) -> false
      | Error _ -> true)
    rows

let render rows =
  let t = Agp_util.Table.create [ "app"; "backend"; "conformance" ] in
  List.iter
    (fun r ->
      Agp_util.Table.add_row t
        [
          r.row_app;
          r.row_backend;
          (match r.outcome with
          | Ok () -> "ok"
          | Error f -> failure_to_string f);
        ])
    rows;
  Agp_util.Table.render t
