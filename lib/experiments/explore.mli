(** Automatic design-space exploration — the paper's §8 future work:
    "how to automatically choose parameters for templated components
    when generating structures on FPGA".

    Sweeps rule-engine lane counts, pipeline replication and reorder
    window depth over the cycle model, discards configurations that do
    not fit the device, and returns candidates ranked by simulated
    cycles.  Each evaluated point is a full accelerator run whose
    result is validated against the substrate reference. *)

type candidate = {
  lanes : int;
  pipelines_per_set : int;
  window_factor : int;
}

type outcome = {
  candidate : candidate;
  cycles : int;
  utilization : float;
  fits : bool;
  alms : int;
  registers : int;
  stall : Agp_obs.Attribution.summary option;
      (** stall breakdown of the simulated run ([None] when the
          candidate does not fit and was never simulated) — the signal
          that tells you {e why} a candidate is slow, not just that it
          is *)
}

val default_candidates : candidate list
(** lanes {64, 256} x pipelines {2, 4, 8} x window {1, 2} (12 points). *)

val sweep :
  ?candidates:candidate list -> Agp_apps.App_instance.t -> outcome list
(** Evaluate every candidate (fitting ones are simulated; non-fitting
    ones are reported with [cycles = max_int]).  Results come back in
    candidate order.
    @raise Failure if any simulated configuration produces an invalid
    result. *)

val best : outcome list -> outcome option
(** Fewest cycles among fitting candidates. *)

val to_csv : outcome list -> string
(** The sweep table as CSV (header + one row per candidate, including
    the stall-fraction columns); non-fitting candidates leave [cycles]
    and the stall fractions empty. *)

val report : Agp_apps.App_instance.t -> outcome list -> Agp_obs.Report.t
(** Machine-readable sweep report ({!Agp_obs.Report}, kind
    ["explore-sweep"]): one entry per candidate keyed
    [l<lanes>_p<pipes>_w<window>], plus a ["best"] section — diffable
    with [agp diff] across code or parameter changes. *)

val print : Agp_apps.App_instance.t -> outcome list -> unit
