module App_instance = Agp_apps.App_instance
module Accelerator = Agp_hw.Accelerator
module Config = Agp_hw.Config
module Resource = Agp_hw.Resource
module Cpu_model = Agp_baseline.Cpu_model
module Opencl_model = Agp_baseline.Opencl_model
module Backend = Agp_backend.Backend
module Table = Agp_util.Table

(* All platform executions go through the Agp_backend registry; the
   helpers below unwrap the native reports the tables are built from
   and keep the "every accelerated run is validated" guarantee. *)

let accelerate ?(config = Config.default) (app : App_instance.t) =
  let res = Backend.run (Backend.simulator ~config ()) app in
  begin
    match res.Backend.check with
    | Ok () -> ()
    | Error e ->
        failwith (Printf.sprintf "%s: accelerator result invalid: %s" app.App_instance.app_name e)
  end;
  match Backend.simulated_report res with
  | Some report -> report
  | None -> assert false

let cpu_model (app : App_instance.t) =
  match Backend.cpu_report (Backend.run Backend.cpu_1core app) with
  | Some report -> report
  | None -> assert false

(* --- Figure 9 --- *)

type fig9_row = {
  app : string;
  fpga_s : float;
  cpu1_s : float;
  cpu10_s : float;
  speedup_vs_1 : float;
  speedup_vs_10 : float;
  utilization : float;
}

let fig9 ?(scale = Workloads.Default) ?(seed = 42) () =
  List.map
    (fun app ->
      let hw = accelerate app in
      let cpu = cpu_model app in
      {
        app = app.App_instance.app_name;
        fpga_s = hw.Accelerator.seconds;
        cpu1_s = cpu.Cpu_model.seconds_1core;
        cpu10_s = cpu.Cpu_model.seconds_10core;
        speedup_vs_1 = cpu.Cpu_model.seconds_1core /. hw.Accelerator.seconds;
        speedup_vs_10 = cpu.Cpu_model.seconds_10core /. hw.Accelerator.seconds;
        utilization = hw.Accelerator.utilization;
      })
    (Workloads.all scale ~seed)

let print_fig9 rows =
  let t =
    Table.create [ "app"; "FPGA (ms)"; "1-core (ms)"; "10-core (ms)"; "vs 1-core"; "vs 10-core" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.app;
          Table.cell_float ~decimals:3 (r.fpga_s *. 1e3);
          Table.cell_float ~decimals:3 (r.cpu1_s *. 1e3);
          Table.cell_float ~decimals:3 (r.cpu10_s *. 1e3);
          Table.cell_ratio r.speedup_vs_1;
          Table.cell_ratio r.speedup_vs_10;
        ])
    rows;
  Table.print t

(* --- Figure 10 --- *)

type fig10_row = {
  app10 : string;
  factor : float;
  speedup_over_1x : float;
  utilization10 : float;
  aborted : int;
}

let fig10 ?(scale = Workloads.Medium) ?(seed = 42) ?(factors = [ 1.0; 2.0; 4.0; 8.0 ]) () =
  List.concat_map
    (fun make_app ->
      let baseline = ref None in
      List.map
        (fun factor ->
          let app = make_app () in
          let config = Config.scale_bandwidth Config.default factor in
          let hw = accelerate ~config app in
          let base =
            match !baseline with
            | Some b -> b
            | None ->
                baseline := Some hw.Accelerator.seconds;
                hw.Accelerator.seconds
          in
          {
            app10 = app.App_instance.app_name;
            factor;
            speedup_over_1x = base /. hw.Accelerator.seconds;
            utilization10 = hw.Accelerator.utilization;
            aborted =
              hw.Accelerator.engine_stats.Agp_core.Engine.aborted
              + hw.Accelerator.engine_stats.Agp_core.Engine.retried;
          })
        factors)
    [
      (fun () -> Workloads.spec_bfs scale ~seed);
      (fun () -> Workloads.coor_bfs scale ~seed);
      (fun () -> Workloads.spec_sssp scale ~seed);
      (fun () -> Workloads.spec_mst scale ~seed);
      (fun () -> Workloads.spec_dmr scale ~seed);
      (fun () -> Workloads.coor_lu scale ~seed);
    ]

let print_fig10 rows =
  let t = Table.create [ "app"; "QPI x"; "speedup"; "utilization"; "squashed tasks" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.app10;
          Printf.sprintf "%gx" r.factor;
          Table.cell_ratio r.speedup_over_1x;
          Printf.sprintf "%.1f%%" (100.0 *. r.utilization10);
          string_of_int r.aborted;
        ])
    rows;
  Table.print t;
  (* the figure's visual: one speedup curve per app over the sweep *)
  let apps = List.sort_uniq compare (List.map (fun r -> r.app10) rows) in
  let curves =
    List.map
      (fun app ->
        ( app,
          Array.of_list
            (List.filter_map (fun r -> if r.app10 = app then Some r.speedup_over_1x else None) rows)
        ))
      apps
  in
  print_endline "speedup vs bandwidth (left-to-right = 1x..8x):";
  print_endline (Agp_util.Chart.series curves)

(* --- Table 1 --- *)

type table1 = {
  opencl_s : float;
  spec_bfs_s : float;
  coor_bfs_s : float;
  opencl_rounds : int;
}

let table1 ?(scale = Workloads.Default) ?(seed = 42) () =
  let spec_app = Workloads.spec_bfs scale ~seed in
  let opencl =
    (* the AOCL baseline models its rounds over the very graph the
       SPEC-BFS workload was built from (graph_source) *)
    match Backend.opencl_report (Backend.run Backend.opencl spec_app) with
    | Some report -> report
    | None -> assert false
  in
  let spec_hw = accelerate spec_app in
  let coor_hw = accelerate (Workloads.coor_bfs scale ~seed) in
  {
    opencl_s = opencl.Opencl_model.seconds;
    spec_bfs_s = spec_hw.Accelerator.seconds;
    coor_bfs_s = coor_hw.Accelerator.seconds;
    opencl_rounds = opencl.Opencl_model.rounds;
  }

let print_table1 t1 =
  let t = Table.create [ "accelerator"; "OpenCL"; "SPEC-BFS"; "COOR-BFS" ] in
  Table.add_row t
    [
      "best time (s)";
      Table.cell_float ~decimals:4 t1.opencl_s;
      Table.cell_float ~decimals:4 t1.spec_bfs_s;
      Table.cell_float ~decimals:4 t1.coor_bfs_s;
    ];
  Table.add_row t
    [
      "vs OpenCL";
      "1.00x";
      Table.cell_ratio (t1.opencl_s /. t1.spec_bfs_s);
      Table.cell_ratio (t1.opencl_s /. t1.coor_bfs_s);
    ];
  Table.print t

(* --- resource breakdown --- *)

type resource_row = {
  rapp : string;
  pipelines_used : (string * int) list;
  alms : int;
  registers : int;
  brams : int;
  rule_register_share : float;
  fits_device : bool;
}

let resources ?(seed = 42) () =
  ignore seed;
  let specs =
    [
      ("SPEC-BFS", Agp_apps.Bfs_app.spec_speculative);
      ("COOR-BFS", Agp_apps.Bfs_app.spec_coordinative);
      ("SPEC-SSSP", Agp_apps.Sssp_app.spec_speculative);
      ("SPEC-MST", Agp_apps.Mst_app.spec_speculative);
      ("SPEC-DMR", Agp_apps.Dmr_app.spec_speculative);
      ("COOR-LU", Agp_apps.Lu_app.spec_coordinative);
    ]
  in
  List.map
    (fun (name, sp) ->
      let pipes = Resource.heuristic_pipelines sp ~max_per_set:8 in
      let cfg = Config.with_pipelines Config.default pipes in
      let b = Resource.breakdown sp cfg in
      {
        rapp = name;
        pipelines_used = pipes;
        alms = b.Resource.total.Resource.alms;
        registers = b.Resource.total.Resource.registers;
        brams = b.Resource.total.Resource.brams;
        rule_register_share = b.Resource.register_share_rules;
        fits_device = Resource.fits b;
      })
    specs

let print_resources rows =
  let t =
    Table.create [ "app"; "pipelines"; "ALMs"; "registers"; "M20K"; "rule-engine regs"; "fits" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.rapp;
          String.concat " "
            (List.map (fun (s, n) -> Printf.sprintf "%s:%d" s n) r.pipelines_used);
          string_of_int r.alms;
          string_of_int r.registers;
          string_of_int r.brams;
          Printf.sprintf "%.1f%%" (100.0 *. r.rule_register_share);
          string_of_bool r.fits_device;
        ])
    rows;
  Table.print t

(* --- Figure 2(b): schedule diagrams --- *)

let schedule_diagram () =
  (* The 6-vertex example of Fig. 2(a): 0-1, 0-2, 1-3, 2-4, 2-3, 3-5.
     Two-stage pipeline: V visits a vertex (dequeues, scans neighbours),
     U updates a neighbour (writes its level, enqueues a visit). *)
  let g =
    Agp_graph.Csr.of_edges ~n:6
      [ (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 4, 1); (2, 3, 1); (3, 5, 1) ]
  in
  let buf = Buffer.create 512 in
  let render title (timeline : (string * string) list list) =
    Buffer.add_string buf (title ^ "\n");
    let lanes = [ "V"; "U" ] in
    List.iter
      (fun lane ->
        Buffer.add_string buf ("  " ^ lane ^ ": ");
        List.iter
          (fun slot ->
            let cell =
              match List.assoc_opt lane slot with
              | Some v -> v
              | None -> "."
            in
            Buffer.add_string buf (Printf.sprintf "%-3s" cell))
          timeline;
        Buffer.add_char buf '\n')
      lanes;
    Buffer.add_char buf '\n'
  in
  let inf = Agp_graph.Bfs.infinity_level in
  (* barrier-synchronized: all visits of a level, barrier, all updates,
     barrier *)
  let barrier_timeline () =
    let level = Array.make 6 inf in
    level.(0) <- 0;
    let frontier = ref [ 0 ] in
    let timeline = ref [] in
    while !frontier <> [] do
      let updates = ref [] in
      List.iter
        (fun v ->
          timeline := [ ("V", string_of_int v) ] :: !timeline;
          Agp_graph.Csr.iter_neighbors g v (fun w _ ->
              if level.(w) = inf then updates := (w, level.(v) + 1) :: !updates))
        !frontier;
      timeline := [ ("V", "|"); ("U", "|") ] :: !timeline;
      let next = ref [] in
      List.iter
        (fun (w, l) ->
          if level.(w) = inf then begin
            level.(w) <- l;
            next := w :: !next;
            timeline := [ ("U", string_of_int w) ] :: !timeline
          end)
        (List.rev !updates);
      timeline := [ ("V", "|"); ("U", "|") ] :: !timeline;
      frontier := List.rev !next
    done;
    List.rev !timeline
  in
  (* dataflow: each stage fires as soon as a token waits in its input
     queue — both stages active in the same slot *)
  let dataflow_timeline () =
    let level = Array.make 6 inf in
    level.(0) <- 0;
    let visits = Queue.create () and updates = Queue.create () in
    Queue.push 0 visits;
    let timeline = ref [] in
    while (not (Queue.is_empty visits)) || not (Queue.is_empty updates) do
      let slot = ref [] in
      if not (Queue.is_empty visits) then begin
        let v = Queue.pop visits in
        slot := ("V", string_of_int v) :: !slot;
        Agp_graph.Csr.iter_neighbors g v (fun w _ ->
            if level.(w) = inf && not (Queue.fold (fun acc (x, _) -> acc || x = w) false updates)
            then Queue.push (w, level.(v) + 1) updates)
      end;
      if not (Queue.is_empty updates) then begin
        let w, l = Queue.pop updates in
        if level.(w) = inf then begin
          level.(w) <- l;
          Queue.push w visits
        end;
        slot := ("U", string_of_int w) :: !slot
      end;
      timeline := !slot :: !timeline
    done;
    List.rev !timeline
  in
  render "Synthesized (barrier-synchronized kernels, '|' = barrier):" (barrier_timeline ());
  render "Handcrafted / rule-scheduled (dataflow, stages overlap):" (dataflow_timeline ());
  Buffer.contents buf
