module App_instance = Agp_apps.App_instance
module Accelerator = Agp_hw.Accelerator
module Config = Agp_hw.Config
module Resource = Agp_hw.Resource
module Spec = Agp_core.Spec
module Backend = Agp_backend.Backend
module Table = Agp_util.Table

type candidate = {
  lanes : int;
  pipelines_per_set : int;
  window_factor : int;
}

type outcome = {
  candidate : candidate;
  cycles : int;
  utilization : float;
  fits : bool;
  alms : int;
  registers : int;
  stall : Agp_obs.Attribution.summary option;
}

let default_candidates =
  List.concat_map
    (fun lanes ->
      List.concat_map
        (fun pipes ->
          List.map (fun window -> { lanes; pipelines_per_set = pipes; window_factor = window })
            [ 1; 2 ])
        [ 2; 4; 8 ])
    [ 64; 256 ]

let config_of (app : App_instance.t) c =
  let sets = List.map (fun ts -> (ts.Spec.ts_name, c.pipelines_per_set)) app.App_instance.spec.Spec.task_sets in
  (* the simulator backend derives the app-specific mlp / prim
     latencies (Backend.derive_config); the candidate only fixes the
     template knobs under sweep *)
  {
    Config.default with
    Config.rule_lanes = c.lanes;
    Config.window_factor = c.window_factor;
    Config.pipelines = sets;
  }

let sweep ?(candidates = default_candidates) (app : App_instance.t) =
  List.map
    (fun c ->
      let config = config_of app c in
      let b = Resource.breakdown app.App_instance.spec config in
      if not (Resource.fits b) then
        {
          candidate = c;
          cycles = max_int;
          utilization = 0.0;
          fits = false;
          alms = b.Resource.total.Resource.alms;
          registers = b.Resource.total.Resource.registers;
          stall = None;
        }
      else begin
        let res = Backend.run (Backend.simulator ~config ~auto_size:false ()) app in
        begin
          match res.Backend.check with
          | Ok () -> ()
          | Error e ->
              failwith
                (Printf.sprintf "Explore.sweep: %s invalid under %d lanes/%d pipes: %s"
                   app.App_instance.app_name c.lanes c.pipelines_per_set e)
        end;
        let report =
          match Backend.simulated_report res with
          | Some r -> r
          | None -> assert false
        in
        {
          candidate = c;
          cycles = report.Accelerator.cycles;
          utilization = report.Accelerator.utilization;
          fits = true;
          alms = b.Resource.total.Resource.alms;
          registers = b.Resource.total.Resource.registers;
          stall = Some (Agp_obs.Attribution.summary report.Accelerator.attribution);
        }
      end)
    candidates

let best outcomes =
  List.fold_left
    (fun acc o ->
      if not o.fits then acc
      else
        match acc with
        | None -> Some o
        | Some b -> if o.cycles < b.cycles then Some o else acc)
    None outcomes

let to_csv outcomes =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "lanes,pipes_per_set,window,cycles,utilization,mem_frac,rdv_frac,squash_frac,alms,registers,fits\n";
  List.iter
    (fun o ->
      let frac select =
        match o.stall with
        | Some s -> Printf.sprintf "%.6f" (select s)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s,%.6f,%s,%s,%s,%d,%d,%b\n" o.candidate.lanes
           o.candidate.pipelines_per_set o.candidate.window_factor
           (if o.fits then string_of_int o.cycles else "")
           o.utilization
           (frac (fun s -> s.Agp_obs.Attribution.mem_frac))
           (frac (fun s -> s.Agp_obs.Attribution.rendezvous_frac))
           (frac (fun s -> s.Agp_obs.Attribution.squash_frac))
           o.alms o.registers o.fits))
    outcomes;
  Buffer.contents buf

let report (app : App_instance.t) outcomes =
  let module Json = Agp_obs.Json in
  let key c = Printf.sprintf "l%d_p%d_w%d" c.lanes c.pipelines_per_set c.window_factor in
  let outcome_json o =
    let frac select =
      match o.stall with
      | Some s -> [ select s ]
      | None -> []
    in
    ( key o.candidate,
      Json.Obj
        ((if o.fits then [ ("cycles", Json.Int o.cycles) ] else [])
        @ [ ("utilization", Json.Float o.utilization) ]
        @ List.map
            (fun v -> ("mem_stall_frac", Json.Float v))
            (frac (fun s -> s.Agp_obs.Attribution.mem_frac))
        @ List.map
            (fun v -> ("rdv_stall_frac", Json.Float v))
            (frac (fun s -> s.Agp_obs.Attribution.rendezvous_frac))
        @ List.map
            (fun v -> ("squash_frac", Json.Float v))
            (frac (fun s -> s.Agp_obs.Attribution.squash_frac))
        @ [
            ("alms", Json.Int o.alms);
            ("registers", Json.Int o.registers);
            ("fits", Json.Bool o.fits);
          ]) )
  in
  let best_section =
    match best outcomes with
    | None -> []
    | Some o ->
        [
          ( "best",
            Json.Obj
              [
                ("lanes", Json.Int o.candidate.lanes);
                ("pipes_per_set", Json.Int o.candidate.pipelines_per_set);
                ("window", Json.Int o.candidate.window_factor);
                ("cycles", Json.Int o.cycles);
                ("utilization", Json.Float o.utilization);
              ] );
        ]
  in
  Agp_obs.Report.v ~kind:"explore-sweep" ~app:app.App_instance.app_name
    ~meta:[ ("candidates", Json.Int (List.length outcomes)) ]
    ~sections:(best_section @ [ ("sweep", Json.Obj (List.map outcome_json outcomes)) ])
    ()

let print (app : App_instance.t) outcomes =
  Printf.printf "design-space exploration for %s:\n" app.App_instance.app_name;
  let t =
    Table.create
      [ "lanes"; "pipes/set"; "window"; "cycles"; "util"; "mem%"; "rdv%"; "squash%"; "ALMs"; "fits" ]
  in
  let pct f = Printf.sprintf "%.1f%%" (100.0 *. f) in
  let stall_cell select o =
    match o.stall with
    | Some s -> pct (select s)
    | None -> "-"
  in
  List.iter
    (fun o ->
      Table.add_row t
        [
          string_of_int o.candidate.lanes;
          string_of_int o.candidate.pipelines_per_set;
          string_of_int o.candidate.window_factor;
          (if o.fits then string_of_int o.cycles else "-");
          pct o.utilization;
          stall_cell (fun s -> s.Agp_obs.Attribution.mem_frac) o;
          stall_cell (fun s -> s.Agp_obs.Attribution.rendezvous_frac) o;
          stall_cell (fun s -> s.Agp_obs.Attribution.squash_frac) o;
          string_of_int o.alms;
          string_of_bool o.fits;
        ])
    outcomes;
  Table.print t;
  match best outcomes with
  | Some o ->
      let diagnosis =
        match o.stall with
        | Some s ->
            let name, frac = Agp_obs.Attribution.dominant_stall s in
            Printf.sprintf " (busy %s, dominant stall: %s %s)"
              (pct s.Agp_obs.Attribution.busy_frac) name (pct frac)
        | None -> ""
      in
      Printf.printf "best: %d lanes, %d pipelines/set, window x%d -> %d cycles%s\n"
        o.candidate.lanes o.candidate.pipelines_per_set o.candidate.window_factor o.cycles
        diagnosis
  | None -> print_endline "no fitting configuration"
