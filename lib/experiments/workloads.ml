module Generator = Agp_graph.Generator

type scale =
  | Small
  | Medium
  | Default
  | Large
  | Huge

let scale_of_string = function
  | "small" -> Ok Small
  | "medium" -> Ok Medium
  | "default" -> Ok Default
  | "large" -> Ok Large
  | "huge" -> Ok Huge
  | s -> Error (Printf.sprintf "unknown scale %S (use small|medium|default|large|huge)" s)

let scale_name = function
  | Small -> "small"
  | Medium -> "medium"
  | Default -> "default"
  | Large -> "large"
  | Huge -> "huge"

let bfs_graph scale ~seed =
  match scale with
  | Small -> Generator.road ~seed ~width:40 ~height:25
  | Medium -> Generator.road ~seed ~width:150 ~height:100
  (* large enough that the 64 KB CCI cache covers only a few percent of
     the working set — the bandwidth-bound regime of the paper's
     24M-node road network *)
  | Default -> Generator.road ~seed ~width:350 ~height:220
  (* paper-scale road graphs for the compiled engine: ~1M and ~4.2M
     nodes, built straight into CSR (the ROADMAP item-1 exit
     criterion) *)
  | Large -> Generator.grid ~seed ~width:1024 ~height:1024
  | Huge -> Generator.grid ~seed ~width:2048 ~height:2048

let spec_bfs scale ~seed = Agp_apps.Bfs_app.speculative { graph = bfs_graph scale ~seed; root = 0 }

let coor_bfs scale ~seed = Agp_apps.Bfs_app.coordinative { graph = bfs_graph scale ~seed; root = 0 }

let sssp_graph scale ~seed =
  (* low-diameter random graphs keep chaotic Bellman-Ford's
     re-relaxation factor bounded; the road graphs of the BFS rows would
     inflate SPEC-SSSP to millions of flooded tasks *)
  match scale with
  | Small -> Generator.random ~seed ~n:600 ~m:1800
  | Medium | Default | Large | Huge -> Generator.random ~seed ~n:3000 ~m:9000

let spec_sssp scale ~seed =
  Agp_apps.Sssp_app.speculative { graph = sssp_graph scale ~seed; root = 0 }

let mst_graph scale ~seed =
  match scale with
  | Small -> Generator.random ~seed ~n:400 ~m:1200
  | Medium | Default | Large | Huge -> Generator.random ~seed ~n:2500 ~m:7500

let spec_mst scale ~seed = Agp_apps.Mst_app.speculative { graph = mst_graph scale ~seed }

let dmr_points scale ~seed =
  match scale with
  | Small -> Generator.points ~seed ~n:120 ~span:100.0
  | Medium | Default | Large | Huge -> Generator.points ~seed ~n:350 ~span:100.0

let spec_dmr scale ~seed = Agp_apps.Dmr_app.speculative { points = dmr_points scale ~seed }

let coor_lu scale ~seed =
  match scale with
  | Small -> Agp_apps.Lu_app.coordinative (Agp_apps.Lu_app.sized_workload ~seed ~nb:6 ~bs:6 ~density:0.3)
  | Medium ->
      Agp_apps.Lu_app.coordinative
        (Agp_apps.Lu_app.sized_workload ~seed ~nb:12 ~bs:48 ~density:0.3)
  | Default | Large | Huge ->
      (* BOTS-like scale: the matrix exceeds the Xeon's 25 MB LLC, so
         the software baseline pays DRAM exactly as the FPGA pays QPI —
         the regime of the paper's evaluation.  The larger scales only
         grow the graph apps: LU's working set is already there. *)
      Agp_apps.Lu_app.coordinative
        (Agp_apps.Lu_app.sized_workload ~seed ~nb:16 ~bs:64 ~density:0.3)

let all scale ~seed =
  [
    spec_bfs scale ~seed;
    coor_bfs scale ~seed;
    spec_sssp scale ~seed;
    spec_mst scale ~seed;
    spec_dmr scale ~seed;
    coor_lu scale ~seed;
  ]

let app_names = [ "spec-bfs"; "coor-bfs"; "spec-sssp"; "spec-mst"; "spec-dmr"; "coor-lu" ]

let find name scale ~seed =
  match name with
  | "spec-bfs" -> Ok (spec_bfs scale ~seed)
  | "coor-bfs" -> Ok (coor_bfs scale ~seed)
  | "spec-sssp" -> Ok (spec_sssp scale ~seed)
  | "spec-mst" -> Ok (spec_mst scale ~seed)
  | "spec-dmr" -> Ok (spec_dmr scale ~seed)
  | "coor-lu" -> Ok (coor_lu scale ~seed)
  | other ->
      Error
        (Printf.sprintf "unknown application %S (known: %s)" other
           (String.concat ", " app_names))
