(** Standard experiment workloads.

    Sized so that each working set exceeds the 64 KB on-FPGA cache
    (otherwise the QPI bandwidth sweep of Fig. 10 is a no-op) while
    keeping full six-app sweeps to seconds of simulation.  [Small] is
    used by the test suite, [Default] by the benchmark harness. *)

type scale =
  | Small
  | Medium  (** the Fig. 10 sweep scale: above-cache working sets, 4x cheaper runs *)
  | Default
  | Large  (** ~1M-node road grid for the graph apps (compiled engine) *)
  | Huge  (** ~4.2M-node road grid — the paper-scale regime *)

val scale_of_string : string -> (scale, string) result

val scale_name : scale -> string
(** Inverse of {!scale_of_string}. *)

val all : scale -> seed:int -> Agp_apps.App_instance.t list
(** The six paper benchmarks: SPEC-BFS, COOR-BFS, SPEC-SSSP, SPEC-MST,
    SPEC-DMR, COOR-LU. *)

val app_names : string list
(** The CLI names of {!all}, in the same order. *)

val find : string -> scale -> seed:int -> (Agp_apps.App_instance.t, string) result
(** Resolve one benchmark by its CLI name ([spec-bfs], [coor-lu], ...)
    and construct its workload; the error lists every known name.  The
    single lookup behind [agp run], [agp serve] admission and the
    loadgen client. *)

val bfs_graph : scale -> seed:int -> Agp_graph.Csr.t
(** The road-network graph shared by Table 1 and the BFS rows. *)

val spec_bfs : scale -> seed:int -> Agp_apps.App_instance.t

val coor_bfs : scale -> seed:int -> Agp_apps.App_instance.t

val spec_sssp : scale -> seed:int -> Agp_apps.App_instance.t

val spec_mst : scale -> seed:int -> Agp_apps.App_instance.t

val spec_dmr : scale -> seed:int -> Agp_apps.App_instance.t

val coor_lu : scale -> seed:int -> Agp_apps.App_instance.t
