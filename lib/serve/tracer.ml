module Json = Agp_obs.Json
module Chrome_trace = Agp_obs.Chrome_trace

(* Collects per-request wall-clock phase spans from the shard threads
   and writes one Chrome trace file when the daemon drains.  Times are
   kept as epoch seconds until export, then rebased to the tracer's
   creation time in microseconds. *)

type t = {
  dir : string;
  epoch : float;
  max_requests : int;
  mutex : Mutex.t;
  mutable requests : Chrome_trace.request_trace list; (* reverse order *)
  mutable n : int;
  mutable dropped : int;
}

let create ?(max_requests = 10_000) ~dir () =
  if max_requests < 1 then invalid_arg "Tracer.create: max_requests must be >= 1";
  {
    dir;
    epoch = Unix.gettimeofday ();
    max_requests;
    mutex = Mutex.create ();
    requests = [];
    n = 0;
    dropped = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let us_of t at = int_of_float (Float.max 0.0 (at -. t.epoch) *. 1e6)

let record t ~id ~shard ~batch ~phases =
  locked t (fun () ->
      if t.n >= t.max_requests then t.dropped <- t.dropped + 1
      else begin
        let spans =
          List.map
            (fun (phase, at0, at1) ->
              {
                Chrome_trace.rs_phase = phase;
                rs_start_us = us_of t at0;
                rs_dur_us = us_of t at1 - us_of t at0;
                rs_args = [ ("shard", Json.Int shard); ("batch", Json.Int batch) ];
              })
            phases
        in
        t.requests <- { Chrome_trace.rt_id = id; rt_spans = spans } :: t.requests;
        t.n <- t.n + 1
      end)

let request_count t = locked t (fun () -> t.n)

let dropped t = locked t (fun () -> t.dropped)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let path t = Filename.concat t.dir "serve-trace.json"

let flush t =
  let requests = locked t (fun () -> List.rev t.requests) in
  let doc = Chrome_trace.requests_to_json ~trace_name:"agp-serve" requests in
  let file = path t in
  try
    mkdir_p t.dir;
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string doc);
        output_char oc '\n');
    Ok file
  with Sys_error e | Unix.Unix_error (_, e, _) -> Error e
