module Backend = Agp_backend.Backend
module Workloads = Agp_exp.Workloads
module Span = Agp_obs.Span
module Log = Agp_obs.Log

type job = {
  req : Protocol.run_request;
  submitted_at : float;
  respond : Protocol.response -> unit;
}

type config = { shards : int; max_batch : int }

let default_config = { shards = 4; max_batch = 8 }

type t = { threads : Thread.t list }

(* Batch key: requests that share workload construction.  The backend is
   deliberately not part of the key — Backend.run executes each request
   on a fresh instance, so one built workload serves them all. *)
let compatible a b =
  a.req.Protocol.app = b.req.Protocol.app
  && a.req.Protocol.scale = b.req.Protocol.scale
  && a.req.Protocol.seed = b.req.Protocol.seed

let ms_since t0 = (Unix.gettimeofday () -. t0) *. 1000.0

let bad_request (job : job) message =
  Protocol.Error_reply
    { id = Some job.req.Protocol.id; kind = Protocol.Bad_request; message; line = None; col = None }

let execute ~shard ~batch ~build_ms ~spans ~log app (job : job) =
  let req = job.req in
  let t0 = Unix.gettimeofday () in
  match Backend.find req.Protocol.backend with
  | Error e -> bad_request job e
  | Ok b -> begin
      let want_obs = req.Protocol.obs && b.Backend.capabilities.Backend.obs_report in
      let finish verdict (res : Backend.run_result option) =
        let exec_ms = ms_since t0 in
        Span.record spans ~phase:"execute" exec_ms;
        Protocol.Result
          {
            Protocol.out_id = req.Protocol.id;
            verdict;
            backend = b.Backend.name;
            seconds = Option.bind res (fun r -> r.Backend.seconds);
            tasks = Option.bind res (fun r -> r.Backend.tasks_run);
            batch;
            shard;
            timing =
              {
                Protocol.queue_ms = (t0 -. job.submitted_at) *. 1000.0 -. build_ms;
                build_ms;
                exec_ms;
              };
            report =
              Option.bind res (fun r ->
                  Option.map Agp_obs.Report.to_json r.Backend.obs);
          }
      in
      match Backend.run ~obs:want_obs ~request_id:req.Protocol.id b app with
      | exception Backend.Unsupported { reason; _ } ->
          finish (Protocol.Unsupported reason) None
      | exception Agp_core.Runtime.Deadlock msg -> finish (Protocol.Liveness msg) None
      | exception Agp_core.Runtime.Step_limit_exceeded n ->
          finish
            (Protocol.Liveness
               (Printf.sprintf "step limit %d exceeded without quiescing" n))
            None
      | exception exn ->
          Log.error log ~req:req.Protocol.id
            ~fields:[ ("backend", Agp_obs.Json.String b.Backend.name) ]
            (Printf.sprintf "substrate crashed: %s" (Printexc.to_string exn));
          Protocol.Error_reply
            {
              id = Some req.Protocol.id;
              kind = Protocol.Internal;
              message = Printexc.to_string exn;
              line = None;
              col = None;
            }
      | res ->
          let verdict =
            if not b.Backend.capabilities.Backend.validates then Protocol.Valid
            else
              match res.Backend.check with
              | Ok () -> Protocol.Valid
              | Error e -> Protocol.Invalid e
          in
          finish verdict (Some res)
    end

let shard_loop config ~spans ~log ~tracer ~admission ~on_complete shard =
  let rec loop () =
    match Admission.take_batch admission ~max:config.max_batch ~compatible with
    | [] -> ()  (* closed and drained *)
    | jobs ->
        let head = List.hd jobs in
        let t_build = Unix.gettimeofday () in
        let built =
          match Workloads.scale_of_string head.req.Protocol.scale with
          | Error e -> Error e
          | Ok scale ->
              Workloads.find head.req.Protocol.app scale ~seed:head.req.Protocol.seed
        in
        let build_ms = ms_since t_build in
        Span.record spans ~phase:"build" build_ms;
        let t_built = t_build +. (build_ms /. 1000.0) in
        let batch = List.length jobs in
        List.iter
          (fun job ->
            Span.record spans ~phase:"queue" ((t_build -. job.submitted_at) *. 1000.0);
            let t_exec = Unix.gettimeofday () in
            let response =
              match built with
              | Error e -> bad_request job e  (* admission validated; defensive *)
              | Ok app -> execute ~shard ~batch ~build_ms ~spans ~log app job
            in
            let t_done = Unix.gettimeofday () in
            (match tracer with
            | Some tr ->
                (* the same three phases Span aggregates, but scoped to
                   this request id for the Chrome trace *)
                Tracer.record tr ~id:job.req.Protocol.id ~shard ~batch
                  ~phases:
                    [
                      ("queue", job.submitted_at, t_build);
                      ("build", t_build, t_built);
                      ("execute", t_exec, t_done);
                    ]
            | None -> ());
            Log.debug log ~req:job.req.Protocol.id
              ~fields:
                [
                  ("shard", Agp_obs.Json.Int shard);
                  ("batch", Agp_obs.Json.Int batch);
                  ("ms", Agp_obs.Json.Float ((t_done -. job.submitted_at) *. 1000.0));
                ]
              "request executed";
            on_complete job response)
          jobs;
        loop ()
  in
  loop ()

let start ?(log = Log.null) ?tracer config ~spans ~admission ~on_complete =
  let shards = max 1 config.shards in
  let config = { shards; max_batch = max 1 config.max_batch } in
  {
    threads =
      List.init shards (fun i ->
          Thread.create
            (fun () -> shard_loop config ~spans ~log ~tracer ~admission ~on_complete i)
            ());
  }

let join t = List.iter Thread.join t.threads
