(** Per-request Chrome trace collection for the serve daemon.

    Shard threads {!record} each request's wall-clock phase spans
    (queue / build / execute, as epoch-second intervals); {!flush}
    writes the whole capture as one Trace Event Format file —
    [<dir>/serve-trace.json] via
    {!Agp_obs.Chrome_trace.requests_to_json} — when the daemon drains.
    Timestamps are rebased to the tracer's creation time, in
    microseconds, so the file opens directly in Perfetto. *)

type t

val create : ?max_requests:int -> dir:string -> unit -> t
(** Capture at most [max_requests] (default 10000) requests; beyond
    that new requests are counted in {!dropped} instead of growing the
    capture without bound.  [dir] is created on {!flush}. *)

val record :
  t -> id:string -> shard:int -> batch:int -> phases:(string * float * float) list -> unit
(** [record t ~id ~shard ~batch ~phases] adds one request's spans;
    each phase is [(name, start, finish)] in epoch seconds.
    Thread-safe. *)

val request_count : t -> int

val dropped : t -> int

val path : t -> string
(** Where {!flush} writes. *)

val flush : t -> (string, string) result
(** Write the capture (creating [dir] if needed); returns the file
    path.  Subsequent records keep accumulating — flush again for a
    later snapshot. *)
