module Json = Agp_obs.Json
module Span = Agp_obs.Span

(* v2: metrics request/reply (Prometheus text exposition). *)
let protocol_version = 2

type hello = { client : string; version : string; protocol : int }

type run_request = {
  id : string;
  tenant : string;
  app : string;
  scale : string;
  seed : int;
  backend : string;
  obs : bool;
}

type request =
  | Hello of hello
  | Run of run_request
  | Stats
  | Metrics
  | Ping
  | Shutdown

type verdict =
  | Valid
  | Invalid of string
  | Liveness of string
  | Unsupported of string

let exit_code = function
  | Valid -> 0
  | Invalid _ -> 1
  | Liveness _ -> 3
  | Unsupported _ -> 1

type timing = { queue_ms : float; build_ms : float; exec_ms : float }

type outcome = {
  out_id : string;
  verdict : verdict;
  backend : string;
  seconds : float option;
  tasks : int option;
  batch : int;
  shard : int;
  timing : timing;
  report : Json.t option;
}

type shed_reason =
  | Queue_full of { depth : int; watermark : int }
  | Quota_exceeded of { tenant : string; in_flight : int; quota : int }
  | Draining

type error_kind = Parse | Bad_request | Incompatible | Internal

type stats = {
  uptime_ms : float;
  accepted : int;
  completed : int;
  shed : int;
  errors : int;
  depth : int;
  in_flight : int;
  spans : Span.summary list;
}

type response =
  | Hello_ack of { server : string; version : string; protocol : int; schema : int }
  | Result of outcome
  | Overloaded of { id : string; reason : shed_reason; retry_after_ms : float }
  | Stats_reply of stats
  | Metrics_reply of { text : string }
  | Pong
  | Shutdown_ack of { completed : int }
  | Error_reply of {
      id : string option;
      kind : error_kind;
      message : string;
      line : int option;
      col : int option;
    }

(* --- encoding --- *)

let opt field conv = function
  | Some v -> [ (field, conv v) ]
  | None -> []

let request_to_json = function
  | Hello h ->
      Json.Obj
        [
          ("type", Json.String "hello");
          ("client", Json.String h.client);
          ("version", Json.String h.version);
          ("protocol", Json.Int h.protocol);
        ]
  | Run r ->
      Json.Obj
        [
          ("type", Json.String "run");
          ("id", Json.String r.id);
          ("tenant", Json.String r.tenant);
          ("app", Json.String r.app);
          ("scale", Json.String r.scale);
          ("seed", Json.Int r.seed);
          ("backend", Json.String r.backend);
          ("obs", Json.Bool r.obs);
        ]
  | Stats -> Json.Obj [ ("type", Json.String "stats") ]
  | Metrics -> Json.Obj [ ("type", Json.String "metrics") ]
  | Ping -> Json.Obj [ ("type", Json.String "ping") ]
  | Shutdown -> Json.Obj [ ("type", Json.String "shutdown") ]

let verdict_fields = function
  | Valid -> [ ("status", Json.String "valid") ]
  | Invalid d -> [ ("status", Json.String "invalid"); ("detail", Json.String d) ]
  | Liveness d -> [ ("status", Json.String "liveness"); ("detail", Json.String d) ]
  | Unsupported d -> [ ("status", Json.String "unsupported"); ("detail", Json.String d) ]

let shed_fields = function
  | Queue_full { depth; watermark } ->
      [
        ("reason", Json.String "queue-full");
        ("depth", Json.Int depth);
        ("watermark", Json.Int watermark);
      ]
  | Quota_exceeded { tenant; in_flight; quota } ->
      [
        ("reason", Json.String "quota");
        ("tenant", Json.String tenant);
        ("in_flight", Json.Int in_flight);
        ("quota", Json.Int quota);
      ]
  | Draining -> [ ("reason", Json.String "draining") ]

let kind_name = function
  | Parse -> "parse"
  | Bad_request -> "bad-request"
  | Incompatible -> "incompatible"
  | Internal -> "internal"

let response_to_json = function
  | Hello_ack a ->
      Json.Obj
        [
          ("type", Json.String "hello");
          ("server", Json.String a.server);
          ("version", Json.String a.version);
          ("protocol", Json.Int a.protocol);
          ("schema", Json.Int a.schema);
        ]
  | Result o ->
      Json.Obj
        (List.concat
           [
             [ ("type", Json.String "result"); ("id", Json.String o.out_id) ];
             verdict_fields o.verdict;
             [ ("exit_code", Json.Int (exit_code o.verdict)) ];
             [ ("backend", Json.String o.backend) ];
             opt "seconds" (fun s -> Json.Float s) o.seconds;
             opt "tasks" (fun n -> Json.Int n) o.tasks;
             [
               ("batch", Json.Int o.batch);
               ("shard", Json.Int o.shard);
               ("queue_ms", Json.Float o.timing.queue_ms);
               ("build_ms", Json.Float o.timing.build_ms);
               ("exec_ms", Json.Float o.timing.exec_ms);
             ];
             opt "report" Fun.id o.report;
           ])
  | Overloaded o ->
      Json.Obj
        (List.concat
           [
             [ ("type", Json.String "overloaded"); ("id", Json.String o.id) ];
             shed_fields o.reason;
             [ ("retry_after_ms", Json.Float o.retry_after_ms) ];
           ])
  | Stats_reply s ->
      Json.Obj
        [
          ("type", Json.String "stats");
          ("uptime_ms", Json.Float s.uptime_ms);
          ("accepted", Json.Int s.accepted);
          ("completed", Json.Int s.completed);
          ("shed", Json.Int s.shed);
          ("errors", Json.Int s.errors);
          ("depth", Json.Int s.depth);
          ("in_flight", Json.Int s.in_flight);
          ("spans", Span.to_json s.spans);
        ]
  | Metrics_reply m ->
      Json.Obj [ ("type", Json.String "metrics"); ("text", Json.String m.text) ]
  | Pong -> Json.Obj [ ("type", Json.String "pong") ]
  | Shutdown_ack a ->
      Json.Obj [ ("type", Json.String "shutdown"); ("completed", Json.Int a.completed) ]
  | Error_reply e ->
      Json.Obj
        (List.concat
           [
             [ ("type", Json.String "error") ];
             opt "id" (fun s -> Json.String s) e.id;
             [ ("kind", Json.String (kind_name e.kind)); ("message", Json.String e.message) ];
             opt "line" (fun n -> Json.Int n) e.line;
             opt "col" (fun n -> Json.Int n) e.col;
           ])

(* --- decoding --- *)

let ( let* ) = Result.bind

let str_field j k =
  match Option.bind (Json.member k j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" k)

let str_default j k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_str)
let int_default j k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_int)

let int_field j k =
  match Option.bind (Json.member k j) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing integer field %S" k)

let float_field j k =
  match Option.bind (Json.member k j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing numeric field %S" k)

let bool_default j k d =
  match Json.member k j with
  | Some (Json.Bool b) -> b
  | _ -> d

let request_of_json j =
  match Option.bind (Json.member "type" j) Json.to_str with
  | None -> Error "request needs a string \"type\" field (hello|run|stats|metrics|ping|shutdown)"
  | Some "hello" ->
      let* protocol = int_field j "protocol" in
      Ok
        (Hello
           {
             client = str_default j "client" "unknown";
             version = str_default j "version" "unknown";
             protocol;
           })
  | Some "run" ->
      let* id = str_field j "id" in
      let* app = str_field j "app" in
      Ok
        (Run
           {
             id;
             tenant = str_default j "tenant" "anon";
             app;
             scale = str_default j "scale" "small";
             seed = int_default j "seed" 42;
             backend = str_default j "backend" "simulator";
             obs = bool_default j "obs" false;
           })
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some "ping" -> Ok Ping
  | Some "shutdown" -> Ok Shutdown
  | Some other -> Error (Printf.sprintf "unknown request type %S" other)

let verdict_of_json j =
  let detail () = str_default j "detail" "" in
  match Option.bind (Json.member "status" j) Json.to_str with
  | Some "valid" -> Ok Valid
  | Some "invalid" -> Ok (Invalid (detail ()))
  | Some "liveness" -> Ok (Liveness (detail ()))
  | Some "unsupported" -> Ok (Unsupported (detail ()))
  | Some other -> Error (Printf.sprintf "unknown result status %S" other)
  | None -> Error "result needs a string \"status\" field"

let shed_of_json j =
  match Option.bind (Json.member "reason" j) Json.to_str with
  | Some "queue-full" ->
      let* depth = int_field j "depth" in
      let* watermark = int_field j "watermark" in
      Ok (Queue_full { depth; watermark })
  | Some "quota" ->
      let* tenant = str_field j "tenant" in
      let* in_flight = int_field j "in_flight" in
      let* quota = int_field j "quota" in
      Ok (Quota_exceeded { tenant; in_flight; quota })
  | Some "draining" -> Ok Draining
  | Some other -> Error (Printf.sprintf "unknown shed reason %S" other)
  | None -> Error "overloaded response needs a string \"reason\" field"

let kind_of_name = function
  | "parse" -> Ok Parse
  | "bad-request" -> Ok Bad_request
  | "incompatible" -> Ok Incompatible
  | "internal" -> Ok Internal
  | other -> Error (Printf.sprintf "unknown error kind %S" other)

let response_of_json j =
  match Option.bind (Json.member "type" j) Json.to_str with
  | None -> Error "response needs a string \"type\" field"
  | Some "hello" ->
      let* protocol = int_field j "protocol" in
      let* schema = int_field j "schema" in
      Ok
        (Hello_ack
           {
             server = str_default j "server" "unknown";
             version = str_default j "version" "unknown";
             protocol;
             schema;
           })
  | Some "result" ->
      let* out_id = str_field j "id" in
      let* verdict = verdict_of_json j in
      let* backend = str_field j "backend" in
      let* batch = int_field j "batch" in
      let* shard = int_field j "shard" in
      let* queue_ms = float_field j "queue_ms" in
      let* build_ms = float_field j "build_ms" in
      let* exec_ms = float_field j "exec_ms" in
      Ok
        (Result
           {
             out_id;
             verdict;
             backend;
             seconds = Option.bind (Json.member "seconds" j) Json.to_float;
             tasks = Option.bind (Json.member "tasks" j) Json.to_int;
             batch;
             shard;
             timing = { queue_ms; build_ms; exec_ms };
             report = Json.member "report" j;
           })
  | Some "overloaded" ->
      let* id = str_field j "id" in
      let* reason = shed_of_json j in
      let* retry_after_ms = float_field j "retry_after_ms" in
      Ok (Overloaded { id; reason; retry_after_ms })
  | Some "stats" ->
      let* uptime_ms = float_field j "uptime_ms" in
      let* accepted = int_field j "accepted" in
      let* completed = int_field j "completed" in
      let* shed = int_field j "shed" in
      let* errors = int_field j "errors" in
      let* depth = int_field j "depth" in
      let* in_flight = int_field j "in_flight" in
      let* spans =
        match Json.member "spans" j with
        | Some sj -> Span.of_json sj
        | None -> Ok []
      in
      Ok
        (Stats_reply
           { uptime_ms; accepted; completed; shed; errors; depth; in_flight; spans })
  | Some "metrics" ->
      let* text = str_field j "text" in
      Ok (Metrics_reply { text })
  | Some "pong" -> Ok Pong
  | Some "shutdown" ->
      let* completed = int_field j "completed" in
      Ok (Shutdown_ack { completed })
  | Some "error" ->
      let* kind =
        match Option.bind (Json.member "kind" j) Json.to_str with
        | Some k -> kind_of_name k
        | None -> Error "error response needs a string \"kind\" field"
      in
      let* message = str_field j "message" in
      Ok
        (Error_reply
           {
             id = Option.bind (Json.member "id" j) Json.to_str;
             kind;
             message;
             line = Option.bind (Json.member "line" j) Json.to_int;
             col = Option.bind (Json.member "col" j) Json.to_int;
           })
  | Some other -> Error (Printf.sprintf "unknown response type %S" other)

let response_of_string s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> response_of_json j

let read_request line =
  match Json.parse_located line with
  | Error e ->
      Error
        (Error_reply
           {
             id = None;
             kind = Parse;
             message = e.Json.err_reason;
             line = Some e.Json.err_line;
             col = Some e.Json.err_col;
           })
  | Ok j -> begin
      match request_of_json j with
      | Ok r -> Ok r
      | Error msg ->
          Error
            (Error_reply
               {
                 id = Option.bind (Json.member "id" j) Json.to_str;
                 kind = Bad_request;
                 message = msg;
                 line = None;
                 col = None;
               })
    end

let write r = Json.to_string (response_to_json r)
let write_request r = Json.to_string (request_to_json r)
