(** The always-on accelerator daemon: a socket front-end wiring
    {!Protocol} (NDJSON framing) to {!Admission} (backpressure) and
    {!Scheduler} (batched shard execution).

    The request path never blocks on execution: a connection thread
    parses a line, validates it (scale, application, backend — each
    failure is a typed {!Protocol.Error_reply} carrying the same
    self-describing messages the CLI prints), and either admits the job
    or sheds it with a typed [Overloaded] carrying a retry hint derived
    from observed execution time.  Results stream back on the
    submitting connection as shards finish them, interleaved in
    completion order — clients correlate by request id.

    {!handle_line} is the whole per-line state machine, independent of
    any socket, so the protocol and admission behavior are unit-testable
    without I/O (see [test/test_serve.ml]). *)

type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or any string containing ['/'] is a Unix-domain
    socket path; ["HOST:PORT"], [":PORT"] or ["PORT"] is TCP (host
    defaults to 127.0.0.1). *)

val addr_to_string : addr -> string

type config = {
  admission : Admission.config;
  scheduler : Scheduler.config;
}

val default_config : config

type t

val create : ?config:config -> ?log:Agp_obs.Log.t -> ?trace_dir:string -> unit -> t
(** Build the admission queue and start the shard pool; no socket yet.
    [log] (default {!Agp_obs.Log.null}) receives leveled NDJSON lines
    correlated by request id; [trace_dir] enables per-request Chrome
    tracing — the capture is written to [<trace_dir>/serve-trace.json]
    when the daemon drains. *)

val handle_line : t -> respond:(Protocol.response -> unit) -> ?on_admit:(unit -> unit) ->
  ?on_settle:(unit -> unit) -> string -> [ `Continue | `Shutdown ]
(** Process one request line; [respond] is called synchronously for
    immediate replies (errors, sheds, pong, stats, hello) and later —
    from a shard thread — for admitted run results.  [on_admit] fires
    when a run request is admitted, [on_settle] when its (single)
    response has been delivered; the socket layer uses the pair to keep
    a connection open until its in-flight results have flushed.
    [`Shutdown] means a shutdown request was served: the daemon has
    stopped admitting, drained, and replied. *)

val stats : t -> Protocol.stats

val telemetry : t -> Agp_obs.Telemetry.t
(** The daemon's live registry + rolling windows:
    [serve.requests_{accepted,completed,shed}_total] / [serve.errors_total]
    counters, [serve.{queue_depth,in_flight,uptime_seconds}] gauges
    (set at scrape time), and 60 s windows [serve.latency_ms] /
    [serve.queue_ms] / [serve.exec_ms]. *)

val prometheus : t -> string
(** Refresh the point-in-time gauges and render the whole surface as
    Prometheus text exposition — the [metrics] protocol reply and the
    body behind [agp stats]. *)

val tracer : t -> Tracer.t option

val shutdown : t -> unit
(** Close admission, drain the shard pool and wake the accept loop.
    Idempotent, callable from any thread. *)

val is_listening : t -> bool

val listen : t -> addr:addr -> unit
(** Bind, accept, and serve until {!shutdown} (or a [shutdown] request)
    — one thread per connection, blocking the caller.  Unix socket
    paths are unlinked before bind and after exit. *)
