(** The serve wire protocol: newline-delimited JSON over a Unix or TCP
    socket, one request or response object per line.

    Requests are small and flat; responses carry the uniform run
    verdict (mirroring the [agp run] exit codes), server-side timing
    decomposition, and — on request — the full schema-versioned
    {!Agp_obs.Report} JSON inline, so the daemon's wire format is the
    same artifact the rest of the toolkit archives and diffs.

    Compatibility is checked at handshake time: the client's [hello]
    names the protocol version it speaks, the server's [hello] reply
    carries its own protocol and obs-report schema versions (see
    [agp version]). *)

module Json = Agp_obs.Json

val protocol_version : int
(** v2: added the [metrics] request/reply pair (Prometheus text
    exposition of the daemon's live telemetry). *)

(** {1 Requests} *)

type hello = { client : string; version : string; protocol : int }

type run_request = {
  id : string;  (** client-chosen; echoed in the matching response *)
  tenant : string;
  app : string;  (** a {!Agp_exp.Workloads} name, e.g. ["spec-bfs"] *)
  scale : string;  (** ["small"] / ["medium"] / ["default"] *)
  seed : int;
  backend : string;  (** an {!Agp_backend.Backend.find} name *)
  obs : bool;  (** attach the obs run report to the result *)
}

type request =
  | Hello of hello
  | Run of run_request
  | Stats  (** snapshot of server counters and request-level spans *)
  | Metrics
      (** Prometheus text exposition of the daemon's registry and
          rolling windows ({!Agp_obs.Telemetry}) *)
  | Ping
  | Shutdown  (** drain admitted work, reply, stop the daemon *)

(** {1 Responses} *)

type verdict =
  | Valid
  | Invalid of string
  | Liveness of string  (** deadlock or step-limit in the substrate *)
  | Unsupported of string  (** backend refused the app *)

val exit_code : verdict -> int
(** The [agp run] exit-code equivalent: 0 valid, 1 invalid/unsupported,
    3 liveness. *)

type timing = {
  queue_ms : float;  (** admission to batch pick-up *)
  build_ms : float;  (** workload construction (amortized per batch) *)
  exec_ms : float;  (** substrate execution *)
}

type outcome = {
  out_id : string;
  verdict : verdict;
  backend : string;  (** resolved backend name *)
  seconds : float option;  (** substrate time, when the backend is timed *)
  tasks : int option;
  batch : int;  (** size of the batch this request rode in *)
  shard : int;  (** worker shard that executed it *)
  timing : timing;
  report : Json.t option;  (** obs run report, when requested *)
}

type shed_reason =
  | Queue_full of { depth : int; watermark : int }
  | Quota_exceeded of { tenant : string; in_flight : int; quota : int }
  | Draining  (** server is shutting down *)

type error_kind =
  | Parse  (** malformed JSON line; [line]/[col] point at the byte *)
  | Bad_request  (** well-formed but invalid (unknown app/backend/...) *)
  | Incompatible  (** protocol version mismatch at handshake *)
  | Internal  (** substrate crash — the daemon survives it *)

type stats = {
  uptime_ms : float;
  accepted : int;
  completed : int;
  shed : int;
  errors : int;
  depth : int;  (** current admission-queue depth *)
  in_flight : int;  (** admitted but not yet finished *)
  spans : Agp_obs.Span.summary list;
}

type response =
  | Hello_ack of { server : string; version : string; protocol : int; schema : int }
  | Result of outcome
  | Overloaded of { id : string; reason : shed_reason; retry_after_ms : float }
  | Stats_reply of stats
  | Metrics_reply of { text : string }
      (** Prometheus exposition; transported as one JSON string so the
          wire stays line-delimited *)
  | Pong
  | Shutdown_ack of { completed : int }
  | Error_reply of {
      id : string option;
      kind : error_kind;
      message : string;
      line : int option;
      col : int option;
    }

(** {1 Codec} *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val response_of_string : string -> (response, string) result

val read_request : string -> (request, response) result
(** Decode one wire line.  On failure the error is the exact typed
    {!Error_reply} response the server should send back: parse failures carry
    the line/column from {!Json.parse_located}, semantic failures echo
    the request id when one was present. *)

val write : response -> string
(** One compact JSON line (no trailing newline). *)

val write_request : request -> string
