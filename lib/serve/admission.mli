(** Admission control: a bounded request queue with watermark shedding,
    per-tenant in-flight quotas, and blocking batched dequeue.

    This is the backpressure half of the serve loop (DPU-v2's lesson:
    admission and batching, not raw kernel speed, dominate sustained
    throughput for irregular workloads).  A request is either admitted —
    counted against its tenant's quota until {!finish} — or shed
    immediately with a typed {!Protocol.shed_reason}; the daemon never
    buffers unboundedly and never blocks the accept path on execution.

    All operations are thread-safe; {!take_batch} is the only blocking
    call (worker shards park in it). *)

type config = {
  queue_depth : int;  (** hard bound on queued (not yet picked up) requests *)
  shed_watermark : int;
      (** shed once depth reaches this; clamped to [queue_depth].  A
          watermark below the depth starts shedding before the queue is
          hard-full, keeping admission latency bounded under overload. *)
  tenant_quota : int;  (** max in-flight (queued + executing) per tenant *)
}

val default_config : config
(** 256-deep queue, watermark at depth, 64 in-flight per tenant. *)

type 'a t

val create : config -> 'a t

val submit : 'a t -> tenant:string -> 'a -> (unit, Protocol.shed_reason) result
(** Admit or shed, never block.  Sheds [Queue_full] at the watermark,
    [Quota_exceeded] when the tenant is at quota, [Draining] after
    {!close}. *)

val take_batch : 'a t -> max:int -> compatible:('a -> 'a -> bool) -> 'a list
(** Block until at least one request is queued (or the queue is closed),
    then dequeue the head plus up to [max - 1] further queued requests
    [compatible] with it, preserving arrival order of what remains.
    Returns [[]] only when the queue is closed and drained — the worker
    shard's signal to exit. *)

val finish : 'a t -> tenant:string -> unit
(** Release one unit of [tenant]'s quota; call exactly once per admitted
    request, after its response is settled. *)

val depth : 'a t -> int
(** Currently queued (admitted, not yet picked up by a shard). *)

val in_flight : 'a t -> int
(** Admitted and not yet finished (queued + executing). *)

val close : 'a t -> unit
(** Stop admitting ([Draining]); queued work still drains through
    {!take_batch}.  Idempotent. *)
