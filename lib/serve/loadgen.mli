(** Load generator for {!Server}: a protocol client plus open-loop and
    closed-loop drivers and a saturation sweep.

    Open-loop mode offers requests at a fixed arrival rate regardless of
    completions, which is what exposes a saturation knee: past capacity
    the daemon must shed (typed [Overloaded]) rather than let latency
    grow without bound.  Closed-loop mode keeps a fixed number of
    outstanding requests per connection — a throughput probe.  The
    saturation sweep runs open-loop at increasing offered rates and
    emits a schema-versioned {!Agp_obs.Report} whose sections carry
    [rps] / [p..._ms] / [shed] keys, so [agp diff] gates
    serving-throughput regressions like any other benchmark. *)

(** A connected protocol client (one socket, NDJSON framing). *)
type conn

val connect : Server.addr -> (conn, string) result

val connect_retry : ?attempts:int -> ?delay_s:float -> Server.addr -> (conn, string) result
(** Retry [connect] while the daemon is still coming up
    (default 50 attempts, 0.1 s apart). *)

val handshake : ?client:string -> conn -> (Protocol.response, string) result
(** Send [hello] and read the acknowledgement; an [Error_reply] with
    kind [Incompatible] is returned as [Ok] — callers decide. *)

val send : conn -> Protocol.request -> unit
val recv : ?timeout_s:float -> conn -> (Protocol.response, string) result
(** Blocking read of one response line; [Error] on EOF, parse failure
    or timeout. *)

val close : conn -> unit

(** Workload mix offered by the drivers. *)
type spec = {
  app : string;
  scale : string;
  seed : int;
  backend : string;
  tenant : string;
  obs : bool;
}

val default_spec : spec
(** spec-bfs / small / seed 42 / simulator / tenant "loadgen", no obs. *)

(** Outcome of one driver run at one offered load. *)
type summary = {
  label : string;
  offered_rps : float;  (** 0.0 in closed-loop mode *)
  duration_s : float;
  sent : int;
  ok : int;  (** [Result] responses with a Valid verdict *)
  failed : int;  (** [Result] with non-Valid verdict, or [Error_reply] *)
  shed : int;  (** typed [Overloaded] responses *)
  lost : int;  (** sent but no response before the drain deadline *)
  achieved_rps : float;  (** responses (ok+failed) per second *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val percentile_ms : float list -> float -> float
(** The drivers' latency percentile: nearest-rank
    ({!Agp_util.Stats.percentile_nearest}) over the raw samples.  Total
    at any sample count — 0 for no samples, the single sample for
    n = 1, and p99 equal to the max for small n. *)

val open_loop :
  ?spec:spec -> addr:Server.addr -> rate:float -> duration_s:float -> unit ->
  (summary, string) result
(** Offer [rate] requests/sec for [duration_s] seconds on one
    connection, reading responses concurrently; latency is measured
    send-to-response per request id. *)

val closed_loop :
  ?spec:spec -> addr:Server.addr -> clients:int -> requests:int -> unit ->
  (summary, string) result
(** [clients] connections, each a synchronous send/recv loop issuing
    [requests] requests. *)

val saturation :
  ?spec:spec -> addr:Server.addr -> rates:float list -> duration_s:float -> unit ->
  (summary list, string) result
(** Run {!open_loop} once per offered rate, in order. *)

val render : summary list -> string
(** Human-readable table of a sweep. *)

val report : ?meta:(string * string) list -> summary list -> Agp_obs.Report.t
(** Wrap a sweep as a [serve-saturation] report: one section per rate
    with gated [rps] / latency / [shed] keys. *)

val fetch_metrics : ?timeout_s:float -> Server.addr -> (string, string) result
(** Connect, handshake, request the daemon's Prometheus exposition
    ([metrics] request) and return its text — the body of
    [agp stats]. *)

val shutdown : Server.addr -> (int, string) result
(** Connect, request shutdown, return the daemon's completed count. *)
