module Json = Agp_obs.Json
module Report = Agp_obs.Report
module Stats = Agp_util.Stats
module Table = Agp_util.Table

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wm : Mutex.t;
}

let sockaddr_of = function
  | Server.Unix_path p -> Unix.ADDR_UNIX p
  | Server.Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let domain_of = function
  | Server.Unix_path _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

let connect addr =
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  match Unix.connect fd (sockaddr_of addr) with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          wm = Mutex.create ();
        }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" (Server.addr_to_string addr)
           (Unix.error_message e))

let rec connect_retry ?(attempts = 50) ?(delay_s = 0.1) addr =
  match connect addr with
  | Ok c -> Ok c
  | Error _ as e when attempts <= 1 -> e
  | Error _ ->
      Thread.delay delay_s;
      connect_retry ~attempts:(attempts - 1) ~delay_s addr

let send conn req =
  Mutex.lock conn.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wm)
    (fun () ->
      output_string conn.oc (Protocol.write_request req);
      output_char conn.oc '\n';
      flush conn.oc)

let recv ?timeout_s conn =
  (match timeout_s with
  | Some s -> ( try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO s with Unix.Unix_error _ -> ())
  | None -> ());
  match input_line conn.ic with
  | line -> Protocol.response_of_string line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_blocked_io -> Error "read timed out"
  | exception Sys_error e -> Error (Printf.sprintf "read failed: %s" e)

let close conn =
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let handshake ?(client = "agp-loadgen") conn =
  send conn
    (Protocol.Hello
       { Protocol.client; version = Agp_util.Version.version; protocol = Protocol.protocol_version });
  recv ~timeout_s:5.0 conn

type spec = {
  app : string;
  scale : string;
  seed : int;
  backend : string;
  tenant : string;
  obs : bool;
}

let default_spec =
  { app = "spec-bfs"; scale = "small"; seed = 42; backend = "simulator";
    tenant = "loadgen"; obs = false }

type summary = {
  label : string;
  offered_rps : float;
  duration_s : float;
  sent : int;
  ok : int;
  failed : int;
  shed : int;
  lost : int;
  achieved_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let request_of_spec spec ~id =
  Protocol.Run
    {
      Protocol.id;
      tenant = spec.tenant;
      app = spec.app;
      scale = spec.scale;
      seed = spec.seed;
      backend = spec.backend;
      obs = spec.obs;
    }

(* Shared response accounting for both drivers: latency per request id,
   and the ok / failed / shed split. *)
type tally = {
  tm : Mutex.t;
  pending : (string, float) Hashtbl.t;  (* id -> send time *)
  mutable latencies_ms : float list;
  mutable ok : int;
  mutable failed : int;
  mutable shed : int;
}

let tally_create () =
  { tm = Mutex.create (); pending = Hashtbl.create 64; latencies_ms = [];
    ok = 0; failed = 0; shed = 0 }

let tally_sent t ~id ~at =
  Mutex.lock t.tm;
  Hashtbl.replace t.pending id at;
  Mutex.unlock t.tm

let tally_response t resp =
  let now = Unix.gettimeofday () in
  Mutex.lock t.tm;
  let settle id =
    match Hashtbl.find_opt t.pending id with
    | Some at ->
        Hashtbl.remove t.pending id;
        t.latencies_ms <- ((now -. at) *. 1000.0) :: t.latencies_ms
    | None -> ()
  in
  (match resp with
  | Protocol.Result o ->
      settle o.Protocol.out_id;
      (match o.Protocol.verdict with
      | Protocol.Valid -> t.ok <- t.ok + 1
      | Protocol.Invalid _ | Protocol.Liveness _ | Protocol.Unsupported _ ->
          t.failed <- t.failed + 1)
  | Protocol.Overloaded { id; _ } ->
      (* sheds are immediate refusals, not latency samples *)
      Hashtbl.remove t.pending id;
      t.shed <- t.shed + 1
  | Protocol.Error_reply { id; _ } ->
      Option.iter settle id;
      t.failed <- t.failed + 1
  | Protocol.Hello_ack _ | Protocol.Stats_reply _ | Protocol.Metrics_reply _
  | Protocol.Pong | Protocol.Shutdown_ack _ ->
      ());
  Mutex.unlock t.tm

let tally_pending t =
  Mutex.lock t.tm;
  let n = Hashtbl.length t.pending in
  Mutex.unlock t.tm;
  n

(* Nearest-rank over the raw samples: total at any n (0 samples -> 0,
   p99 of a handful of samples is their max), which is the honest
   answer for a short measurement window — interpolating between two
   latencies invents a value nobody observed. *)
let percentile_ms latencies p = Stats.percentile_nearest (Array.of_list latencies) p

let summarize t ~label ~offered_rps ~duration_s ~sent =
  let lat = Array.of_list t.latencies_ms in
  Array.sort compare lat;
  let pct p = percentile_ms t.latencies_ms p in
  let responded = t.ok + t.failed in
  {
    label;
    offered_rps;
    duration_s;
    sent;
    ok = t.ok;
    failed = t.failed;
    shed = t.shed;
    lost = sent - responded - t.shed;
    achieved_rps = (if duration_s > 0.0 then float_of_int responded /. duration_s else 0.0);
    p50_ms = pct 50.0;
    p90_ms = pct 90.0;
    p99_ms = pct 99.0;
    max_ms = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
  }

let drain_deadline_s = 60.0

let open_loop ?(spec = default_spec) ~addr ~rate ~duration_s () =
  if rate <= 0.0 then Error "open_loop: rate must be positive"
  else
    match connect_retry addr with
    | Error e -> Error e
    | Ok conn -> begin
        match handshake conn with
        | Error e ->
            close conn;
            Error (Printf.sprintf "handshake failed: %s" e)
        | Ok (Protocol.Error_reply { message; _ }) ->
            close conn;
            Error (Printf.sprintf "handshake refused: %s" message)
        | Ok _ ->
            let tally = tally_create () in
            let stop_reader = ref false in
            let reader =
              Thread.create
                (fun () ->
                  let rec loop () =
                    if not !stop_reader then
                      match recv ~timeout_s:0.25 conn with
                      | Ok resp -> tally_response tally resp; loop ()
                      | Error _ ->
                          (* timeout: poll the stop flag; EOF ends up here
                             too and the sender notices on write *)
                          loop ()
                  in
                  loop ())
                ()
            in
            let interval = 1.0 /. rate in
            let t_start = Unix.gettimeofday () in
            let deadline = t_start +. duration_s in
            let sent = ref 0 in
            (try
               while Unix.gettimeofday () < deadline do
                 let id = Printf.sprintf "r%d" !sent in
                 tally_sent tally ~id ~at:(Unix.gettimeofday ());
                 send conn (request_of_spec spec ~id);
                 incr sent;
                 let next = t_start +. (float_of_int !sent *. interval) in
                 let pause = next -. Unix.gettimeofday () in
                 if pause > 0.0 then Thread.delay pause
               done
             with Sys_error _ | Unix.Unix_error _ -> ());
            let wall = Unix.gettimeofday () -. t_start in
            (* let stragglers arrive before declaring them lost *)
            let drain_until = Unix.gettimeofday () +. drain_deadline_s in
            while tally_pending tally > 0 && Unix.gettimeofday () < drain_until do
              Thread.delay 0.02
            done;
            stop_reader := true;
            close conn;
            Thread.join reader;
            Ok
              (summarize tally
                 ~label:(Printf.sprintf "rate_%g" rate)
                 ~offered_rps:rate ~duration_s:wall ~sent:!sent)
      end

let closed_loop ?(spec = default_spec) ~addr ~clients ~requests () =
  if clients < 1 || requests < 1 then Error "closed_loop: clients and requests must be >= 1"
  else begin
    let tally = tally_create () in
    let errors = Mutex.create () in
    let first_error = ref None in
    let fail e =
      Mutex.lock errors;
      if !first_error = None then first_error := Some e;
      Mutex.unlock errors
    in
    let worker c () =
      match connect_retry addr with
      | Error e -> fail e
      | Ok conn -> begin
          match handshake conn with
          | Error e -> close conn; fail (Printf.sprintf "handshake failed: %s" e)
          | Ok (Protocol.Error_reply { message; _ }) ->
              close conn;
              fail (Printf.sprintf "handshake refused: %s" message)
          | Ok _ ->
              (try
                 for i = 0 to requests - 1 do
                   let id = Printf.sprintf "c%d-%d" c i in
                   tally_sent tally ~id ~at:(Unix.gettimeofday ());
                   send conn (request_of_spec spec ~id);
                   match recv ~timeout_s:drain_deadline_s conn with
                   | Ok resp -> tally_response tally resp
                   | Error e -> fail e; raise Exit
                 done
               with Exit | Sys_error _ | Unix.Unix_error _ -> ());
              close conn
        end
    in
    let t_start = Unix.gettimeofday () in
    let threads = List.init clients (fun c -> Thread.create (worker c) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t_start in
    match !first_error with
    | Some e -> Error e
    | None ->
        Ok
          (summarize tally
             ~label:(Printf.sprintf "closed_%dx%d" clients requests)
             ~offered_rps:0.0 ~duration_s:wall ~sent:(clients * requests))
  end

let saturation ?(spec = default_spec) ~addr ~rates ~duration_s () =
  let rec run acc = function
    | [] -> Ok (List.rev acc)
    | rate :: rest -> begin
        match open_loop ~spec ~addr ~rate ~duration_s () with
        | Error e -> Error e
        | Ok s -> run (s :: acc) rest
      end
  in
  run [] rates

let render summaries =
  let table =
    Table.create
      [ "offered/s"; "achieved/s"; "sent"; "ok"; "failed"; "shed"; "lost";
        "p50 ms"; "p90 ms"; "p99 ms" ]
  in
  List.iter
    (fun s ->
      Table.add_row table
        [
          (if s.offered_rps > 0.0 then Table.cell_float ~decimals:1 s.offered_rps
           else "closed");
          Table.cell_float ~decimals:1 s.achieved_rps;
          string_of_int s.sent;
          string_of_int s.ok;
          string_of_int s.failed;
          string_of_int s.shed;
          string_of_int s.lost;
          Table.cell_float s.p50_ms;
          Table.cell_float s.p90_ms;
          Table.cell_float s.p99_ms;
        ])
    summaries;
  Table.render table

let summary_to_json s =
  Json.Obj
    [
      ("offered_rps", Json.Float s.offered_rps);
      ("achieved_rps", Json.Float s.achieved_rps);
      ("duration_s", Json.Float s.duration_s);
      ("sent", Json.Int s.sent);
      ("ok", Json.Int s.ok);
      ("failed", Json.Int s.failed);
      ("shed", Json.Int s.shed);
      ("lost", Json.Int s.lost);
      ( "shed_rate",
        Json.Float
          (if s.sent > 0 then float_of_int s.shed /. float_of_int s.sent else 0.0) );
      ("p50_ms", Json.Float s.p50_ms);
      ("p90_ms", Json.Float s.p90_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ("max_ms", Json.Float s.max_ms);
    ]

let report ?(meta = []) summaries =
  Report.v ~kind:"serve-saturation" ~app:"loadgen"
    ~meta:(List.map (fun (k, v) -> (k, Json.String v)) meta)
    ~sections:(List.map (fun s -> (s.label, summary_to_json s)) summaries)
    ()

let fetch_metrics ?(timeout_s = 10.0) addr =
  match connect addr with
  | Error e -> Error e
  | Ok conn ->
      let finish r =
        close conn;
        r
      in
      let fail fmt = Printf.ksprintf (fun m -> finish (Error m)) fmt in
      begin
        match handshake ~client:"agp-stats" conn with
        | Error e -> fail "handshake failed: %s" e
        | Ok (Protocol.Error_reply { message; _ }) -> fail "handshake refused: %s" message
        | Ok _ -> begin
            send conn Protocol.Metrics;
            match recv ~timeout_s conn with
            | Ok (Protocol.Metrics_reply { text }) -> finish (Ok text)
            | Ok _ -> fail "unexpected reply to metrics request"
            | Error e -> fail "metrics request failed: %s" e
          end
      end

let shutdown addr =
  match connect addr with
  | Error e -> Error e
  | Ok conn ->
      send conn Protocol.Shutdown;
      let rec wait () =
        match recv ~timeout_s:drain_deadline_s conn with
        | Ok (Protocol.Shutdown_ack { completed }) -> Ok completed
        | Ok _ -> wait ()  (* late run results still flushing *)
        | Error e -> Error e
      in
      let r = wait () in
      close conn;
      r
