type config = { queue_depth : int; shed_watermark : int; tenant_quota : int }

let default_config = { queue_depth = 256; shed_watermark = 256; tenant_quota = 64 }

type 'a t = {
  config : config;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable queue : (string * 'a) list;  (* oldest first *)
  mutable qlen : int;
  tenants : (string, int) Hashtbl.t;  (* in-flight per tenant *)
  mutable inflight : int;
  mutable closed : bool;
}

let create config =
  let config =
    { config with shed_watermark = min config.shed_watermark config.queue_depth }
  in
  {
    config;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = [];
    qlen = 0;
    tenants = Hashtbl.create 16;
    inflight = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let tenant_load t tenant = Option.value ~default:0 (Hashtbl.find_opt t.tenants tenant)

let submit t ~tenant x =
  locked t (fun () ->
      if t.closed then Error Protocol.Draining
      else
        let load = tenant_load t tenant in
        if load >= t.config.tenant_quota then
          Error
            (Protocol.Quota_exceeded
               { tenant; in_flight = load; quota = t.config.tenant_quota })
        else if t.qlen >= t.config.shed_watermark then
          Error
            (Protocol.Queue_full
               { depth = t.qlen; watermark = t.config.shed_watermark })
        else begin
          t.queue <- t.queue @ [ (tenant, x) ];
          t.qlen <- t.qlen + 1;
          Hashtbl.replace t.tenants tenant (load + 1);
          t.inflight <- t.inflight + 1;
          Condition.signal t.nonempty;
          Ok ()
        end)

let take_batch t ~max ~compatible =
  if max < 1 then invalid_arg "Admission.take_batch: max < 1";
  locked t (fun () ->
      while t.qlen = 0 && not t.closed do
        Condition.wait t.nonempty t.mutex
      done;
      match t.queue with
      | [] -> []  (* closed and drained *)
      | (_, head) :: rest ->
          let taken = ref [ head ] and kept = ref [] and count = ref 1 in
          List.iter
            (fun ((_, x) as entry) ->
              if !count < max && compatible head x then begin
                taken := x :: !taken;
                incr count
              end
              else kept := entry :: !kept)
            rest;
          t.queue <- List.rev !kept;
          t.qlen <- t.qlen - !count;
          List.rev !taken)

let finish t ~tenant =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tenants tenant with
      | Some n when n > 1 -> Hashtbl.replace t.tenants tenant (n - 1)
      | Some _ -> Hashtbl.remove t.tenants tenant
      | None -> ());
      if t.inflight > 0 then t.inflight <- t.inflight - 1)

let depth t = locked t (fun () -> t.qlen)
let in_flight t = locked t (fun () -> t.inflight)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)
