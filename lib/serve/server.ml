module Backend = Agp_backend.Backend
module Workloads = Agp_exp.Workloads
module Span = Agp_obs.Span
module Log = Agp_obs.Log
module Json = Agp_obs.Json
module Metrics = Agp_obs.Metrics
module Window = Agp_obs.Window
module Telemetry = Agp_obs.Telemetry

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  let tcp host port =
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
    | Some _ | None -> Error (Printf.sprintf "bad TCP port %S" port)
  in
  if String.starts_with ~prefix:"unix:" s then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.starts_with ~prefix:"tcp:" s then begin
    match String.split_on_char ':' (String.sub s 4 (String.length s - 4)) with
    | [ host; port ] -> tcp host port
    | [ port ] -> tcp "127.0.0.1" port
    | _ -> Error (Printf.sprintf "bad TCP address %S (want tcp:HOST:PORT)" s)
  end
  else if String.contains s '/' then Ok (Unix_path s)
  else
    match String.split_on_char ':' s with
    | [ host; port ] -> tcp (if host = "" then "127.0.0.1" else host) port
    | [ port ] when port <> "" && String.for_all (fun c -> c >= '0' && c <= '9') port ->
        tcp "127.0.0.1" port
    | _ ->
        Error
          (Printf.sprintf
             "bad address %S (want unix:PATH, a path containing '/', HOST:PORT or :PORT)" s)

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type config = { admission : Admission.config; scheduler : Scheduler.config }

let default_config =
  { admission = Admission.default_config; scheduler = Scheduler.default_config }

type t = {
  config : config;
  admission : Scheduler.job Admission.t;
  scheduler : Scheduler.t;
  spans : Span.t;
  telemetry : Telemetry.t;
  log : Log.t;
  tracer : Tracer.t option;
  m_accepted : Metrics.counter;
  m_completed : Metrics.counter;
  m_shed : Metrics.counter;
  m_errors : Metrics.counter;
  w_latency : Window.t;
  w_queue : Window.t;
  w_exec : Window.t;
  started_at : float;
  mutex : Mutex.t;
  mutable accepted : int;
  mutable completed : int;
  mutable shed : int;
  mutable errors : int;
  mutable listening_fd : Unix.file_descr option;
  mutable listening : bool;
  mutable stopping : bool;
  mutable drained : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let window_span_s = 60.0

let create ?(config = default_config) ?(log = Log.null) ?trace_dir () =
  let admission = Admission.create config.admission in
  let spans = Span.create () in
  let telemetry = Telemetry.create () in
  let reg = Telemetry.registry telemetry in
  let tracer = Option.map (fun dir -> Tracer.create ~dir ()) trace_dir in
  let rec t =
    lazy
      {
        config;
        admission;
        scheduler =
          Scheduler.start ~log ?tracer config.scheduler ~spans ~admission
            ~on_complete:(fun job resp ->
              let server = Lazy.force t in
              Admission.finish admission ~tenant:job.Scheduler.req.Protocol.tenant;
              locked server (fun () ->
                  match resp with
                  | Protocol.Result o ->
                      server.completed <- server.completed + 1;
                      Metrics.incr server.m_completed;
                      let now = Unix.gettimeofday () in
                      Window.observe server.w_latency ~now
                        ((now -. job.Scheduler.submitted_at) *. 1000.0);
                      Window.observe server.w_queue ~now o.Protocol.timing.Protocol.queue_ms;
                      Window.observe server.w_exec ~now o.Protocol.timing.Protocol.exec_ms
                  | _ ->
                      server.errors <- server.errors + 1;
                      Metrics.incr server.m_errors);
              (try job.Scheduler.respond resp with _ -> ()));
        spans;
        telemetry;
        log;
        tracer;
        m_accepted = Metrics.counter reg "serve.requests_accepted_total";
        m_completed = Metrics.counter reg "serve.requests_completed_total";
        m_shed = Metrics.counter reg "serve.requests_shed_total";
        m_errors = Metrics.counter reg "serve.errors_total";
        w_latency = Telemetry.window telemetry ~span_s:window_span_s "serve.latency_ms";
        w_queue = Telemetry.window telemetry ~span_s:window_span_s "serve.queue_ms";
        w_exec = Telemetry.window telemetry ~span_s:window_span_s "serve.exec_ms";
        started_at = Unix.gettimeofday ();
        mutex = Mutex.create ();
        accepted = 0;
        completed = 0;
        shed = 0;
        errors = 0;
        listening_fd = None;
        listening = false;
        stopping = false;
        drained = false;
      }
  in
  Lazy.force t

let stats t =
  locked t (fun () ->
      {
        Protocol.uptime_ms = (Unix.gettimeofday () -. t.started_at) *. 1000.0;
        accepted = t.accepted;
        completed = t.completed;
        shed = t.shed;
        errors = t.errors;
        depth = Admission.depth t.admission;
        in_flight = Admission.in_flight t.admission;
        spans = Span.summarize t.spans;
      })

let telemetry t = t.telemetry

let tracer t = t.tracer

(* Point-in-time gauges are set at scrape time; counters and windows
   are maintained continuously by the admission/completion paths. *)
let prometheus t =
  let now = Unix.gettimeofday () in
  let reg = Telemetry.registry t.telemetry in
  Metrics.set (Metrics.gauge reg "serve.queue_depth") (float_of_int (Admission.depth t.admission));
  Metrics.set (Metrics.gauge reg "serve.in_flight") (float_of_int (Admission.in_flight t.admission));
  Metrics.set (Metrics.gauge reg "serve.uptime_seconds") (now -. t.started_at);
  Telemetry.to_prometheus t.telemetry ~now

(* How long a shed client should back off before retrying: the queue
   ahead of it, costed at the observed mean execution time per shard.
   Before any execution has been observed, a small constant. *)
let retry_after_ms t =
  let mean =
    Option.value ~default:25.0 (Span.mean_ms t.spans ~phase:"execute")
  in
  let shards = max 1 t.config.scheduler.Scheduler.shards in
  Float.max 1.0 (mean *. float_of_int (Admission.depth t.admission + 1) /. float_of_int shards)

let bad_request id message =
  Protocol.Error_reply
    { id = Some id; kind = Protocol.Bad_request; message; line = None; col = None }

(* Validate the cheap-to-check parts of a run request before admission,
   so a request that can never execute is refused with the same
   self-describing error the CLI would print, not queued. *)
let validate_run (req : Protocol.run_request) =
  match Workloads.scale_of_string req.Protocol.scale with
  | Error e -> Some (bad_request req.Protocol.id e)
  | Ok _ ->
      if not (List.mem req.Protocol.app Workloads.app_names) then
        Some
          (bad_request req.Protocol.id
             (Printf.sprintf "unknown application %S (known: %s)" req.Protocol.app
                (String.concat ", " Workloads.app_names)))
      else begin
        match Backend.find req.Protocol.backend with
        | Error e -> Some (bad_request req.Protocol.id e)
        | Ok b ->
            if req.Protocol.obs && not b.Backend.capabilities.Backend.obs_report then
              Some
                (bad_request req.Protocol.id
                   (Printf.sprintf
                      "backend %s cannot emit an obs run report (no obs capability)"
                      b.Backend.name))
            else None
      end

let wake_accept_loop t =
  locked t (fun () ->
      match t.listening_fd with
      | Some fd ->
          t.listening_fd <- None;
          (* shutdown() on the listening socket wakes a blocked accept;
             close alone does not reliably do so on Linux *)
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ())

(* Stop admitting and wait for the shard pool to finish what was
   queued; does NOT wake the accept loop, so a shutdown request can
   still be acknowledged on its connection before the daemon's main
   thread returns from [listen] and the process exits. *)
let drain t =
  let first =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if first then begin
    Log.info t.log "draining: admission closed, waiting for shards";
    Admission.close t.admission;
    Scheduler.join t.scheduler;
    (match t.tracer with
    | Some tr -> begin
        match Tracer.flush tr with
        | Ok path ->
            Log.info t.log
              ~fields:
                [
                  ("path", Json.String path);
                  ("requests", Json.Int (Tracer.request_count tr));
                  ("dropped", Json.Int (Tracer.dropped tr));
                ]
              "request trace written"
        | Error e -> Log.warn t.log (Printf.sprintf "request trace flush failed: %s" e)
      end
    | None -> ());
    Log.info t.log
      ~fields:[ ("completed", Json.Int (locked t (fun () -> t.completed))) ]
      "drained";
    locked t (fun () -> t.drained <- true)
  end
  else
    (* second caller waits for the first to finish draining *)
    while not (locked t (fun () -> t.drained)) do
      Thread.yield ()
    done

let shutdown t =
  drain t;
  wake_accept_loop t

let handle_line t ~respond ?(on_admit = fun () -> ()) ?(on_settle = fun () -> ()) line =
  match Protocol.read_request line with
  | Error err ->
      locked t (fun () ->
          t.errors <- t.errors + 1;
          Metrics.incr t.m_errors);
      (match err with
      | Protocol.Error_reply { id; message; _ } -> Log.warn t.log ?req:id message
      | _ -> ());
      respond err;
      `Continue
  | Ok (Protocol.Hello h) ->
      if h.Protocol.protocol <> Protocol.protocol_version then begin
        locked t (fun () ->
            t.errors <- t.errors + 1;
            Metrics.incr t.m_errors);
        Log.warn t.log
          ~fields:
            [
              ("client", Json.String h.Protocol.client);
              ("client_protocol", Json.Int h.Protocol.protocol);
            ]
          "incompatible client protocol";
        respond
          (Protocol.Error_reply
             {
               id = None;
               kind = Protocol.Incompatible;
               message =
                 Printf.sprintf "server speaks serve protocol v%d, client sent v%d"
                   Protocol.protocol_version h.Protocol.protocol;
               line = None;
               col = None;
             })
      end
      else
        respond
          (Protocol.Hello_ack
             {
               server = "agp-serve";
               version = Agp_util.Version.version;
               protocol = Protocol.protocol_version;
               schema = Agp_obs.Report.schema_version;
             });
      `Continue
  | Ok Protocol.Ping ->
      respond Protocol.Pong;
      `Continue
  | Ok Protocol.Stats ->
      respond (Protocol.Stats_reply (stats t));
      `Continue
  | Ok Protocol.Metrics ->
      respond (Protocol.Metrics_reply { text = prometheus t });
      `Continue
  | Ok Protocol.Shutdown ->
      Log.info t.log "shutdown requested";
      drain t;
      respond (Protocol.Shutdown_ack { completed = locked t (fun () -> t.completed) });
      wake_accept_loop t;
      `Shutdown
  | Ok (Protocol.Run req) -> begin
      match validate_run req with
      | Some err ->
          locked t (fun () ->
              t.errors <- t.errors + 1;
              Metrics.incr t.m_errors);
          (match err with
          | Protocol.Error_reply { message; _ } -> Log.warn t.log ~req:req.Protocol.id message
          | _ -> ());
          respond err;
          `Continue
      | None ->
          let job =
            {
              Scheduler.req;
              submitted_at = Unix.gettimeofday ();
              respond =
                (fun resp ->
                  (try respond resp with _ -> ());
                  on_settle ());
            }
          in
          (match Admission.submit t.admission ~tenant:req.Protocol.tenant job with
          | Ok () ->
              locked t (fun () ->
                  t.accepted <- t.accepted + 1;
                  Metrics.incr t.m_accepted);
              Log.debug t.log ~req:req.Protocol.id
                ~fields:
                  [
                    ("app", Json.String req.Protocol.app);
                    ("tenant", Json.String req.Protocol.tenant);
                    ("depth", Json.Int (Admission.depth t.admission));
                  ]
                "request admitted";
              on_admit ()
          | Error reason ->
              locked t (fun () ->
                  t.shed <- t.shed + 1;
                  Metrics.incr t.m_shed);
              let reason_name =
                match reason with
                | Protocol.Queue_full _ -> "queue-full"
                | Protocol.Quota_exceeded _ -> "quota"
                | Protocol.Draining -> "draining"
              in
              Log.warn t.log ~req:req.Protocol.id
                ~fields:[ ("reason", Json.String reason_name) ]
                "request shed";
              respond
                (Protocol.Overloaded
                   { id = req.Protocol.id; reason; retry_after_ms = retry_after_ms t }));
          `Continue
    end

let is_listening t = locked t (fun () -> t.listening)

(* Per-connection loop: NDJSON in, NDJSON out.  Responses can arrive
   from shard threads at any time, so writes are serialized by a
   per-connection mutex; the connection is closed only once its admitted
   requests have settled, so late results are not dropped on EOF. *)
let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wm = Mutex.create () in
  let outstanding = ref 0 in
  let respond resp =
    Mutex.lock wm;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wm)
      (fun () ->
        try
          output_string oc (Protocol.write resp);
          output_char oc '\n';
          flush oc
        with Sys_error _ | Unix.Unix_error _ -> ())
  in
  let on_admit () = Mutex.lock wm; incr outstanding; Mutex.unlock wm in
  let on_settle () = Mutex.lock wm; decr outstanding; Mutex.unlock wm in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line -> begin
        match handle_line t ~respond ~on_admit ~on_settle line with
        | `Continue -> loop ()
        | `Shutdown -> ()
      end
  in
  loop ();
  (* wait (bounded) for in-flight results to flush before closing *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while
    Mutex.lock wm;
    let n = !outstanding in
    Mutex.unlock wm;
    n > 0 && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.005
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let listen t ~addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd =
    match addr with
    | Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        fd
  in
  Unix.listen fd 64;
  Log.info t.log
    ~fields:
      [
        ("addr", Json.String (addr_to_string addr));
        ("shards", Json.Int t.config.scheduler.Scheduler.shards);
      ]
    "listening";
  locked t (fun () ->
      t.listening_fd <- Some fd;
      t.listening <- true);
  let rec accept_loop () =
    if locked t (fun () -> t.stopping) then ()
    else
      match Unix.accept fd with
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        ->
          if locked t (fun () -> t.stopping) then () else accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | cfd, _ ->
          ignore (Thread.create (fun () -> handle_conn t cfd) ());
          accept_loop ()
  in
  accept_loop ();
  locked t (fun () -> t.listening <- false);
  wake_accept_loop t;
  match addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
