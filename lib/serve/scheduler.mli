(** The worker-shard pool: demand-driven batched execution of admitted
    run requests over the {!Agp_backend.Backend} registry.

    Each shard is a thread parked in {!Admission.take_batch}; scheduling
    is demand-driven (a free shard pulls the next batch) rather than
    statically assigned, per the data-driven orchestration model the
    roadmap cites.  A batch groups requests with the same
    [(app, scale, seed)] so the expensive part they share — workload
    construction (graph/mesh/matrix generation) — is paid once and its
    cost amortized across the batch; each request still executes on a
    fresh instance via {!Agp_backend.Backend.run}, so results are
    independent.

    The pool never lets a request die silently: substrate liveness
    failures and crashes become typed responses, and every admitted job
    reaches [on_complete] exactly once. *)

type job = {
  req : Protocol.run_request;
  submitted_at : float;  (** [Unix.gettimeofday] at admission *)
  respond : Protocol.response -> unit;  (** the connection's writer *)
}

type config = {
  shards : int;
  max_batch : int;  (** max requests fused into one batch *)
}

val default_config : config
(** 4 shards, batches of up to 8. *)

type t

val start :
  ?log:Agp_obs.Log.t ->
  ?tracer:Tracer.t ->
  config ->
  spans:Agp_obs.Span.t ->
  admission:job Admission.t ->
  on_complete:(job -> Protocol.response -> unit) ->
  t
(** Spawn the shard threads.  [on_complete job response] is called once
    per job from the executing shard; the server uses it to send the
    response, release the tenant quota and update counters.  The
    [spans] collector receives per-request ["queue"] / ["build"] /
    ["execute"] phases; when a [tracer] is given the same three phases
    are also recorded against the request id for the Chrome trace, and
    the request id is passed into {!Agp_backend.Backend.run} so obs
    reports carry it in their meta.  [log] receives per-request debug
    lines and substrate-crash errors, correlated by request id. *)

val join : t -> unit
(** Wait for every shard to exit; returns once the admission queue has
    been closed and drained. *)
